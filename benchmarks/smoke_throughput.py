"""Quick throughput smoke gate for CI.

Measures steady-state scan+parse routing throughput (the cost every
message pays in the paper's production deployment) on a realistic
duplicate-carrying stream and exits non-zero if it drops below the
paper's sustained requirement of 100M messages/day ≈ 1,160 msgs/s.

Additionally mines one cold batch (everything unmatched — the miner's
worst case) under the default all-reference configuration and under the
all-compiled configuration (scanner, parser and analyser backends set
to ``compiled``), and writes the per-stage msgs/s breakdown to the
``stages`` section of ``results/BENCH_throughput.json`` so the analyze
share of end-to-end mining stays visible to future PRs.

Deliberately small (a few seconds end to end) — this is a regression
tripwire, not a benchmark.  Run the full suite with
``pytest benchmarks/`` for real numbers.

Usage::

    PYTHONPATH=src python benchmarks/smoke_throughput.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.analyzer import AnalyzerConfig
from repro.core.config import RTGConfig
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.parser import ParserConfig
from repro.scanner import ScannerConfig
from repro.workflow.stream import ProductionStream, StreamConfig

PAPER_RATE_PER_SECOND = 100_000_000 / 86_400

RESULTS = Path(__file__).parent.parent / "results" / "BENCH_throughput.json"

#: the workflow stages whose per-stage seconds BatchResult reports
STAGES = ("scan", "parse", "partition_length", "analyze", "persist")

#: cold-mine corpus — matches bench_throughput's mining benchmark shape
N_MINE = 5_000
MINE_REPEATS = 3

CONFIGS = {
    "reference": RTGConfig(),
    "compiled": RTGConfig(
        scanner=ScannerConfig(backend="compiled"),
        parser=ParserConfig(backend="compiled"),
        analyzer=AnalyzerConfig(backend="compiled"),
    ),
}


def measure_stages(config: RTGConfig) -> dict:
    """Cold-mine one batch (best of MINE_REPEATS) and break the run
    down per stage: msgs/s and share of total batch seconds."""
    records = list(
        ProductionStream(StreamConfig(n_services=60, seed=32)).records(N_MINE)
    )
    best_seconds = float("inf")
    best_timings: dict[str, float] = {}
    for _ in range(MINE_REPEATS):
        rtg = SequenceRTG(db=PatternDB(), config=config)
        t0 = time.perf_counter()
        result = rtg.analyze_by_service(records)
        seconds = time.perf_counter() - t0
        assert result.n_new_patterns > 0
        if seconds < best_seconds:
            best_seconds = seconds
            best_timings = dict(result.timings)
    report: dict = {"mine_msgs_per_s": round(len(records) / best_seconds)}
    for stage in STAGES:
        stage_seconds = best_timings.get(stage, 0.0)
        report[stage] = {
            "msgs_per_s": round(len(records) / stage_seconds)
            if stage_seconds
            else None,
            "share": round(stage_seconds / best_seconds, 3),
        }
    return report


def record_stages(stages: dict) -> None:
    """Merge the ``stages`` section into results/BENCH_throughput.json
    (same merge discipline as bench_throughput's ``_record_bench``)."""
    RESULTS.parent.mkdir(exist_ok=True)
    data: dict = {"paper_gate_msgs_per_s": round(PAPER_RATE_PER_SECOND, 1)}
    if RESULTS.exists():
        data = json.loads(RESULTS.read_text())
    data["stages"] = stages
    RESULTS.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def main() -> int:
    stream = ProductionStream(
        StreamConfig(n_services=40, seed=41, duplicate_fraction=0.5)
    )
    rtg = SequenceRTG(db=PatternDB())
    rtg.analyze_by_service(list(stream.records(4_000)))  # learn the stream

    routed = 0
    seconds = 0.0
    for _ in range(3):
        result = rtg.analyze_by_service(list(stream.records(2_000)))
        routed += result.n_records
        seconds += result.timings.get("scan", 0.0) + result.timings.get(
            "parse", 0.0
        )
    per_second = routed / seconds

    ok = per_second > PAPER_RATE_PER_SECOND
    print(
        f"scan+parse: {per_second:,.0f} msgs/s "
        f"(gate: {PAPER_RATE_PER_SECOND:,.0f} msgs/s) — "
        f"{'OK' if ok else 'FAIL'}"
    )

    stages = {name: measure_stages(config) for name, config in CONFIGS.items()}
    record_stages(stages)
    for name, report in stages.items():
        shares = ", ".join(
            f"{stage} {report[stage]['share']:.0%}" for stage in STAGES
        )
        print(
            f"cold mine [{name}]: {report['mine_msgs_per_s']:,} msgs/s "
            f"({shares})"
        )
    # the compiled production configuration must not mine slower than
    # the reference path it replaces
    compiled_ok = (
        stages["compiled"]["mine_msgs_per_s"]
        >= stages["reference"]["mine_msgs_per_s"]
    )
    if not compiled_ok:
        print("FAIL: all-compiled configuration mines slower than reference")

    return 0 if ok and compiled_ok else 1


if __name__ == "__main__":
    sys.exit(main())

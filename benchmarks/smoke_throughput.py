"""Quick throughput smoke gate for CI.

Measures steady-state scan+parse routing throughput (the cost every
message pays in the paper's production deployment) on a realistic
duplicate-carrying stream and exits non-zero if it drops below the
paper's sustained requirement of 100M messages/day ≈ 1,160 msgs/s.

Deliberately small (a few seconds end to end) — this is a regression
tripwire, not a benchmark.  Run the full suite with
``pytest benchmarks/`` for real numbers.

Usage::

    PYTHONPATH=src python benchmarks/smoke_throughput.py
"""

from __future__ import annotations

import sys

from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.workflow.stream import ProductionStream, StreamConfig

PAPER_RATE_PER_SECOND = 100_000_000 / 86_400


def main() -> int:
    stream = ProductionStream(
        StreamConfig(n_services=40, seed=41, duplicate_fraction=0.5)
    )
    rtg = SequenceRTG(db=PatternDB())
    rtg.analyze_by_service(list(stream.records(4_000)))  # learn the stream

    routed = 0
    seconds = 0.0
    for _ in range(3):
        result = rtg.analyze_by_service(list(stream.records(2_000)))
        routed += result.n_records
        seconds += result.timings.get("scan", 0.0) + result.timings.get(
            "parse", 0.0
        )
    per_second = routed / seconds

    ok = per_second > PAPER_RATE_PER_SECOND
    print(
        f"scan+parse: {per_second:,.0f} msgs/s "
        f"(gate: {PAPER_RATE_PER_SECOND:,.0f} msgs/s) — "
        f"{'OK' if ok else 'FAIL'}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

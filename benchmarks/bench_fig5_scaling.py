"""Fig. 5 — processing time of ``Analyze`` vs ``AnalyzeByService``.

The paper runs both methods on multi-service data sets of increasing
size (0.5M-13.25M lines, ~241 unique services on average, empty pattern
database so every record reaches the analyser) and shows the seminal
``Analyze`` degrading super-linearly past ~3M lines while
``AnalyzeByService`` stays near-linear until much larger sizes.

The pure-Python reproduction scales the x-axis down (Go is 20-50×
faster per line); the *shape* targets are asserted:

* ``AnalyzeByService`` is faster than legacy ``Analyze`` at every size;
* the legacy method's cost grows super-linearly (time per line rises
  with the data set size) while AnalyzeByService stays near-linear;
* the legacy single trie is far larger than any per-partition trie,
  which is the memory-pressure story behind the paper's batch-size
  recommendation.
"""

import pytest

from repro.core.config import RTGConfig
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.workflow.stream import ProductionStream, StreamConfig

#: data-set sizes (paper: 0.5M .. 13.25M lines; scaled for pure Python)
SIZES = (2_000, 5_000, 12_000, 30_000)

_RESULTS: dict[tuple[str, int], float] = {}


def _records(n: int):
    stream = ProductionStream(StreamConfig(n_services=241, seed=1))
    return list(stream.records(n))


def _fresh_rtg() -> SequenceRTG:
    return SequenceRTG(db=PatternDB(), config=RTGConfig())


@pytest.mark.parametrize("size", SIZES)
def test_fig5_analyze_by_service(benchmark, size):
    records = _records(size)

    def run():
        rtg = _fresh_rtg()
        rtg.analyze_by_service(records)
        return rtg

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[("AnalyzeByService", size)] = benchmark.stats["mean"]
    assert result.db.counts()["patterns"] > 0


@pytest.mark.parametrize("size", SIZES)
def test_fig5_legacy_analyze(benchmark, size):
    records = _records(size)

    def run():
        rtg = _fresh_rtg()
        return rtg.analyze_legacy(records)

    patterns = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[("Analyze", size)] = benchmark.stats["mean"]
    assert patterns


def test_fig5_shape(table_writer, benchmark):
    """Summarise the curve and assert the paper's qualitative findings."""
    if len(_RESULTS) < 2 * len(SIZES):
        pytest.skip("timing tests did not run (benchmark disabled?)")
    # nominal benchmark target so this summary runs under --benchmark-only
    benchmark.pedantic(lambda: sorted(_RESULTS.items()), rounds=1, iterations=1)
    rows = []
    for size in SIZES:
        legacy = _RESULTS[("Analyze", size)]
        rtg = _RESULTS[("AnalyzeByService", size)]
        rows.append(
            [size, f"{legacy:.2f}s", f"{rtg:.2f}s", f"{legacy / rtg:.1f}x"]
        )
    table_writer(
        "fig5_scaling.md",
        ["lines", "Analyze (legacy)", "AnalyzeByService", "speedup"],
        rows,
    )

    # Shape 1: AnalyzeByService clearly outperforms legacy Analyze once
    # the data set grows (in the paper, too, the curves nearly coincide
    # at the left edge and separate as size grows)
    for size in SIZES[2:]:
        assert _RESULTS[("AnalyzeByService", size)] < _RESULTS[("Analyze", size)]
    largest = SIZES[-1]
    assert (
        _RESULTS[("Analyze", largest)]
        > 1.5 * _RESULTS[("AnalyzeByService", largest)]
    )

    # Shape 2: legacy per-line cost grows with size (super-linear total),
    # AnalyzeByService stays near-linear (per-line cost roughly flat)
    first, last = SIZES[0], SIZES[-1]
    legacy_per_line_growth = (_RESULTS[("Analyze", last)] / last) / (
        _RESULTS[("Analyze", first)] / first
    )
    rtg_per_line_growth = (_RESULTS[("AnalyzeByService", last)] / last) / (
        _RESULTS[("AnalyzeByService", first)] / first
    )
    assert legacy_per_line_growth > rtg_per_line_growth

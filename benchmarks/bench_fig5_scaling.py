"""Fig. 5 — processing time of ``Analyze`` vs ``AnalyzeByService``.

The paper runs both methods on multi-service data sets of increasing
size (0.5M-13.25M lines, ~241 unique services on average, empty pattern
database so every record reaches the analyser) and shows the seminal
``Analyze`` degrading super-linearly past ~3M lines while
``AnalyzeByService`` stays near-linear until much larger sizes.

The pure-Python reproduction scales the x-axis down (Go is 20-50×
faster per line); the *shape* targets are asserted:

* ``AnalyzeByService`` is faster than legacy ``Analyze`` at every size;
* the legacy method's cost grows super-linearly (time per line rises
  with the data set size) while AnalyzeByService stays near-linear;
* the legacy single trie is far larger than any per-partition trie,
  which is the memory-pressure story behind the paper's batch-size
  recommendation.
"""

import json
import os

import pytest

from repro.core.config import RTGConfig
from repro.core.parallel import ParallelSequenceRTG, PersistentParallelSequenceRTG
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.workflow.stream import ProductionStream, StreamConfig

#: data-set sizes (paper: 0.5M .. 13.25M lines; scaled for pure Python)
SIZES = (2_000, 5_000, 12_000, 30_000)

_RESULTS: dict[tuple[str, int], float] = {}


def _records(n: int):
    stream = ProductionStream(StreamConfig(n_services=241, seed=1))
    return list(stream.records(n))


def _fresh_rtg() -> SequenceRTG:
    return SequenceRTG(db=PatternDB(), config=RTGConfig())


@pytest.mark.parametrize("size", SIZES)
def test_fig5_analyze_by_service(benchmark, size):
    records = _records(size)

    def run():
        rtg = _fresh_rtg()
        rtg.analyze_by_service(records)
        return rtg

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[("AnalyzeByService", size)] = benchmark.stats["mean"]
    assert result.db.counts()["patterns"] > 0


@pytest.mark.parametrize("size", SIZES)
def test_fig5_legacy_analyze(benchmark, size):
    records = _records(size)

    def run():
        rtg = _fresh_rtg()
        return rtg.analyze_legacy(records)

    patterns = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[("Analyze", size)] = benchmark.stats["mean"]
    assert patterns


def test_fig5_shape(table_writer, benchmark):
    """Summarise the curve and assert the paper's qualitative findings."""
    if len(_RESULTS) < 2 * len(SIZES):
        pytest.skip("timing tests did not run (benchmark disabled?)")
    # nominal benchmark target so this summary runs under --benchmark-only
    benchmark.pedantic(lambda: sorted(_RESULTS.items()), rounds=1, iterations=1)
    rows = []
    for size in SIZES:
        legacy = _RESULTS[("Analyze", size)]
        rtg = _RESULTS[("AnalyzeByService", size)]
        rows.append(
            [size, f"{legacy:.2f}s", f"{rtg:.2f}s", f"{legacy / rtg:.1f}x"]
        )
    table_writer(
        "fig5_scaling.md",
        ["lines", "Analyze (legacy)", "AnalyzeByService", "speedup"],
        rows,
    )

    # Shape 1: AnalyzeByService clearly outperforms legacy Analyze once
    # the data set grows (in the paper, too, the curves nearly coincide
    # at the left edge and separate as size grows)
    for size in SIZES[2:]:
        assert _RESULTS[("AnalyzeByService", size)] < _RESULTS[("Analyze", size)]
    largest = SIZES[-1]
    assert (
        _RESULTS[("Analyze", largest)]
        > 1.5 * _RESULTS[("AnalyzeByService", largest)]
    )

    # Shape 2: legacy per-line cost grows with size (super-linear total),
    # AnalyzeByService stays near-linear (per-line cost roughly flat)
    first, last = SIZES[0], SIZES[-1]
    legacy_per_line_growth = (_RESULTS[("Analyze", last)] / last) / (
        _RESULTS[("Analyze", first)] / first
    )
    rtg_per_line_growth = (_RESULTS[("AnalyzeByService", last)] / last) / (
        _RESULTS[("AnalyzeByService", first)] / first
    )
    assert legacy_per_line_growth > rtg_per_line_growth


# ---------------------------------------------------------------------------
# Scale-out: warm persistent pool vs cold per-batch pool
#
# The cold pool (the historical ParallelSequenceRTG) forks a fresh
# worker set for every batch and ships each worker the full known
# pattern set of its services; workers rebuild parsers and start with
# cold caches.  The persistent pool spawns once, routes each service to
# a sticky worker and ships only the pattern *delta* per batch — in
# steady state that delta is empty.  The gates assert the two wins:
# ≥2x batch throughput and a per-batch sync payload ≤10% of the cold
# pool's full re-ship.
# ---------------------------------------------------------------------------

POOL_WORKERS = 4
POOL_TIMED_BATCHES = 4  # the ≥4-batch, 4-shard gate workload
POOL_BATCH_SIZE = 1_000

_POOL_RESULTS: dict[str, dict] = {}

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")
_POOL_JSON = os.path.join(_RESULTS_DIR, "BENCH_parallel.json")


def _pool_workload():
    """Seeded DB dump + warmup batch + timed batches + crash batch.

    One continuous duplicate-heavy stream: the seed mining session
    populates the shared DB (so workers have patterns to receive at
    spawn), later batches mostly match known patterns — the §IV
    steady state where sync deltas are empty.
    """
    stream = ProductionStream(
        StreamConfig(n_services=48, seed=17, duplicate_fraction=0.6)
    )
    miner = SequenceRTG(db=PatternDB())
    miner.analyze_by_service(list(stream.records(4_000)))
    dump = miner.db.dump()
    batches = [
        list(stream.records(POOL_BATCH_SIZE))
        for _ in range(POOL_TIMED_BATCHES + 2)
    ]
    return dump, batches


def test_pool_cold_batches(benchmark):
    dump, batches = _pool_workload()
    engine = ParallelSequenceRTG(
        db=PatternDB.from_dump(dump), n_workers=POOL_WORKERS
    )
    engine.analyze_by_service(batches[0])  # warmup parity with the warm pool

    def run():
        for batch in batches[1 : POOL_TIMED_BATCHES + 1]:
            engine.analyze_by_service(batch)

    benchmark.pedantic(run, rounds=1, iterations=1)

    # untimed probe run measuring what a cold pool re-ships every batch
    # (track_sync_bytes is off during timing so the cold lane does not
    # pay a second serialisation it never needs)
    probe = ParallelSequenceRTG(
        db=PatternDB.from_dump(dump), n_workers=POOL_WORKERS
    )
    probe.track_sync_bytes = True
    payloads = [
        probe.analyze_by_service(b).pool.get("sync_bytes", 0)
        for b in batches[: POOL_TIMED_BATCHES + 1]
    ]
    _POOL_RESULTS["cold"] = {
        "batches_per_s": POOL_TIMED_BATCHES / benchmark.stats["mean"],
        "sync_bytes_per_batch": sum(payloads[1:]) / POOL_TIMED_BATCHES,
    }


def test_pool_warm_batches(benchmark):
    dump, batches = _pool_workload()
    with PersistentParallelSequenceRTG(
        db=PatternDB.from_dump(dump), n_workers=POOL_WORKERS
    ) as engine:
        engine.analyze_by_service(batches[0])  # spawn workers, ship seeds

        def run():
            for batch in batches[1 : POOL_TIMED_BATCHES + 1]:
                engine.analyze_by_service(batch)

        benchmark.pedantic(run, rounds=1, iterations=1)
        sync_bytes = engine.telemetry["sync_bytes"]  # deltas after batch 1

        # robustness exercise: kill one worker, next batch must respawn
        # it (seeded from the shared DB) and carry on
        victim = next(h for h in engine._workers if h is not None)
        victim.process.kill()
        victim.process.join(timeout=5.0)
        crash_result = engine.analyze_by_service(batches[POOL_TIMED_BATCHES + 1])
        assert crash_result.n_records == POOL_BATCH_SIZE

        _POOL_RESULTS["warm"] = {
            "batches_per_s": POOL_TIMED_BATCHES / benchmark.stats["mean"],
            "sync_bytes_per_batch": sync_bytes / POOL_TIMED_BATCHES,
            "seed_bytes": engine.telemetry["seed_bytes"],
            "respawns": engine.telemetry["respawns"],
        }
        assert engine.telemetry["respawns"] == 1


def test_pool_warm_vs_cold_summary(table_writer, benchmark):
    """Assert the scale-out gates and persist machine-readable numbers."""
    if "cold" not in _POOL_RESULTS or "warm" not in _POOL_RESULTS:
        pytest.skip("pool timing tests did not run (benchmark disabled?)")
    benchmark.pedantic(lambda: dict(_POOL_RESULTS), rounds=1, iterations=1)
    cold, warm = _POOL_RESULTS["cold"], _POOL_RESULTS["warm"]
    speedup = warm["batches_per_s"] / cold["batches_per_s"]

    table_writer(
        "fig5_pool_warm_vs_cold.md",
        ["pool", "batches/s", "sync payload/batch", "respawns"],
        [
            ["cold (per-batch fork)", f"{cold['batches_per_s']:.2f}",
             f"{cold['sync_bytes_per_batch']:,.0f} B", "-"],
            ["warm (persistent)", f"{warm['batches_per_s']:.2f}",
             f"{warm['sync_bytes_per_batch']:,.0f} B", warm["respawns"]],
            ["speedup", f"{speedup:.1f}x", "", ""],
        ],
    )
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    with open(_POOL_JSON, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "workload": {
                    "workers": POOL_WORKERS,
                    "batches": POOL_TIMED_BATCHES,
                    "batch_size": POOL_BATCH_SIZE,
                },
                "cold": {k: round(v, 2) for k, v in cold.items()},
                "warm": {k: round(v, 2) for k, v in warm.items()},
                "speedup": round(speedup, 2),
            },
            fh,
            indent=2,
            sort_keys=True,
        )
        fh.write("\n")

    # Gate 1: spawning once beats forking every batch
    assert speedup >= 2.0
    # Gate 2: after the first batch the delta sync is a sliver of the
    # cold pool's full-known-set re-ship
    assert warm["sync_bytes_per_batch"] <= 0.10 * cold["sync_bytes_per_batch"]

"""Ablations over the design choices DESIGN.md calls out.

Each ablation isolates one Sequence-RTG mechanism and measures its
effect, turning the paper's design arguments into numbers:

* **service partitioning** (Fig. 2 first partition) — mining a mixed
  stream with vs without per-service separation: quality ("better
  quality patterns compared with processing them as a single group");
* **batch size** (§IV Fig. 5 discussion) — time and peak trie size per
  batch size, the memory/latency trade-off behind the 100k choice;
* **save threshold** (§IV limitations) — how many one-shot patterns the
  threshold keeps out of the database;
* **constant folding** (limitation 4) — variables per pattern with and
  without the quality-control fix;
* **single-digit time fix** (§VI) — HealthApp raw accuracy repaired;
* **path FSM** (§VI) — path-heavy events unified.
"""

import pytest

from repro.analyzer.analyzer import AnalyzerConfig
from repro.core.config import RTGConfig
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.core.records import LogRecord
from repro.loghub import evaluate_sequence_rtg, load_dataset
from repro.scanner.scanner import ScannerConfig
from repro.workflow.stream import ProductionStream, StreamConfig


def _stream_records(n: int, seed: int = 3):
    return list(ProductionStream(StreamConfig(n_services=50, seed=seed)).records(n))


class TestServicePartitioning:
    def test_mixed_stream_quality(self, benchmark, table_writer):
        """Partitioned mining yields fewer, better patterns than one
        mixed-service trie over the same records."""
        records = _stream_records(4_000)

        def run():
            rtg = SequenceRTG(db=PatternDB())
            rtg.analyze_by_service(records)
            legacy = SequenceRTG(db=PatternDB()).analyze_legacy(records)
            return rtg, legacy

        rtg, legacy_patterns = benchmark.pedantic(run, rounds=1, iterations=1)
        partitioned = rtg.db.rows()
        mixed_all_var = sum(1 for p in legacy_patterns if p.complexity >= 0.999)
        part_all_var = sum(1 for r in partitioned if r.complexity >= 0.999)
        part_cx = sum(r.complexity for r in partitioned) / len(partitioned)
        mixed_cx = sum(p.complexity for p in legacy_patterns) / len(legacy_patterns)
        table_writer(
            "ablation_service_partitioning.md",
            ["mode", "patterns", "mean complexity", "all-variable patterns"],
            [
                ["AnalyzeByService", len(partitioned), f"{part_cx:.3f}", part_all_var],
                ["legacy Analyze (mixed)", len(legacy_patterns), f"{mixed_cx:.3f}",
                 mixed_all_var],
            ],
        )
        # partitioning keeps more static text per pattern (lower
        # complexity) and avoids the fully-variable garbage patterns the
        # mixed trie produces by over-merging across services
        assert part_all_var <= mixed_all_var
        assert part_cx <= mixed_cx + 0.02


class TestBatchSize:
    @pytest.mark.parametrize("batch_size", [250, 1_000, 4_000])
    def test_batch_size_tradeoff(self, benchmark, batch_size):
        """Bigger batches: fewer runs but larger tries (memory risk)."""
        records = _stream_records(4_000)
        config = RTGConfig(batch_size=batch_size)

        def run():
            # first batch against an empty database: every record reaches
            # the analyser, so the trie size reflects the batch size (the
            # memory-pressure scenario of the paper's Fig. 5 discussion)
            rtg = SequenceRTG(db=PatternDB(), config=config)
            result = rtg.analyze_by_service(records[:batch_size])
            return result.max_trie_nodes

        peak = benchmark.pedantic(run, rounds=1, iterations=1)
        if not hasattr(TestBatchSize, "_peaks"):
            TestBatchSize._peaks = {}
        TestBatchSize._peaks[batch_size] = peak
        assert peak > 0

    def test_batch_size_summary(self, benchmark, table_writer):
        peaks = getattr(TestBatchSize, "_peaks", {})
        if len(peaks) < 3:
            pytest.skip("sweep did not run")
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        table_writer(
            "ablation_batch_size.md",
            ["batch size", "peak analysis-trie nodes"],
            [[k, v] for k, v in sorted(peaks.items())],
        )
        sizes = sorted(peaks)
        # the paper's memory argument: trie size grows with batch size
        assert peaks[sizes[0]] <= peaks[sizes[-1]]


class TestSaveThreshold:
    def test_threshold_blocks_one_shot_patterns(self, benchmark, table_writer):
        records = _stream_records(3_000, seed=9)
        rows = []
        results = {}

        def run():
            for threshold in (1, 3, 10):
                rtg = SequenceRTG(
                    db=PatternDB(), config=RTGConfig(save_threshold=threshold)
                )
                res = rtg.analyze_by_service(records)
                results[threshold] = (
                    rtg.db.counts()["patterns"],
                    res.n_below_threshold,
                )
            return results

        benchmark.pedantic(run, rounds=1, iterations=1)
        for threshold, (saved, blocked) in sorted(results.items()):
            rows.append([threshold, saved, blocked])
        table_writer(
            "ablation_save_threshold.md",
            ["save threshold", "patterns saved", "patterns blocked"],
            rows,
        )
        assert results[10][0] < results[1][0]
        assert results[10][1] > 0


class TestConstantFolding:
    def test_folding_reduces_variables(self, benchmark, table_writer):
        """Limitation 4: without folding, 'Sequence tends to add too many
        variables into patterns'."""
        records = [
            LogRecord("svc", f"conn from 10.0.0.{i % 20} port 22 proto 2 ok")
            for i in range(40)
        ]

        def run():
            on = SequenceRTG(db=PatternDB())
            on.analyze_by_service(records)
            off = SequenceRTG(
                db=PatternDB(),
                config=RTGConfig(analyzer=AnalyzerConfig(fold_constants=False)),
            )
            off.analyze_by_service(records)
            return on.db.rows(), off.db.rows()

        rows_on, rows_off = benchmark.pedantic(run, rounds=1, iterations=1)
        cx_on = sum(r.complexity for r in rows_on) / len(rows_on)
        cx_off = sum(r.complexity for r in rows_off) / len(rows_off)
        table_writer(
            "ablation_constant_folding.md",
            ["folding", "patterns", "mean complexity"],
            [["on (RTG)", len(rows_on), f"{cx_on:.3f}"],
             ["off (limitation 4)", len(rows_off), f"{cx_off:.3f}"]],
        )
        assert cx_on < cx_off


class TestFutureWorkFixes:
    def test_single_digit_time_repairs_healthapp_raw(self, benchmark, table_writer):
        dataset = load_dataset("HealthApp")

        def run():
            default = evaluate_sequence_rtg(dataset, "raw")
            fixed = evaluate_sequence_rtg(
                dataset,
                "raw",
                config=RTGConfig(scanner=ScannerConfig(allow_single_digit_time=True)),
            )
            return default, fixed

        default, fixed = benchmark.pedantic(run, rounds=1, iterations=1)
        table_writer(
            "ablation_single_digit_time.md",
            ["scanner", "HealthApp raw accuracy"],
            [["published (leading zero required)", f"{default:.3f}"],
             ["future-work fix (single digits ok)", f"{fixed:.3f}"]],
        )
        assert fixed > default + 0.1

    def test_path_fsm_unifies_path_events(self, benchmark, table_writer):
        # digit-free paths: without the path FSM these are plain literal
        # words, too few and too dissimilar to merge, so one event yields
        # one pattern per path (the §IV path limitation)
        records = [
            LogRecord("fs", f"mount of /srv/{name}/data failed badly")
            for name in ("alpha", "beta", "gamma")
            for _ in range(3)
        ]

        def run():
            default = SequenceRTG(db=PatternDB())
            n_default = default.analyze_by_service(records).n_new_patterns
            fixed = SequenceRTG(
                db=PatternDB(),
                config=RTGConfig(scanner=ScannerConfig(enable_path_fsm=True)),
            )
            n_fixed = fixed.analyze_by_service(records).n_new_patterns
            return n_default, n_fixed

        n_default, n_fixed = benchmark.pedantic(run, rounds=1, iterations=1)
        table_writer(
            "ablation_path_fsm.md",
            ["scanner", "patterns for one path event"],
            [["published (no path FSM)", n_default],
             ["future-work path FSM", n_fixed]],
        )
        assert n_fixed <= n_default


class TestSemiConstantExpansion:
    def test_expansion_creates_per_value_patterns(self, benchmark, table_writer):
        """§VI future work: semi-constant variables become one pattern per
        value, each with a constant at its position."""
        records = [
            LogRecord(
                "net",
                f"link eth{i % 2} changed state to {'up' if i % 3 else 'down'} at step {i}",
            )
            for i in range(60)
        ]

        def run():
            published = SequenceRTG(db=PatternDB())
            n_published = published.analyze_by_service(records).n_new_patterns
            expanded = SequenceRTG(
                db=PatternDB(),
                config=RTGConfig(
                    analyzer=AnalyzerConfig(semi_constant_max_values=4)
                ),
            )
            n_expanded = expanded.analyze_by_service(records).n_new_patterns
            return n_published, n_expanded

        n_published, n_expanded = benchmark.pedantic(run, rounds=1, iterations=1)
        table_writer(
            "ablation_semi_constant.md",
            ["analyser", "patterns"],
            [["published (single variable)", n_published],
             ["future-work semi-constant expansion", n_expanded]],
        )
        assert n_expanded > n_published


class TestParallelScaleOut:
    def test_service_sharded_speedup(self, benchmark, table_writer):
        """§IV: scaling out by sending groups of services to several
        Sequence-RTG instances; each shard is independent, so the merged
        pattern set is identical and wall-clock time drops on multicore."""
        import time

        from repro.core.parallel import ParallelSequenceRTG

        records = _stream_records(12_000, seed=12)

        def run():
            t0 = time.perf_counter()
            serial = SequenceRTG(db=PatternDB())
            serial.analyze_by_service(records)
            t_serial = time.perf_counter() - t0

            t0 = time.perf_counter()
            parallel = ParallelSequenceRTG(db=PatternDB(), n_workers=4)
            parallel.analyze_by_service(records)
            t_parallel = time.perf_counter() - t0
            return t_serial, t_parallel, serial, parallel

        t_serial, t_parallel, serial, parallel = benchmark.pedantic(
            run, rounds=1, iterations=1
        )
        table_writer(
            "ablation_parallel.md",
            ["mode", "wall-clock", "patterns"],
            [
                ["serial", f"{t_serial:.2f}s", serial.db.counts()["patterns"]],
                ["4 sharded instances", f"{t_parallel:.2f}s",
                 parallel.db.counts()["patterns"]],
            ],
        )
        serial_ids = {r.id for r in serial.db.rows()}
        parallel_ids = {r.id for r in parallel.db.rows()}
        assert serial_ids == parallel_ids  # no crossover between services
        # multicore hosts should see a real speedup; on a loaded or
        # single-core machine we still require no pathological slowdown
        assert t_parallel < t_serial * 1.5


class TestLegacyVsRtgQuality:
    def test_partitioned_vs_single_trie_accuracy(self, benchmark, table_writer):
        """Seminal ``Analyze`` vs ``AnalyzeByService`` on labelled data.

        The trade-off behind the paper's §III quality claim, quantified:
        the legacy pairwise comparison merges *any* two similar siblings,
        which helps datasets whose variables take only 2-3 values but
        over-merges distinct events elsewhere (OpenSSH collapses), while
        the partitioned analyser's threshold is conservative.  The paper
        chose the conservative side for production: a missed merge is a
        reviewable extra pattern, an over-merge silently mislabels
        traffic.
        """
        from repro.loghub import evaluate_sequence_rtg, load_dataset
        from repro.loghub.evaluation import evaluate_legacy_sequence

        names = ("HDFS", "OpenSSH", "Mac", "Linux")

        def run():
            rows = []
            for name in names:
                dataset = load_dataset(name)
                rows.append(
                    (
                        name,
                        evaluate_sequence_rtg(dataset, "raw"),
                        evaluate_legacy_sequence(dataset, "raw"),
                    )
                )
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        table_writer(
            "ablation_legacy_quality.md",
            ["dataset", "AnalyzeByService", "legacy Analyze"],
            [[n, f"{a:.3f}", f"{l:.3f}"] for n, a, l in rows],
        )
        scores = {n: (a, l) for n, a, l in rows}
        # the legacy merge-anything strategy collapses distinct OpenSSH
        # events into one pattern; the partitioned analyser does not
        assert scores["OpenSSH"][0] > scores["OpenSSH"][1] + 0.15
        # both solve the easy dataset
        assert scores["HDFS"][0] > 0.95 and scores["HDFS"][1] > 0.95

"""Metrics-overhead smoke gate for CI.

Runs the same duplicate-carrying stream twice through the serial miner —
once with ``RTGConfig.enable_metrics`` on (the default) and once with it
off — and fails if the instrumented run is more than 5% slower in
batches/s.  The observability layer must stay invisible on the hot path:
one histogram observation per stage per service group plus a handful of
per-service counter increments.

Writes the measurements to ``results/BENCH_obs.json``.

Deliberately small (a few seconds end to end) — this is a regression
tripwire, not a benchmark.

Usage::

    PYTHONPATH=src python benchmarks/smoke_obs.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.core.config import RTGConfig
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.workflow.stream import ProductionStream, StreamConfig

MAX_OVERHEAD = 0.05
N_BATCHES = 12
PER_BATCH = 2_000
RESULTS = Path(__file__).parent.parent / "results" / "BENCH_obs.json"


def batches_per_second(enable_metrics: bool) -> float:
    stream = ProductionStream(
        StreamConfig(n_services=40, seed=41, duplicate_fraction=0.5)
    )
    rtg = SequenceRTG(
        db=PatternDB(), config=RTGConfig(enable_metrics=enable_metrics)
    )
    rtg.analyze_by_service(list(stream.records(4_000)))  # learn the stream
    batches = [list(stream.records(PER_BATCH)) for _ in range(N_BATCHES)]
    t0 = time.perf_counter()
    for batch in batches:
        rtg.analyze_by_service(batch)
    return N_BATCHES / (time.perf_counter() - t0)


def main() -> int:
    # interleave A/B rounds so machine noise hits both sides evenly, and
    # keep the best round per side (least-interference estimate)
    on_rounds, off_rounds = [], []
    for _ in range(3):
        on_rounds.append(batches_per_second(True))
        off_rounds.append(batches_per_second(False))
    with_metrics, without_metrics = max(on_rounds), max(off_rounds)
    overhead = 1.0 - with_metrics / without_metrics

    ok = overhead <= MAX_OVERHEAD
    report = {
        "batches_per_s_metrics_on": round(with_metrics, 2),
        "batches_per_s_metrics_off": round(without_metrics, 2),
        "overhead_fraction": round(overhead, 4),
        "max_overhead_fraction": MAX_OVERHEAD,
        "n_batches": N_BATCHES,
        "records_per_batch": PER_BATCH,
        "ok": ok,
    }
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(
        f"metrics on: {with_metrics:.2f} batches/s, "
        f"off: {without_metrics:.2f} batches/s, "
        f"overhead: {overhead:+.2%} (gate: {MAX_OVERHEAD:.0%}) — "
        f"{'OK' if ok else 'FAIL'}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

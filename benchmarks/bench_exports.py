"""Fig. 3 / Fig. 4 — pattern export renderings and throughput.

Regenerates the two export figures for the paper's running example
(``%action% from %srcip% port %srcport%``): the syslog-ng patterndb rule
with test cases (Fig. 3) and the Logstash Grok filter tagged with the
pattern id (Fig. 4), then benchmarks export throughput on a database of
several hundred mined patterns.
"""

from repro.analyzer.pattern import Pattern
from repro.core.export import export_patterns
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.workflow.stream import ProductionStream, StreamConfig


def _example_db() -> PatternDB:
    db = PatternDB()
    pattern = Pattern.from_text("%action% from %srcip% port %srcport%", "sshd")
    pattern.support = 42
    pattern.add_example("Accepted password from 192.168.1.5 port 22")
    pattern.add_example("Failed none from 10.0.0.8 port 59404")
    db.upsert(pattern)
    return db


def test_fig3_syslog_ng_rendering(benchmark, table_writer):
    db = _example_db()
    xml = benchmark(export_patterns, db, "syslog-ng")
    assert "@ESTRING:action: @from @IPv4:srcip@ port @NUMBER:srcport@" in xml
    assert "test_message" in xml
    print("\n--- Fig. 3 (syslog-ng patterndb) ---")
    print(xml)


def test_fig4_grok_rendering(benchmark):
    db = _example_db()
    out = benchmark(export_patterns, db, "grok")
    assert (
        'match => {"message" => "%{DATA:action} from %{IP:srcip} port %{INT:srcport}"}'
        in out
    )
    assert '"pattern_id"]' in out
    print("\n--- Fig. 4 (Logstash Grok) ---")
    print(out)


def test_export_throughput_many_patterns(benchmark):
    """Export a few hundred mined patterns (review-time workload)."""
    rtg = SequenceRTG(db=PatternDB())
    stream = ProductionStream(StreamConfig(n_services=60, seed=2))
    rtg.analyze_by_service(list(stream.records(4_000)))
    n_patterns = rtg.db.counts()["patterns"]
    assert n_patterns > 100

    xml = benchmark(export_patterns, rtg.db, "syslog-ng")
    assert xml.count("<rule ") == n_patterns

"""Fig. 7 — matched/unmatched ratio over 60 days of deployment.

Runs the production simulation for the paper's observation window:
bootstrap the hand-maintained patterndb to ~22% coverage (paper: "only
20 to 25% of the log messages were corresponding to an entry in the
pattern database"), then 60 days of routing + batch mining + periodic
review/promotion, with daily template churn.

Shape targets asserted:

* day-1 unmatched fraction in the 70-88% band (paper: 75-80%);
* final unmatched fraction near 15% (paper: "dropped down to
  approximately 15%");
* batch fill time grows as promotions thin the unmatched stream
  (paper §IV: ~15 minutes initially, 25-30 minutes later);
* a single instance keeps pace (analysis time well under the fill time).
"""

from repro.workflow import ProductionSimulation, SimulationConfig, StreamConfig

_HISTORY: list = []


def _config() -> SimulationConfig:
    return SimulationConfig(
        days=60,
        msgs_per_day=(4_200, 6_000),  # paper: 70-100M/day, scaled ~16,000x
        batch_size=600,  # paper: 100,000, same scale
        review_every_days=3,
        promote_min_count=8,
        churn_templates_per_day=5,
        stream=StreamConfig(n_services=241),
        seed=7,
    )


def test_fig7_sixty_days(benchmark, table_writer):
    sim = ProductionSimulation(_config())

    history = benchmark.pedantic(sim.run, rounds=1, iterations=1)
    _HISTORY.extend(history)

    rows = [
        [
            d.day,
            f"{d.unmatched_fraction:.1%}",
            d.n_batches,
            f"{d.analysis_seconds:.2f}s",
            f"{d.batch_fill_minutes:.0f}min",
            d.n_promoted,
            d.patterndb_size,
        ]
        for d in history
        if d.day % 5 == 0 or d.day == 1
    ]
    table_writer(
        "fig7_production.md",
        ["day", "unmatched", "batches", "analysis", "fill time", "promoted", "patterndb"],
        rows,
    )

    first, last = history[0], history[-1]

    # paper: 75-80% unmatched before promotion starts working
    assert 0.70 <= first.unmatched_fraction <= 0.88

    # paper: down to approximately 15% after 60 days
    assert last.unmatched_fraction <= 0.22
    tail = [d.unmatched_fraction for d in history[-10:]]
    assert sum(tail) / len(tail) <= 0.22

    # monotone-ish decline: every 15-day window improves on the previous
    windows = [history[i : i + 15] for i in range(0, 60, 15)]
    means = [sum(d.unmatched_fraction for d in w) / len(w) for w in windows]
    assert all(means[i + 1] < means[i] for i in range(len(means) - 1))

    # §IV: batch fill time grows as the unmatched stream thins
    early_fill = sum(d.batch_fill_minutes for d in history[:10]) / 10
    late_fill = sum(d.batch_fill_minutes for d in history[-10:]) / 10
    assert late_fill > early_fill

    # a single instance keeps pace: daily analysis time is a tiny
    # fraction of the day
    assert max(d.analysis_seconds for d in history) < 120.0

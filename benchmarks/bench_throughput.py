"""Throughput — the §IV capacity claim, quantified.

"With a workload oscillating between 70 and 100 million log messages per
day ... a single instance of Sequence-RTG was enough to keep pace with
the considered workload" while consuming "half the resources of a vCPU
on average".  100M messages/day is ~1,160 messages/second sustained.

These benchmarks measure the three stages' throughput in this pure-
Python reproduction and assert that a single instance still clears the
paper's sustained production rate for the routing stages (scan + parse,
which every message pays), remembering that in the deployed workflow
only the *unmatched* messages ever reach the miner.

The duplicate-aware fast lane (``repro.core.fastpath``) is additionally
gated here: on a duplicate-heavy stream (≥80% repeats — the shape of
real production traffic) the cached scan+parse path must be ≥3× the
uncached baseline, and on an all-unique stream it must not regress by
more than 5%.  Every measurement is also written to
``results/BENCH_throughput.json`` (msgs/s per stage, cache hit rates)
so future PRs can track the performance trajectory machine-readably.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.config import RTGConfig
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.workflow.stream import ProductionStream, StreamConfig

#: 100M msgs/day sustained — the top of the paper's production band
PAPER_RATE_PER_SECOND = 100_000_000 / 86_400

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")
_BENCH_JSON = os.path.join(_RESULTS_DIR, "BENCH_throughput.json")


def _record_bench(section: str, payload: dict) -> None:
    """Merge one section into results/BENCH_throughput.json."""
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    data: dict = {"paper_gate_msgs_per_s": round(PAPER_RATE_PER_SECOND, 1)}
    if os.path.exists(_BENCH_JSON):
        with open(_BENCH_JSON, encoding="utf-8") as fh:
            data = json.load(fh)
    data[section] = payload
    with open(_BENCH_JSON, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _stream(n, seed=31):
    return list(ProductionStream(StreamConfig(n_services=60, seed=seed)).records(n))


def test_scan_throughput(benchmark):
    rtg = SequenceRTG(db=PatternDB())
    records = _stream(4_000)

    def scan_all():
        for record in records:
            rtg.scanner.scan(record.message, service=record.service)

    benchmark(scan_all)
    per_second = len(records) / benchmark.stats.stats.mean
    print(f"\nscan throughput: {per_second:,.0f} msgs/s "
          f"(paper needs {PAPER_RATE_PER_SECOND:,.0f}/s sustained)")
    _record_bench("scan", {"msgs_per_s": round(per_second)})
    assert per_second > PAPER_RATE_PER_SECOND


def test_parse_throughput_against_known_patterns(benchmark):
    records = _stream(4_000)
    rtg = SequenceRTG(db=PatternDB())
    rtg.analyze_by_service(records)  # learn the patterns first
    parsers = {s: rtg.parser_for(s) for s in {r.service for r in records}}

    def parse_all():
        matched = 0
        for record in records:
            scanned = rtg.scanner.scan(record.message, service=record.service)
            if parsers[record.service].match(scanned) is not None:
                matched += 1
        return matched

    matched = benchmark(parse_all)
    assert matched > len(records) * 0.9  # the patterns cover the stream
    per_second = len(records) / benchmark.stats.stats.mean
    print(f"\nscan+parse throughput: {per_second:,.0f} msgs/s "
          f"(paper needs {PAPER_RATE_PER_SECOND:,.0f}/s sustained)")
    _record_bench("scan_parse", {"msgs_per_s": round(per_second)})
    assert per_second > PAPER_RATE_PER_SECOND


def test_mining_batch_latency(benchmark):
    """The miner only sees unmatched messages; the paper reports 7.5 s
    per 100k batch on its VM.  Measure a full analysis batch here and
    report the per-message cost — best of rounds, the same convention
    the smoke benchmarks use, so one noisy round doesn't skew the
    recorded trajectory.  The all-compiled production configuration
    (scanner, parser and analyser backends ``compiled``) is recorded
    alongside the default reference path."""
    from repro.analyzer import AnalyzerConfig
    from repro.parser import ParserConfig
    from repro.scanner import ScannerConfig

    records = _stream(5_000, seed=32)

    def mine():
        rtg = SequenceRTG(db=PatternDB())
        return rtg.analyze_by_service(records)

    result = benchmark.pedantic(mine, rounds=3, iterations=1)
    assert result.n_new_patterns > 0
    seconds = benchmark.stats.stats.min
    print(f"\nmining: {len(records)} msgs in {seconds:.2f}s "
          f"({len(records)/seconds:,.0f} msgs/s)")

    compiled_config = RTGConfig(
        scanner=ScannerConfig(backend="compiled"),
        parser=ParserConfig(backend="compiled"),
        analyzer=AnalyzerConfig(backend="compiled"),
    )
    compiled_best = float("inf")
    for _ in range(3):
        rtg = SequenceRTG(db=PatternDB(), config=compiled_config)
        t0 = time.perf_counter()
        rtg.analyze_by_service(records)
        compiled_best = min(compiled_best, time.perf_counter() - t0)
    print(f"mining (all-compiled): {len(records)} msgs in "
          f"{compiled_best:.2f}s ({len(records)/compiled_best:,.0f} msgs/s)")

    _record_bench("mine", {
        "msgs_per_s": round(len(records) / seconds),
        "compiled_msgs_per_s": round(len(records) / compiled_best),
    })


# ----------------------------------------------------------------------
# Duplicate-aware fast lane gates
# ----------------------------------------------------------------------

def _fastlane_measure(enable_fastpath, duplicate_fraction, n_batches=4,
                      per_batch=3_000, rounds=3, seed=41):
    """Min-of-rounds cold measurement of the scan+parse hot path.

    Each round builds a fresh pipeline, learns the stream's patterns
    from a warmup batch (untimed), then routes *n_batches* consecutive
    batches; the scan+parse stage seconds come from the pipeline's own
    stage timers, so mining time on residual unmatched messages does not
    blur the routing-stage comparison.
    """
    stream = ProductionStream(StreamConfig(
        n_services=40, seed=seed, duplicate_fraction=duplicate_fraction))
    warm = list(stream.records(5_000))
    batches = [list(stream.records(per_batch)) for _ in range(n_batches)]
    n_routed = n_batches * per_batch

    best = float("inf")
    cache_totals: dict[str, int] = {}
    for _ in range(rounds):
        config = RTGConfig(enable_fastpath=enable_fastpath)
        rtg = SequenceRTG(db=PatternDB(), config=config)
        rtg.analyze_by_service(warm)
        seconds = 0.0
        round_cache: dict[str, int] = {}
        for batch in batches:
            result = rtg.analyze_by_service(batch)
            seconds += (result.timings.get("scan", 0.0)
                        + result.timings.get("parse", 0.0))
            for key, value in result.cache.items():
                round_cache[key] = round_cache.get(key, 0) + value
        if seconds < best:
            best = seconds
            cache_totals = round_cache
    return n_routed / best, cache_totals


def _hit_rate(cache: dict[str, int]) -> float:
    served = cache.get("scan_hits", 0) + cache.get("dedup_duplicates", 0)
    total = served + cache.get("scan_misses", 0)
    return served / total if total else 0.0


def test_fastpath_duplicate_heavy_speedup():
    """≥3× cached scan+parse on a ≥80%-repeats stream (ISSUE 1 gate)."""
    fast, cache = _fastlane_measure(True, duplicate_fraction=0.85)
    naive, _ = _fastlane_measure(False, duplicate_fraction=0.85)
    speedup = fast / naive
    hit_rate = _hit_rate(cache)
    print(f"\nduplicate-heavy scan+parse: fastpath {fast:,.0f} msgs/s, "
          f"uncached {naive:,.0f} msgs/s ({speedup:.1f}x, "
          f"{hit_rate:.0%} served without scanning)")
    _record_bench("fastpath_duplicate_heavy", {
        "fast_msgs_per_s": round(fast),
        "naive_msgs_per_s": round(naive),
        "speedup": round(speedup, 2),
        "scan_hit_rate": round(hit_rate, 4),
        "cache": cache,
    })
    assert hit_rate >= 0.8  # the stream really is duplicate-heavy
    assert speedup >= 3.0


def test_fastpath_all_unique_no_regression():
    """The fast lane must not cost >5% on a stream with no repeats."""
    fast, cache = _fastlane_measure(True, duplicate_fraction=0.0)
    naive, _ = _fastlane_measure(False, duplicate_fraction=0.0)
    ratio = naive / fast
    print(f"\nall-unique scan+parse: fastpath {fast:,.0f} msgs/s, "
          f"uncached {naive:,.0f} msgs/s (overhead ratio {ratio:.3f})")
    _record_bench("fastpath_all_unique", {
        "fast_msgs_per_s": round(fast),
        "naive_msgs_per_s": round(naive),
        "naive_over_fast": round(ratio, 3),
        "scan_hit_rate": round(_hit_rate(cache), 4),
    })
    assert ratio <= 1.05

"""Throughput — the §IV capacity claim, quantified.

"With a workload oscillating between 70 and 100 million log messages per
day ... a single instance of Sequence-RTG was enough to keep pace with
the considered workload" while consuming "half the resources of a vCPU
on average".  100M messages/day is ~1,160 messages/second sustained.

These benchmarks measure the three stages' throughput in this pure-
Python reproduction and assert that a single instance still clears the
paper's sustained production rate for the routing stages (scan + parse,
which every message pays), remembering that in the deployed workflow
only the *unmatched* messages ever reach the miner.
"""

from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.workflow.stream import ProductionStream, StreamConfig

#: 100M msgs/day sustained — the top of the paper's production band
PAPER_RATE_PER_SECOND = 100_000_000 / 86_400


def _stream(n, seed=31):
    return list(ProductionStream(StreamConfig(n_services=60, seed=seed)).records(n))


def test_scan_throughput(benchmark):
    rtg = SequenceRTG(db=PatternDB())
    records = _stream(4_000)

    def scan_all():
        for record in records:
            rtg.scanner.scan(record.message, service=record.service)

    benchmark(scan_all)
    per_second = len(records) / benchmark.stats.stats.mean
    print(f"\nscan throughput: {per_second:,.0f} msgs/s "
          f"(paper needs {PAPER_RATE_PER_SECOND:,.0f}/s sustained)")
    assert per_second > PAPER_RATE_PER_SECOND


def test_parse_throughput_against_known_patterns(benchmark):
    records = _stream(4_000)
    rtg = SequenceRTG(db=PatternDB())
    rtg.analyze_by_service(records)  # learn the patterns first
    parsers = {s: rtg.parser_for(s) for s in {r.service for r in records}}

    def parse_all():
        matched = 0
        for record in records:
            scanned = rtg.scanner.scan(record.message, service=record.service)
            if parsers[record.service].match(scanned) is not None:
                matched += 1
        return matched

    matched = benchmark(parse_all)
    assert matched > len(records) * 0.9  # the patterns cover the stream
    per_second = len(records) / benchmark.stats.stats.mean
    print(f"\nscan+parse throughput: {per_second:,.0f} msgs/s "
          f"(paper needs {PAPER_RATE_PER_SECOND:,.0f}/s sustained)")
    assert per_second > PAPER_RATE_PER_SECOND


def test_mining_batch_latency(benchmark):
    """The miner only sees unmatched messages; the paper reports 7.5 s
    per 100k batch on its VM.  Measure a full analysis batch here and
    report the per-message cost."""
    records = _stream(5_000, seed=32)

    def mine():
        rtg = SequenceRTG(db=PatternDB())
        return rtg.analyze_by_service(records)

    result = benchmark.pedantic(mine, rounds=1, iterations=1)
    assert result.n_new_patterns > 0
    seconds = benchmark.stats.stats.mean
    print(f"\nmining: {len(records)} msgs in {seconds:.2f}s "
          f"({len(records)/seconds:,.0f} msgs/s)")

"""Serving-tier smoke gate for CI.

Four tripwires around the network ingest tier, all against the same
duplicate-heavy production stream:

1. **sustained throughput** — a multi-client TCP feed into the warm
   2-worker pool must sustain at least ``SUSTAINED_FLOOR`` of the
   file-fed warm-pool rate over the same records.  The serving tier
   moves records through sockets, frames and shard queues; it must not
   cost the pipeline its paper-scale headroom.
2. **nominal ingest latency** — a paced single client well under
   capacity must see p99 arrival→queue-admission latency below
   ``P99_GATE_S``.  Backpressure exists for overload, not for idling.
3. **explicit shedding** — flooding a deliberately tiny queue with the
   shed policy must refuse a bounded, *non-zero* fraction and mine
   exactly what it accepted: overload is load-shedding, never loss of
   accepted records, and never worker crashes (zero respawns).
4. **zero shed below the high-water mark** — the nominal run must not
   shed anything.

Writes ``results/BENCH_serve.json``.  Deliberately small — a
regression tripwire, not a benchmark.

Usage::

    PYTHONPATH=src python benchmarks/smoke_serve.py
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from pathlib import Path

from repro.core.ingest import StreamIngester
from repro.core.parallel import PersistentParallelSequenceRTG
from repro.core.patterndb import PatternDB
from repro.serve import ListenSpec, ServeConfig, ServeServer
from repro.workflow.stream import ProductionStream, StreamConfig

RESULTS = Path(__file__).parent.parent / "results" / "BENCH_serve.json"

N_MESSAGES = 8_000
BATCH_SIZE = 1_000
N_WORKERS = 2
N_CLIENTS = 4

#: network-fed sustained throughput floor, as a fraction of the
#: file-fed warm-pool rate over the same records
SUSTAINED_FLOOR = 0.8
#: p99 arrival → queue-admission latency gate for the paced run
P99_GATE_S = 0.050
#: paced-run request rate (msgs/s), far below capacity
NOMINAL_RATE = 500
NOMINAL_MESSAGES = 1_000
#: overload run: per-shard queue bound and flood size
OVERLOAD_HIGH_WATER = 200
OVERLOAD_MESSAGES = 5_000


def stream_lines() -> list[str]:
    stream = ProductionStream(
        StreamConfig(n_services=40, seed=41, duplicate_fraction=0.5)
    )
    return list(stream.jsonl(N_MESSAGES))


def measure_file_fed(lines: list[str]) -> float:
    """File-fed warm-pool msgs/s over the full run (spawn excluded)."""
    with PersistentParallelSequenceRTG(
        db=PatternDB(), n_workers=N_WORKERS
    ) as engine:
        ingester = StreamIngester(batch_size=BATCH_SIZE)
        began = time.perf_counter()
        for _ in engine.process_stream(ingester.batches_pipelined(lines)):
            pass
        seconds = time.perf_counter() - began
    return len(lines) / seconds


async def flood_clients(host: str, port: int, lines: list[str]) -> None:
    """N concurrent TCP clients, each pushing its slice flat out."""

    async def client(slice_lines: list[str]) -> None:
        reader, writer = await asyncio.open_connection(host, port)
        payload = ("\n".join(slice_lines) + "\n").encode()
        for offset in range(0, len(payload), 65536):
            writer.write(payload[offset:offset + 65536])
            await writer.drain()
        writer.close()
        await writer.wait_closed()

    per_client = (len(lines) + N_CLIENTS - 1) // N_CLIENTS
    await asyncio.gather(
        *(
            client(lines[i:i + per_client])
            for i in range(0, len(lines), per_client)
        )
    )


async def paced_client(host: str, port: int, lines: list[str], rate: float) -> None:
    """One client sending line by line at a fixed rate."""
    reader, writer = await asyncio.open_connection(host, port)
    interval = 1.0 / rate
    next_send = time.perf_counter()
    for line in lines:
        writer.write(line.encode() + b"\n")
        await writer.drain()
        next_send += interval
        delay = next_send - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
    writer.close()
    await writer.wait_closed()


def serve_once(
    config_overrides: dict, run, expected_frames: int
) -> tuple[ServeServer, object, float]:
    """Run one ServeServer over a fresh warm pool; *run(host, port)* is
    the client-side coroutine.  Returns (server, pool telemetry,
    seconds from first client byte to fully-mined drain) — pool spawn
    is excluded, matching the file-fed baseline.

    The clients finish when their last byte is *written*; the server is
    still reading kernel buffers then, so drain only once every
    expected frame has been seen.
    """
    with PersistentParallelSequenceRTG(
        db=PatternDB(), n_workers=N_WORKERS
    ) as engine:
        config = dict(
            listen=(ListenSpec(scheme="tcp", host="127.0.0.1", port=0),),
            batch_size=BATCH_SIZE,
            dispatch_timeout_s=0.2,
        )
        config.update(config_overrides)
        server = ServeServer(engine, ServeConfig(**config))
        endpoints = server.start_in_background()
        host, port = dict(endpoints)["tcp"].rsplit(":", 1)
        began = time.perf_counter()
        asyncio.run(run(host, int(port)))
        deadline = time.monotonic() + 120
        while (
            server.stats.frames < expected_frames
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        server.shutdown()
        seconds = time.perf_counter() - began
        telemetry = dict(engine.telemetry)
    return server, telemetry, seconds


def main() -> int:
    lines = stream_lines()

    file_rate = measure_file_fed(lines)
    print(f"file-fed warm pool: {file_rate:,.0f} msgs/s")

    # 1. sustained multi-client throughput, wall clock from first byte
    # to fully-mined drain (same records, same batch size)
    server, telemetry, seconds = serve_once(
        {}, lambda host, port: flood_clients(host, port, lines), N_MESSAGES
    )
    net_rate = server.stats.records_mined / seconds
    sustained_ok = (
        server.stats.records_mined == N_MESSAGES
        and net_rate >= SUSTAINED_FLOOR * file_rate
    )
    print(
        f"network-fed ({N_CLIENTS} clients): {net_rate:,.0f} msgs/s "
        f"(floor: {SUSTAINED_FLOOR * file_rate:,.0f} = "
        f"{SUSTAINED_FLOOR:.0%} of file-fed) — "
        f"{'OK' if sustained_ok else 'FAIL'}"
    )

    # 2+4. paced nominal run: p99 admission latency, zero shed
    server, _, _ = serve_once(
        {},
        lambda host, port: paced_client(
            host, port, lines[:NOMINAL_MESSAGES], NOMINAL_RATE
        ),
        NOMINAL_MESSAGES,
    )
    p99_s = server.stats.p99()
    nominal_ok = (
        p99_s < P99_GATE_S
        and server.stats.shed == 0
        and server.stats.records_mined == NOMINAL_MESSAGES
    )
    print(
        f"nominal ({NOMINAL_RATE} msgs/s paced): p99 admission "
        f"{p99_s * 1e3:.3f} ms (gate: {P99_GATE_S * 1e3:.0f} ms), "
        f"shed {server.stats.shed} — {'OK' if nominal_ok else 'FAIL'}"
    )

    # 3. overload run: tiny queue, shed policy, dispatcher held back so
    # the flood has to hit the high-water mark
    server, telemetry, _ = serve_once(
        {
            "batch_size": 100_000,
            "high_water": OVERLOAD_HIGH_WATER,
            "overload": "shed",
            "dispatch_timeout_s": 30,
        },
        lambda host, port: flood_clients(
            host, port, lines[:OVERLOAD_MESSAGES]
        ),
        OVERLOAD_MESSAGES,
    )
    shed_fraction = server.stats.shed / OVERLOAD_MESSAGES
    capacity = N_WORKERS * OVERLOAD_HIGH_WATER
    overload_ok = (
        0 < server.stats.shed
        and server.stats.accepted <= capacity
        and server.stats.records_mined == server.stats.accepted
        and telemetry["respawns"] == 0
    )
    print(
        f"overload (shed, high-water {OVERLOAD_HIGH_WATER}/shard): "
        f"accepted {server.stats.accepted}, shed {server.stats.shed} "
        f"({shed_fraction:.1%}), mined == accepted "
        f"{server.stats.records_mined == server.stats.accepted}, "
        f"respawns {telemetry['respawns']} — "
        f"{'OK' if overload_ok else 'FAIL'}"
    )

    RESULTS.parent.mkdir(exist_ok=True)
    data: dict = {}
    if RESULTS.exists():
        data = json.loads(RESULTS.read_text())
    data.update(
        {
            "gates": {
                "sustained_floor": SUSTAINED_FLOOR,
                "p99_latency_s": P99_GATE_S,
            },
            "file_fed_msgs_per_s": round(file_rate),
            "network_fed_msgs_per_s": round(net_rate),
            "n_clients": N_CLIENTS,
            "nominal": {
                "rate_msgs_per_s": NOMINAL_RATE,
                "p99_admission_ms": round(p99_s * 1e3, 4),
                "shed": 0 if nominal_ok else -1,
            },
            "overload": {
                "high_water": OVERLOAD_HIGH_WATER,
                "flood_messages": OVERLOAD_MESSAGES,
                "accepted": server.stats.accepted,
                "shed": server.stats.shed,
                "shed_fraction": round(shed_fraction, 4),
                "respawns": telemetry["respawns"],
            },
        }
    )
    RESULTS.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")

    return 0 if (sustained_ok and nominal_ok and overload_ok) else 1


if __name__ == "__main__":
    sys.exit(main())

"""Stream-mode smoke gate for CI.

Three tripwires around the online execution mode:

1. **p99 per-message latency** — a `StreamDriver` fed the production
   simulation one record at a time must keep its p99 per-message
   latency (scan+parse+persist amortised over the micro-batch) under
   ``P99_GATE_S``.  This is the stream mode's reason to exist: batch
   mode's per-message latency is the whole batch accumulation period.

2. **batch regression** — the incremental-core refactor made batch mode
   a special case of the evolving analyser; serial cold-mine throughput
   must stay within ``BATCH_REGRESSION`` of the recorded baseline in
   ``results/BENCH_throughput.json`` (``stages.reference.mine_msgs_per_s``).

3. **convergence** — the streaming pattern set on the 60-day production
   simulation must agree with single-run batch output on at least
   ``CONVERGENCE_GATE`` of messages by template.

Writes ``results/BENCH_stream.json``.  Deliberately small — a
regression tripwire, not a benchmark.

Usage::

    PYTHONPATH=src python benchmarks/smoke_stream.py
"""

from __future__ import annotations

import json
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.core.config import RTGConfig, StreamingConfig
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.parser.parser import Parser
from repro.scanner import build_scanner
from repro.workflow.stream import ProductionStream, StreamConfig

RESULTS = Path(__file__).parent.parent / "results" / "BENCH_stream.json"
THROUGHPUT_BASELINE = RESULTS.parent / "BENCH_throughput.json"

NOW = datetime(2026, 1, 1, tzinfo=timezone.utc)

#: p99 per-message latency gate (seconds) — generous against CI-runner
#: jitter; production numbers land well under a millisecond
P99_GATE_S = 0.050
#: serial cold-mine throughput must stay within 5% of the baseline
BATCH_REGRESSION = 0.95
#: stream/batch template agreement on the 60-day simulation
CONVERGENCE_GATE = 0.95

#: the convergence simulation (mirrors tests/core/test_streaming.py)
N_DAYS, PER_DAY = 60, 150

STREAMING = StreamingConfig(
    micro_batch_size=25,
    flush_pending=512,
    split_min_matches=256,
)


def measure_stream() -> tuple[dict, "SequenceRTG", list]:
    """Drive the 60-day simulation through a StreamDriver; report
    latency quantiles and maintenance counters."""
    source = ProductionStream(
        StreamConfig(n_services=8, seed=13, duplicate_fraction=0.3)
    )
    days = source.days(N_DAYS, PER_DAY, churn_per_day=1)
    rtg = SequenceRTG(
        db=PatternDB(), config=RTGConfig(mode="stream", streaming=STREAMING)
    )
    driver = rtg.stream_driver()
    began = time.perf_counter()
    for day in days:
        driver.feed(day, now=NOW)
    driver.close()
    seconds = time.perf_counter() - began
    stats = driver.stats
    report = {
        "n_messages": stats.n_messages,
        "msgs_per_s": round(stats.n_messages / seconds),
        "p50_latency_ms": round(driver.latency_quantile(0.5) * 1e3, 4),
        "p99_latency_ms": round(driver.p99() * 1e3, 4),
        "n_micro_batches": stats.n_micro_batches,
        "n_flushes": stats.n_flushes,
        "n_new_patterns": stats.n_new_patterns,
        "n_drift_merges": stats.n_drift_merges,
        "n_drift_splits": stats.n_drift_splits,
        "n_evicted": stats.n_evicted,
    }
    return report, rtg, days


def measure_convergence(stream_rtg: SequenceRTG, days: list) -> float:
    """Template agreement between the streamed pattern set and batch
    output over the full horizon (both sides parse every record)."""
    records = [record for day in days for record in day]
    batch_rtg = SequenceRTG(db=PatternDB())
    batch_rtg.analyze_by_service(records, now=NOW)

    scanner = build_scanner()
    batch_parsers: dict[str, Parser] = {}
    stream_parsers: dict[str, Parser] = {}
    agree = 0
    for record in records:
        service = record.service
        batch_parser = batch_parsers.get(service)
        if batch_parser is None:
            batch_parser = batch_parsers[service] = Parser(
                batch_rtg.db.load_service(service)
            )
            stream_parsers[service] = Parser(
                stream_rtg.db.load_service(service)
            )
        scanned = scanner.scan(record.message, service=service)
        batch_hit = batch_parser.match(scanned)
        stream_hit = stream_parsers[service].match(scanned)
        if (batch_hit is None) == (stream_hit is None) and (
            batch_hit is None
            or batch_hit.pattern.text == stream_hit.pattern.text
        ):
            agree += 1
    return agree / len(records)


def measure_batch_mine() -> int:
    """Serial cold-mine msgs/s, same corpus as smoke_throughput."""
    records = list(
        ProductionStream(StreamConfig(n_services=60, seed=32)).records(5_000)
    )
    best = float("inf")
    for _ in range(3):
        rtg = SequenceRTG(db=PatternDB())
        t0 = time.perf_counter()
        result = rtg.analyze_by_service(records)
        best = min(best, time.perf_counter() - t0)
        assert result.n_new_patterns > 0
    return round(len(records) / best)


def batch_baseline() -> int | None:
    if not THROUGHPUT_BASELINE.exists():
        return None
    data = json.loads(THROUGHPUT_BASELINE.read_text())
    return data.get("stages", {}).get("reference", {}).get("mine_msgs_per_s")


def main() -> int:
    stream_report, stream_rtg, days = measure_stream()
    p99_s = stream_report["p99_latency_ms"] / 1e3
    p99_ok = p99_s < P99_GATE_S
    print(
        f"stream: {stream_report['msgs_per_s']:,} msgs/s, "
        f"p99 {stream_report['p99_latency_ms']:.3f} ms "
        f"(gate: {P99_GATE_S * 1e3:.0f} ms) — {'OK' if p99_ok else 'FAIL'}"
    )

    convergence = measure_convergence(stream_rtg, days)
    convergence_ok = convergence >= CONVERGENCE_GATE
    print(
        f"convergence: {convergence:.3f} template agreement over "
        f"{N_DAYS} days (gate: {CONVERGENCE_GATE}) — "
        f"{'OK' if convergence_ok else 'FAIL'}"
    )

    mine_rate = measure_batch_mine()
    baseline = batch_baseline()
    if baseline:
        floor = BATCH_REGRESSION * baseline
        batch_ok = mine_rate >= floor
        print(
            f"batch mine: {mine_rate:,} msgs/s "
            f"(floor: {floor:,.0f} = {BATCH_REGRESSION:.0%} of baseline "
            f"{baseline:,}) — {'OK' if batch_ok else 'FAIL'}"
        )
    else:
        batch_ok = True
        print(f"batch mine: {mine_rate:,} msgs/s (no recorded baseline)")

    RESULTS.parent.mkdir(exist_ok=True)
    data: dict = {}
    if RESULTS.exists():
        data = json.loads(RESULTS.read_text())
    data.update(
        {
            "gates": {
                "p99_latency_s": P99_GATE_S,
                "batch_regression": BATCH_REGRESSION,
                "convergence": CONVERGENCE_GATE,
            },
            "stream": stream_report,
            "convergence": round(convergence, 4),
            "batch_mine_msgs_per_s": mine_rate,
            "batch_baseline_msgs_per_s": baseline,
        }
    )
    RESULTS.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")

    return 0 if p99_ok and convergence_ok and batch_ok else 1


if __name__ == "__main__":
    sys.exit(main())

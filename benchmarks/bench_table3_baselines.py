"""Table III — accuracy of the four top baselines (AEL/IPLoM/Spell/Drain).

Reruns the Zhu et al. comparison on the synthetic datasets with the
reimplemented baselines, printing measured accuracy next to the paper's
Table III values.

Shape targets asserted:

* Drain ranks best on average (the paper's headline finding);
* the full ordering Drain > IPLoM/AEL > Spell holds on average;
* every baseline average lands within ±0.08 of the paper's value.
"""

import pytest

from repro.baselines import ALL_BASELINES
from repro.loghub import DATASET_NAMES, evaluate_baseline, load_dataset

#: Table III averages from the paper.
PAPER_AVG = {"AEL": 0.754, "IPLoM": 0.777, "Spell": 0.751, "Drain": 0.865}

#: Per-dataset values from the paper's Table III.
PAPER = {
    "HDFS": (0.998, 1.0, 1.0, 0.998),
    "Hadoop": (0.538, 0.954, 0.778, 0.948),
    "Spark": (0.905, 0.920, 0.905, 0.920),
    "Zookeeper": (0.921, 0.962, 0.964, 0.967),
    "OpenStack": (0.758, 0.871, 0.764, 0.733),
    "BGL": (0.758, 0.939, 0.787, 0.963),
    "HPC": (0.903, 0.824, 0.654, 0.887),
    "Thunderbird": (0.941, 0.663, 0.844, 0.955),
    "Windows": (0.690, 0.567, 0.989, 0.997),
    "Linux": (0.673, 0.672, 0.605, 0.690),
    "Mac": (0.764, 0.673, 0.757, 0.787),
    "Android": (0.682, 0.712, 0.919, 0.911),
    "HealthApp": (0.568, 0.822, 0.639, 0.780),
    "Apache": (1.0, 1.0, 1.0, 1.0),
    "OpenSSH": (0.538, 0.802, 0.554, 0.788),
    "Proxifier": (0.518, 0.515, 0.527, 0.527),
}

ORDER = ("AEL", "IPLoM", "Spell", "Drain")

_SCORES: dict[tuple[str, str], float] = {}


@pytest.mark.parametrize("algo", ORDER)
def test_table3_algorithm(benchmark, algo):
    datasets = [load_dataset(name) for name in DATASET_NAMES]

    def evaluate():
        return [
            evaluate_baseline(ALL_BASELINES[algo](), dataset)
            for dataset in datasets
        ]

    scores = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    for name, score in zip(DATASET_NAMES, scores):
        _SCORES[(name, algo)] = score
        assert 0.0 <= score <= 1.0


def test_table3_summary(table_writer, benchmark):
    if len(_SCORES) < len(ORDER) * len(DATASET_NAMES):
        pytest.skip("per-algorithm evaluations did not run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = []
    for name in DATASET_NAMES:
        row = [name]
        for i, algo in enumerate(ORDER):
            row.append(f"{_SCORES[(name, algo)]:.3f} ({PAPER[name][i]:.3f})")
        rows.append(row)
    averages = {
        algo: sum(_SCORES[(n, algo)] for n in DATASET_NAMES) / 16 for algo in ORDER
    }
    rows.append(
        ["Average"]
        + [f"{averages[a]:.3f} ({PAPER_AVG[a]:.3f})" for a in ORDER]
    )
    table_writer(
        "table3_baselines.md",
        ["Dataset"] + [f"{a} (paper)" for a in ORDER],
        rows,
    )

    # Drain is the best average performer — the paper's headline result
    assert max(averages, key=averages.get) == "Drain"
    # Spell trails the other three, as in the paper
    assert min(averages, key=averages.get) == "Spell"
    # absolute averages stay in the paper's neighbourhood
    for algo in ORDER:
        assert abs(averages[algo] - PAPER_AVG[algo]) < 0.08, (algo, averages[algo])

"""Analyser-backend smoke gate for CI.

Compares the compiled flat-arena analyser against the reference
per-node analysis trie on (service, token-count) partitions built from
the seeded production stream — exactly the shape ``AnalyzeStage`` feeds
the analyser — and gates on the compiled backend's contract:

* **speed** — ≥2× analysed messages/s over the reference backend across
  the full partition sweep;
* **memory** — ≤5% max-RSS growth (each backend is measured in its own
  subprocess via ``resource.getrusage``, so the parent's allocations
  don't pollute the comparison);
* **exactness** — zero pattern divergences (text, support, examples,
  token structure, trie-node telemetry) on the corpus partitions with
  enrichment on and off and on the weighted (deduplicated) path.

Writes the measurements to ``results/BENCH_analyzer.json``.

Deliberately small (a few seconds end to end) — this is a regression
tripwire, not a benchmark.

Usage::

    PYTHONPATH=src python benchmarks/smoke_analyzer.py
"""

from __future__ import annotations

import json
import resource
import subprocess
import sys
import time
from pathlib import Path

from repro.analyzer import Analyzer, AnalyzerConfig, build_analyzer
from repro.analyzer.compiled import CompiledAnalyzer
from repro.scanner import Scanner
from repro.workflow.stream import ProductionStream, StreamConfig

RESULTS = Path(__file__).parent.parent / "results" / "BENCH_analyzer.json"

SPEEDUP_GATE = 2.0
RSS_GATE = 1.05  # ≤5% growth

#: analysis corpus size — every message is unmatched (no known patterns),
#: the analyse stage's worst case and the paper's cold-batch scenario
N_MESSAGES = 20_000
#: the exactness sweep mines every partition twice per config variation,
#: so it runs on a smaller slice
N_DIVERGENCE = 5_000
REPEATS = 3
#: subprocess invocations per backend; speed takes the best run, RSS
#: the smallest (each run's peak carries allocator noise upward only)
N_RUNS = 3


def partitions(n: int):
    """Scan the stream and partition per (service, token count), the
    way the engine feeds the analyse stage.  A moderate duplicate
    fraction keeps the corpus realistic without letting the compiled
    backend's in-batch grouping dominate the arena comparison."""
    stream = ProductionStream(
        StreamConfig(n_services=40, seed=41, duplicate_fraction=0.25)
    )
    scanner = Scanner()
    by_key: dict[tuple[str, int], list] = {}
    for record in stream.records(n):
        scanned = scanner.scan(record.message, service=record.service)
        by_key.setdefault(
            (record.service, scanned.token_count()), []
        ).append(scanned)
    return [by_key[key] for key in sorted(by_key)]


def measure_backend(backend: str) -> dict:
    """Analysed messages/s (best of REPEATS) and max RSS for one backend."""
    parts = partitions(N_MESSAGES)
    analyzer = build_analyzer(AnalyzerConfig(backend=backend))
    # warm memos, arena and code paths before timing
    for partition in parts[:5]:
        analyzer.analyze(partition)
    n_messages = sum(len(p) for p in parts)
    n_patterns = 0
    peak_nodes = 0
    best = 0.0
    for _ in range(REPEATS):
        n_patterns = 0
        peak_nodes = 0
        t0 = time.perf_counter()
        for partition in parts:
            n_patterns += len(analyzer.analyze(partition))
            if analyzer.last_trie_nodes > peak_nodes:
                peak_nodes = analyzer.last_trie_nodes
        elapsed = time.perf_counter() - t0
        best = max(best, n_messages / elapsed)
    return {
        "backend": backend,
        "messages": n_messages,
        "partitions": len(parts),
        "patterns": n_patterns,
        "peak_trie_nodes": peak_nodes,
        "messages_per_second": best,
        "max_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def measure_in_subprocess(backend: str) -> dict:
    """Run one backend's measurement in a fresh interpreter."""
    proc = subprocess.run(
        [sys.executable, __file__, "--backend", backend],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout)


def best_of_runs(backend: str) -> dict:
    runs = [measure_in_subprocess(backend) for _ in range(N_RUNS)]
    best = max(runs, key=lambda r: r["messages_per_second"])
    best["max_rss_kb"] = min(r["max_rss_kb"] for r in runs)
    return best


def fingerprint(pattern) -> tuple:
    return (
        pattern.text,
        pattern.service,
        pattern.support,
        tuple(pattern.examples),
        tuple(
            (t.is_variable, t.text, str(t.var_class), t.name, t.is_space_before)
            for t in pattern.tokens
        ),
    )


def count_divergences() -> int:
    """Pattern divergences across partitions, config modes and the
    weighted (deduplicated fast-lane) insertion path."""
    parts = partitions(N_DIVERGENCE)
    divergences = 0
    for enrich in (True, False):
        ref = Analyzer(AnalyzerConfig(enrich=enrich))
        comp = CompiledAnalyzer(AnalyzerConfig(backend="compiled", enrich=enrich))
        for partition in parts:
            a = ref.analyze(partition)
            b = comp.analyze(partition)
            if ref.last_trie_nodes != comp.last_trie_nodes:
                divergences += 1
            if [fingerprint(p) for p in a] != [fingerprint(p) for p in b]:
                divergences += 1
    # weighted path: distinct messages with multiplicities must mine the
    # per-occurrence result on both backends
    ref = Analyzer(AnalyzerConfig())
    comp = CompiledAnalyzer(AnalyzerConfig(backend="compiled"))
    for partition in parts:
        seen: dict[str, int] = {}
        uniques = []
        for msg in partition:
            if msg.original not in seen:
                seen[msg.original] = 0
                uniques.append(msg)
            seen[msg.original] += 1
        counts = [seen[m.original] for m in uniques]
        expected = [fingerprint(p) for p in ref.analyze(partition)]
        if expected != [
            fingerprint(p) for p in comp.analyze(uniques, counts=counts)
        ]:
            divergences += 1
    return divergences


def main() -> int:
    if len(sys.argv) == 3 and sys.argv[1] == "--backend":
        print(json.dumps(measure_backend(sys.argv[2])))
        return 0

    reference = best_of_runs("reference")
    compiled = best_of_runs("compiled")
    divergences = count_divergences()

    speedup = compiled["messages_per_second"] / reference["messages_per_second"]
    rss_ratio = compiled["max_rss_kb"] / reference["max_rss_kb"]

    speed_ok = speedup >= SPEEDUP_GATE
    rss_ok = rss_ratio <= RSS_GATE
    exact_ok = divergences == 0
    ok = speed_ok and rss_ok and exact_ok

    report = {
        "reference": reference,
        "compiled": compiled,
        "speedup": speedup,
        "speedup_gate": SPEEDUP_GATE,
        "rss_ratio": rss_ratio,
        "rss_gate": RSS_GATE,
        "divergences": divergences,
        "ok": ok,
    }
    RESULTS.parent.mkdir(exist_ok=True)
    RESULTS.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(
        f"analyze throughput: reference "
        f"{reference['messages_per_second']:,.0f} msg/s, "
        f"compiled {compiled['messages_per_second']:,.0f} msg/s — "
        f"{speedup:.2f}x (gate: ≥{SPEEDUP_GATE}x) — "
        f"{'OK' if speed_ok else 'FAIL'}"
    )
    print(
        f"max RSS: reference {reference['max_rss_kb']:,} kB, "
        f"compiled {compiled['max_rss_kb']:,} kB — "
        f"{rss_ratio:.3f}x (gate: ≤{RSS_GATE}x) — "
        f"{'OK' if rss_ok else 'FAIL'}"
    )
    print(
        f"equivalence: {divergences} divergences on partitions, "
        f"enrich on/off + weighted path — {'OK' if exact_ok else 'FAIL'}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

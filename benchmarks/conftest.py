"""Shared benchmark fixtures.

Every benchmark regenerates one table or figure of the paper and, in
addition to the pytest-benchmark timing, writes the measured values next
to the paper's values into ``results/`` so EXPERIMENTS.md can be checked
against fresh runs.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def table_writer(results_dir):
    """Write a Markdown table into results/ and echo it to stdout."""

    def write(name: str, header: list[str], rows: list[list]) -> str:
        path = os.path.join(results_dir, name)
        lines = ["| " + " | ".join(header) + " |",
                 "|" + "|".join("---" for _ in header) + "|"]
        lines += ["| " + " | ".join(str(c) for c in row) + " |" for row in rows]
        text = "\n".join(lines) + "\n"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"\n--- {name} ---")
        print(text)
        return path

    return write

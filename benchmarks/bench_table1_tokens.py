"""Table I — typical log elements and their data types.

Regenerates the paper's element taxonomy by scanning a corpus covering
every row of Table I and reporting the type the scanner assigns, and
benchmarks single-pass scanning throughput on realistic mixed lines.
"""

from repro.scanner import Scanner

SC = Scanner()

# (Table I element, example, paper data type)
ELEMENTS = [
    ("Date and Time stamps", "2021-09-14 08:12:33", "DateTime"),
    ("MAC addresses", "00:1B:44:11:3A:B7", "Hexadecimal"),
    ("IPv6 addresses", "fe80::1ff:fe23:4567:890a", "Hexadecimal"),
    ("Port numbers", "8080", "Integer"),
    ("Line numbers and counts", "148", "Integer"),
    ("Decimal numbers", "3.14159", "Float"),
    ("Duration", "00:01", "Text/Number"),
    ("Uids and machine identifiers", "blk_38865049064139660", "Text/Integer"),
    ("IPv4 addresses", "192.168.1.5", "Text"),
    ("Words, Brackets, and Quotes", "connection", "Text"),
    ("Punctuation and control characters", ";", "Text"),
    ("Email addresses", "ops@example.com", "Text"),
    ("URLs with/without query strings", "https://example.com/q?a=1", "Text"),
    ("Host names and Protocols", "node01.example.com", "Text"),
    ("Paths", "/var/log/messages", "Text"),
    ("Non-English characters", "café", "Text"),
    ("Full SQL request queries", "SELECT", "Text"),
    ("Key/value pairs in many formats", "user=root", "Text"),
]

_EXPECTED = {
    "Date and Time stamps": "time",
    "MAC addresses": "mac",
    "IPv6 addresses": "ipv6",
    "Port numbers": "integer",
    "Line numbers and counts": "integer",
    "Decimal numbers": "float",
    "Duration": "time",
    "IPv4 addresses": "ipv4",
    "URLs with/without query strings": "url",
}

MIXED_LINES = [
    "Jan 12 06:26:19 server sshd[24208]: Failed password for invalid user "
    "admin from 52.80.34.196 port 59404 ssh2",
    "081109 203615 148 INFO dfs.DataNode$PacketResponder: PacketResponder 1 "
    "for block blk_38865049064139660 terminating",
    "mac 00:1B:44:11:3A:B7 via fe80::1ff:fe23:4567:890a rate 3.25 "
    "url http://example.com/x?y=1 user=root done",
] * 10


def test_table1_element_types(table_writer, benchmark):
    benchmark(lambda: [SC.scan(example) for _, example, _ in ELEMENTS])
    rows = []
    for element, example, paper_type in ELEMENTS:
        token = SC.scan(example).tokens[0]
        rows.append([element, example, paper_type, token.type.value])
        expected = _EXPECTED.get(element, "literal")
        assert token.type.value == expected, (element, token.type.value)
    table_writer(
        "table1_elements.md",
        ["Element", "Example", "Paper data type", "Scanner token type"],
        rows,
    )


def test_scan_throughput_mixed_lines(benchmark):
    """Single-pass scanning speed on realistic mixed production lines."""

    def scan_all():
        for line in MIXED_LINES:
            SC.scan(line)

    benchmark(scan_all)

"""Parser-backend smoke gate for CI.

Compares the compiled table-driven matcher against the reference
parse-trie DFS on pattern sets mined from the seeded production stream,
and gates on the compiled backend's contract:

* **speed** — ≥2× parsed messages/s over the reference backend on the
  batch (``match_many``) path the engine actually uses;
* **memory** — ≤5% max-RSS growth (each backend is measured in its own
  subprocess via ``resource.getrusage``, so the parent's allocations
  don't pollute the comparison);
* **exactness** — zero match divergences (winner, fields, static count)
  on the corpus plus mutations, with enrichment on and off.

Writes the measurements to ``results/BENCH_parser.json``.

Deliberately small (a few seconds end to end) — this is a regression
tripwire, not a benchmark.

Usage::

    PYTHONPATH=src python benchmarks/smoke_parser.py
"""

from __future__ import annotations

import json
import random
import resource
import subprocess
import sys
import time
from pathlib import Path

from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.parser import Parser, ParserConfig, build_parser
from repro.parser.compiled import CompiledParser
from repro.scanner import Scanner
from repro.workflow.stream import ProductionStream, StreamConfig

RESULTS = Path(__file__).parent.parent / "results" / "BENCH_parser.json"

SPEEDUP_GATE = 2.0
RSS_GATE = 1.05  # ≤5% growth

#: matching corpus size — sized so the one-time compilation cost (match
#: programs + frontier tables, a few hundred kB) is measured against a
#: realistic batch footprint rather than dominating a toy baseline
N_MESSAGES = 24_000
#: records mined to build the pattern sets (same stream, same seed in
#: every subprocess, so all measurements parse against identical sets)
N_MINE = 6_000
#: the exactness sweep matches every message twice per enrichment mode,
#: so it runs on a smaller slice
N_DIVERGENCE = 6_000
REPEATS = 3
#: subprocess invocations per backend; speed takes the best run, RSS
#: the smallest (each run's peak carries allocator noise upward only)
N_RUNS = 3


def records(n: int):
    # duplicate_fraction below the stream default: in-batch duplicates
    # are answered by the shared signature-dedup lane in ``match_many``,
    # identical for both backends, so a duplicate-heavy corpus would
    # measure dict hashing rather than the matchers under comparison
    stream = ProductionStream(
        StreamConfig(n_services=40, seed=41, duplicate_fraction=0.25)
    )
    return list(stream.records(n))


def mined_db() -> PatternDB:
    rtg = SequenceRTG(db=PatternDB())
    rtg.analyze_by_service(records(N_MINE))
    return rtg.db


def scanned_by_service(n: int):
    scanner = Scanner()
    groups: dict[str, list] = {}
    for record in records(n):
        groups.setdefault(record.service, []).append(
            scanner.scan(record.message, service=record.service)
        )
    return groups


def measure_backend(backend: str) -> dict:
    """Parsed messages/s (best of REPEATS) and max RSS for one backend."""
    db = mined_db()
    config = ParserConfig(backend=backend)
    groups = scanned_by_service(N_MESSAGES)
    parsers = {
        service: build_parser(db.load_service(service), config)
        for service in groups
    }
    n_patterns = sum(len(p) for p in parsers.values())
    # warm caches, frontier tables and code paths before timing
    for service, scanned in groups.items():
        parsers[service].match_many(scanned[:100])
    n_messages = sum(len(scanned) for scanned in groups.values())
    matched = 0
    best = 0.0
    for _ in range(REPEATS):
        matched = 0
        t0 = time.perf_counter()
        for service, scanned in groups.items():
            hits = parsers[service].match_many(scanned)
            matched += sum(1 for h in hits if h is not None)
        elapsed = time.perf_counter() - t0
        best = max(best, n_messages / elapsed)
    return {
        "backend": backend,
        "messages": n_messages,
        "patterns": n_patterns,
        "matched": matched,
        "messages_per_second": best,
        "max_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def measure_in_subprocess(backend: str) -> dict:
    """Run one backend's measurement in a fresh interpreter."""
    proc = subprocess.run(
        [sys.executable, __file__, "--backend", backend],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout)


def best_of_runs(backend: str) -> dict:
    runs = [measure_in_subprocess(backend) for _ in range(N_RUNS)]
    best = max(runs, key=lambda r: r["messages_per_second"])
    best["max_rss_kb"] = min(r["max_rss_kb"] for r in runs)
    return best


def mutated(messages: list[str], rng: random.Random) -> list[str]:
    """Word-drop/swap mutations pushing matches across length buckets
    and onto near-miss patterns (the divergence-prone paths)."""
    out = []
    for message in messages:
        words = message.split()
        if len(words) < 2:
            continue
        i = rng.randrange(len(words))
        out.append(" ".join(words[:i] + words[i + 1:]))
        j = rng.randrange(len(words))
        words[i], words[j] = words[j], words[i]
        out.append(" ".join(words))
    return out


def count_divergences() -> int:
    """Match divergences across the corpus, mutations and enrich modes."""
    db = mined_db()
    scanner = Scanner()
    rng = random.Random(97)
    groups: dict[str, list[str]] = {}
    for record in records(N_DIVERGENCE):
        groups.setdefault(record.service, []).append(record.message)
    divergences = 0
    for service, messages in groups.items():
        patterns = db.load_service(service)
        probes = messages + mutated(messages, rng)
        for enrich in (True, False):
            ref = Parser(patterns, enrich=enrich)
            comp = CompiledParser(patterns, enrich=enrich)
            for message in probes:
                scanned = scanner.scan(message, service=service)
                a, b = ref.match(scanned), comp.match(scanned)
                if a is None or b is None:
                    divergences += a is not b
                elif (
                    a.pattern is not b.pattern
                    or a.fields != b.fields
                    or a.static_matches != b.static_matches
                ):
                    divergences += 1
    return divergences


def main() -> int:
    if len(sys.argv) == 3 and sys.argv[1] == "--backend":
        print(json.dumps(measure_backend(sys.argv[2])))
        return 0

    reference = best_of_runs("reference")
    compiled = best_of_runs("compiled")
    divergences = count_divergences()

    speedup = compiled["messages_per_second"] / reference["messages_per_second"]
    rss_ratio = compiled["max_rss_kb"] / reference["max_rss_kb"]

    speed_ok = speedup >= SPEEDUP_GATE
    rss_ok = rss_ratio <= RSS_GATE
    exact_ok = divergences == 0
    ok = speed_ok and rss_ok and exact_ok

    report = {
        "reference": reference,
        "compiled": compiled,
        "speedup": speedup,
        "speedup_gate": SPEEDUP_GATE,
        "rss_ratio": rss_ratio,
        "rss_gate": RSS_GATE,
        "divergences": divergences,
        "ok": ok,
    }
    RESULTS.parent.mkdir(exist_ok=True)
    RESULTS.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(
        f"parse throughput: reference "
        f"{reference['messages_per_second']:,.0f} msg/s, "
        f"compiled {compiled['messages_per_second']:,.0f} msg/s — "
        f"{speedup:.2f}x (gate: ≥{SPEEDUP_GATE}x) — "
        f"{'OK' if speed_ok else 'FAIL'}"
    )
    print(
        f"max RSS: reference {reference['max_rss_kb']:,} kB, "
        f"compiled {compiled['max_rss_kb']:,} kB — "
        f"{rss_ratio:.3f}x (gate: ≤{RSS_GATE}x) — "
        f"{'OK' if rss_ok else 'FAIL'}"
    )
    print(
        f"equivalence: {divergences} divergences on corpus + mutations, "
        f"enrich on/off — {'OK' if exact_ok else 'FAIL'}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

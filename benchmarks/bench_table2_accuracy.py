"""Table II — Sequence-RTG grouping accuracy on the 16 LogHub datasets.

Runs the full pipeline on each synthetic dataset in both evaluation
modes (pre-processed content as in Zhu et al., and raw unaltered lines)
and prints the measured accuracy next to the paper's reported values.

Shape targets asserted (absolute numbers differ — the data is a
synthetic substitution, see DESIGN.md §4):

* pre-processed and raw averages land in the paper's neighbourhood
  (paper: 0.901 / 0.869);
* raw accuracy tracks pre-processed accuracy except for the two
  documented failure datasets — HealthApp and Proxifier — where raw
  drops sharply;
* Proxifier is the worst dataset in both modes.
"""

import pytest

from repro.loghub import DATASET_NAMES, evaluate_sequence_rtg, load_dataset

#: Table II of the paper: (pre-processed, raw, best-of-Zhu-et-al.)
PAPER = {
    "HDFS": (0.941, 0.942, 1.0),
    "Hadoop": (0.975, 0.898, 0.957),
    "Spark": (0.979, 0.979, 0.994),
    "Zookeeper": (0.971, 0.977, 0.967),
    "OpenStack": (0.794, 0.825, 0.871),
    "BGL": (0.948, 0.948, 0.963),
    "HPC": (0.739, 0.801, 0.903),
    "Thunderbird": (0.971, 0.969, 0.955),
    "Windows": (0.993, 0.993, 0.997),
    "Linux": (0.702, 0.701, 0.701),
    "Mac": (0.925, 0.924, 0.872),
    "Android": (0.878, 0.880, 0.919),
    "HealthApp": (0.968, 0.689, 0.822),
    "Apache": (1.0, 1.0, 1.0),
    "OpenSSH": (0.975, 0.975, 0.925),
    "Proxifier": (0.643, 0.402, 0.967),
}

_SCORES: dict[tuple[str, str], float] = {}


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_table2_dataset(benchmark, name):
    dataset = load_dataset(name)

    def evaluate():
        return (
            evaluate_sequence_rtg(dataset, "preprocessed"),
            evaluate_sequence_rtg(dataset, "raw"),
        )

    pre, raw = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    _SCORES[(name, "pre")] = pre
    _SCORES[(name, "raw")] = raw
    assert 0.0 <= pre <= 1.0 and 0.0 <= raw <= 1.0


def test_table2_summary(table_writer, benchmark):
    if len(_SCORES) < 2 * len(DATASET_NAMES):
        pytest.skip("per-dataset evaluations did not run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = []
    for name in DATASET_NAMES:
        pre, raw = _SCORES[(name, "pre")], _SCORES[(name, "raw")]
        p_pre, p_raw, p_best = PAPER[name]
        rows.append(
            [name, f"{pre:.3f}", f"({p_pre:.3f})", f"{raw:.3f}", f"({p_raw:.3f})",
             f"({p_best:.3f})"]
        )
    avg_pre = sum(_SCORES[(n, "pre")] for n in DATASET_NAMES) / 16
    avg_raw = sum(_SCORES[(n, "raw")] for n in DATASET_NAMES) / 16
    rows.append(
        ["Average", f"{avg_pre:.3f}", "(0.901)", f"{avg_raw:.3f}", "(0.869)", "(0.865)"]
    )
    table_writer(
        "table2_accuracy.md",
        ["Dataset", "Pre-processed", "paper", "Raw", "paper", "paper best"],
        rows,
    )

    # --- shape assertions -------------------------------------------------
    assert abs(avg_pre - 0.901) < 0.06
    assert abs(avg_raw - 0.869) < 0.06

    # the two documented raw-log failures drop sharply …
    for name in ("HealthApp", "Proxifier"):
        assert _SCORES[(name, "pre")] - _SCORES[(name, "raw")] > 0.15, name
    # … while every other dataset keeps raw close to pre-processed
    for name in DATASET_NAMES:
        if name in ("HealthApp", "Proxifier", "OpenStack", "Android"):
            continue
        assert abs(_SCORES[(name, "pre")] - _SCORES[(name, "raw")]) < 0.12, name

    # Proxifier is the worst dataset in both modes (paper: 0.643 / 0.402)
    assert min(DATASET_NAMES, key=lambda n: _SCORES[(n, "raw")]) == "Proxifier"

    # Apache is solved exactly, as in the paper
    assert _SCORES[("Apache", "pre")] > 0.97
    assert _SCORES[("Apache", "raw")] > 0.97

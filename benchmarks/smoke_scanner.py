"""Scanner-backend smoke gate for CI.

Compares the compiled regex-program tokenizer against the reference
character-FSM cascade on the seeded generator corpus and gates on the
compiled backend's contract:

* **speed** — ≥2× tokens/s over the FSM backend;
* **memory** — ≤1% max-RSS regression (each backend is measured in its
  own subprocess via ``resource.getrusage``, so the parent's allocations
  don't pollute the comparison);
* **exactness** — zero token-stream divergences on the corpus across
  all four scanner flag combinations.

Writes the measurements to ``results/BENCH_scanner.json``.

Deliberately small (a few seconds end to end) — this is a regression
tripwire, not a benchmark.

Usage::

    PYTHONPATH=src python benchmarks/smoke_scanner.py
"""

from __future__ import annotations

import itertools
import json
import resource
import subprocess
import sys
import time
from pathlib import Path

from repro.scanner import ScannerConfig, build_scanner
from repro.workflow.stream import ProductionStream, StreamConfig

RESULTS = Path(__file__).parent.parent / "results" / "BENCH_scanner.json"

SPEEDUP_GATE = 2.0
RSS_GATE = 1.01  # ≤1% regression

#: sized so the one-time backend cost (module import + compiled regex
#: programs, a few hundred kB) is measured against a realistic batch
#: footprint, as in production, rather than dominating a toy baseline
N_MESSAGES = 24_000
#: the exactness sweep scans every message 8× (2 backends × 4 flag
#: combos), so it runs on a smaller slice
N_DIVERGENCE = 6_000
REPEATS = 1
#: subprocess invocations per backend; speed takes the best run, RSS
#: the smallest (each run's peak carries allocator noise upward only)
N_RUNS = 3


def corpus(n: int = N_MESSAGES) -> list[str]:
    stream = ProductionStream(
        StreamConfig(n_services=40, seed=41, duplicate_fraction=0.5)
    )
    return [r.message for r in stream.records(n)]


def measure_backend(backend: str) -> dict:
    """Tokens/s (best of REPEATS) and max RSS for one backend."""
    # build before the corpus: regex-compilation transients then happen
    # at the low-water mark and their freed blocks are reused by the
    # corpus, so peak RSS reflects the retained programs, not the
    # compiler's scratch space
    scanner = build_scanner(ScannerConfig(backend=backend))
    messages = corpus()
    scanner.scan_many(messages[:500])  # warm caches and code paths
    tokens = 0
    best = 0.0
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        scanned = scanner.scan_many(messages)
        elapsed = time.perf_counter() - t0
        tokens = sum(len(m.tokens) for m in scanned)
        best = max(best, tokens / elapsed)
        # free before the next repeat allocates its batch, so peak RSS
        # reflects one batch in flight (as in the engine), not two
        del scanned
    return {
        "backend": backend,
        "tokens": tokens,
        "tokens_per_second": best,
        "max_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def measure_in_subprocess(backend: str) -> dict:
    """Run one backend's measurement in a fresh interpreter."""
    proc = subprocess.run(
        [sys.executable, __file__, "--backend", backend],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout)


def best_of_runs(backend: str) -> dict:
    runs = [measure_in_subprocess(backend) for _ in range(N_RUNS)]
    best = max(runs, key=lambda r: r["tokens_per_second"])
    best["max_rss_kb"] = min(r["max_rss_kb"] for r in runs)
    return best


def count_divergences() -> int:
    """Token-stream divergences across corpora and flag combinations."""
    messages = corpus(N_DIVERGENCE)
    divergences = 0
    for single_digit, path_fsm in itertools.product([False, True], repeat=2):
        fsm = build_scanner(
            ScannerConfig(
                allow_single_digit_time=single_digit,
                enable_path_fsm=path_fsm,
                backend="fsm",
            )
        )
        compiled = build_scanner(
            ScannerConfig(
                allow_single_digit_time=single_digit,
                enable_path_fsm=path_fsm,
                backend="compiled",
            )
        )
        for message in messages:
            a, b = fsm.scan(message), compiled.scan(message)
            if a.truncated != b.truncated or [
                (t.text, t.type, t.is_space_before, t.pos) for t in a.tokens
            ] != [(t.text, t.type, t.is_space_before, t.pos) for t in b.tokens]:
                divergences += 1
    return divergences


def main() -> int:
    if len(sys.argv) == 3 and sys.argv[1] == "--backend":
        print(json.dumps(measure_backend(sys.argv[2])))
        return 0

    fsm = best_of_runs("fsm")
    compiled = best_of_runs("compiled")
    divergences = count_divergences()

    speedup = compiled["tokens_per_second"] / fsm["tokens_per_second"]
    rss_ratio = compiled["max_rss_kb"] / fsm["max_rss_kb"]

    speed_ok = speedup >= SPEEDUP_GATE
    rss_ok = rss_ratio <= RSS_GATE
    exact_ok = divergences == 0
    ok = speed_ok and rss_ok and exact_ok

    report = {
        "fsm": fsm,
        "compiled": compiled,
        "speedup": speedup,
        "speedup_gate": SPEEDUP_GATE,
        "rss_ratio": rss_ratio,
        "rss_gate": RSS_GATE,
        "divergences": divergences,
        "ok": ok,
    }
    RESULTS.parent.mkdir(exist_ok=True)
    RESULTS.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(
        f"scan throughput: fsm {fsm['tokens_per_second']:,.0f} tok/s, "
        f"compiled {compiled['tokens_per_second']:,.0f} tok/s — "
        f"{speedup:.2f}x (gate: ≥{SPEEDUP_GATE}x) — "
        f"{'OK' if speed_ok else 'FAIL'}"
    )
    print(
        f"max RSS: fsm {fsm['max_rss_kb']:,} kB, "
        f"compiled {compiled['max_rss_kb']:,} kB — "
        f"{rss_ratio:.3f}x (gate: ≤{RSS_GATE}x) — "
        f"{'OK' if rss_ok else 'FAIL'}"
    )
    print(
        f"equivalence: {divergences} divergences across 4 flag combos — "
        f"{'OK' if exact_ok else 'FAIL'}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())

"""Quick worker-pool smoke gate for CI.

Runs a duplicate-heavy JSON-lines stream through the pipelined ingester
into a 2-worker persistent pool and checks the two production promises:

* the pooled database is bit-identical to a serial run over the same
  stream (pattern ids, supports, match counts);
* steady-state routing throughput summed across workers stays above the
  paper's sustained requirement of 100M messages/day ≈ 1,160 msgs/s.

Deliberately small (a few seconds end to end) — this is a regression
tripwire, not a benchmark.  Run ``pytest benchmarks/`` for real numbers.

Usage::

    PYTHONPATH=src python benchmarks/smoke_parallel.py
"""

from __future__ import annotations

import sys

from repro.core.ingest import StreamIngester
from repro.core.parallel import PersistentParallelSequenceRTG
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.workflow.stream import ProductionStream, StreamConfig

PAPER_RATE_PER_SECOND = 100_000_000 / 86_400

N_MESSAGES = 8_000
BATCH_SIZE = 1_000


def _stream_lines():
    stream = ProductionStream(
        StreamConfig(n_services=40, seed=41, duplicate_fraction=0.5)
    )
    return list(stream.jsonl(N_MESSAGES))


def _fingerprint(db):
    return sorted(
        (row.id, row.service, row.pattern_text, row.match_count)
        for row in db.rows()
    )


def main() -> int:
    lines = _stream_lines()

    serial = SequenceRTG(db=PatternDB())
    for batch in StreamIngester(batch_size=BATCH_SIZE).batches(lines):
        serial.analyze_by_service(batch)

    routed = 0
    seconds = 0.0
    with PersistentParallelSequenceRTG(db=PatternDB(), n_workers=2) as engine:
        ingester = StreamIngester(batch_size=BATCH_SIZE)
        for i, result in enumerate(
            engine.process_stream(ingester.batches_pipelined(lines, prefetch=2))
        ):
            if i >= 2:  # steady state: workers warm, patterns known
                routed += result.n_records
                # timings are summed across workers = total CPU seconds
                seconds += result.timings.get("scan", 0.0) + result.timings.get(
                    "parse", 0.0
                )
        identical = _fingerprint(engine.db) == _fingerprint(serial.db)
        respawns = engine.telemetry["respawns"]

    per_second = routed / seconds if seconds else 0.0
    fast_enough = per_second > PAPER_RATE_PER_SECOND

    print(
        f"pool scan+parse: {per_second:,.0f} msgs/s "
        f"(gate: {PAPER_RATE_PER_SECOND:,.0f} msgs/s) — "
        f"{'OK' if fast_enough else 'FAIL'}"
    )
    print(f"serial equivalence: {'OK' if identical else 'FAIL'}")
    print(f"worker respawns: {respawns}")
    return 0 if (fast_enough and identical) else 1


if __name__ == "__main__":
    sys.exit(main())

"""Backend factories reject unknown backend names loudly.

Each config dataclass validates its ``backend`` field at construction,
but the field is mutable and the CLI historically passed raw strings
through — the factory is the last line of defence and must name the
valid choices in its error instead of silently falling back to the
reference backend.
"""

import pytest

from repro.analyzer import ANALYZER_BACKENDS, AnalyzerConfig, build_analyzer
from repro.parser import PARSER_BACKENDS, ParserConfig, build_parser
from repro.scanner import SCANNER_BACKENDS, ScannerConfig, build_scanner


def mutated(config, backend="turbo"):
    # bypass __post_init__ validation, like a caller poking the field
    object.__setattr__(config, "backend", backend)
    return config


class TestScannerFactory:
    def test_valid_backends_build(self):
        for backend in SCANNER_BACKENDS:
            assert build_scanner(ScannerConfig(backend=backend)) is not None

    def test_unknown_backend_lists_choices(self):
        with pytest.raises(ValueError) as err:
            build_scanner(mutated(ScannerConfig()))
        message = str(err.value)
        assert "'turbo'" in message
        for backend in SCANNER_BACKENDS:
            assert backend in message


class TestParserFactory:
    def test_valid_backends_build(self):
        for backend in PARSER_BACKENDS:
            assert build_parser(config=ParserConfig(backend=backend)) is not None

    def test_unknown_backend_lists_choices(self):
        with pytest.raises(ValueError) as err:
            build_parser(config=mutated(ParserConfig()))
        message = str(err.value)
        assert "'turbo'" in message
        for backend in PARSER_BACKENDS:
            assert backend in message


class TestAnalyzerFactory:
    def test_valid_backends_build(self):
        for backend in ANALYZER_BACKENDS:
            assert build_analyzer(AnalyzerConfig(backend=backend)) is not None

    def test_unknown_backend_lists_choices(self):
        with pytest.raises(ValueError) as err:
            build_analyzer(mutated(AnalyzerConfig()))
        message = str(err.value)
        assert "'turbo'" in message
        for backend in ANALYZER_BACKENDS:
            assert backend in message


class TestConfigValidation:
    def test_configs_reject_unknown_backend_at_construction(self):
        with pytest.raises(ValueError):
            ScannerConfig(backend="turbo")
        with pytest.raises(ValueError):
            ParserConfig(backend="turbo")
        with pytest.raises(ValueError):
            AnalyzerConfig(backend="turbo")

"""End-to-end integration: stream → mine → persist → restart → export →
promote → route (the full Fig. 6 loop in miniature)."""

import json
import xml.etree.ElementTree as ET

from repro.core.config import RTGConfig
from repro.core.export import export_patterns
from repro.core.ingest import StreamIngester
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.core.records import LogRecord
from repro.workflow import ProductionStream, StreamConfig, SyslogNG


def test_full_loop(tmp_path):
    db_path = str(tmp_path / "e2e.db")
    stream = ProductionStream(StreamConfig(n_services=25, seed=99))

    # 1. ingest a JSON-lines stream in batches, mining patterns
    lines = (json.dumps(r.to_json_dict()) for r in stream.records(2_000))
    rtg = SequenceRTG(db=PatternDB(db_path), config=RTGConfig(batch_size=400))
    ingester = StreamIngester(batch_size=400)
    results = list(rtg.process_stream(ingester.batches(lines)))
    assert ingester.stats.n_batches == 5
    assert sum(r.n_new_patterns for r in results) > 10
    # later batches parse against earlier discoveries
    assert results[-1].n_matched > 0

    # 2. restart: a new instance sees the persisted patterns
    rtg2 = SequenceRTG(db=PatternDB(db_path))
    some_service = rtg2.db.services()[0]
    assert rtg2.db.load_service(some_service)

    # 3. export for review; the XML must be valid patterndb
    xml = export_patterns(rtg2.db, "syslog-ng", min_count=2, max_complexity=0.9)
    root = ET.fromstring(xml)
    rules = root.findall(".//rule")
    assert rules

    # 4. promote the reviewed patterns into syslog-ng and route new
    # traffic: a solid share must now match
    ng = SyslogNG()
    promoted = ng.promote(
        [row.to_pattern() for row in rtg2.db.rows(min_count=2, max_complexity=0.9)]
    )
    assert promoted.promoted > 0

    fresh = ProductionStream(StreamConfig(n_services=25, seed=99))
    routed = [ng.route(r) for r in fresh.records(1_000)]
    matched_fraction = sum(r.matched for r in routed) / len(routed)
    assert matched_fraction > 0.5


def test_reproducible_ids_across_instances(tmp_path):
    """Two independent miners over the same data assign identical ids —
    the property the paper needs for distributed deployments."""
    records = [
        LogRecord("sshd", f"session opened for user u{i} from 10.0.0.{i}")
        for i in range(6)
    ]
    ids_a = {
        p.id for p in SequenceRTG(db=PatternDB()).analyze_by_service(records).new_patterns
    }
    ids_b = {
        p.id for p in SequenceRTG(db=PatternDB()).analyze_by_service(records).new_patterns
    }
    assert ids_a == ids_b


def test_scaling_out_by_service(tmp_path):
    """§IV: "the messages could be divided simply by sending groups of
    services to any number instances of Sequence-RTG ... each instance
    could have its own database as there is no crossover"."""
    stream = ProductionStream(StreamConfig(n_services=10, seed=5))
    records = list(stream.records(800))
    services = sorted({r.service for r in records})
    half_a = {s for i, s in enumerate(services) if i % 2 == 0}

    # one combined instance
    combined = SequenceRTG(db=PatternDB())
    combined.analyze_by_service(records)

    # two sharded instances
    shard_a = SequenceRTG(db=PatternDB())
    shard_b = SequenceRTG(db=PatternDB())
    shard_a.analyze_by_service([r for r in records if r.service in half_a])
    shard_b.analyze_by_service([r for r in records if r.service not in half_a])

    combined_ids = {row.id for row in combined.db.rows()}
    sharded_ids = {row.id for row in shard_a.db.rows()} | {
        row.id for row in shard_b.db.rows()
    }
    assert combined_ids == sharded_ids

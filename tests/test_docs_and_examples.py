"""Documentation stays true: doctests run, examples execute.

A reproduction repository lives or dies by its README/quickstart being
copy-pasteable; these tests execute every docstring example and every
script in ``examples/`` in a fresh interpreter.
"""

import doctest
import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


class TestDoctests:
    def test_package_quickstart_doctest(self):
        import repro

        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0
        assert results.attempted > 0

    def test_hashing_doctest(self):
        import repro._util.hashing as hashing

        results = doctest.testmod(hashing, verbose=False)
        assert results.failed == 0
        assert results.attempted > 0


def _run_example(name: str, *args: str, timeout: int = 300):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamplesRun:
    """Each example is executed end to end; its own assertions are part
    of the check (several examples assert their expected outcomes)."""

    def test_quickstart(self):
        proc = _run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "%srcip%" in proc.stdout

    def test_export_formats(self):
        proc = _run_example("export_formats.py")
        assert proc.returncode == 0, proc.stderr
        for marker in ("<patterndb", "patterndb:", "grok {"):
            assert marker in proc.stdout

    def test_streaming_service(self):
        proc = _run_example("streaming_service.py")
        assert proc.returncode == 0, proc.stderr
        assert "after restart:" in proc.stdout

    def test_loghub_accuracy(self):
        proc = _run_example("loghub_accuracy.py", "Apache")
        assert proc.returncode == 0, proc.stderr
        assert "Sequence-RTG, raw logs" in proc.stdout

    def test_alerting_actions(self):
        proc = _run_example("alerting_actions.py")
        assert proc.returncode == 0, proc.stderr
        assert "worker restarts triggered: 2" in proc.stdout

    @pytest.mark.slow
    def test_anomaly_detection(self):
        proc = _run_example("anomaly_detection.py")
        assert proc.returncode == 0, proc.stderr
        assert "0 false alarms" in proc.stdout

    @pytest.mark.slow
    def test_production_simulation_short(self):
        proc = _run_example("production_simulation.py", "6")
        assert proc.returncode == 0, proc.stderr
        assert "unmatched fraction:" in proc.stdout

"""The 16 synthetic LogHub datasets: structure and engineered quirks."""

import re

import pytest

from repro.loghub import DATASET_NAMES, load_dataset
from repro.loghub.datasets import spec_for


class TestRegistry:
    def test_sixteen_datasets(self):
        assert len(DATASET_NAMES) == 16

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_spec_loads(self, name):
        spec = spec_for(name)
        assert spec.name == name
        assert spec.templates

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            spec_for("NoSuchDataset")


@pytest.mark.parametrize("name", DATASET_NAMES)
class TestGeneratedShape:
    def test_two_thousand_labelled_lines(self, name):
        ds = load_dataset(name)
        assert len(ds.lines) == 2000
        assert all(l.event_id.startswith("E") for l in ds.lines)

    def test_raw_extends_content(self, name):
        ds = load_dataset(name)
        assert all(l.raw.endswith(l.content) for l in ds.lines[:50])

    def test_cached_and_deterministic(self, name):
        assert load_dataset(name) is load_dataset(name)


class TestQuirks:
    def test_healthapp_unpadded_times_in_raw(self):
        """§IV: '20171224-0:7:20:444'-style stamps break the default FSM."""
        ds = load_dataset("HealthApp")
        unpadded = [
            l for l in ds.lines if re.search(r"\d{8}-\d:\d{1,2}:\d{1,2}:", l.content)
        ]
        assert len(unpadded) > 50
        # pre-processing masks them, which is why the pre-processed score
        # does not show the limitation
        assert all("<*>" in l.preprocessed for l in unpadded)

    def test_proxifier_int_alnum_flip(self):
        """§IV: a variable that is sometimes alphanumeric, sometimes int."""
        ds = load_dataset("Proxifier")
        close = [l for l in ds.lines if l.event_id == "E1"]
        ints = [l for l in close if re.search(r"\(\d+\) sent", l.content)]
        alnums = [l for l in close if re.search(r"\(\d+K\) sent", l.content)]
        assert ints and alnums

    def test_linux_long_tail(self):
        ds = load_dataset("Linux")
        from collections import Counter

        counts = Counter(ds.truth())
        singletons = [e for e, c in counts.items() if c <= 3]
        assert len(singletons) > 10  # the rare-event tail

    def test_apache_is_simple(self):
        ds = load_dataset("Apache")
        assert ds.n_events <= 8

    def test_mac_is_diverse(self):
        ds = load_dataset("Mac")
        assert ds.n_events >= 40

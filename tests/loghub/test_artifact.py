"""Artifact bundle export (paper AVAILABILITY section)."""

import csv
import json
import os

import pytest

from repro.loghub.artifact import export_artifact


@pytest.fixture(scope="module")
def bundle(tmp_path_factory):
    out = str(tmp_path_factory.mktemp("artifact"))
    manifest = export_artifact(out, datasets=("Apache", "Proxifier"), n_lines=300)
    return out, manifest


class TestBundle:
    def test_manifest_written(self, bundle):
        out, manifest = bundle
        with open(os.path.join(out, "manifest.json")) as fh:
            data = json.load(fh)
        assert data["datasets"] == ["Apache", "Proxifier"]
        assert set(data["accuracy_raw"]) == {"Apache", "Proxifier"}

    def test_json_files_per_dataset(self, bundle):
        out, _ = bundle
        for name in ("Apache", "Proxifier"):
            with open(os.path.join(out, f"{name}_full.json")) as fh:
                full = json.load(fh)
            with open(os.path.join(out, f"{name}_preprocessed.json")) as fh:
                pre = json.load(fh)
            assert len(full) == len(pre) == 300

    def test_mapping_csv_covers_every_line(self, bundle):
        out, _ = bundle
        with open(os.path.join(out, "Apache_mapping.csv")) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 300
        assert rows[0]["line"] == "1"
        assert all(r["event_label"].startswith("E") for r in rows)
        # pattern ids are SHA1s (or explicit unmatched markers)
        assert all(
            len(r["pattern_id"]) == 40 or r["pattern_id"].startswith("<unmatched")
            for r in rows
        )

    def test_mapping_consistent_with_accuracy(self, bundle):
        """The CSV is exactly what the accuracy was computed from: lines
        with the same pattern id within a correct dataset share labels."""
        out, manifest = bundle
        assert manifest.accuracy_raw["Apache"] > 0.95
        with open(os.path.join(out, "Apache_mapping.csv")) as fh:
            rows = list(csv.DictReader(fh))
        by_pattern = {}
        for row in rows:
            by_pattern.setdefault(row["pattern_id"], set()).add(row["event_label"])
        pure = sum(1 for labels in by_pattern.values() if len(labels) == 1)
        assert pure / len(by_pattern) > 0.9


class TestPatternDbDumpMerge:
    def test_dump_round_trip(self):
        from repro.core.patterndb import PatternDB
        from repro.analyzer.pattern import Pattern

        db = PatternDB()
        p = Pattern.from_text("a %integer% b", "svc")
        p.support = 4
        p.add_example("a 1 b")
        db.upsert(p)
        clone = PatternDB.from_dump(db.dump())
        (row,) = clone.rows()
        assert row.pattern_text == "a %integer% b"
        assert row.match_count == 4
        assert row.examples == ["a 1 b"]

    def test_merge_from_accumulates(self):
        from repro.core.patterndb import PatternDB
        from repro.analyzer.pattern import Pattern

        a, b = PatternDB(), PatternDB()
        p1 = Pattern.from_text("x %integer%", "s1")
        p1.support = 2
        a.upsert(p1)
        p2 = Pattern.from_text("x %integer%", "s1")
        p2.support = 3
        b.upsert(p2)
        p3 = Pattern.from_text("y %string%", "s2")
        p3.support = 1
        b.upsert(p3)

        merged = a.merge_from(b)
        assert merged == 2
        rows = {r.pattern_text: r.match_count for r in a.rows()}
        assert rows == {"x %integer%": 5, "y %string%": 1}

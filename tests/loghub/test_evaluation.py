"""Grouping accuracy metric and the evaluation drivers."""

import pytest
from hypothesis import given, strategies as st

from repro.baselines import Drain
from repro.loghub import (
    evaluate_baseline,
    evaluate_sequence_rtg,
    grouping_accuracy,
    load_dataset,
)
from repro.loghub.generator import DatasetSpec, Template, generate


class TestGroupingAccuracy:
    def test_perfect(self):
        assert grouping_accuracy(["a", "b", "a"], [1, 2, 1]) == 1.0

    def test_label_names_irrelevant(self):
        assert grouping_accuracy(["x", "y"], ["anything", "else"]) == 1.0

    def test_split_zeroes_the_event(self):
        # truth {0,1,2} split into {0,1} and {2}: all three wrong
        assert grouping_accuracy(["a", "a", "a"], [1, 1, 2]) == 0.0

    def test_merge_zeroes_both_events(self):
        assert grouping_accuracy(["a", "a", "b"], [1, 1, 1]) == 0.0

    def test_partial(self):
        truth = ["a", "a", "b", "b"]
        predicted = [1, 1, 2, 3]  # a correct, b split
        assert grouping_accuracy(truth, predicted) == 0.5

    def test_empty(self):
        assert grouping_accuracy([], []) == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            grouping_accuracy(["a"], [1, 2])

    @given(st.lists(st.integers(0, 5), max_size=40))
    def test_identity_prediction_is_perfect(self, truth):
        assert grouping_accuracy(truth, list(truth)) == 1.0

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=40))
    def test_singleton_prediction_score(self, truth):
        # predicting every message as its own cluster is only right for
        # messages whose truth cluster is a singleton
        predicted = list(range(len(truth)))
        expected = sum(1 for t in truth if truth.count(t) == 1) / len(truth)
        assert grouping_accuracy(truth, predicted) == pytest.approx(expected)


def small_dataset():
    spec = DatasetSpec(
        name="Small",
        templates=[
            Template("request {int} from {ip} ok"),
            Template("disk {id} full"),
            Template("service restarted"),
        ],
        seed=3,
    )
    return generate(spec, n=150)


class TestDrivers:
    def test_sequence_rtg_high_on_easy_data(self):
        score = evaluate_sequence_rtg(small_dataset(), mode="raw")
        assert score > 0.95

    def test_preprocessed_mode(self):
        score = evaluate_sequence_rtg(small_dataset(), mode="preprocessed")
        assert score > 0.95

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            evaluate_sequence_rtg(small_dataset(), mode="cooked")

    def test_baseline_driver(self):
        assert evaluate_baseline(Drain(), small_dataset()) > 0.9

    def test_apache_near_perfect_like_paper(self):
        # Table II: Apache = 1.0 for Sequence-RTG in both modes
        ds = load_dataset("Apache")
        assert evaluate_sequence_rtg(ds, "raw") > 0.97
        assert evaluate_sequence_rtg(ds, "preprocessed") > 0.97

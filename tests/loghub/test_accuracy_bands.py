"""Accuracy regression bands for the key Table II datasets.

The full sweep lives in ``benchmarks/bench_table2_accuracy.py``; these
unit-suite bands cover the datasets whose behaviour carries the paper's
story, with margins wide enough to be stable across refactors but tight
enough to catch a broken merge rule or scanner regression.
"""

import pytest

from repro.loghub import evaluate_sequence_rtg, load_dataset

pytestmark = pytest.mark.slow


class TestHeadlineDatasets:
    def test_apache_solved(self):
        ds = load_dataset("Apache")
        assert evaluate_sequence_rtg(ds, "raw") > 0.95

    def test_hdfs_high(self):
        ds = load_dataset("HDFS")
        assert evaluate_sequence_rtg(ds, "raw") > 0.9

    def test_openssh_beats_best_baseline_band(self):
        # paper: 0.975 vs best 0.925
        ds = load_dataset("OpenSSH")
        assert evaluate_sequence_rtg(ds, "raw") > 0.9


class TestFailureDatasets:
    def test_proxifier_worst_both_modes(self):
        """The integer/alphanumeric flip (paper: 0.643 / 0.402)."""
        ds = load_dataset("Proxifier")
        pre = evaluate_sequence_rtg(ds, "preprocessed")
        raw = evaluate_sequence_rtg(ds, "raw")
        assert pre < 0.8
        assert raw < pre  # raw strictly worse (lifetime quirk)
        assert raw < 0.6

    def test_healthapp_raw_drop(self):
        """The leading-zero timestamp failure (paper: 0.968 -> 0.689)."""
        ds = load_dataset("HealthApp")
        pre = evaluate_sequence_rtg(ds, "preprocessed")
        raw = evaluate_sequence_rtg(ds, "raw")
        assert pre > 0.9
        assert pre - raw > 0.15

    def test_linux_low_band(self):
        """Long tail of rare events + small alpha pools (paper: ~0.70)."""
        ds = load_dataset("Linux")
        assert 0.5 < evaluate_sequence_rtg(ds, "raw") < 0.85

"""Dataset generator: determinism, slot filling, schedules."""

import re

import pytest

from repro.loghub.generator import (
    DatasetSpec,
    FILLERS,
    LabeledDataset,
    Template,
    generate,
)


def tiny_spec(**overrides) -> DatasetSpec:
    kwargs = dict(
        name="Tiny",
        templates=[
            Template("request {int} from {ip} ok"),
            Template("disk {path} full"),
        ],
        rare_templates=[Template("panic at {hex8}")],
        preprocess=[r"(\d{1,3}\.){3}\d{1,3}"],
        seed=5,
    )
    kwargs.update(overrides)
    return DatasetSpec(**kwargs)


class TestGeneration:
    def test_line_count_and_labels(self):
        ds = generate(tiny_spec(), n=200)
        assert isinstance(ds, LabeledDataset)
        assert len(ds.lines) == 200
        assert set(ds.truth()) <= {"E1", "E2", "E3"}
        assert ds.n_events == 3

    def test_deterministic(self):
        a = generate(tiny_spec(), n=100)
        b = generate(tiny_spec(), n=100)
        assert [l.raw for l in a.lines] == [l.raw for l in b.lines]

    def test_seed_changes_output(self):
        a = generate(tiny_spec(), n=100, seed=1)
        b = generate(tiny_spec(), n=100, seed=2)
        assert [l.raw for l in a.lines] != [l.raw for l in b.lines]

    def test_slots_filled(self):
        ds = generate(tiny_spec(), n=100)
        for line in ds.lines:
            assert "{" not in line.content

    def test_preprocess_applied(self):
        ds = generate(tiny_spec(), n=200)
        e1 = [l for l in ds.lines if l.event_id == "E1"]
        assert e1, "E1 should appear in 200 draws"
        assert all("<*>" in l.preprocessed for l in e1)
        assert all(not re.search(r"(\d{1,3}\.){3}\d{1,3}", l.preprocessed) for l in e1)

    def test_rare_templates_one_to_three_lines(self):
        ds = generate(tiny_spec(), n=500)
        n_rare = sum(1 for l in ds.lines if l.event_id == "E3")
        assert 1 <= n_rare <= 3

    def test_header_prepended(self):
        spec = tiny_spec(header=lambda rng, comp: "HDR ")
        ds = generate(spec, n=10)
        assert all(l.raw == "HDR " + l.content for l in ds.lines)

    def test_unknown_slot_raises(self):
        spec = tiny_spec(templates=[Template("bad {nosuchslot} here")])
        with pytest.raises(KeyError):
            generate(spec, n=5)


class TestBoundedPools:
    def test_pool_size_respected(self):
        spec = tiny_spec(templates=[Template("u {user:3} x")], rare_templates=[])
        ds = generate(spec, n=500)
        values = {l.content.split()[1] for l in ds.lines}
        assert 1 < len(values) <= 3

    def test_unbounded_slot_varies_widely(self):
        spec = tiny_spec(templates=[Template("n {int} x")], rare_templates=[])
        ds = generate(spec, n=300)
        values = {l.content.split()[1] for l in ds.lines}
        assert len(values) > 50


class TestFillers:
    @pytest.mark.parametrize("kind", sorted(FILLERS))
    def test_filler_produces_nonempty(self, kind):
        import random

        rng = random.Random(0)
        for _ in range(20):
            assert FILLERS[kind](rng)

    def test_hex_filler_never_pure_integer(self):
        import random

        rng = random.Random(0)
        for _ in range(200):
            assert not FILLERS["hex8"](rng).isdigit()

    def test_alnumint_produces_both_kinds(self):
        import random

        rng = random.Random(0)
        draws = [FILLERS["alnumint"](rng) for _ in range(100)]
        assert any(d.isdigit() for d in draws)
        assert any(not d.isdigit() for d in draws)

    def test_badtime_has_single_digit_variants(self):
        import random

        rng = random.Random(0)
        draws = [FILLERS["badtime"](rng) for _ in range(100)]
        unpadded = [d for d in draws if re.search(r"-\d:", d)]
        padded = [d for d in draws if re.search(r"-\d\d:", d)]
        assert unpadded and padded

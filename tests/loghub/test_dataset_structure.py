"""Static validation of every dataset specification.

These tests catch spec rot: templates referencing unknown slot types,
headers that stop matching their dataset's documented format, regexes
that no longer compile, and seed collisions that would correlate
datasets.
"""

import random
import re

import pytest

from repro.loghub import DATASET_NAMES
from repro.loghub.datasets import spec_for
from repro.loghub.generator import _SLOT_RE, FILLERS

#: expected header shape per dataset (prefix of the raw line)
HEADER_SHAPES = {
    "HDFS": r"^0811\d\d \d{6} \d+ \w+ \S+: ",
    "Hadoop": r"^2015-10-\d+ \d{2}:\d{2}:\d{2},\d{3} \w+ \[main\] \S+: ",
    "Spark": r"^17/06/\d{2} \d{2}:\d{2}:\d{2} INFO \S+: ",
    "Zookeeper": r"^2015-07-\d+ \d{2}:\d{2}:\d{2},\d{3} - \w+ +\[main:\S+@\d+\] - ",
    "OpenStack": r"^2017-05-16 \d{2}:\d{2}:\d{2}\.\d{3} \d+ \w+ \S+ \[req-[0-9a-f-]+\] ",
    "BGL": r"^- \d+ 2005\.06\.\d{2} R\d{2}-M\d-N\d+-C:J\d{2}-U\d{2} ",
    "HPC": r"^\d{5} node-\d+ \S+ \d+ 1 ",
    "Thunderbird": r"^- \d+ 2005\.11\.\d{2} dn\d+ Nov \d+ \d{2}:\d{2}:\d{2} dn\d+/dn\d+ \S+\[\d+\]: ",
    "Windows": r"^2016-09-\d+ \d{2}:\d{2}:\d{2}, Info +\S+ ",
    "Linux": r"^\w{3} \d+ \d{2}:\d{2}:\d{2} combo \S+\[\d+\]: ",
    "Mac": r"^\w{3} \d+ \d{2}:\d{2}:\d{2} calvisitor-10-105-160-95 \S+\[\d+\]: ",
    "Android": r"^03-\d{2} \d{2}:\d{2}:\d{2}\.\d{3} +\d+ +\d+ [DIWEV] \S+: ",
    "HealthApp": r"^201712\d{2}-\d+:\d+:\d+:\d{3}\|\S+\|\d+\|",
    "Apache": r"^\[\w{3} Jun \d{2} \d{2}:\d{2}:\d{2} 2005\] \[\w+\] ",
    "OpenSSH": r"^\w{3} \d+ \d{2}:\d{2}:\d{2} LabSZ \S+\[\d+\]: ",
    "Proxifier": r"^\[\d{2}\.\d{2} \d{2}:\d{2}:\d{2}\] ",
}


@pytest.mark.parametrize("name", DATASET_NAMES)
class TestSpecValidity:
    def test_all_slots_known(self, name):
        spec = spec_for(name)
        for template in list(spec.templates) + list(spec.rare_templates):
            for match in _SLOT_RE.finditer(template.text):
                assert match.group(1) in FILLERS, (name, match.group(0))

    def test_header_shape(self, name):
        spec = spec_for(name)
        rng = random.Random(0)
        shape = re.compile(HEADER_SHAPES[name])
        for template in spec.templates[:3]:
            header = spec.header(rng, template.component)
            assert shape.match(header), (name, header)

    def test_preprocess_regexes_compile(self, name):
        spec = spec_for(name)
        for pattern in spec.preprocess:
            re.compile(pattern)

    def test_template_texts_unique(self, name):
        spec = spec_for(name)
        texts = [t.text for t in spec.templates + spec.rare_templates]
        assert len(texts) == len(set(texts)), name

    def test_common_templates_nonempty(self, name):
        spec = spec_for(name)
        assert len(spec.templates) >= 3 or name == "Apache"


def test_dataset_seeds_distinct():
    seeds = [spec_for(name).seed for name in DATASET_NAMES]
    assert len(seeds) == len(set(seeds))

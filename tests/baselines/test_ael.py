"""AEL: anonymize / tokenize / categorize."""

from repro.baselines import AEL
from repro.baselines.base import WILDCARD


class TestAnonymize:
    def test_numbers_anonymized(self):
        ael = AEL()
        assert len(set(ael.fit([f"retry {i} times" for i in range(5)]))) == 1

    def test_kv_values_anonymized(self):
        ael = AEL()
        msgs = [f"login user={u} ok" for u in ("ann", "bob", "cyd")]
        assert len(set(ael.fit(msgs))) == 1

    def test_mixed_alnum_ids_anonymized(self):
        ael = AEL()
        msgs = [f"block blk_{i}77 deleted" for i in range(4)]
        assert len(set(ael.fit(msgs))) == 1

    def test_plain_alpha_words_not_anonymized(self):
        """The documented AEL weakness: username-style alpha variables
        are kept, splitting the event (why AEL scores low on OpenSSH)."""
        ael = AEL()
        msgs = ["login for alice ok", "login for bob ok"]
        assert len(set(ael.fit(msgs))) == 2


class TestBins:
    def test_different_token_counts_in_different_bins(self):
        ael = AEL()
        a = ael.fit(["call 12 13 done", "call home done"])
        assert a[0] != a[1]

    def test_reconcile_crosses_variable_count_bins(self):
        # "call 12 done" -> "call <*> done" folds with "call home done":
        # the reconciliation step merges templates that differ only at
        # wildcard positions even across (count, vars) bins
        ael = AEL()
        a = ael.fit(["call 12 done", "call home done"])
        assert a[0] == a[1]


class TestReconcile:
    def test_wildcard_superset_folds(self):
        ael = AEL()
        # "x 5 y" anonymizes to "x <*> y"; "x five y"… stays distinct,
        # but two templates differing only at wildcard positions merge
        msgs = ["get 10 rows", "get 20 rows", "get some rows"]
        assignments = ael.fit(msgs)
        assert assignments[0] == assignments[1] == assignments[2]

    def test_templates_exposed(self):
        ael = AEL()
        ael.fit(["get 10 rows"])
        assert ael.templates() == [f"get {WILDCARD} rows"]

"""IPLoM: the four partitioning steps."""

import pytest

from repro.baselines import IPLoM
from repro.baselines.base import WILDCARD


class TestSteps:
    def test_step1_partitions_by_length(self):
        iplom = IPLoM()
        a = iplom.fit(["a b c", "a b", "a b c", "a b"])
        assert a[0] == a[2] and a[1] == a[3] and a[0] != a[1]

    def test_step2_splits_on_stable_column(self):
        iplom = IPLoM(partition_support=1)
        msgs = (
            [f"start job {i} ok" for i in range(8)]
            + [f"abort job {i} ok" for i in range(8)]
        )
        a = iplom.fit(msgs)
        assert len({a[i] for i in range(8)}) == 1
        assert a[0] != a[8]

    def test_template_extraction_wildcards_variables(self):
        iplom = IPLoM(partition_support=1)
        iplom.fit([f"recv {i} bytes" for i in range(9)])
        assert f"recv {WILDCARD} bytes" in iplom.templates()

    def test_unique_columns_do_not_shatter(self):
        # every token different except the frame: must stay one cluster
        iplom = IPLoM()
        msgs = [f"tx {i} rx {i * 7} drop {i * 13}" for i in range(20)]
        assert len(set(iplom.fit(msgs))) == 1

    def test_small_partitions_left_alone(self):
        iplom = IPLoM(partition_support=4)
        msgs = ["x 1 y", "x 2 y", "x 3 y"]
        assert len(set(iplom.fit(msgs))) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            IPLoM(partition_support=0)


class TestBijection:
    def test_one_to_one_pairs_split(self):
        iplom = IPLoM(partition_support=1)
        msgs = []
        for pair in (("open", "file"), ("close", "sock"), ("read", "pipe")):
            msgs += [f"{pair[0]} {pair[1]} {i} end" for i in range(6)]
        a = iplom.fit(msgs)
        assert len(set(a)) == 3

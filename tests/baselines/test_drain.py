"""Drain: fixed-depth tree routing and similarity threshold."""

import pytest

from repro.baselines import Drain
from repro.baselines.base import WILDCARD


class TestRouting:
    def test_length_separates(self):
        drain = Drain()
        a = drain.fit(["one two three", "one two"])
        assert a[0] != a[1]

    def test_digit_tokens_route_to_wildcard(self):
        drain = Drain(st=0.3)
        msgs = [f"send {i} packets now" for i in range(10)]
        assert len(set(drain.fit(msgs))) == 1

    def test_template_updated_positionwise(self):
        # depth 3 = one routing token, so the alpha variable at position 2
        # lands in the same leaf and the template gains a wildcard
        drain = Drain(depth=3, st=0.4)
        drain.fit(["user alice login ok", "user bob login ok"])
        assert drain.templates() == [f"user {WILDCARD} login ok"]

    def test_depth4_splits_on_second_token(self):
        # the default depth routes on the first two tokens: an alpha
        # variable there splits the event — a known Drain trait
        drain = Drain(st=0.4)
        a = drain.fit(["user alice login ok", "user bob login ok"])
        assert a[0] != a[1]

    def test_low_similarity_creates_new_group(self):
        drain = Drain(st=0.9)
        a = drain.fit(["alpha beta gamma delta", "alpha beta other words"])
        assert a[0] != a[1]

    def test_max_children_funnels_to_wildcard(self):
        drain = Drain(max_children=2, st=0.3)
        msgs = [f"w{i} common tail here" for i in range(30)]
        assignments = drain.fit(msgs)
        # after the two first children fill up, the rest share a group
        assert len(set(assignments)) <= 3


class TestValidation:
    def test_bad_depth(self):
        with pytest.raises(ValueError):
            Drain(depth=2)

    def test_bad_similarity(self):
        with pytest.raises(ValueError):
            Drain(st=1.5)


class TestStreaming:
    def test_incremental_fit_accumulates(self):
        drain = Drain()
        first = drain.fit(["job 1 done"])
        second = drain.fit(["job 2 done"])
        assert first[0] == second[0]

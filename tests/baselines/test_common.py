"""Contract tests shared by all four baseline parsers."""

import pytest

from repro.baselines import ALL_BASELINES

SIMPLE = [
    "Connection from 10.0.0.1 closed",
    "Connection from 10.0.0.2 closed",
    "Connection from 10.0.0.3 closed",
    "Disk sda1 is full",
    "Disk sdb2 is full",
    "Service restarted successfully",
    "Service restarted successfully",
]


@pytest.fixture(params=list(ALL_BASELINES), ids=list(ALL_BASELINES))
def parser(request):
    return ALL_BASELINES[request.param]()


class TestContract:
    def test_one_assignment_per_message(self, parser):
        assignments = parser.fit(SIMPLE)
        assert len(assignments) == len(SIMPLE)
        assert all(isinstance(a, int) for a in assignments)

    def test_identical_messages_same_cluster(self, parser):
        assignments = parser.fit(SIMPLE)
        assert assignments[5] == assignments[6]

    def test_obviously_same_event_grouped(self, parser):
        assignments = parser.fit(SIMPLE)
        assert assignments[0] == assignments[1] == assignments[2]

    def test_different_shapes_separated(self, parser):
        assignments = parser.fit(SIMPLE)
        assert assignments[0] != assignments[5]

    def test_templates_cover_all_clusters(self, parser):
        assignments = parser.fit(SIMPLE)
        templates = parser.templates()
        assert max(assignments) < len(templates)

    def test_deterministic(self):
        for name, cls in ALL_BASELINES.items():
            assert cls().fit(SIMPLE) == cls().fit(SIMPLE), name

    def test_empty_input(self, parser):
        assert parser.fit([]) == []

    def test_wildcarded_input(self, parser):
        # pre-processed benchmark data contains <*> markers
        msgs = ["took <*> ms", "took <*> ms", "took <*> ms"]
        assignments = parser.fit(msgs)
        assert len(set(assignments)) == 1

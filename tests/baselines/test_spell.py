"""Spell: LCS computation and streaming template refinement."""

import pytest

from repro.baselines import Spell
from repro.baselines.base import WILDCARD
from repro.baselines.spell import _lcs


class TestLcs:
    def test_classic(self):
        assert _lcs(list("ABCBDAB"), list("BDCABA")) in (
            list("BCBA"), list("BDAB"), list("BCAB"),
        )

    def test_identical(self):
        assert _lcs(["a", "b"], ["a", "b"]) == ["a", "b"]

    def test_disjoint(self):
        assert _lcs(["a"], ["b"]) == []

    def test_empty(self):
        assert _lcs([], ["a"]) == []


class TestClustering:
    def test_same_structure_joins(self):
        spell = Spell()
        msgs = [f"Accepted password for user{i} from host{i}" for i in range(4)]
        assert len(set(spell.fit(msgs))) == 1

    def test_template_refined_to_lcs(self):
        spell = Spell()
        spell.fit(["open file alpha now", "open file beta now"])
        (template,) = spell.templates()
        assert template == f"open file {WILDCARD} now"

    def test_below_tau_splits(self):
        spell = Spell(tau=0.9)
        a = spell.fit(["alpha beta gamma", "alpha other thing"])
        assert a[0] != a[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            Spell(tau=0.0)

"""Property test: every mined pattern re-matches its own evidence.

A pattern is mined *from* concrete messages and stores some of them as
examples; if the pattern (or its parser compilation) ever failed to
match the very messages it generalised, exports would ship rules that
reject their own test cases.  Stated as a randomized property over
seeded template traffic.
"""

import pytest

from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.parser.parser import Parser

from tests.conftest import MessageGenerator


@pytest.mark.parametrize("seed", range(4))
def test_mined_patterns_rematch_their_examples(seed: int) -> None:
    generator = MessageGenerator(seed=seed)
    rtg = SequenceRTG(db=PatternDB())
    result = rtg.analyze_by_service(generator.records(400, n_services=3))
    assert result.n_new_patterns > 0

    checked = 0
    for row in rtg.db.rows():
        pattern = row.to_pattern()
        parser = Parser([pattern])
        for example in row.examples:
            scanned = rtg.scanner.scan(example, service=row.service)
            hit = parser.match(scanned)
            assert hit is not None, (
                f"pattern {row.id} ({row.pattern_text!r}) does not match "
                f"its own example {example!r}"
            )
            assert hit.pattern.id == row.id
            checked += 1
    assert checked > 0


def test_full_parser_matches_every_example(seed: int = 7) -> None:
    """The service's complete parser (all patterns at once) must also
    accept each stored example — patterns may shadow each other, but
    none of the evidence may become unparseable."""
    generator = MessageGenerator(seed=seed)
    rtg = SequenceRTG(db=PatternDB())
    rtg.analyze_by_service(generator.records(400, n_services=2))

    for service in rtg.db.services():
        parser = rtg.parser_for(service)
        for row in rtg.db.rows(service=service):
            for example in row.examples:
                scanned = rtg.scanner.scan(example, service=service)
                assert parser.match(scanned) is not None

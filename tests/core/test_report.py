"""Administrator review report."""

from repro.analyzer.pattern import Pattern
from repro.core.patterndb import PatternDB
from repro.core.report import priority_score, review_report


def seeded_db() -> PatternDB:
    db = PatternDB()
    strong = Pattern.from_text("conn from %srcip% port %srcport% ok", "net")
    strong.support = 500
    strong.add_example("conn from 1.2.3.4 port 22 ok")
    db.upsert(strong)
    noisy = Pattern.from_text("%string% %string1% %string2%", "net")
    noisy.support = 9_000  # huge volume but all-variable
    db.upsert(noisy)
    rare = Pattern.from_text("disk sda failed badly", "storage")
    rare.support = 2
    db.upsert(rare)
    return db


class TestRanking:
    def test_quality_beats_raw_volume(self):
        db = seeded_db()
        rows = db.rows()
        ranked = sorted(rows, key=priority_score, reverse=True)
        assert ranked[0].pattern_text.startswith("conn from")

    def test_report_orders_and_annotates(self):
        report = review_report(seeded_db())
        conn = report.index("conn from")
        noisy = report.index("%string% %string1% %string2%")
        assert conn < noisy
        assert "⚠ all-variable pattern" in report
        assert "syslog-ng: `conn from @IPv4:srcip@" in report

    def test_examples_included(self):
        report = review_report(seeded_db())
        assert "`conn from 1.2.3.4 port 22 ok`" in report


class TestSelection:
    def test_filters_apply(self):
        report = review_report(seeded_db(), max_complexity=0.8)
        assert "%string2%" not in report

    def test_service_scope(self):
        report = review_report(seeded_db(), service="storage")
        assert "disk sda" in report and "conn from" not in report

    def test_limit(self):
        report = review_report(seeded_db(), limit=1)
        assert report.count("## ") == 1

    def test_empty_selection(self):
        report = review_report(seeded_db(), min_count=10**9)
        assert "No candidate patterns" in report


class TestCli:
    def test_report_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        db_path = str(tmp_path / "r.db")
        log = tmp_path / "in.log"
        log.write_text(
            "\n".join(
                f"conn from 10.0.0.{i} port {4000+i} up" for i in range(8)
            )
        )
        main(["--db", db_path, "mine", str(log), "--service", "net"])
        capsys.readouterr()
        main(["--db", db_path, "report", "--service", "net"])
        out = capsys.readouterr().out
        assert "# Sequence-RTG pattern review" in out
        assert "%srcip%" in out

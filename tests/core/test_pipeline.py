"""AnalyzeByService pipeline: the Fig. 2 workflow semantics."""

import pytest

from repro.core.config import RTGConfig
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.core.records import LogRecord


class TestFirstBatch:
    def test_discovers_per_service(self, rtg, ssh_records, hdfs_records):
        result = rtg.analyze_by_service(ssh_records + hdfs_records)
        assert result.n_records == len(ssh_records) + len(hdfs_records)
        assert result.n_services == 2
        assert result.n_matched == 0  # empty database: nothing parses
        assert result.n_unmatched == result.n_records
        assert result.n_new_patterns == 2
        services = {p.service for p in result.new_patterns}
        assert services == {"sshd", "hdfs"}

    def test_length_partitioning(self, rtg):
        records = [
            LogRecord("svc", "a b c"),
            LogRecord("svc", "a b c d"),
            LogRecord("svc", "a b"),
        ]
        result = rtg.analyze_by_service(records)
        assert result.n_partitions == 3

    def test_timings_and_trie_telemetry(self, rtg, ssh_records):
        result = rtg.analyze_by_service(ssh_records)
        assert set(result.timings) >= {"scan", "parse", "analyze", "persist"}
        assert result.max_trie_nodes > 0


class TestParseFirst:
    """"If a match is found ... no further processing occurs for this
    message" (paper §III)."""

    def test_second_batch_matches_known(self, rtg, ssh_records):
        rtg.analyze_by_service(ssh_records)
        more = [
            LogRecord("sshd", "Accepted password for user99 from 10.9.9.9 port 41999 ssh2")
        ]
        result = rtg.analyze_by_service(more)
        assert result.n_matched == 1
        assert result.n_unmatched == 0
        assert result.n_new_patterns == 0

    def test_match_updates_db_statistics(self, rtg, ssh_records):
        rtg.analyze_by_service(ssh_records)
        (row_before,) = rtg.db.rows(service="sshd")
        rtg.analyze_by_service(
            [LogRecord("sshd", "Accepted password for userx from 10.1.1.1 port 40100 ssh2")]
        )
        (row_after,) = rtg.db.rows(service="sshd")
        assert row_after.match_count == row_before.match_count + 1

    def test_services_do_not_cross_match(self, rtg, ssh_records):
        rtg.analyze_by_service(ssh_records)
        # the same message under a new service must not match sshd patterns
        result = rtg.analyze_by_service(
            [LogRecord("other", ssh_records[0].message)]
        )
        assert result.n_matched == 0
        assert result.n_new_patterns >= 0  # analysed under its own service


class TestSaveThreshold:
    def test_below_threshold_not_persisted(self):
        config = RTGConfig(save_threshold=3)
        rtg = SequenceRTG(db=PatternDB(), config=config)
        records = [LogRecord("svc", "rare event 1 x")]
        result = rtg.analyze_by_service(records)
        assert result.n_new_patterns == 0
        assert result.n_below_threshold == 1
        assert rtg.db.rows() == []

    def test_at_threshold_persisted(self):
        config = RTGConfig(save_threshold=3)
        rtg = SequenceRTG(db=PatternDB(), config=config)
        records = [LogRecord("svc", f"evt blk_{i} done") for i in range(3)]
        result = rtg.analyze_by_service(records)
        assert result.n_new_patterns == 1


class TestParserCache:
    def test_parser_reused_and_extended(self, rtg, ssh_records):
        parser1 = rtg.parser_for("sshd")
        assert len(parser1) == 0
        rtg.analyze_by_service(ssh_records)
        parser2 = rtg.parser_for("sshd")
        assert parser2 is parser1  # same cached object, updated in place
        assert len(parser2) == 1

    def test_invalidate_reloads_from_db(self, rtg, ssh_records):
        rtg.analyze_by_service(ssh_records)
        rtg.invalidate_parsers()
        parser = rtg.parser_for("sshd")
        assert len(parser) == 1  # reloaded from the database

    def test_persistence_across_instances(self, ssh_records, tmp_path):
        path = str(tmp_path / "p.db")
        rtg1 = SequenceRTG(db=PatternDB(path))
        rtg1.analyze_by_service(ssh_records)
        rtg2 = SequenceRTG(db=PatternDB(path))
        result = rtg2.analyze_by_service(
            [LogRecord("sshd", "Accepted password for usery from 10.2.2.2 port 40222 ssh2")]
        )
        assert result.n_matched == 1


class TestProcessStream:
    def test_yields_one_result_per_batch(self, rtg, ssh_records):
        batches = [ssh_records[:4], ssh_records[4:]]
        results = list(rtg.process_stream(batches))
        assert len(results) == 2
        assert results[0].n_records == 4


class TestLegacyMode:
    def test_single_trie_over_everything(self, rtg, ssh_records, hdfs_records):
        patterns = rtg.analyze_legacy(ssh_records + hdfs_records)
        assert patterns  # mixed services, one trie
        assert rtg.last_legacy_trie_nodes > 0
        # legacy mode persists nothing
        assert rtg.db.rows() == []

    def test_matched_fraction_property(self, rtg, ssh_records):
        result = rtg.analyze_by_service(ssh_records)
        assert result.matched_fraction == 0.0
        assert rtg.analyze_by_service(ssh_records[:1]).matched_fraction == 1.0


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_size": 0},
            {"save_threshold": 0},
            {"export_max_complexity": 1.5},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            RTGConfig(**kwargs)


class TestDeterminism:
    def test_two_runs_identical_database(self, ssh_records, hdfs_records):
        """Reproducibility end to end: two pipelines over the same batch
        produce byte-identical pattern rows (ids, texts, counts)."""
        from repro.workflow.stream import ProductionStream, StreamConfig

        records = list(
            ProductionStream(StreamConfig(n_services=20, seed=77)).records(800)
        )

        def run():
            rtg = SequenceRTG(db=PatternDB())
            rtg.analyze_by_service(records)
            return sorted(
                (r.id, r.pattern_text, r.match_count) for r in rtg.db.rows()
            )

        assert run() == run()

    def test_batch_order_within_service_does_not_change_ids(self, ssh_records):
        """Shuffling a batch changes nothing: the trie is order-insensitive
        for same-length messages of one service."""
        import random

        shuffled = list(ssh_records)
        random.Random(5).shuffle(shuffled)
        a = SequenceRTG(db=PatternDB())
        a.analyze_by_service(ssh_records)
        b = SequenceRTG(db=PatternDB())
        b.analyze_by_service(shuffled)
        assert {r.id for r in a.db.rows()} == {r.id for r in b.db.rows()}

"""Staged mining engine: cross-path equivalence and observer contract.

The tentpole invariant: serial, cold-pool and warm-pool front ends run
the *same* :class:`~repro.core.engine.MiningEngine` — only the
persistence seam differs — so their full database dumps (ids, texts,
token structures, supports, examples, timestamps) are bit-identical,
with the fast lane on or off.
"""

from datetime import datetime, timezone

import pytest

from repro.core.config import RTGConfig
from repro.core.engine import (
    MiningEngine,
    PersistStage,
    StageObserver,
    TimingObserver,
)
from repro.core.fastpath import FastPath
from repro.core.parallel import ParallelSequenceRTG, PersistentParallelSequenceRTG
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.core.records import LogRecord
from repro.analyzer import ANALYZER_BACKENDS, AnalyzerConfig
from repro.parser import PARSER_BACKENDS, ParserConfig
from repro.scanner import ScannerConfig
from repro.workflow.stream import ProductionStream, StreamConfig

NOW = datetime(2026, 1, 1, tzinfo=timezone.utc)

#: the Fig. 2 workflow order every execution path must follow
STAGE_ORDER = ["scan", "parse", "partition_length", "analyze", "persist"]


def batches_for_test(n_batches=4, per_batch=250, n_services=9, seed=11,
                     duplicate_fraction=0.5):
    stream = ProductionStream(StreamConfig(
        n_services=n_services, seed=seed,
        duplicate_fraction=duplicate_fraction,
    ))
    return [list(stream.records(per_batch)) for _ in range(n_batches)]


def full_dump(db):
    """The whole database, order-normalised: ``rows()`` breaks
    match-count ties by insertion order, which no front end promises."""
    return sorted(db.dump(), key=lambda entry: entry["id"])


class TestCrossPathEquivalence:
    """Same engine + same batches ⇒ same database, whatever drives it."""

    @pytest.mark.parametrize("enable_fastpath", [True, False])
    def test_serial_cold_warm_dumps_bit_identical(self, enable_fastpath):
        config = RTGConfig(enable_fastpath=enable_fastpath)
        batches = batches_for_test()

        serial = SequenceRTG(db=PatternDB(), config=config)
        for _ in serial.process_stream(batches, now=NOW):
            pass

        cold = ParallelSequenceRTG(db=PatternDB(), config=config, n_workers=3)
        for _ in cold.process_stream(batches, now=NOW):
            pass

        with PersistentParallelSequenceRTG(
            db=PatternDB(), config=config, n_workers=3
        ) as warm:
            for _ in warm.process_stream(batches, now=NOW):
                pass
            reference = full_dump(serial.db)
            assert reference  # the stream must actually mine something
            assert full_dump(cold.db) == reference
            assert full_dump(warm.db) == reference

    def test_fastpath_does_not_change_the_dump(self):
        batches = batches_for_test()
        dumps = []
        for enable_fastpath in (True, False):
            rtg = SequenceRTG(
                db=PatternDB(),
                config=RTGConfig(enable_fastpath=enable_fastpath),
            )
            for batch in batches:
                rtg.analyze_by_service(batch, now=NOW)
            dumps.append(full_dump(rtg.db))
        assert dumps[0] == dumps[1]

    @pytest.mark.parametrize("enable_fastpath", [True, False])
    def test_parser_backend_does_not_change_the_dump(self, enable_fastpath):
        """Both matcher backends mine the identical database."""
        batches = batches_for_test()
        dumps = []
        for backend in PARSER_BACKENDS:
            rtg = SequenceRTG(
                db=PatternDB(),
                config=RTGConfig(
                    enable_fastpath=enable_fastpath,
                    parser=ParserConfig(backend=backend),
                ),
            )
            for batch in batches:
                rtg.analyze_by_service(batch, now=NOW)
            dumps.append(full_dump(rtg.db))
        assert dumps[0]
        assert dumps[0] == dumps[1]

    def test_serial_cold_warm_bit_identical_with_compiled_parser(self):
        """The compiled matcher keeps all three execution paths on the
        reference backend's exact database."""
        batches = batches_for_test()
        reference = SequenceRTG(db=PatternDB(), config=RTGConfig())
        for _ in reference.process_stream(batches, now=NOW):
            pass
        expected = full_dump(reference.db)
        assert expected

        config = RTGConfig(parser=ParserConfig(backend="compiled"))
        serial = SequenceRTG(db=PatternDB(), config=config)
        for _ in serial.process_stream(batches, now=NOW):
            pass
        assert full_dump(serial.db) == expected

        cold = ParallelSequenceRTG(db=PatternDB(), config=config, n_workers=3)
        for _ in cold.process_stream(batches, now=NOW):
            pass
        assert full_dump(cold.db) == expected

        with PersistentParallelSequenceRTG(
            db=PatternDB(), config=config, n_workers=3
        ) as warm:
            for _ in warm.process_stream(batches, now=NOW):
                pass
            assert full_dump(warm.db) == expected

    @pytest.mark.parametrize("enable_fastpath", [True, False])
    def test_analyzer_backend_does_not_change_the_dump(self, enable_fastpath):
        """Both miner backends produce the identical database.  With the
        fast lane off the analyser receives raw per-occurrence
        partitions, exercising the compiled backend's in-batch
        signature grouping."""
        batches = batches_for_test()
        dumps = []
        for backend in ANALYZER_BACKENDS:
            rtg = SequenceRTG(
                db=PatternDB(),
                config=RTGConfig(
                    enable_fastpath=enable_fastpath,
                    analyzer=AnalyzerConfig(backend=backend),
                ),
            )
            for batch in batches:
                rtg.analyze_by_service(batch, now=NOW)
            dumps.append(full_dump(rtg.db))
        assert dumps[0]
        assert dumps[0] == dumps[1]

    def test_serial_cold_warm_bit_identical_all_compiled(self):
        """Satellite: scanner, parser and analyser all compiled at once —
        the three backends compose, and every execution path stays on
        the all-reference database."""
        batches = batches_for_test()
        reference = SequenceRTG(db=PatternDB(), config=RTGConfig())
        for _ in reference.process_stream(batches, now=NOW):
            pass
        expected = full_dump(reference.db)
        assert expected

        config = RTGConfig(
            scanner=ScannerConfig(backend="compiled"),
            parser=ParserConfig(backend="compiled"),
            analyzer=AnalyzerConfig(backend="compiled"),
        )
        serial = SequenceRTG(db=PatternDB(), config=config)
        for _ in serial.process_stream(batches, now=NOW):
            pass
        assert full_dump(serial.db) == expected

        cold = ParallelSequenceRTG(db=PatternDB(), config=config, n_workers=3)
        for _ in cold.process_stream(batches, now=NOW):
            pass
        assert full_dump(cold.db) == expected

        with PersistentParallelSequenceRTG(
            db=PatternDB(), config=config, n_workers=3
        ) as warm:
            for _ in warm.process_stream(batches, now=NOW):
                pass
            assert full_dump(warm.db) == expected


class _RecordingObserver(StageObserver):
    def __init__(self):
        self.events = []

    def on_batch_start(self, result):
        self.events.append(("batch_start", None, None))

    def on_stage_start(self, stage, ctx):
        self.events.append(("start", stage, ctx.service))

    def on_stage_end(self, stage, ctx):
        self.events.append(("end", stage, ctx.service))

    def on_batch_end(self, result):
        self.events.append(("batch_end", None, None))


class TestObserverContract:
    def test_stage_events_paired_in_workflow_order(self):
        rtg = SequenceRTG(db=PatternDB())
        recorder = _RecordingObserver()
        rtg.engine.observers.append(recorder)
        records = [
            LogRecord("sshd", "Accepted password for alice from 10.0.0.1"),
            LogRecord("hdfs", "Block blk_1 replicated to node-7"),
        ]
        rtg.analyze_by_service(records, now=NOW)

        events = recorder.events
        assert events[0] == ("batch_start", None, None)
        assert events[-1] == ("batch_end", None, None)
        inner = events[1:-1]
        # per service group: a start/end pair per stage, Fig. 2 order
        assert len(inner) == 2 * len(STAGE_ORDER) * 2
        for g in range(2):
            group = inner[g * 2 * len(STAGE_ORDER):(g + 1) * 2 * len(STAGE_ORDER)]
            (service,) = {svc for _, _, svc in group}
            assert [(kind, stage) for kind, stage, _ in group] == [
                (kind, stage)
                for stage in STAGE_ORDER
                for kind in ("start", "end")
            ]

    def test_timing_observer_counts_stage_executions(self):
        rtg = SequenceRTG(db=PatternDB())
        timing = next(
            o for o in rtg.engine.observers if isinstance(o, TimingObserver)
        )
        batches = batches_for_test(n_batches=2, per_batch=80, n_services=5)
        for batch in batches:
            result = rtg.analyze_by_service(batch)
            # the timer is reset per batch and driven purely by stage
            # events: one completed execution per stage per service group
            for stage in STAGE_ORDER:
                assert timing.timer.count(stage) == result.n_services
            assert set(result.timings) == set(STAGE_ORDER)

    def test_timings_survive_with_fastpath_disabled(self):
        rtg = SequenceRTG(
            db=PatternDB(), config=RTGConfig(enable_fastpath=False)
        )
        result = rtg.analyze_by_service(
            [LogRecord("svc", "hello world one two")]
        )
        assert set(result.timings) == set(STAGE_ORDER)
        assert result.cache == {}  # no FastPathObserver without the lane


class TestSnapshotDelta:
    def test_new_counter_deltas_against_zero(self):
        # a key present only in the after-snapshot must not raise
        before = {"scan_hits": 3}
        after = {"scan_hits": 5, "brand_new_counter": 2}
        assert FastPath.snapshot_delta(before, after) == {
            "scan_hits": 2,
            "brand_new_counter": 2,
        }

    def test_matches_live_snapshots(self):
        rtg = SequenceRTG(db=PatternDB())
        before = rtg.fastpath.snapshot()
        result = rtg.analyze_by_service(
            [LogRecord("svc", "dup msg"), LogRecord("svc", "dup msg")]
        )
        after = rtg.fastpath.snapshot()
        assert result.cache == FastPath.snapshot_delta(before, after)
        assert result.cache["dedup_duplicates"] == 1


class _CountingPersist(PersistStage):
    """Persistence seam double: counts runs instead of writing."""

    def __init__(self, rtg):
        super().__init__(rtg)
        self.seen_services = []

    def run(self, ctx):
        self.seen_services.append(ctx.service)


class TestPersistSeam:
    def test_custom_persist_stage_replaces_database_writes(self):
        rtg = SequenceRTG(db=PatternDB())
        persist = _CountingPersist(rtg)
        engine = MiningEngine(rtg, persist=persist)
        records = [
            LogRecord("a", "alpha beta gamma"),
            LogRecord("b", "delta epsilon zeta"),
        ]
        result = engine.run(records, now=NOW)
        assert sorted(persist.seen_services) == ["a", "b"]
        assert rtg.db.rows() == []  # nothing reached the database
        assert "persist" in result.timings  # still timed under its name

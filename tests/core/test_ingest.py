"""Stream ingester: JSON-lines parsing, batching, malformed input."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.core.ingest import StreamIngester, parse_record
from repro.core.records import LogRecord


class TestParseRecord:
    def test_valid_record(self):
        rec = parse_record('{"service": "sshd", "message": "hello world"}')
        assert rec == LogRecord("sshd", "hello world")

    def test_extra_fields_tolerated(self):
        rec = parse_record('{"service": "s", "message": "m", "host": "h"}')
        assert rec is not None

    @pytest.mark.parametrize(
        "line",
        [
            "",
            "   ",
            "not json",
            "[1, 2]",
            '"just a string"',
            '{"service": "s"}',  # missing message
            '{"message": "m"}',  # missing service
            '{"service": 5, "message": "m"}',  # wrong type
            '{"service": "", "message": "m"}',  # empty service
            '{"service": "s", "message": 7}',
        ],
    )
    def test_malformed(self, line):
        assert parse_record(line) is None

    def test_message_may_be_empty_string(self):
        assert parse_record('{"service": "s", "message": ""}') is not None

    @given(st.text(max_size=80))
    def test_never_raises(self, line):
        parse_record(line)  # must not throw on arbitrary input


def lines(n: int, service="svc"):
    return [json.dumps({"service": service, "message": f"msg {i}"}) for i in range(n)]


class TestBatching:
    def test_exact_batches(self):
        ingester = StreamIngester(batch_size=10)
        batches = list(ingester.batches(lines(30)))
        assert [len(b) for b in batches] == [10, 10, 10]
        assert ingester.stats.n_batches == 3

    def test_partial_final_batch(self):
        ingester = StreamIngester(batch_size=10)
        batches = list(ingester.batches(lines(25)))
        assert [len(b) for b in batches] == [10, 10, 5]

    def test_drop_partial(self):
        ingester = StreamIngester(batch_size=10, drop_partial=True)
        batches = list(ingester.batches(lines(25)))
        assert [len(b) for b in batches] == [10, 10]

    def test_malformed_lines_skipped_and_counted(self):
        stream = lines(5) + ["garbage", "{bad json"] + lines(5)
        ingester = StreamIngester(batch_size=100)
        batches = list(ingester.batches(stream))
        assert len(batches) == 1 and len(batches[0]) == 10
        assert ingester.stats.n_malformed == 2
        assert ingester.stats.n_lines == 12
        assert ingester.stats.n_records == 10

    def test_empty_stream(self):
        ingester = StreamIngester(batch_size=10)
        assert list(ingester.batches([])) == []
        assert ingester.stats.n_batches == 0

    def test_batches_from_records(self):
        records = [LogRecord("s", str(i)) for i in range(7)]
        ingester = StreamIngester(batch_size=3)
        batches = list(ingester.batches_from_records(records))
        assert [len(b) for b in batches] == [3, 3, 1]

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            StreamIngester(batch_size=0)

    def test_lazy_consumption(self):
        """The ingester must not drain the stream ahead of the consumer
        (production pipes are infinite)."""
        consumed = []

        def stream():
            for i in range(100):
                consumed.append(i)
                yield json.dumps({"service": "s", "message": str(i)})

        ingester = StreamIngester(batch_size=5)
        gen = ingester.batches(stream())
        next(gen)
        assert len(consumed) == 5


class TestPipelinedBatching:
    def test_same_batches_same_order_as_plain(self):
        plain = list(StreamIngester(batch_size=10).batches(lines(95)))
        piped = list(StreamIngester(batch_size=10).batches_pipelined(lines(95)))
        assert piped == plain
        assert [len(b) for b in piped] == [10] * 9 + [5]

    def test_stats_complete_after_consumption(self):
        ingester = StreamIngester(batch_size=10)
        stream = lines(20) + ["garbage"] + lines(4)
        n = sum(len(b) for b in ingester.batches_pipelined(stream))
        assert n == 24
        assert ingester.stats.n_records == 24
        assert ingester.stats.n_malformed == 1
        assert ingester.stats.n_batches == 3

    def test_early_close_stops_reader_without_loss(self):
        """Closing the generator early must neither lose nor reorder the
        batches already yielded, and must not keep draining the source
        beyond the prefetch window (production pipes are infinite)."""
        consumed = []

        def stream():
            for i in range(1000):
                consumed.append(i)
                yield json.dumps({"service": "s", "message": f"msg {i}"})

        ingester = StreamIngester(batch_size=10)
        gen = ingester.batches_pipelined(stream(), prefetch=2)
        first = next(gen)
        second = next(gen)
        gen.close()  # must return promptly, not hang on the reader
        assert [r.message for r in first] == [f"msg {i}" for i in range(10)]
        assert [r.message for r in second] == [f"msg {i}" for i in range(10, 20)]
        # 2 yielded + at most the prefetch window + one in-flight batch
        assert len(consumed) <= 10 * (2 + 2 + 1) + 1

    def test_source_exception_propagates(self):
        def exploding():
            yield from lines(15)
            raise OSError("pipe broke")

        ingester = StreamIngester(batch_size=10)
        gen = ingester.batches_pipelined(exploding())
        assert len(next(gen)) == 10
        with pytest.raises(OSError, match="pipe broke"):
            list(gen)

    def test_invalid_prefetch(self):
        ingester = StreamIngester(batch_size=10)
        with pytest.raises(ValueError):
            next(ingester.batches_pipelined(lines(5), prefetch=0))

    def test_prefetch_runs_ahead_of_consumer(self):
        """Double buffering: while the consumer sits on batch N, the
        reader should already have parsed batch N+1 into the queue."""
        import time

        consumed = []

        def stream():
            for i in range(60):
                consumed.append(i)
                yield json.dumps({"service": "s", "message": f"msg {i}"})

        ingester = StreamIngester(batch_size=10)
        gen = ingester.batches_pipelined(stream(), prefetch=2)
        next(gen)
        deadline = time.monotonic() + 2.0
        while len(consumed) < 30 and time.monotonic() < deadline:
            time.sleep(0.01)
        # without touching the generator again, the reader filled the
        # prefetch window (2 queued batches beyond the one yielded)
        assert len(consumed) >= 30
        gen.close()

    def test_consumer_exception_close_joins_reader(self):
        """A consumer that dies mid-iteration closes the generator; the
        cleanup must unblock a reader stuck on the full prefetch queue
        and join it, not leak it behind a single drain pass."""
        import threading
        import time

        started = threading.Event()

        def endless():
            i = 0
            while True:
                started.set()
                yield json.dumps({"service": "s", "message": f"msg {i}"})
                i += 1

        ingester = StreamIngester(batch_size=5)
        gen = ingester.batches_pipelined(endless(), prefetch=1)

        def consume():
            for _ in gen:
                raise OSError("consumer died")

        with pytest.raises(OSError, match="consumer died"):
            try:
                consume()
            finally:
                gen.close()
        started.wait(timeout=2.0)
        # the reader thread wound down instead of spinning on the queue
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            readers = [
                t for t in threading.enumerate()
                if t.name == "ingest-pipeline" and t.is_alive()
            ]
            if not readers:
                break
            time.sleep(0.01)
        assert not readers

    def test_abandoned_generator_cleanup_on_gc(self):
        """Even without an explicit close(), garbage collection runs the
        generator's finally and the reader exits."""
        import gc
        import threading
        import time

        ingester = StreamIngester(batch_size=5)
        gen = ingester.batches_pipelined(lines(100), prefetch=1)
        next(gen)
        del gen
        gc.collect()
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            readers = [
                t for t in threading.enumerate()
                if t.name == "ingest-pipeline" and t.is_alive()
            ]
            if not readers:
                break
            time.sleep(0.01)
        assert not readers


class TestIngestMetrics:
    def registry(self):
        from repro.obs.metrics import MetricsRegistry

        return MetricsRegistry()

    def test_counters_published_per_batch(self):
        registry = self.registry()
        ingester = StreamIngester(batch_size=10, metrics=registry)
        stream = lines(15) + ["garbage", "{broken"] + lines(5)
        list(ingester.batches(stream))
        assert registry.counter("rtg_ingest_lines_total").value() == 22
        assert registry.counter("rtg_ingest_malformed_total").value() == 2

    def test_counters_match_stats_through_pipelined_path(self):
        registry = self.registry()
        ingester = StreamIngester(batch_size=10, metrics=registry)
        stream = lines(20) + ["not json"] + lines(3)
        list(ingester.batches_pipelined(stream))
        assert (
            registry.counter("rtg_ingest_lines_total").value()
            == ingester.stats.n_lines
            == 24
        )
        assert registry.counter("rtg_ingest_malformed_total").value() == 1

    def test_no_metrics_is_the_default(self):
        ingester = StreamIngester(batch_size=10)
        list(ingester.batches(lines(5)))  # must not touch a registry

    def test_batches_from_records_counts_lines(self):
        """Pre-parsed records are still stream items: IngestStats reads
        the same whichever entry point fed the run."""
        registry = self.registry()
        records = [LogRecord("s", f"m {i}") for i in range(7)]
        ingester = StreamIngester(batch_size=3, metrics=registry)
        list(ingester.batches_from_records(records))
        assert ingester.stats.n_lines == 7
        assert ingester.stats.n_records == 7
        assert ingester.stats.n_malformed == 0
        assert registry.counter("rtg_ingest_lines_total").value() == 7


class TestReaderJoinTimeout:
    def test_invalid_join_timeout(self):
        with pytest.raises(ValueError):
            StreamIngester(batch_size=10, join_timeout=0)
        ingester = StreamIngester(batch_size=10)
        with pytest.raises(ValueError):
            next(ingester.batches_pipelined(lines(5), join_timeout=-1))

    def test_blocked_source_leak_is_logged_and_counted(self, caplog):
        """A reader stuck inside the source cannot be joined; after
        join_timeout the leak is reported instead of hanging close()."""
        import logging
        import threading
        import time

        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        forever = threading.Event()
        entered = threading.Event()

        def blocking_source():
            yield from lines(10)
            entered.set()
            forever.wait()  # a socket read that never returns

        ingester = StreamIngester(
            batch_size=5, join_timeout=0.3, metrics=registry
        )
        gen = ingester.batches_pipelined(blocking_source(), prefetch=1)
        assert len(next(gen)) == 5
        # wait until the reader is actually stuck inside the source —
        # closing earlier lets it notice the stop flag and exit cleanly
        assert entered.wait(timeout=5.0)
        start = time.monotonic()
        with caplog.at_level(logging.WARNING, logger="repro.ingest"):
            gen.close()
        elapsed = time.monotonic() - start
        assert elapsed < 5.0  # bounded by join_timeout, not forever
        assert any("did not exit" in r.message for r in caplog.records)
        assert (
            registry.counter("rtg_ingest_reader_leaks_total").value() == 1
        )
        forever.set()  # release the leaked daemon thread

    def test_fast_source_does_not_warn(self, caplog):
        import logging

        ingester = StreamIngester(batch_size=10, join_timeout=5.0)
        with caplog.at_level(logging.WARNING, logger="repro.ingest"):
            list(ingester.batches_pipelined(lines(25)))
        assert not caplog.records


class TestDriveStreamCleanup:
    def test_closing_the_driver_closes_the_source(self):
        """drive_stream propagates close() to the batches generator, so
        the pipelined ingester's reader joins when the consumer dies."""
        from repro.core.patterndb import PatternDB
        from repro.core.pipeline import SequenceRTG

        closed = []

        def source():
            try:
                while True:
                    yield [LogRecord("svc", "ping ok")]
            finally:
                closed.append(True)

        rtg = SequenceRTG(db=PatternDB())
        results = rtg.process_stream(source())
        next(results)
        results.close()
        assert closed == [True]

"""Stream ingester: JSON-lines parsing, batching, malformed input."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.core.ingest import StreamIngester, parse_record
from repro.core.records import LogRecord


class TestParseRecord:
    def test_valid_record(self):
        rec = parse_record('{"service": "sshd", "message": "hello world"}')
        assert rec == LogRecord("sshd", "hello world")

    def test_extra_fields_tolerated(self):
        rec = parse_record('{"service": "s", "message": "m", "host": "h"}')
        assert rec is not None

    @pytest.mark.parametrize(
        "line",
        [
            "",
            "   ",
            "not json",
            "[1, 2]",
            '"just a string"',
            '{"service": "s"}',  # missing message
            '{"message": "m"}',  # missing service
            '{"service": 5, "message": "m"}',  # wrong type
            '{"service": "", "message": "m"}',  # empty service
            '{"service": "s", "message": 7}',
        ],
    )
    def test_malformed(self, line):
        assert parse_record(line) is None

    def test_message_may_be_empty_string(self):
        assert parse_record('{"service": "s", "message": ""}') is not None

    @given(st.text(max_size=80))
    def test_never_raises(self, line):
        parse_record(line)  # must not throw on arbitrary input


def lines(n: int, service="svc"):
    return [json.dumps({"service": service, "message": f"msg {i}"}) for i in range(n)]


class TestBatching:
    def test_exact_batches(self):
        ingester = StreamIngester(batch_size=10)
        batches = list(ingester.batches(lines(30)))
        assert [len(b) for b in batches] == [10, 10, 10]
        assert ingester.stats.n_batches == 3

    def test_partial_final_batch(self):
        ingester = StreamIngester(batch_size=10)
        batches = list(ingester.batches(lines(25)))
        assert [len(b) for b in batches] == [10, 10, 5]

    def test_drop_partial(self):
        ingester = StreamIngester(batch_size=10, drop_partial=True)
        batches = list(ingester.batches(lines(25)))
        assert [len(b) for b in batches] == [10, 10]

    def test_malformed_lines_skipped_and_counted(self):
        stream = lines(5) + ["garbage", "{bad json"] + lines(5)
        ingester = StreamIngester(batch_size=100)
        batches = list(ingester.batches(stream))
        assert len(batches) == 1 and len(batches[0]) == 10
        assert ingester.stats.n_malformed == 2
        assert ingester.stats.n_lines == 12
        assert ingester.stats.n_records == 10

    def test_empty_stream(self):
        ingester = StreamIngester(batch_size=10)
        assert list(ingester.batches([])) == []
        assert ingester.stats.n_batches == 0

    def test_batches_from_records(self):
        records = [LogRecord("s", str(i)) for i in range(7)]
        ingester = StreamIngester(batch_size=3)
        batches = list(ingester.batches_from_records(records))
        assert [len(b) for b in batches] == [3, 3, 1]

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            StreamIngester(batch_size=0)

    def test_lazy_consumption(self):
        """The ingester must not drain the stream ahead of the consumer
        (production pipes are infinite)."""
        consumed = []

        def stream():
            for i in range(100):
                consumed.append(i)
                yield json.dumps({"service": "s", "message": str(i)})

        ingester = StreamIngester(batch_size=5)
        gen = ingester.batches(stream())
        next(gen)
        assert len(consumed) == 5

"""Golden-file export tests.

One fixed seeded corpus is mined with a pinned timestamp and exported in
every supported format; the rendered documents are compared
byte-for-byte against committed fixtures.  Any change to the exporters —
tag mappings, escaping, document structure, metadata fields — shows up
as a reviewable fixture diff instead of silently breaking downstream
syslog-ng/Logstash deployments.

Regenerate after an intentional exporter change with:

    PYTHONPATH=src python tests/core/test_export_golden.py --regen
"""

from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.core.export import FORMATS, export_patterns
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG

from tests.conftest import MessageGenerator

FIXTURE_DIR = Path(__file__).parent.parent / "fixtures" / "exports"
FIXTURE_NAMES = {
    "syslog-ng": "patterns.syslog-ng.xml",
    "yaml": "patterns.yaml",
    "grok": "patterns.grok",
}
#: pinned mining timestamp — keeps first_seen/last_matched stable
NOW = datetime(2026, 1, 15, 12, 0, 0, tzinfo=timezone.utc)


def mined_db() -> PatternDB:
    """The fixed corpus behind every fixture: two batches (the second
    re-matches the first's patterns, so match counts and last_matched
    are exercised) of seeded template traffic."""
    generator = MessageGenerator(seed=42)
    rtg = SequenceRTG(db=PatternDB())
    rtg.analyze_by_service(generator.records(300, n_services=2), now=NOW)
    rtg.analyze_by_service(generator.records(150, n_services=2), now=NOW)
    return rtg.db


@pytest.fixture(scope="module")
def db() -> PatternDB:
    return mined_db()


@pytest.mark.parametrize("fmt", FORMATS)
def test_export_matches_golden_fixture(db: PatternDB, fmt: str) -> None:
    fixture = FIXTURE_DIR / FIXTURE_NAMES[fmt]
    rendered = export_patterns(db, fmt=fmt)
    assert rendered == fixture.read_text(encoding="utf-8"), (
        f"{fmt} export drifted from {fixture}; if the change is "
        "intentional, regenerate with "
        "`PYTHONPATH=src python tests/core/test_export_golden.py --regen`"
    )


def test_corpus_is_nontrivial(db: PatternDB) -> None:
    """Guard the fixtures' coverage: several services, several patterns,
    matched patterns with stored examples."""
    assert len(db.services()) >= 2
    rows = db.rows()
    assert len(rows) >= 4
    assert any(row.last_matched for row in rows)
    assert any(row.examples for row in rows)


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        sys.exit("usage: python tests/core/test_export_golden.py --regen")
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    fresh = mined_db()
    for fmt, name in FIXTURE_NAMES.items():
        path = FIXTURE_DIR / name
        path.write_text(export_patterns(fresh, fmt=fmt), encoding="utf-8")
        print(f"wrote {path}")

"""Pattern database: persistence, statistics, example cap, pruning."""

from datetime import datetime, timezone

import pytest

from repro.analyzer.pattern import Pattern, VarClass
from repro.core.patterndb import PatternDB


def make_pattern(text="login %string% ok", service="sshd", support=1, examples=()):
    pattern = Pattern.from_text(text, service)
    pattern.support = support
    for e in examples:
        pattern.add_example(e)
    return pattern


T0 = datetime(2021, 9, 1, tzinfo=timezone.utc)
T1 = datetime(2021, 9, 2, tzinfo=timezone.utc)


class TestUpsert:
    def test_insert_and_load(self):
        db = PatternDB()
        pid = db.upsert(make_pattern(support=3, examples=["login a ok"]), now=T0)
        rows = db.rows()
        assert len(rows) == 1
        assert rows[0].id == pid
        assert rows[0].match_count == 3
        assert rows[0].examples == ["login a ok"]
        assert rows[0].first_seen == T0.isoformat()

    def test_reupsert_accumulates(self):
        db = PatternDB()
        db.upsert(make_pattern(support=3), now=T0)
        db.upsert(make_pattern(support=2), now=T1)
        (row,) = db.rows()
        assert row.match_count == 5
        assert row.first_seen == T0.isoformat()
        assert row.last_matched == T1.isoformat()

    def test_requires_service(self):
        db = PatternDB()
        with pytest.raises(ValueError):
            db.upsert(make_pattern(service=""))

    def test_round_trip_to_pattern(self):
        db = PatternDB()
        original = make_pattern("conn from %srcip% port %srcport%", "sshd")
        db.upsert(original, now=T0)
        (row,) = db.rows()
        restored = row.to_pattern()
        assert restored.text == original.text
        assert restored.id == original.id
        assert restored.tokens[2].var_class is VarClass.IPV4


class TestExamples:
    def test_example_cap_three_unique(self):
        db = PatternDB()
        pid = db.upsert(make_pattern(examples=["e1", "e2"]), now=T0)
        db.add_example(pid, "e2")  # duplicate ignored
        db.add_example(pid, "e3")
        db.add_example(pid, "e4")  # over cap
        (row,) = db.rows()
        assert row.examples == ["e1", "e2", "e3"]

    def test_examples_merged_on_reupsert(self):
        db = PatternDB()
        db.upsert(make_pattern(examples=["e1"]), now=T0)
        db.upsert(make_pattern(examples=["e2"]), now=T1)
        (row,) = db.rows()
        assert row.examples == ["e1", "e2"]


class TestQueries:
    def _seed(self, db):
        db.upsert(make_pattern("a %integer%", "svc1", support=10), now=T0)
        db.upsert(make_pattern("b %string% %string1%", "svc1", support=2), now=T0)
        db.upsert(make_pattern("c literal only", "svc2", support=5), now=T0)

    def test_filter_by_service(self):
        db = PatternDB()
        self._seed(db)
        assert len(db.rows(service="svc1")) == 2
        assert len(db.rows(service="svc2")) == 1
        assert db.rows(service="nope") == []

    def test_filter_by_min_count(self):
        db = PatternDB()
        self._seed(db)
        assert len(db.rows(min_count=5)) == 2

    def test_filter_by_complexity(self):
        db = PatternDB()
        self._seed(db)
        rows = db.rows(max_complexity=0.55)
        assert {r.pattern_text for r in rows} == {"a %integer%", "c literal only"}

    def test_services_listing(self):
        db = PatternDB()
        self._seed(db)
        assert db.services() == ["svc1", "svc2"]

    def test_load_service_returns_patterns(self):
        db = PatternDB()
        self._seed(db)
        patterns = db.load_service("svc1")
        assert {p.text for p in patterns} == {"a %integer%", "b %string% %string1%"}
        assert all(p.service == "svc1" for p in patterns)

    def test_counts(self):
        db = PatternDB()
        self._seed(db)
        counts = db.counts()
        assert counts["patterns"] == 3
        assert counts["services"] == 2


class TestRecordMatch:
    def test_bumps_count_and_date(self):
        db = PatternDB()
        pid = db.upsert(make_pattern(support=1), now=T0)
        db.record_match(pid, n=4, now=T1)
        (row,) = db.rows()
        assert row.match_count == 5
        assert row.last_matched == T1.isoformat()


class TestPrune:
    def test_save_threshold(self):
        """Paper §IV: patterns matched fewer times than the threshold are
        considered useless and not kept."""
        db = PatternDB()
        db.upsert(make_pattern("rare %integer%", support=1), now=T0)
        db.upsert(make_pattern("common %integer%", support=50), now=T0)
        removed = db.prune(save_threshold=5)
        assert removed == 1
        (row,) = db.rows()
        assert row.pattern_text == "common %integer%"

    def test_prune_removes_orphan_examples(self):
        db = PatternDB()
        db.upsert(make_pattern("rare %integer%", support=1, examples=["x"]), now=T0)
        db.prune(save_threshold=5)
        assert db.counts()["examples"] == 0


class TestDiskPersistence:
    def test_patterns_survive_reopen(self, tmp_path):
        path = str(tmp_path / "patterns.db")
        with PatternDB(path) as db:
            db.upsert(make_pattern(support=7), now=T0)
        with PatternDB(path) as db2:
            (row,) = db2.rows()
            assert row.match_count == 7


class TestRecordMatches:
    def test_equivalent_to_per_id_record_match(self):
        a, b = PatternDB(), PatternDB()
        pids = []
        for text in ("login %string% ok", "logout %string% ok"):
            pids.append(a.upsert(make_pattern(text), now=T0))
            b.upsert(make_pattern(text), now=T0)
        counts = {pids[0]: 3, pids[1]: 7}
        a.record_matches(counts, now=T1)
        for pid, n in counts.items():
            b.record_match(pid, n=n, now=T1)
        assert a.dump() == b.dump()

    def test_empty_counts_is_a_no_op(self):
        db = PatternDB()
        db.record_matches({}, now=T1)  # must not even open a statement
        assert db.counts()["patterns"] == 0


class TestTransaction:
    def test_rollback_on_error(self, tmp_path):
        path = str(tmp_path / "patterns.db")
        db = PatternDB(path)
        db.upsert(make_pattern("kept %integer%"), now=T0)
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.upsert(make_pattern("doomed %integer%"), now=T0)
                raise RuntimeError("boom")
        db.close()
        with PatternDB(path) as reopened:
            (row,) = reopened.rows()
            assert row.pattern_text == "kept %integer%"

    def test_commit_deferred_until_block_exit(self, tmp_path):
        path = str(tmp_path / "patterns.db")
        db = PatternDB(path)
        observer = PatternDB(path)  # separate connection, sees commits only
        with db.transaction():
            db.upsert(make_pattern(), now=T0)
            assert observer.rows() == []
        assert len(observer.rows()) == 1
        observer.close()
        db.close()

    def test_nested_blocks_commit_once_at_outermost(self, tmp_path):
        path = str(tmp_path / "patterns.db")
        db = PatternDB(path)
        observer = PatternDB(path)
        with db.transaction():
            with db.transaction():
                db.upsert(make_pattern(), now=T0)
            # inner exit must not commit: the outermost block owns it
            assert observer.rows() == []
        assert len(observer.rows()) == 1
        observer.close()
        db.close()


class TestJournalMode:
    def test_default_opens_wal_with_normal_sync(self, tmp_path):
        db = PatternDB(str(tmp_path / "patterns.db"))
        assert db._conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        # synchronous: 1 == NORMAL
        assert db._conn.execute("PRAGMA synchronous").fetchone()[0] == 1
        db.close()

    def test_durable_keeps_rollback_journal(self, tmp_path):
        db = PatternDB(str(tmp_path / "patterns.db"), durable=True)
        assert db._conn.execute("PRAGMA journal_mode").fetchone()[0] == "delete"
        # synchronous: 2 == FULL (sqlite default)
        assert db._conn.execute("PRAGMA synchronous").fetchone()[0] == 2
        db.close()

    def test_wal_db_readable_by_second_connection(self, tmp_path):
        path = str(tmp_path / "patterns.db")
        db = PatternDB(path)
        db.upsert(make_pattern(), now=T0)
        other = PatternDB(path)
        assert len(other.rows()) == 1
        other.close()
        db.close()

    def test_memory_db_unaffected(self):
        db = PatternDB()  # :memory: cannot use WAL; pragmas are no-ops
        assert db._conn.execute("PRAGMA journal_mode").fetchone()[0] == "memory"
        db.upsert(make_pattern(), now=T0)
        assert len(db.rows()) == 1
        db.close()


class TestDeletePatterns:
    def test_deletes_rows_and_examples(self):
        db = PatternDB()
        keep = db.upsert(make_pattern(text="kept %string% row"), now=T0)
        drop_a = db.upsert(
            make_pattern(text="dropped %string% row", examples=["dropped x row"]),
            now=T0,
        )
        drop_b = db.upsert(make_pattern(text="dropped %string% too"), now=T0)
        assert db.delete_patterns([drop_a, drop_b]) == 2
        assert [r.id for r in db.rows()] == [keep]
        # no orphan examples behind the deleted rows
        n_examples = db._conn.execute("SELECT COUNT(*) FROM examples").fetchone()[0]
        assert n_examples == 0

    def test_unknown_ids_count_zero(self):
        db = PatternDB()
        pid = db.upsert(make_pattern(), now=T0)
        assert db.delete_patterns(["nope", "also-nope"]) == 0
        assert db.delete_patterns([]) == 0
        assert [r.id for r in db.rows()] == [pid]

    def test_delete_inside_transaction_rolls_back(self, tmp_path):
        db = PatternDB(str(tmp_path / "p.db"))
        pid = db.upsert(make_pattern(), now=T0)
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.delete_patterns([pid])
                raise RuntimeError("abort")
        assert [r.id for r in db.rows()] == [pid]


class TestStalePatterns:
    def test_stale_by_last_matched(self):
        db = PatternDB()
        old = db.upsert(make_pattern(text="old %string% row"), now=T0)
        fresh = db.upsert(make_pattern(text="fresh %string% row"), now=T0)
        late = datetime(2021, 10, 15, tzinfo=timezone.utc)
        db.record_match(fresh, n=1, now=late)
        stale = db.stale_patterns(30.0, now=late)
        assert stale == [("sshd", old)]

    def test_never_matched_rows_are_not_stale(self):
        db = PatternDB()
        pid = db.upsert(make_pattern(), now=T0)
        db._conn.execute(
            "UPDATE patterns SET last_matched = NULL WHERE id = ?", (pid,)
        )
        far = datetime(2022, 9, 1, tzinfo=timezone.utc)
        assert db.stale_patterns(1.0, now=far) == []

    def test_evict_stale_deletes_and_counts(self):
        db = PatternDB()
        db.upsert(make_pattern(text="old %string% row"), now=T0)
        fresh = db.upsert(make_pattern(text="fresh %string% row"), now=T0)
        late = datetime(2021, 10, 15, tzinfo=timezone.utc)
        db.record_match(fresh, n=1, now=late)
        assert db.evict_stale(30.0, now=late) == 1
        assert [r.id for r in db.rows()] == [fresh]

    def test_upsert_refreshes_last_matched(self):
        """Re-upserting (the warm pool's delta merge path) counts as a
        match: the row must not look stale afterwards."""
        db = PatternDB()
        pid = db.upsert(make_pattern(support=2), now=T0)
        late = datetime(2021, 10, 15, tzinfo=timezone.utc)
        db.upsert(make_pattern(support=3), now=late)
        (row,) = db.rows()
        assert row.id == pid
        assert row.last_matched == late.isoformat()
        assert db.stale_patterns(30.0, now=late) == []

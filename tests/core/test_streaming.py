"""Stream execution mode: incremental core, drift/TTL, equivalence.

The tentpole invariants:

* batch mode is a special case of the incremental core — a stream
  driver flushing at exactly the batch boundaries (drift/TTL off)
  produces a bit-identical database dump, under either analyzer
  backend, fast lane on or off;
* free-running stream mode *converges*: on the 60-day production
  simulation its pattern set agrees with batch output on >= 95% of
  messages by template;
* incremental pattern churn (drift merge/split, TTL eviction) is
  version-safe against the fast lane's cached match entries.
"""

from datetime import datetime, timedelta, timezone

import pytest

from repro.analyzer import ANALYZER_BACKENDS, AnalyzerConfig, build_analyzer
from repro.analyzer.evolving import EvolvingAnalyzer
from repro.core.config import RTGConfig, StreamingConfig
from repro.core.parallel import (
    ParallelSequenceRTG,
    PersistentParallelSequenceRTG,
)
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.core.records import LogRecord
from repro.core.streaming import StreamDriver, ValueDriftTracker
from repro.parser import PARSER_BACKENDS, ParserConfig, build_parser
from repro.parser.parser import Parser
from repro.scanner import build_scanner
from repro.workflow.stream import ProductionStream, StreamConfig

NOW = datetime(2026, 1, 1, tzinfo=timezone.utc)


class FakeClock:
    """Injectable monotonic clock: timeout behaviour without sleeping."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def full_dump(db):
    return sorted(db.dump(), key=lambda entry: entry["id"])


def batches_for_test(n_batches=4, per_batch=250, n_services=9, seed=11,
                     duplicate_fraction=0.5):
    stream = ProductionStream(StreamConfig(
        n_services=n_services, seed=seed,
        duplicate_fraction=duplicate_fraction,
    ))
    return [list(stream.records(per_batch)) for _ in range(n_batches)]


def stream_rtg(streaming: StreamingConfig, **config_kwargs) -> SequenceRTG:
    config = RTGConfig(mode="stream", streaming=streaming, **config_kwargs)
    return SequenceRTG(db=PatternDB(), config=config)


# ----------------------------------------------------------------------
# The evolving analyzer: batch mining as the degenerate case
# ----------------------------------------------------------------------

class TestEvolvingAnalyzer:
    def scan(self, messages, service="svc"):
        scanner = build_scanner()
        return [scanner.scan(m, service=service) for m in messages]

    def test_absorb_then_flush_equals_one_batch_analyze(self):
        messages = self.scan(
            [f"user u{i} logged in from 10.0.0.{i}" for i in range(6)]
        )
        expected = build_analyzer(AnalyzerConfig()).analyze(messages)

        evolving = EvolvingAnalyzer()
        length = messages[0].token_count()
        evolving.absorb("svc", length, messages[:2])
        evolving.absorb("svc", length, messages[2:])
        ((patterns, n_nodes),) = list(evolving.flush_service("svc"))
        assert [p.text for p in patterns] == [p.text for p in expected]
        assert [p.support for p in patterns] == [p.support for p in expected]
        assert n_nodes > 0
        assert evolving.pending_messages == 0

    def test_absorb_dedups_into_weighted_counts(self):
        distinct = self.scan(
            ["session 1 opened", "session 2 opened", "session 3 opened"]
        )
        expected = build_analyzer(AnalyzerConfig()).analyze(
            distinct, counts=[3, 2, 1]
        )

        evolving = EvolvingAnalyzer()
        length = distinct[0].token_count()
        # 3x the first, 2x the second, 1x the third, interleaved
        replay = [distinct[0], distinct[1], distinct[2], distinct[0],
                  distinct[1], distinct[0]]
        evolving.absorb("svc", length, replay)
        assert evolving.pending_messages == 3  # distinct, not occurrences
        patterns, _ = evolving.flush_partition("svc", length)
        assert [(p.text, p.support) for p in patterns] == [
            (p.text, p.support) for p in expected
        ]

    def test_partition_bound_bookkeeping(self):
        evolving = EvolvingAnalyzer(max_partition_pending=3)
        messages = self.scan([f"job {i} done" for i in range(4)])
        length = messages[0].token_count()
        evolving.absorb("a", length, messages[:2])
        assert not evolving.over_partition_bound
        assert evolving.max_partition == 2
        evolving.absorb("b", length, messages)
        assert evolving.over_partition_bound
        assert evolving.pending_for("a") == 2
        assert evolving.services() == ["a", "b"]
        evolving.flush_partition("b", length)
        assert evolving.max_partition == 2
        assert not evolving.over_partition_bound

    def test_flush_of_unknown_partition_is_empty(self):
        evolving = EvolvingAnalyzer()
        assert evolving.flush_partition("nope", 5) == ([], 0)
        assert list(evolving.flush_service("nope")) == []


# ----------------------------------------------------------------------
# Stream mode == batch mode when flushed at batch boundaries
# ----------------------------------------------------------------------

class TestStreamEqualsBatch:
    """Flushing at exactly the batch boundaries (drift/TTL off) must
    reproduce the batch-mode database bit-for-bit — supports, examples,
    timestamps, everything."""

    @pytest.mark.parametrize("analyzer_backend", ANALYZER_BACKENDS)
    @pytest.mark.parametrize("enable_fastpath", [True, False])
    def test_dump_bit_identical(self, analyzer_backend, enable_fastpath):
        batches = batches_for_test()
        per_batch = len(batches[0])
        analyzer = AnalyzerConfig(backend=analyzer_backend)

        batch_rtg = SequenceRTG(db=PatternDB(), config=RTGConfig(
            enable_fastpath=enable_fastpath, analyzer=analyzer,
        ))
        for batch in batches:
            batch_rtg.analyze_by_service(batch, now=NOW)

        rtg = stream_rtg(
            StreamingConfig(
                micro_batch_size=per_batch,
                flush_pending=1,  # flush after every micro-batch
                drift_merge=False,
                drift_split=False,
            ),
            enable_fastpath=enable_fastpath,
            analyzer=analyzer,
        )
        driver = rtg.stream_driver(clock=FakeClock())
        for batch in batches:
            driver.feed(batch, now=NOW)
        driver.close()

        reference = full_dump(batch_rtg.db)
        assert reference
        assert full_dump(rtg.db) == reference

    def test_smaller_micro_batches_same_flush_boundaries(self):
        """Micro-batch size does not affect the mined output as long as
        flushes land on the same boundaries: parse/absorb are
        associative across micro-batches."""
        batches = batches_for_test(n_batches=3)
        per_batch = len(batches[0])

        def run(micro):
            rtg = stream_rtg(StreamingConfig(
                micro_batch_size=micro,
                flush_pending=10 ** 9,
                drift_merge=False,
                drift_split=False,
            ))
            driver = rtg.stream_driver(clock=FakeClock())
            for batch in batches:
                driver.feed(batch, now=NOW)
                driver.flush()  # explicit batch boundary
            driver.close()
            return full_dump(rtg.db)

        assert run(per_batch) == run(25)


# ----------------------------------------------------------------------
# Convergence on the 60-day production simulation
# ----------------------------------------------------------------------

class TestConvergence:
    def agreement(self, db_a, db_b, records):
        """Fraction of *records* both pattern sets parse to the same
        template (or both leave unmatched)."""
        scanner = build_scanner()
        parsers_a: dict[str, Parser] = {}
        parsers_b: dict[str, Parser] = {}
        agree = 0
        for record in records:
            service = record.service
            parser_a = parsers_a.get(service)
            if parser_a is None:
                parser_a = parsers_a[service] = Parser(db_a.load_service(service))
                parsers_b[service] = Parser(db_b.load_service(service))
            parser_b = parsers_b[service]
            scanned = scanner.scan(record.message, service=service)
            hit_a = parser_a.match(scanned)
            hit_b = parser_b.match(scanned)
            if hit_a is None and hit_b is None:
                agree += 1
            elif (
                hit_a is not None
                and hit_b is not None
                and hit_a.pattern.text == hit_b.pattern.text
            ):
                agree += 1
        return agree / len(records)

    def test_stream_converges_to_batch_on_60_day_simulation(self):
        """The reference is batch mode over the *whole* horizon in one
        mining run — the pattern set batch mode produces when it has all
        the evidence.  (Batch mode replayed day by day is not a fixed
        point: it mints over-specific patterns from thin day-1 evidence
        and, lacking drift maintenance, never retires them.  The stream
        driver's whole job is to do better than that.)"""
        source = ProductionStream(StreamConfig(
            n_services=8, seed=13, duplicate_fraction=0.3,
        ))
        days = source.days(60, 150, churn_per_day=1)
        records = [record for day in days for record in day]

        batch_rtg = SequenceRTG(db=PatternDB())
        batch_rtg.analyze_by_service(records, now=NOW)

        rtg = stream_rtg(StreamingConfig(
            micro_batch_size=25,
            flush_pending=512,
            split_min_matches=256,
        ))
        driver = rtg.stream_driver(clock=FakeClock())
        for day in days:
            driver.feed(day, now=NOW)
        driver.close()

        assert driver.stats.n_micro_batches == len(records) // 25
        assert driver.stats.n_flushes >= 3  # genuinely incremental
        assert driver.stats.n_drift_merges > 0
        rate = self.agreement(batch_rtg.db, rtg.db, records)
        assert rate >= 0.95, f"stream/batch template agreement {rate:.3f}"


# ----------------------------------------------------------------------
# Driver mechanics: micro-batch timeout, flush interval, close
# ----------------------------------------------------------------------

def quiet_streaming(**kwargs) -> StreamingConfig:
    """Streaming config with every automatic trigger pushed out of the
    way unless the test overrides it."""
    defaults = dict(
        micro_batch_size=100,
        micro_batch_timeout_s=0.5,
        flush_pending=10 ** 9,
        flush_interval_s=30.0,
        drift_merge=False,
        drift_split=False,
    )
    defaults.update(kwargs)
    return StreamingConfig(**defaults)


class TestStreamDriver:
    def record(self, i=0):
        return LogRecord("svc", f"heartbeat {i} ok")

    def test_requires_stream_mode(self):
        rtg = SequenceRTG(db=PatternDB())
        with pytest.raises(ValueError, match="mode == 'stream'"):
            StreamDriver(rtg)
        with pytest.raises(ValueError, match="mode == 'stream'"):
            rtg.stream_driver()

    def test_micro_batch_fills_then_processes(self):
        rtg = stream_rtg(quiet_streaming(micro_batch_size=4))
        driver = rtg.stream_driver(clock=FakeClock())
        for i in range(3):
            driver.offer(self.record(i), now=NOW)
        assert driver.stats.n_micro_batches == 0
        driver.offer(self.record(3), now=NOW)
        assert driver.stats.n_micro_batches == 1
        assert driver.stats.n_messages == 4
        assert driver.pending == 4  # nothing known yet, all unmatched

    def test_micro_batch_timeout_via_poll(self):
        clock = FakeClock()
        rtg = stream_rtg(quiet_streaming())
        driver = rtg.stream_driver(clock=clock)
        driver.offer(self.record(), now=NOW)
        driver.poll()
        assert driver.stats.n_micro_batches == 0  # timeout not reached
        clock.advance(0.6)
        driver.poll()
        assert driver.stats.n_micro_batches == 1

    def test_flush_interval_via_poll(self):
        clock = FakeClock()
        rtg = stream_rtg(quiet_streaming(micro_batch_size=2))
        driver = rtg.stream_driver(clock=clock)
        driver.feed([self.record(i) for i in range(2)], now=NOW)
        assert driver.pending == 2
        assert driver.stats.n_flushes == 0
        clock.advance(31.0)
        driver.poll()
        assert driver.stats.n_flushes == 1
        assert driver.pending == 0
        assert rtg.db.rows(service="svc")

    def test_flush_pending_threshold(self):
        rtg = stream_rtg(quiet_streaming(micro_batch_size=2, flush_pending=4))
        driver = rtg.stream_driver(clock=FakeClock())
        driver.feed([self.record(i) for i in range(2)], now=NOW)
        assert driver.stats.n_flushes == 0
        driver.feed([self.record(i) for i in range(2, 4)], now=NOW)
        assert driver.stats.n_flushes == 1

    def test_partition_bound_forces_flush(self):
        rtg = stream_rtg(quiet_streaming(
            micro_batch_size=2, max_partition_pending=4,
        ))
        driver = rtg.stream_driver(clock=FakeClock())
        driver.feed([self.record(i) for i in range(4)], now=NOW)
        assert driver.stats.n_flushes == 1

    def test_close_drains_and_seals(self):
        rtg = stream_rtg(quiet_streaming())
        driver = rtg.stream_driver(clock=FakeClock())
        driver.offer(self.record(), now=NOW)  # partial micro-batch
        result = driver.close()
        assert driver.stats.n_micro_batches == 1
        assert driver.stats.n_flushes == 1
        assert result is not None and result.n_new_patterns >= 0
        assert driver.pending == 0
        assert driver.close() is None  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            driver.offer(self.record())

    def test_latency_quantiles_and_metrics(self):
        rtg = stream_rtg(quiet_streaming(micro_batch_size=4))
        driver = rtg.stream_driver(clock=FakeClock())
        driver.feed([self.record(i) for i in range(8)], now=NOW)
        driver.close()
        assert len(driver.latencies) == 8
        assert driver.p99() >= driver.latency_quantile(0.5) >= 0.0
        snapshot = rtg.metrics.snapshot()
        assert "rtg_stream_message_latency_seconds" in snapshot
        assert "rtg_stream_flushes_total" in snapshot

    def test_empty_driver_quantile_is_zero(self):
        rtg = stream_rtg(quiet_streaming())
        driver = rtg.stream_driver(clock=FakeClock())
        assert driver.p99() == 0.0


# ----------------------------------------------------------------------
# Drift maintenance and TTL eviction
# ----------------------------------------------------------------------

class TestTTLEviction:
    def test_stale_patterns_evicted_at_flush(self):
        rtg = stream_rtg(quiet_streaming(
            micro_batch_size=4, pattern_ttl_days=30.0,
        ))
        driver = rtg.stream_driver(clock=FakeClock())
        old_msgs = [
            LogRecord("svc", f"session {i} opened by u{i}") for i in range(4)
        ]
        driver.feed(old_msgs, now=NOW)
        driver.flush()
        assert rtg.db.rows(service="svc")

        later = NOW + timedelta(days=40)
        driver.feed(
            [LogRecord("svc", f"transfer {i} completed fine") for i in range(4)],
            now=later,
        )
        driver.flush()
        texts = [row.pattern_text for row in rtg.db.rows(service="svc")]
        assert all("session" not in text for text in texts)
        assert any("transfer" in text for text in texts)
        assert driver.stats.n_evicted >= 1

        # the live parser dropped the evicted pattern too: the old
        # traffic is unmatched again and goes back to the analyser
        driver.feed(old_msgs, now=later)
        assert driver.pending > 0

    def test_fresh_matches_keep_patterns_alive(self):
        rtg = stream_rtg(quiet_streaming(
            micro_batch_size=4, pattern_ttl_days=30.0,
        ))
        driver = rtg.stream_driver(clock=FakeClock())
        msgs = [LogRecord("svc", f"job {i} finished cleanly") for i in range(4)]
        driver.feed(msgs, now=NOW)
        driver.flush()
        # the same traffic keeps matching within the TTL window
        for day in (10, 20, 29):
            driver.feed(msgs, now=NOW + timedelta(days=day))
        driver.flush()
        assert driver.stats.n_evicted == 0
        assert rtg.db.rows(service="svc")


class TestDriftSplit:
    def make_driver(self):
        config = RTGConfig(mode="stream", streaming=StreamingConfig(
            micro_batch_size=6,
            flush_pending=6,
            flush_interval_s=10 ** 6,
            drift_merge=False,
            drift_split=True,
            split_min_matches=12,
        ))
        rtg = SequenceRTG(db=PatternDB(), config=config)
        return rtg, rtg.stream_driver(clock=FakeClock())

    # more than merge_threshold distinct names: the position mines as a
    # string variable
    NAMES = ("alpha", "beta", "gamma", "delta", "epsilon", "zeta")

    def seed_variable_pattern(self, driver):
        """Mine ``job <variable> started`` from varied names."""
        driver.feed(
            [LogRecord("svc", f"job {name} started") for name in self.NAMES],
            now=NOW,
        )

    def test_single_valued_variable_folds_to_constant(self):
        rtg, driver = self.make_driver()
        self.seed_variable_pattern(driver)
        (row,) = rtg.db.rows(service="svc")
        assert "%" in row.pattern_text
        old_id = row.id
        old_count = row.match_count

        # the variable position now only ever sees "omega"
        for _ in range(4):
            driver.feed(
                [LogRecord("svc", "job omega started") for _ in range(6)],
                now=NOW,
            )
        driver.flush()

        rows = rtg.db.rows(service="svc")
        assert old_id not in {row.id for row in rows}
        (folded,) = [r for r in rows if r.pattern_text == "job omega started"]
        assert folded.match_count >= old_count + 24
        assert driver.stats.n_drift_splits == 1

    def test_fastpath_cache_safe_across_split(self):
        """The fast lane served the retired pattern from its match cache
        before the split; afterwards its version-pinned entry must go
        stale, not resurrect the retired id."""
        rtg, driver = self.make_driver()
        self.seed_variable_pattern(driver)
        for _ in range(4):  # identical messages: cached match entries
            driver.feed(
                [LogRecord("svc", "job omega started") for _ in range(6)],
                now=NOW,
            )
        driver.flush()
        rows = {row.pattern_text: row for row in rtg.db.rows(service="svc")}
        folded = rows["job omega started"]
        before = folded.match_count

        driver.feed(
            [LogRecord("svc", "job omega started") for _ in range(6)], now=NOW
        )
        rows = {row.pattern_text: row for row in rtg.db.rows(service="svc")}
        assert rows["job omega started"].match_count == before + 6

    def test_multi_valued_variable_never_splits(self):
        rtg, driver = self.make_driver()
        self.seed_variable_pattern(driver)
        for i in range(8):
            driver.feed(
                [LogRecord("svc", f"job sigma{i % 3} started")
                 for _ in range(6)],
                now=NOW,
            )
        driver.flush()
        assert driver.stats.n_drift_splits == 0


class TestDriftMerge:
    def test_general_pattern_subsumes_specific(self):
        config = RTGConfig(mode="stream", streaming=StreamingConfig(
            micro_batch_size=4,
            flush_pending=4,
            flush_interval_s=10 ** 6,
            drift_merge=True,
            drift_split=False,
        ))
        # a roomy example cap so the fold-in below is observable
        rtg = SequenceRTG(db=PatternDB(max_examples=8), config=config)
        driver = rtg.stream_driver(clock=FakeClock())

        # first flush only varies the port: the ip mines as a constant
        driver.feed(
            [LogRecord("svc", f"connection from 10.0.0.1 port {4000 + i}")
             for i in range(4)],
            now=NOW,
        )
        (specific,) = rtg.db.rows(service="svc")
        assert "10.0.0.1" in specific.pattern_text
        specific_count = specific.match_count

        # later traffic varies the ip too: the general pattern appears
        # and the specific one's examples all match it
        driver.feed(
            [LogRecord("svc", f"connection from 10.0.0.{2 + i} port {5000 + i}")
             for i in range(4)],
            now=NOW,
        )
        rows = rtg.db.rows(service="svc")
        assert specific.id not in {row.id for row in rows}
        (general,) = [row for row in rows if row.match_count >= specific_count]
        assert general.pattern_text.count("%") > specific.pattern_text.count("%")
        assert general.match_count >= specific_count + 4
        assert driver.stats.n_drift_merges == 1
        # the specific pattern's examples were folded into the general
        assert any("10.0.0.1" in example for example in general.examples)


class TestValueDriftTracker:
    def test_overflowing_track_gives_up(self):
        from repro.analyzer.pattern import Pattern

        pattern = Pattern.from_text("user %user% logged in", service="svc")
        tracker = ValueDriftTracker(max_values=2)
        for i in range(5):
            tracker.observe(pattern.id, pattern, {"user": f"u{i}"}, 10)
        assert tracker.split_candidates(1) == []

    def test_discard_forgets(self):
        from repro.analyzer.pattern import Pattern

        pattern = Pattern.from_text("user %user% logged in", service="svc")
        tracker = ValueDriftTracker()
        tracker.observe(pattern.id, pattern, {"user": "bob"}, 5)
        assert tracker.split_candidates(5) != []
        tracker.discard(pattern.id)
        assert len(tracker) == 0
        assert tracker.split_candidates(1) == []

    def test_time_and_rest_variables_never_tracked(self):
        from repro.analyzer.pattern import Pattern

        pattern = Pattern.from_text(
            "%msgtime% backup done %ignorerest%", service="svc"
        )
        tracker = ValueDriftTracker()
        tracker.observe(
            pattern.id, pattern,
            {"msgtime": "Jan  1 00:00:00", "ignorerest": "x y z"}, 100,
        )
        assert tracker.split_candidates(1) == []


# ----------------------------------------------------------------------
# Incremental pattern removal: parser and config guards
# ----------------------------------------------------------------------

class TestRemovePatterns:
    @pytest.mark.parametrize("backend", PARSER_BACKENDS)
    def test_removal_rebuilds_and_version_stays_monotone(self, backend):
        from repro.analyzer.pattern import Pattern

        keep = Pattern.from_text("transfer %integer% completed", service="s")
        drop = Pattern.from_text("user %user% logged in", service="s")
        parser = build_parser([keep, drop], ParserConfig(backend=backend))
        scanner = build_scanner()
        assert parser.match(scanner.scan("user bob logged in")) is not None
        version_before = parser.version

        assert parser.remove_patterns([drop.id]) == 1
        assert parser.version > version_before
        assert len(parser) == 1
        assert parser.match(scanner.scan("user bob logged in")) is None
        assert parser.match(scanner.scan("transfer 5 completed")) is not None

    def test_removing_unknown_ids_is_a_noop(self):
        from repro.analyzer.pattern import Pattern

        keep = Pattern.from_text("transfer %integer% completed", service="s")
        parser = Parser([keep])
        version = parser.version
        assert parser.remove_patterns(["no-such-id"]) == 0
        assert parser.version == version
        assert len(parser) == 1

    def test_retire_patterns_without_cached_parser(self):
        """Retiring patterns of a service whose parser is not cached
        must still leave the next parser_for load consistent."""
        rtg = stream_rtg(quiet_streaming(micro_batch_size=4))
        driver = rtg.stream_driver(clock=FakeClock())
        driver.feed(
            [LogRecord("svc", f"probe {i} sent") for i in range(4)], now=NOW
        )
        driver.flush()
        (row,) = rtg.db.rows(service="svc")
        rtg.invalidate_service("svc")  # drop the cached parser
        assert rtg.retire_patterns("svc", [row.id]) == 1
        assert rtg.db.rows(service="svc") == []
        assert rtg.parser_for("svc").match(
            build_scanner().scan("probe 1 sent", service="svc")
        ) is None


class TestModeGuards:
    def test_pools_refuse_stream_mode(self):
        config = RTGConfig(mode="stream")
        with pytest.raises(ValueError, match="batch mode only"):
            ParallelSequenceRTG(db=PatternDB(), config=config, n_workers=2)
        with pytest.raises(ValueError, match="batch mode only"):
            PersistentParallelSequenceRTG(
                db=PatternDB(), config=config, n_workers=2
            )

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            RTGConfig(mode="firehose")

    def test_batch_mode_flush_is_empty_noop(self):
        rtg = SequenceRTG(db=PatternDB())
        result = rtg.flush(now=NOW)
        assert result.n_new_patterns == 0
        assert result.n_services == 0


class TestStreamingConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"micro_batch_size": 0},
        {"micro_batch_timeout_s": 0.0},
        {"flush_pending": 0},
        {"flush_interval_s": -1.0},
        {"max_partition_pending": -1},
        {"pattern_ttl_days": -0.5},
        {"split_min_matches": 0},
        {"drift_max_values": 0},
        {"latency_window": 0},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            StreamingConfig(**kwargs)

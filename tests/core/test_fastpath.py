"""Duplicate-aware fast lane: LRU caches, dedup, invalidation, equivalence.

The load-bearing guarantee is byte-identical mining output with the fast
lane on versus off — pattern ids, match counts, examples and every
``BatchResult`` aggregate — over shuffled, duplicate-heavy streams, both
serial and service-sharded.  Equivalence is asserted here, not assumed.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import RTGConfig
from repro.core.fastpath import FastPath, LRUCache, token_signature
from repro.core.parallel import ParallelSequenceRTG
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.core.records import LogRecord
from repro.workflow.stream import ProductionStream, StreamConfig


def duplicate_heavy_records(n=1200, seed=99, duplicate_fraction=0.8, n_services=20):
    stream = ProductionStream(
        StreamConfig(
            n_services=n_services, seed=seed, duplicate_fraction=duplicate_fraction
        )
    )
    return list(stream.records(n))


def db_state(db: PatternDB):
    """Everything that must be identical between the two lanes."""
    return sorted(
        (r.id, r.pattern_text, r.match_count, tuple(r.examples)) for r in db.rows()
    )


def result_aggregates(result):
    return (
        result.n_records,
        result.n_services,
        result.n_matched,
        result.n_unmatched,
        result.n_partitions,
        result.n_new_patterns,
        result.n_below_threshold,
        result.max_trie_nodes,
        sorted(p.id for p in result.new_patterns),
    )


class TestLRUCache:
    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_hit_miss_counters(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert (cache.hits, cache.misses) == (1, 1)

    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh: b is now the oldest
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_put_refresh_does_not_evict(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh existing key at capacity
        assert cache.evictions == 0
        assert cache.get("a") == 10

    def test_clear_keeps_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1


class TestScanCache:
    def test_identical_message_scanned_once(self, scanner):
        lane = FastPath(scan_cache_size=16, match_cache_size=16)
        first = lane.scan(scanner, "svc", "connection from 10.0.0.1 closed")
        again = lane.scan(scanner, "svc", "connection from 10.0.0.1 closed")
        assert again is first  # the cached object is shared
        snap = lane.snapshot()
        assert snap["scan_hits"] == 1 and snap["scan_misses"] == 1

    def test_eviction_keeps_results_correct(self, scanner):
        lane = FastPath(scan_cache_size=2, match_cache_size=0)
        messages = [f"event {i} done" for i in range(5)]
        token_lists = [
            lane.scan(scanner, "svc", m).token_texts() for m in messages
        ]
        # every entry was evicted and rescanned at least once by the end
        assert lane.snapshot()["scan_evictions"] >= 3
        for m, texts in zip(messages, token_lists):
            assert lane.scan(scanner, "svc", m).token_texts() == texts

    def test_dedup_groups_and_counts(self, scanner):
        lane = FastPath(scan_cache_size=16, match_cache_size=16)
        group = [
            LogRecord("svc", "alpha 1"),
            LogRecord("svc", "beta 2"),
            LogRecord("svc", "alpha 1"),
            LogRecord("svc", "alpha 1"),
        ]
        scanned, counts, cached = lane.scan_group(scanner, "svc", group)
        assert [m.original for m in scanned] == ["alpha 1", "beta 2"]
        assert counts == [3, 1]
        assert cached == [False, False]  # first sighting of both
        snap = lane.snapshot()
        assert snap["dedup_unique"] == 2 and snap["dedup_duplicates"] == 2
        again, _, cached = lane.scan_group(scanner, "svc", group[:2])
        assert again[0] is scanned[0] and cached == [True, True]


class TestMatchCache:
    def _warm_rtg(self, records):
        rtg = SequenceRTG(db=PatternDB())
        rtg.analyze_by_service(records)
        return rtg

    def test_outcomes_cached_by_token_signature(self, ssh_records, scanner):
        rtg = self._warm_rtg(ssh_records)
        parser = rtg.parser_for("sshd")
        lane = FastPath(scan_cache_size=0, match_cache_size=16)
        msg = scanner.scan(ssh_records[0].message, service="sshd")
        first = lane.match("sshd", parser, msg)
        second = lane.match("sshd", parser, msg)
        assert second is first
        snap = lane.snapshot()
        assert snap["match_hits"] == 1 and snap["match_misses"] == 1

    def test_negative_outcomes_cached(self, ssh_records, scanner):
        rtg = self._warm_rtg(ssh_records)
        parser = rtg.parser_for("sshd")
        lane = FastPath(scan_cache_size=0, match_cache_size=16)
        msg = scanner.scan("no pattern knows this shape", service="sshd")
        assert lane.match("sshd", parser, msg) is None
        assert lane.match("sshd", parser, msg) is None
        assert lane.snapshot()["match_hits"] == 1

    def test_add_pattern_invalidates_cached_outcomes(self, ssh_records, scanner):
        from repro.analyzer.pattern import Pattern

        rtg = self._warm_rtg(ssh_records)
        parser = rtg.parser_for("sshd")
        lane = FastPath(scan_cache_size=0, match_cache_size=16)
        msg = scanner.scan("session sess01 throttled hard", service="sshd")
        assert lane.match("sshd", parser, msg) is None  # cached negative
        pattern = Pattern.from_text("session %alphanum% throttled hard", "sshd")
        parser.add_pattern(pattern)  # version bump
        hit = lane.match("sshd", parser, msg)
        assert hit is not None and hit.pattern.id == pattern.id

    def test_invalidation_is_per_service(self, ssh_records, hdfs_records, scanner):
        rtg = self._warm_rtg(ssh_records + hdfs_records)
        lane = FastPath(scan_cache_size=0, match_cache_size=16)
        ssh_msg = scanner.scan(ssh_records[0].message, service="sshd")
        hdfs_msg = scanner.scan(hdfs_records[0].message, service="hdfs")
        lane.match("sshd", rtg.parser_for("sshd"), ssh_msg)
        lane.match("hdfs", rtg.parser_for("hdfs"), hdfs_msg)
        lane.invalidate_service("sshd")
        lane.match("sshd", rtg.parser_for("sshd"), ssh_msg)  # miss again
        lane.match("hdfs", rtg.parser_for("hdfs"), hdfs_msg)  # still a hit
        snap = lane.snapshot()
        assert snap["match_hits"] == 1 and snap["match_misses"] == 3

    def test_signature_shares_outcomes_across_whitespace(self, ssh_records, scanner):
        rtg = self._warm_rtg(ssh_records)
        parser = rtg.parser_for("sshd")
        lane = FastPath(scan_cache_size=0, match_cache_size=16)
        a = scanner.scan(
            "Accepted password for eve from 9.9.9.9 port 22 ssh2", service="sshd"
        )
        b = scanner.scan(
            "Accepted  password for eve from 9.9.9.9  port 22 ssh2", service="sshd"
        )
        assert token_signature(a.tokens) == token_signature(b.tokens)
        lane.match("sshd", parser, a)
        lane.match("sshd", parser, b)
        assert lane.snapshot()["match_hits"] == 1


class TestPipelineInvalidation:
    def test_invalidate_service_drops_only_that_parser(self, rtg, ssh_records, hdfs_records):
        rtg.analyze_by_service(ssh_records + hdfs_records)
        ssh_parser = rtg.parser_for("sshd")
        hdfs_parser = rtg.parser_for("hdfs")
        rtg.invalidate_service("sshd")
        assert rtg.parser_for("sshd") is not ssh_parser
        assert rtg.parser_for("hdfs") is hdfs_parser

    def test_add_known_pattern_extends_parser_in_place(self, rtg, ssh_records):
        from repro.analyzer.pattern import Pattern

        rtg.analyze_by_service(ssh_records)
        parser = rtg.parser_for("sshd")
        n_before = len(parser)
        pattern = Pattern.from_text("banner printed for %user%", "sshd")
        pattern.support = 1
        rtg.add_known_pattern(pattern)
        assert rtg.parser_for("sshd") is parser  # not rebuilt
        assert len(parser) == n_before + 1
        result = rtg.analyze_by_service(
            [LogRecord("sshd", "banner printed for alice")]
        )
        assert result.n_matched == 1

    def test_cache_telemetry_in_batch_result(self, rtg, ssh_records):
        rtg.analyze_by_service(ssh_records)
        second = rtg.analyze_by_service(ssh_records)  # scans cached
        assert second.cache["scan_hits"] == len(ssh_records)
        assert second.cache["match_misses"] == len(ssh_records)
        third = rtg.analyze_by_service(ssh_records)  # matches cached too
        assert third.cache["match_hits"] == len(ssh_records)
        disabled = SequenceRTG(
            db=PatternDB(), config=RTGConfig(enable_fastpath=False)
        )
        assert disabled.analyze_by_service(ssh_records).cache == {}


class TestEquivalence:
    """Fast lane on vs off must be indistinguishable in mined output."""

    def _run_serial(self, enable_fastpath, batches, **config_kwargs):
        config = RTGConfig(enable_fastpath=enable_fastpath, **config_kwargs)
        rtg = SequenceRTG(db=PatternDB(), config=config)
        aggregates = [
            result_aggregates(rtg.analyze_by_service(batch)) for batch in batches
        ]
        return aggregates, db_state(rtg.db)

    def _shuffled_batches(self, n_batches=4, per_batch=700):
        records = duplicate_heavy_records(n=n_batches * per_batch)
        batches = [
            records[i * per_batch : (i + 1) * per_batch] for i in range(n_batches)
        ]
        for i, batch in enumerate(batches):
            random.Random(i).shuffle(batch)
        return batches

    def test_serial_duplicate_heavy_stream(self):
        batches = self._shuffled_batches()
        fast = self._run_serial(True, batches)
        naive = self._run_serial(False, batches)
        assert fast == naive

    def test_serial_with_tiny_caches_forcing_eviction(self):
        batches = self._shuffled_batches(n_batches=2)
        fast = self._run_serial(True, batches, scan_cache_size=8, match_cache_size=8)
        naive = self._run_serial(False, batches)
        assert fast == naive

    def test_serial_with_caches_disabled_dedup_only(self):
        batches = self._shuffled_batches(n_batches=2)
        fast = self._run_serial(True, batches, scan_cache_size=0, match_cache_size=0)
        naive = self._run_serial(False, batches)
        assert fast == naive

    def test_parallel_duplicate_heavy_stream(self):
        batches = self._shuffled_batches(n_batches=2, per_batch=600)
        _, naive_db = self._run_serial(False, batches)

        parallel = ParallelSequenceRTG(
            db=PatternDB(), config=RTGConfig(enable_fastpath=True), n_workers=3
        )
        results = [parallel.analyze_by_service(batch) for batch in batches]
        # pattern ids and match counts merge to the serial truth
        naive_counts = {pid: count for pid, _, count, _ in naive_db}
        parallel_counts = {r.id: r.match_count for r in parallel.db.rows()}
        assert parallel_counts == naive_counts
        for result, batch in zip(results, batches):
            assert result.n_records == len(batch)
            assert result.n_matched + result.n_unmatched == len(batch)

    def test_parallel_single_shard_uses_persistent_instance(self):
        records = [
            LogRecord("sshd", f"Accepted password for u{i} from 10.0.0.{i} port {4000+i} ssh2")
            for i in range(8)
        ]
        parallel = ParallelSequenceRTG(db=PatternDB(), n_workers=2)
        parallel.analyze_by_service(records)  # one service → one shard
        result = parallel.analyze_by_service(records[:4])
        assert result.n_matched == 4
        assert result.cache["scan_hits"] == 4  # warm across batches
        result = parallel.analyze_by_service(records[:4])
        assert result.cache["match_hits"] == 4

    def test_pool_merge_extends_local_parsers_in_place(self):
        records = duplicate_heavy_records(n=600, n_services=12)
        parallel = ParallelSequenceRTG(db=PatternDB(), n_workers=3)
        parallel.analyze_by_service(records)
        n_patterns = len(parallel.db.rows())
        # replaying through the pool matches instead of re-discovering
        result = parallel.analyze_by_service(records[:200])
        assert result.n_matched > 0
        assert len(parallel.db.rows()) == n_patterns


class TestDuplicateStream:
    def test_duplicate_fraction_produces_repeats(self):
        records = duplicate_heavy_records(n=1000, duplicate_fraction=0.8)
        distinct = {(r.service, r.message) for r in records}
        assert len(distinct) < len(records) * 0.45

    def test_zero_fraction_reproduces_historic_stream(self):
        a = ProductionStream(StreamConfig(n_services=10, seed=3))
        b = ProductionStream(
            StreamConfig(n_services=10, seed=3, duplicate_fraction=0.0)
        )
        assert [(r.service, r.message) for r in a.records(200)] == [
            (r.service, r.message) for r in b.records(200)
        ]

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            StreamConfig(duplicate_fraction=1.0)
        with pytest.raises(ValueError):
            StreamConfig(duplicate_window=0)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs", [{"scan_cache_size": -1}, {"match_cache_size": -1}]
    )
    def test_negative_cache_sizes_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RTGConfig(**kwargs)


class TestPatternJournal:
    def test_head_is_monotone_and_entries_sequenced(self):
        from repro.core.fastpath import PatternJournal

        journal = PatternJournal()
        assert journal.head == 0
        assert journal.append("sshd", {"p": 1}) == 1
        assert journal.append("httpd", {"p": 2}, origin=1) == 2
        assert journal.head == 2 == len(journal)
        entries = journal.since(0)
        assert [e.seq for e in entries] == [0, 1]
        assert entries[0].service == "sshd" and entries[0].origin is None
        assert entries[1].service == "httpd" and entries[1].origin == 1

    def test_since_returns_only_new_entries(self):
        from repro.core.fastpath import PatternJournal

        journal = PatternJournal()
        journal.append("a", {"p": 1})
        cursor = journal.head
        assert journal.since(cursor) == []
        journal.append("b", {"p": 2})
        journal.append("c", {"p": 3})
        assert [e.service for e in journal.since(cursor)] == ["b", "c"]
        # old cursors keep working: the log is append-only
        assert len(journal.since(0)) == 3

    def test_negative_cursor_rejected(self):
        from repro.core.fastpath import PatternJournal

        with pytest.raises(ValueError):
            PatternJournal().since(-1)


class TestPoolConfigValidation:
    def test_negative_pool_workers_rejected(self):
        with pytest.raises(ValueError):
            RTGConfig(pool_workers=-1)

    def test_zero_ingest_prefetch_rejected(self):
        with pytest.raises(ValueError):
            RTGConfig(ingest_prefetch=0)

"""Parallel (service-sharded) AnalyzeByService."""

import pytest

from repro.core.parallel import ParallelSequenceRTG, shard_records
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.core.records import LogRecord
from repro.workflow.stream import ProductionStream, StreamConfig


def records_for_test(n=600, n_services=12, seed=6):
    stream = ProductionStream(StreamConfig(n_services=n_services, seed=seed))
    return list(stream.records(n))


class TestSharding:
    def test_services_never_split_across_shards(self):
        records = records_for_test()
        shards = shard_records(records, 4)
        seen: dict[str, int] = {}
        for i, shard in enumerate(shards):
            for record in shard:
                assert seen.setdefault(record.service, i) == i

    def test_all_records_covered(self):
        records = records_for_test()
        shards = shard_records(records, 3)
        assert sum(len(s) for s in shards) == len(records)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_records([], 0)


class TestEquivalence:
    def test_same_patterns_as_serial(self):
        """Sharded mining must produce the identical pattern set — the
        paper's no-crossover claim made executable."""
        records = records_for_test()
        serial = SequenceRTG(db=PatternDB())
        serial.analyze_by_service(records)
        serial_ids = {row.id for row in serial.db.rows()}

        parallel = ParallelSequenceRTG(db=PatternDB(), n_workers=3)
        result = parallel.analyze_by_service(records)
        parallel_ids = {row.id for row in parallel.db.rows()}

        assert parallel_ids == serial_ids
        assert result.n_records == len(records)
        assert result.n_new_patterns == len(parallel_ids)

    def test_single_worker_degenerates_to_serial(self):
        records = records_for_test(n=200)
        parallel = ParallelSequenceRTG(db=PatternDB(), n_workers=1)
        result = parallel.analyze_by_service(records)
        assert result.n_new_patterns == len(parallel.db.rows())


class TestIncremental:
    def test_second_batch_parses_against_known(self):
        records = records_for_test()
        parallel = ParallelSequenceRTG(db=PatternDB(), n_workers=2)
        parallel.analyze_by_service(records)
        n_patterns = len(parallel.db.rows())

        # replay some of the same traffic: should match, not re-discover
        result = parallel.analyze_by_service(records[:100])
        assert result.n_matched > 0
        assert len(parallel.db.rows()) == n_patterns

    def test_match_counts_merged_into_parent_db(self):
        records = [
            LogRecord("sshd", f"Accepted password for u{i} from 10.0.0.{i} port {4000+i} ssh2")
            for i in range(8)
        ]
        parallel = ParallelSequenceRTG(db=PatternDB(), n_workers=2)
        parallel.analyze_by_service(records)
        (row,) = parallel.db.rows(service="sshd")
        before = row.match_count
        parallel.analyze_by_service(records[:3])
        (row,) = parallel.db.rows(service="sshd")
        assert row.match_count == before + 3

"""Parallel (service-sharded) AnalyzeByService — cold pool and
persistent worker pool."""

from datetime import datetime, timezone

import pytest

from repro.core.parallel import (
    ParallelSequenceRTG,
    PersistentParallelSequenceRTG,
    route_service,
    shard_records,
)
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.core.records import LogRecord
from repro.workflow.stream import ProductionStream, StreamConfig


def records_for_test(n=600, n_services=12, seed=6):
    stream = ProductionStream(StreamConfig(n_services=n_services, seed=seed))
    return list(stream.records(n))


def batches_for_test(n_batches=5, per_batch=250, n_services=12, seed=6,
                     duplicate_fraction=0.5):
    """Consecutive batches from one continuous stream: pattern discovery
    spans batches, later batches mostly match earlier patterns."""
    stream = ProductionStream(StreamConfig(
        n_services=n_services, seed=seed,
        duplicate_fraction=duplicate_fraction,
    ))
    return [list(stream.records(per_batch)) for _ in range(n_batches)]


def db_fingerprint(db):
    """Everything the bit-identical invariant covers: pattern ids,
    texts, supports (match counts) and stored examples."""
    return sorted(
        (row.id, row.service, row.pattern_text, row.match_count,
         tuple(row.examples))
        for row in db.rows()
    )


def serial_reference(batches):
    serial = SequenceRTG(db=PatternDB())
    results = [serial.analyze_by_service(batch) for batch in batches]
    return serial, results


class TestSharding:
    def test_services_never_split_across_shards(self):
        records = records_for_test()
        shards = shard_records(records, 4)
        seen: dict[str, int] = {}
        for i, shard in enumerate(shards):
            for record in shard:
                assert seen.setdefault(record.service, i) == i

    def test_all_records_covered(self):
        records = records_for_test()
        shards = shard_records(records, 3)
        assert sum(len(s) for s in shards) == len(records)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_records([], 0)


class TestEquivalence:
    def test_same_patterns_as_serial(self):
        """Sharded mining must produce the identical pattern set — the
        paper's no-crossover claim made executable."""
        records = records_for_test()
        serial = SequenceRTG(db=PatternDB())
        serial.analyze_by_service(records)
        serial_ids = {row.id for row in serial.db.rows()}

        parallel = ParallelSequenceRTG(db=PatternDB(), n_workers=3)
        result = parallel.analyze_by_service(records)
        parallel_ids = {row.id for row in parallel.db.rows()}

        assert parallel_ids == serial_ids
        assert result.n_records == len(records)
        assert result.n_new_patterns == len(parallel_ids)

    def test_single_worker_degenerates_to_serial(self):
        records = records_for_test(n=200)
        parallel = ParallelSequenceRTG(db=PatternDB(), n_workers=1)
        result = parallel.analyze_by_service(records)
        assert result.n_new_patterns == len(parallel.db.rows())


class TestIncremental:
    def test_second_batch_parses_against_known(self):
        records = records_for_test()
        parallel = ParallelSequenceRTG(db=PatternDB(), n_workers=2)
        parallel.analyze_by_service(records)
        n_patterns = len(parallel.db.rows())

        # replay some of the same traffic: should match, not re-discover
        result = parallel.analyze_by_service(records[:100])
        assert result.n_matched > 0
        assert len(parallel.db.rows()) == n_patterns

    def test_match_counts_merged_into_parent_db(self):
        records = [
            LogRecord("sshd", f"Accepted password for u{i} from 10.0.0.{i} port {4000+i} ssh2")
            for i in range(8)
        ]
        parallel = ParallelSequenceRTG(db=PatternDB(), n_workers=2)
        parallel.analyze_by_service(records)
        (row,) = parallel.db.rows(service="sshd")
        before = row.match_count
        parallel.analyze_by_service(records[:3])
        (row,) = parallel.db.rows(service="sshd")
        assert row.match_count == before + 3


class TestDisjointMergeGuard:
    def test_split_service_raises_instead_of_double_counting(self, monkeypatch):
        """If sharding ever stopped being service-disjoint, the same
        pattern would be discovered by several workers and its support
        silently summed; the merge must raise instead."""
        import repro.core.parallel as parallel_mod

        def broken_shard(records, n_shards):
            # round-robin: tears every service across all shards
            shards = [[] for _ in range(n_shards)]
            for i, record in enumerate(records):
                shards[i % n_shards].append(record)
            return shards

        monkeypatch.setattr(parallel_mod, "shard_records", broken_shard)
        records = [
            LogRecord("sshd", f"Accepted password for u{i} from 10.0.0.{i} port {4000+i} ssh2")
            for i in range(12)
        ]
        parallel = ParallelSequenceRTG(db=PatternDB(), n_workers=2)
        with pytest.raises(RuntimeError, match="service-disjoint"):
            parallel.analyze_by_service(records)


class TestPersistentEquivalence:
    def test_multi_batch_bit_identical_to_serial(self):
        """≥5 consecutive batches with discovery spanning batches: the
        persistent pool's database must be bit-identical to serial —
        ids, supports, match counts, examples."""
        batches = batches_for_test(n_batches=5)
        serial, serial_results = serial_reference(batches)

        with PersistentParallelSequenceRTG(db=PatternDB(), n_workers=3) as engine:
            for batch, expected in zip(batches, serial_results):
                result = engine.analyze_by_service(batch)
                # per-batch aggregate counters match serial too
                assert result.n_records == expected.n_records
                assert result.n_matched == expected.n_matched
                assert result.n_unmatched == expected.n_unmatched
                assert result.n_new_patterns == expected.n_new_patterns
            assert db_fingerprint(engine.db) == db_fingerprint(serial.db)
            assert engine.telemetry["batches"] == len(batches)
            assert engine.telemetry["respawns"] == 0

    def test_later_batches_ship_no_patterns(self):
        """Sticky workers already own their services' patterns: steady
        state ships records only, never the known set."""
        batches = batches_for_test(n_batches=4)
        with PersistentParallelSequenceRTG(db=PatternDB(), n_workers=3) as engine:
            for batch in batches:
                result = engine.analyze_by_service(batch)
                # no parent-side additions, no respawns -> empty deltas
                assert result.pool["sync_patterns"] == 0
                assert result.pool["sync_bytes"] == 0
            assert engine.telemetry["seed_patterns"] == 0

    def test_seeded_database_is_replayed_to_workers(self):
        """A pre-seeded shared DB reaches workers at spawn: known
        patterns match instead of being re-discovered."""
        batches = batches_for_test(n_batches=3)
        serial, _ = serial_reference(batches[:1])
        seeded = PatternDB.from_dump(serial.db.dump())

        with PersistentParallelSequenceRTG(db=seeded, n_workers=2) as engine:
            result = engine.analyze_by_service(batches[0])
            assert result.n_new_patterns == 0
            assert result.n_matched > 0
            assert engine.telemetry["seed_patterns"] > 0

    def test_publish_pattern_reaches_owner_as_delta(self):
        """Parent-side additions flow to the owning worker via the
        journal — O(new patterns), not a full re-ship."""
        miner = SequenceRTG(db=PatternDB())
        records = [
            LogRecord("sshd", f"Accepted password for u{i} from 10.0.0.{i} port {4000+i} ssh2")
            for i in range(8)
        ]
        mined = miner.analyze_by_service(records)
        pattern = mined.new_patterns[0]

        with PersistentParallelSequenceRTG(db=PatternDB(), n_workers=2) as engine:
            # spawn the sshd worker with unrelated traffic first
            engine.analyze_by_service(
                [LogRecord("sshd", f"session opened for root{i}") for i in range(4)]
            )
            engine.publish_pattern(pattern)
            result = engine.analyze_by_service(records[:5])
            assert result.n_matched == 5
            assert result.n_new_patterns == 0
            assert result.pool["sync_patterns"] == 1
            assert result.pool["sync_bytes"] > 0
            # the delta is consumed exactly once
            again = engine.analyze_by_service(records[5:])
            assert again.pool["sync_patterns"] == 0


class TestStickyRouting:
    def test_routing_is_stable_across_batches(self):
        """The same worker owns the same services for the pool's whole
        life: no process is replaced and no service ever moves."""
        batches = batches_for_test(n_batches=4)
        with PersistentParallelSequenceRTG(db=PatternDB(), n_workers=3) as engine:
            engine.analyze_by_service(batches[0])
            pids = {
                i: handle.process.pid
                for i, handle in enumerate(engine._workers)
                if handle is not None
            }
            for batch in batches[1:]:
                engine.analyze_by_service(batch)
            for i, handle in enumerate(engine._workers):
                if i in pids:
                    assert handle.process.pid == pids[i]
            # every service seen by exactly the worker crc32 routes it to
            seen = {}
            for i, handle in enumerate(engine._workers):
                if handle is None:
                    continue
                for service in handle.services:
                    assert seen.setdefault(service, i) == i
                    assert engine.worker_for(service) == i
                    assert route_service(service, engine.n_workers) == i

    def test_route_service_matches_shard_records(self):
        records = records_for_test()
        shards = shard_records(records, 4)
        for i, shard in enumerate(shards):
            for record in shard:
                assert route_service(record.service, 4) == i


class TestWorkerCrash:
    def test_kill_between_batches_respawns_and_stays_identical(self):
        batches = batches_for_test(n_batches=6)
        serial, _ = serial_reference(batches)

        with PersistentParallelSequenceRTG(db=PatternDB(), n_workers=3) as engine:
            for i, batch in enumerate(batches):
                if i == 3:
                    victim = next(
                        h for h in engine._workers if h is not None
                    )
                    victim.process.kill()
                    victim.process.join(timeout=5.0)
                engine.analyze_by_service(batch)
            assert engine.telemetry["respawns"] >= 1
            assert engine.telemetry["seed_patterns"] > 0  # replayed from shared DB
            assert db_fingerprint(engine.db) == db_fingerprint(serial.db)

    def test_kill_mid_batch_replays_and_stays_identical(self):
        """The robustness criterion: a worker killed after dispatch but
        before replying loses its in-flight work; the engine respawns
        it, replays its patterns from the shared DB and re-dispatches
        the shard — the final database is still bit-identical."""
        batches = batches_for_test(n_batches=5)
        serial, _ = serial_reference(batches)

        with PersistentParallelSequenceRTG(db=PatternDB(), n_workers=3) as engine:
            def crash_one_worker():
                victim = next(h for h in engine._workers if h is not None)
                victim.process.kill()
                victim.process.join(timeout=5.0)
                engine._post_dispatch_hook = None  # crash only once

            for i, batch in enumerate(batches):
                if i == 2:
                    engine._post_dispatch_hook = crash_one_worker
                engine.analyze_by_service(batch)
            assert engine.telemetry["respawns"] == 1
            assert db_fingerprint(engine.db) == db_fingerprint(serial.db)


class TestCrashReplayMetrics:
    """Crash replay must not corrupt the mining metrics.

    Fast-lane counters and latency sums legitimately differ after a
    respawn (the replacement worker starts with cold caches and its
    timings are its own), but the mining counters — records in, matched,
    unmatched, patterns out — and the final pattern dump must be
    bit-identical to an uninterrupted run: lost in-flight work is
    re-dispatched, never merged twice.
    """

    MINING_COUNTERS = (
        "rtg_records_total",
        "rtg_matched_total",
        "rtg_unmatched_total",
        "rtg_patterns_total",
    )

    def mining_counter_samples(self, registry):
        """Full labelled samples of the four mining counters (worker
        labels included: routing is sticky, so a respawned worker keeps
        its index)."""
        snapshot = registry.snapshot()
        return {
            name: dict(sorted(snapshot[name]["samples"].items()))
            for name in self.MINING_COUNTERS
        }

    def run_stream(self, batches, crash_at=None):
        with PersistentParallelSequenceRTG(db=PatternDB(), n_workers=3) as engine:
            def crash_one_worker():
                victim = next(h for h in engine._workers if h is not None)
                victim.process.kill()
                victim.process.join(timeout=5.0)
                engine._post_dispatch_hook = None  # crash only once

            for i, batch in enumerate(batches):
                if i == crash_at:
                    engine._post_dispatch_hook = crash_one_worker
                engine.analyze_by_service(batch)
            return (
                db_fingerprint(engine.db),
                self.mining_counter_samples(engine.metrics),
                engine.telemetry["respawns"],
            )

    def test_mid_batch_crash_metrics_identical_to_clean_run(self):
        batches = batches_for_test(n_batches=5)
        clean_dump, clean_counters, clean_respawns = self.run_stream(batches)
        crash_dump, crash_counters, crash_respawns = self.run_stream(
            batches, crash_at=2
        )
        assert clean_respawns == 0
        assert crash_respawns == 1
        assert crash_dump == clean_dump
        assert crash_counters == clean_counters


class TestEngineLifecycle:
    def test_close_is_idempotent_and_terminates_workers(self):
        engine = PersistentParallelSequenceRTG(db=PatternDB(), n_workers=2)
        engine.analyze_by_service(records_for_test(n=120))
        procs = [h.process for h in engine._workers if h is not None]
        assert procs
        engine.close()
        engine.close()
        for proc in procs:
            assert not proc.is_alive()

    def test_closed_engine_rejects_work(self):
        engine = PersistentParallelSequenceRTG(db=PatternDB(), n_workers=2)
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.analyze_by_service(records_for_test(n=10))

    def test_context_manager_closes(self):
        with PersistentParallelSequenceRTG(db=PatternDB(), n_workers=2) as engine:
            engine.analyze_by_service(records_for_test(n=120))
            procs = [h.process for h in engine._workers if h is not None]
        for proc in procs:
            assert not proc.is_alive()

    def test_db_stays_usable_after_close(self):
        engine = PersistentParallelSequenceRTG(db=PatternDB(), n_workers=2)
        engine.analyze_by_service(records_for_test(n=200))
        n_patterns = len(engine.db.rows())
        engine.close()
        assert len(engine.db.rows()) == n_patterns
        assert engine.db.counts()["patterns"] == n_patterns


class TestLastMatchedDeltaMerge:
    """``last_matched`` under the warm pool's delta merge (the TTL
    eviction input of stream mode): the parent must stamp worker deltas
    with the batch's ``now`` exactly as a serial run would, including
    across a crash-respawn replay."""

    DAYS = [
        datetime(2026, 3, day, tzinfo=timezone.utc) for day in (1, 2, 3, 4, 5)
    ]

    @staticmethod
    def match_dates(db):
        return {
            row.id: (row.first_seen, row.last_matched) for row in db.rows()
        }

    def run_serial(self, batches):
        serial = SequenceRTG(db=PatternDB())
        for batch, now in zip(batches, self.DAYS):
            serial.analyze_by_service(batch, now=now)
        return serial

    def test_warm_pool_dates_identical_to_serial(self):
        batches = batches_for_test(n_batches=5)
        serial = self.run_serial(batches)

        with PersistentParallelSequenceRTG(db=PatternDB(), n_workers=3) as engine:
            for batch, now in zip(batches, self.DAYS):
                engine.analyze_by_service(batch, now=now)
            assert self.match_dates(engine.db) == self.match_dates(serial.db)
            # the dates move: patterns matched on later days carry the
            # later stamp, not their discovery day
            last = {row.last_matched for row in engine.db.rows()}
            assert self.DAYS[-1].isoformat() in last

    def test_crash_respawn_replay_keeps_dates_identical(self):
        batches = batches_for_test(n_batches=5)
        serial = self.run_serial(batches)

        with PersistentParallelSequenceRTG(db=PatternDB(), n_workers=3) as engine:
            def crash_one_worker():
                victim = next(h for h in engine._workers if h is not None)
                victim.process.kill()
                victim.process.join(timeout=5.0)
                engine._post_dispatch_hook = None  # crash only once

            for i, (batch, now) in enumerate(zip(batches, self.DAYS)):
                if i == 2:
                    engine._post_dispatch_hook = crash_one_worker
                engine.analyze_by_service(batch, now=now)
            assert engine.telemetry["respawns"] == 1
            assert self.match_dates(engine.db) == self.match_dates(serial.db)

    def test_cold_pool_dates_identical_to_serial(self):
        batches = batches_for_test(n_batches=3)
        serial = SequenceRTG(db=PatternDB())
        pool = ParallelSequenceRTG(db=PatternDB(), n_workers=3)
        for batch, now in zip(batches, self.DAYS):
            serial.analyze_by_service(batch, now=now)
            pool.analyze_by_service(batch, now=now)
        assert self.match_dates(pool.db) == self.match_dates(serial.db)

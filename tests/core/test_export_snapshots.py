"""Per-class export translations, pinned as snapshots.

A change in any `%tag%` → syslog-ng / Grok mapping silently breaks every
downstream patterndb; these snapshots make such changes explicit.
"""

import pytest

from repro.analyzer.pattern import Pattern, PatternToken, VarClass
from repro.core.export.grok import pattern_to_grok
from repro.core.export.syslog_ng import pattern_to_syslog_ng


def one_var(vc: VarClass, last: bool = False) -> Pattern:
    tokens = [
        PatternToken.static("head", is_space_before=False),
        PatternToken.variable(vc, name=vc.value),
    ]
    if not last:
        tokens.append(PatternToken.static("tail"))
    return Pattern(tokens=tokens, service="svc")


SYSLOG_NG_MID = {
    VarClass.INTEGER: "head @NUMBER:integer@ tail",
    VarClass.FLOAT: "head @FLOAT:float@ tail",
    VarClass.IPV4: "head @IPv4:ipv4@ tail",
    VarClass.IPV6: "head @IPv6:ipv6@ tail",
    VarClass.MAC: "head @MACADDR:mac@ tail",
    VarClass.EMAIL: "head @EMAIL:email@ tail",
    VarClass.HOST: "head @HOSTNAME:host@ tail",
    VarClass.STRING: "head @ESTRING:string: @tail",
    VarClass.ALNUM: "head @ESTRING:alphanum: @tail",
    VarClass.URL: "head @ESTRING:url: @tail",
    VarClass.PATH: "head @ESTRING:path: @tail",
}

GROK_MID = {
    VarClass.INTEGER: "head %{INT:integer} tail",
    VarClass.FLOAT: "head %{NUMBER:float} tail",
    VarClass.IPV4: "head %{IP:ipv4} tail",
    VarClass.IPV6: "head %{IP:ipv6} tail",
    VarClass.MAC: "head %{MAC:mac} tail",
    VarClass.EMAIL: "head %{EMAILADDRESS:email} tail",
    VarClass.HOST: "head %{HOSTNAME:host} tail",
    VarClass.STRING: "head %{DATA:string} tail",
    VarClass.ALNUM: "head %{NOTSPACE:alphanum} tail",
    VarClass.URL: "head %{URI:url} tail",
    VarClass.PATH: "head %{PATH:path} tail",
    VarClass.TIME: "head %{DATA:msgtime} tail",
    VarClass.REST: "head %{GREEDYDATA:ignorerest} tail",
}


class TestSyslogNgSnapshots:
    @pytest.mark.parametrize("vc", sorted(SYSLOG_NG_MID, key=lambda v: v.value))
    def test_mid_pattern(self, vc):
        assert pattern_to_syslog_ng(one_var(vc)) == SYSLOG_NG_MID[vc]

    def test_time_uses_pcre(self):
        rendered = pattern_to_syslog_ng(one_var(VarClass.TIME))
        assert rendered.startswith("head @PCRE:msgtime:")

    def test_rest_is_anystring(self):
        rendered = pattern_to_syslog_ng(one_var(VarClass.REST, last=True))
        assert rendered == "head @ANYSTRING:ignorerest@"

    @pytest.mark.parametrize(
        "vc", [VarClass.STRING, VarClass.ALNUM, VarClass.URL, VarClass.PATH]
    )
    def test_final_position_widens_to_anystring(self, vc):
        rendered = pattern_to_syslog_ng(one_var(vc, last=True))
        assert rendered.endswith(f"@ANYSTRING:{vc.value}@")


class TestGrokSnapshots:
    @pytest.mark.parametrize("vc", sorted(GROK_MID, key=lambda v: v.value))
    def test_mid_pattern(self, vc):
        assert pattern_to_grok(one_var(vc)) == GROK_MID[vc]

    def test_regex_specials_escaped(self):
        pattern = Pattern(
            tokens=[PatternToken.static("a+b (x) [y] {z}", is_space_before=False)],
            service="svc",
        )
        rendered = pattern_to_grok(pattern)
        assert rendered == "a\\+b \\(x\\) \\[y\\] \\{z\\}"

"""Exporters: syslog-ng patterndb XML, YAML, Logstash Grok."""

import xml.etree.ElementTree as ET

import pytest

from repro.analyzer.pattern import Pattern
from repro.core.export import export_patterns
from repro.core.export.grok import pattern_to_grok
from repro.core.export.syslog_ng import pattern_to_syslog_ng
from repro.core.patterndb import PatternDB


@pytest.fixture()
def db():
    db = PatternDB()
    p1 = Pattern.from_text("%action% from %srcip% port %srcport%", "sshd")
    p1.support = 10
    p1.add_example("Accepted from 1.2.3.4 port 22")
    p1.add_example("Rejected from 5.6.7.8 port 2222")
    db.upsert(p1)
    p2 = Pattern.from_text("%string% %string1% %string2%", "noisy")
    p2.support = 1
    db.upsert(p2)
    return db


class TestSyslogNgPatternSyntax:
    def test_paper_example_translation(self):
        pattern = Pattern.from_text("%action% from %srcip% port %srcport%", "sshd")
        rendered = pattern_to_syslog_ng(pattern)
        assert "@IPv4:srcip@" in rendered
        assert "@NUMBER:srcport@" in rendered
        assert rendered.startswith("@ESTRING:action: @")

    def test_estring_swallows_following_space(self):
        pattern = Pattern.from_text("%string% next")
        assert pattern_to_syslog_ng(pattern) == "@ESTRING:string: @next"

    def test_final_variable_is_anystring(self):
        pattern = Pattern.from_text("tail %string%")
        assert pattern_to_syslog_ng(pattern).endswith("@ANYSTRING:string@")

    def test_at_sign_escaped(self):
        pattern = Pattern.from_text("user@@host said hi")  # literal contains @
        assert "@@" in pattern_to_syslog_ng(pattern)

    def test_typed_parsers(self):
        pattern = Pattern.from_text("%mac% %ipv6% %float% %email% %host%")
        rendered = pattern_to_syslog_ng(pattern)
        for parser in ("@MACADDR:", "@IPv6:", "@FLOAT:", "@EMAIL:", "@HOSTNAME:"):
            assert parser in rendered


class TestPatterndbXml:
    def test_well_formed_and_structured(self, db):
        xml = export_patterns(db, "syslog-ng")
        root = ET.fromstring(xml)
        assert root.tag == "patterndb"
        rulesets = root.findall("ruleset")
        assert {rs.get("name") for rs in rulesets} == {"sshd", "noisy"}

    def test_rule_carries_pattern_id_and_examples(self, db):
        xml = export_patterns(db, "syslog-ng", service="sshd")
        root = ET.fromstring(xml)
        rule = root.find(".//rule")
        assert len(rule.get("id")) == 40
        messages = [e.text for e in rule.findall(".//test_message")]
        assert "Accepted from 1.2.3.4 port 22" in messages

    def test_statistics_in_values(self, db):
        xml = export_patterns(db, "syslog-ng", service="sshd")
        root = ET.fromstring(xml)
        names = {v.get("name") for v in root.findall(".//value")}
        assert "sequence-rtg.match_count" in names
        assert "sequence-rtg.complexity" in names


class TestYaml:
    def test_contains_rendered_rows(self, db):
        out = export_patterns(db, "yaml", service="sshd")
        assert out.startswith("---")
        assert '"sshd":' in out
        assert "pattern: \"%action% from %srcip% port %srcport%\"" in out
        assert "match_count: 10" in out
        assert "examples:" in out

    def test_empty_db(self):
        out = export_patterns(PatternDB(), "yaml")
        assert "patterndb: {}" in out


class TestGrok:
    def test_fig4_shape(self, db):
        out = export_patterns(db, "grok", service="sshd")
        assert "filter {" in out and "grok {" in out
        assert '%{DATA:action} from %{IP:srcip} port %{INT:srcport}' in out
        assert '"pattern_id"]' in out

    def test_static_regex_escaped(self):
        pattern = Pattern.from_text("jk2_init %integer%", "apache")
        rendered = pattern_to_grok(pattern)
        assert "jk2_init" in rendered  # parentheses would need escaping
        pattern2 = Pattern.from_text("cost (usd) %float%")
        assert "\\(usd\\)" in pattern_to_grok(pattern2)


class TestExportSelection:
    def test_min_count_filter(self, db):
        out = export_patterns(db, "grok", min_count=5)
        assert "srcip" in out
        assert out.count("filter {") == 1  # the noisy pattern is excluded

    def test_complexity_filter(self, db):
        """"This score can then be used to select only the strongest
        patterns when exporting" (§III)."""
        out = export_patterns(db, "yaml", max_complexity=0.8)
        assert "noisy" not in out  # all-variable pattern filtered out

    def test_unknown_format(self, db):
        with pytest.raises(ValueError):
            export_patterns(db, "protobuf")

"""Shared fixtures for the Sequence-RTG test suite."""

from __future__ import annotations

import pytest

from repro.analyzer.analyzer import Analyzer
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.core.records import LogRecord
from repro.scanner.scanner import Scanner, ScannerConfig


@pytest.fixture()
def scanner() -> Scanner:
    """Default-configured scanner (published behaviour)."""
    return Scanner(ScannerConfig())


@pytest.fixture()
def analyzer() -> Analyzer:
    return Analyzer()


@pytest.fixture()
def rtg() -> SequenceRTG:
    """Pipeline over a fresh in-memory database."""
    return SequenceRTG(db=PatternDB())


@pytest.fixture()
def ssh_records() -> list[LogRecord]:
    """Enough distinct users/hosts for the variable positions to merge."""
    return [
        LogRecord(
            "sshd",
            f"Accepted password for user{i} from 10.0.{i}.{i + 1} port {40000 + i} ssh2",
        )
        for i in range(8)
    ]


@pytest.fixture()
def hdfs_records() -> list[LogRecord]:
    return [
        LogRecord(
            "hdfs",
            f"PacketResponder {i % 3} for block blk_{7000000 + i} terminating",
        )
        for i in range(6)
    ]

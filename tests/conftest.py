"""Shared fixtures for the Sequence-RTG test suite."""

from __future__ import annotations

import random

import pytest

from repro.analyzer.analyzer import Analyzer
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.core.records import LogRecord
from repro.scanner.scanner import Scanner, ScannerConfig


class MessageGenerator:
    """Seeded pseudo-random log message generator (stdlib only).

    Drives the property-based tests: :meth:`message` produces arbitrary
    single-line messages mixing every scan-time token shape (words,
    integers, floats, IPv4/IPv6 addresses, hex ids, times, key=value
    pairs, paths, bracketed fields), and :meth:`records` produces
    template-derived traffic — fixed literal skeletons with variable
    slots — so mining over it reliably generalises patterns.

    Messages are emitted with single-space separation and no leading or
    trailing whitespace, the subset of inputs the scanner's
    ``is_space_before`` reconstruction guarantee covers byte-for-byte
    (runs of whitespace collapse by design).
    """

    WORDS = (
        "connection", "accepted", "failed", "session", "opened", "closed",
        "user", "root", "daemon", "timeout", "retry", "error", "warning",
        "disk", "memory", "packet", "request", "reply", "started",
        "stopped", "for", "from", "on", "via", "at",
    )

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    # -- arbitrary token soup (scanner round-trip) ----------------------
    def _word(self) -> str:
        return self.rng.choice(self.WORDS)

    def _token(self) -> str:
        rng = self.rng
        kind = rng.randrange(10)
        if kind == 0:
            return str(rng.randrange(0, 10**6))
        if kind == 1:
            return f"{rng.uniform(0, 1000):.{rng.randrange(1, 5)}f}"
        if kind == 2:
            return ".".join(str(rng.randrange(256)) for _ in range(4))
        if kind == 3:
            return f"{rng.randrange(16**8):08x}"
        if kind == 4:
            return (
                f"{rng.randrange(24):02d}:{rng.randrange(60):02d}"
                f":{rng.randrange(60):02d}"
            )
        if kind == 5:
            return f"{self._word()}={rng.randrange(10**4)}"
        if kind == 6:
            return "/" + "/".join(self._word() for _ in range(rng.randrange(1, 4)))
        if kind == 7:
            return f"[{self._word()}]"
        if kind == 8:
            return self._word() + rng.choice((":", ",", ";", "."))
        return self._word()

    def message(self, n_tokens: int | None = None) -> str:
        n = n_tokens or self.rng.randrange(1, 12)
        return " ".join(self._token() for _ in range(n))

    def messages(self, n: int) -> list[str]:
        return [self.message() for _ in range(n)]

    # -- template-derived traffic (mining properties) -------------------
    def _template(self) -> list[str]:
        """A literal skeleton with ``{int}``/``{ipv4}``/``{word}`` slots."""
        rng = self.rng
        parts: list[str] = []
        for _ in range(rng.randrange(4, 9)):
            parts.append(
                rng.choice((self._word(), "{int}", "{ipv4}", "{word}"))
            )
        return parts

    def _instantiate(self, template: list[str]) -> str:
        rng = self.rng
        out: list[str] = []
        for part in template:
            if part == "{int}":
                out.append(str(rng.randrange(10**5)))
            elif part == "{ipv4}":
                out.append(".".join(str(rng.randrange(256)) for _ in range(4)))
            elif part == "{word}":
                out.append(self._word() + str(rng.randrange(100)))
            else:
                out.append(part)
        return " ".join(out)

    def records(
        self, n: int, n_services: int = 3, templates_per_service: int = 3
    ) -> list[LogRecord]:
        """*n* records of repeating templated events across services."""
        catalogue = {
            f"svc{s}": [self._template() for _ in range(templates_per_service)]
            for s in range(n_services)
        }
        out: list[LogRecord] = []
        for _ in range(n):
            service = f"svc{self.rng.randrange(n_services)}"
            template = self.rng.choice(catalogue[service])
            out.append(LogRecord(service, self._instantiate(template)))
        return out


@pytest.fixture()
def message_generator() -> MessageGenerator:
    """Deterministic generator for property-based tests."""
    return MessageGenerator(seed=0)


@pytest.fixture()
def scanner() -> Scanner:
    """Default-configured scanner (published behaviour)."""
    return Scanner(ScannerConfig())


@pytest.fixture()
def analyzer() -> Analyzer:
    return Analyzer()


@pytest.fixture()
def rtg() -> SequenceRTG:
    """Pipeline over a fresh in-memory database."""
    return SequenceRTG(db=PatternDB())


@pytest.fixture()
def ssh_records() -> list[LogRecord]:
    """Enough distinct users/hosts for the variable positions to merge."""
    return [
        LogRecord(
            "sshd",
            f"Accepted password for user{i} from 10.0.{i}.{i + 1} port {40000 + i} ssh2",
        )
        for i in range(8)
    ]


@pytest.fixture()
def hdfs_records() -> list[LogRecord]:
    return [
        LogRecord(
            "hdfs",
            f"PacketResponder {i % 3} for block blk_{7000000 + i} terminating",
        )
        for i in range(6)
    ]

"""Property-based parser fuzzing.

Generates random patterns and messages *conforming* to them, and asserts
the round trip: a message built from a pattern's shape always matches a
parser loaded with that pattern (plus arbitrary sibling patterns), and
the extracted fields reproduce the generated values.
"""

from hypothesis import given, settings, strategies as st

from repro.analyzer.pattern import Pattern, PatternToken, VarClass
from repro.parser import Parser
from repro.scanner import Scanner

SC = Scanner()

_WORDS = ("alpha", "bravo", "stopped", "queue", "worker", "failed", "ok")

# variable classes paired with generators for conforming source text.
# Integers stay below six digits: two adjacent six-digit numbers are a
# legitimate compact timestamp ("081109 203615", the HDFS header layout)
# and the scanner is *supposed* to claim them as TIME.
_VAR_STRATEGIES = {
    VarClass.INTEGER: st.integers(0, 99_999).map(str),
    VarClass.FLOAT: st.floats(0, 10**4, allow_nan=False).map(lambda f: f"{f:.3f}"),
    VarClass.IPV4: st.tuples(*[st.integers(1, 254)] * 4).map(
        lambda t: ".".join(map(str, t))
    ),
    VarClass.STRING: st.sampled_from(("value", "thing", "item42", "x")),
    VarClass.ALNUM: st.integers(0, 10**6).map(lambda n: f"id{n}"),
}


@st.composite
def pattern_and_message(draw):
    n = draw(st.integers(2, 8))
    tokens = []
    words = []
    fields = {}
    used_names = set()
    for i in range(n):
        sp = i > 0
        if draw(st.booleans()):
            word = draw(st.sampled_from(_WORDS))
            tokens.append(PatternToken.static(word, is_space_before=sp))
            words.append(word)
        else:
            vc = draw(st.sampled_from(sorted(_VAR_STRATEGIES, key=lambda v: v.value)))
            # names follow the analyser's convention: base tag plus a
            # numeric disambiguation suffix
            name = f"{vc.value}{i}"
            used_names.add(name)
            tokens.append(
                PatternToken.variable(vc, name=name, is_space_before=sp)
            )
            value = draw(_VAR_STRATEGIES[vc])
            words.append(value)
            fields[name] = value
    pattern = Pattern(tokens=tokens, service="fuzz")
    return pattern, " ".join(words), fields


class TestRoundTrip:
    @given(pattern_and_message())
    @settings(max_examples=150, deadline=None)
    def test_conforming_message_matches(self, case):
        pattern, message, fields = case
        parser = Parser([pattern])
        hit = parser.match(SC.scan(message))
        assert hit is not None
        # integers may also satisfy float slots etc., but when the
        # pattern is matched the extracted raw texts must be the
        # generated values
        for name, value in fields.items():
            if name in hit.fields:
                assert hit.fields[name] == value

    @given(st.lists(pattern_and_message(), min_size=2, max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_sibling_patterns_do_not_break_matching(self, cases):
        parser = Parser([p for p, _, _ in cases])
        for pattern, message, _ in cases:
            hit = parser.match(SC.scan(message))
            assert hit is not None

    @given(pattern_and_message())
    @settings(max_examples=100, deadline=None)
    def test_pattern_text_reload_still_matches(self, case):
        """Patterns survive the render → parse-text round trip used by
        the database and the CLI."""
        pattern, message, _ = case
        reloaded = Pattern.from_text(pattern.text, "fuzz")
        parser = Parser([reloaded])
        assert parser.match(SC.scan(message)) is not None

"""Parser: variable acceptance rules, best-match scoring, REST handling."""

import pytest

from repro.analyzer.pattern import Pattern, PatternToken, VarClass
from repro.parser import Parser
from repro.scanner import Scanner

SC = Scanner()


def pattern_from(text: str, service: str = "svc") -> Pattern:
    return Pattern.from_text(text, service)


def match(parser: Parser, message: str):
    return parser.match(SC.scan(message))


class TestAcceptance:
    @pytest.mark.parametrize(
        "pattern_text, message, should_match",
        [
            ("count %integer%", "count 42", True),
            ("count %integer%", "count 4.2", False),
            ("load %float%", "load 0.93", True),
            ("load %float%", "load 7", True),  # integers widen to float
            ("from %ipv4%", "from 10.0.0.1", True),
            ("from %ipv4%", "from verywrong", False),
            ("peer %ipv6%", "peer fe80::1", True),
            ("dev %mac%", "dev 00:1b:44:11:3a:b7", True),
            ("at %msgtime%", "at 2021-09-14 08:12:33", True),
            ("at %msgtime%", "at midnight", False),
            ("get %url%", "get http://example.com/x", True),
            ("x %string% y", "x anything y", True),
            ("x %alphanum% y", "x blk_123 y", True),
            ("x %alphanum% y", "x 123 y", True),
            ("x %alphanum% y", "x ??? y", False),
        ],
    )
    def test_var_classes(self, pattern_text, message, should_match):
        parser = Parser([pattern_from(pattern_text)])
        assert (match(parser, message) is not None) is should_match

    def test_email_and_host_via_enrichment(self):
        parser = Parser([pattern_from("mail from %email% via %host%")])
        hit = match(parser, "mail from ops@example.com via mx1.example.com")
        assert hit is not None
        assert hit.fields == {
            "email": "ops@example.com",
            "host": "mx1.example.com",
        }


class TestScoring:
    def test_most_static_tokens_wins(self):
        generic = pattern_from("%string% %string1% %string2%")
        specific = pattern_from("session closed %string%")
        parser = Parser([generic, specific])
        hit = match(parser, "session closed abruptly")
        assert hit.pattern.text == "session closed %string%"
        assert hit.static_matches == 2

    def test_tie_broken_by_fewer_variables(self):
        a = Pattern(
            tokens=[
                PatternToken.static("x"),
                PatternToken.variable(VarClass.STRING, "s1"),
                PatternToken.variable(VarClass.STRING, "s2"),
            ],
            service="svc",
        )
        b = Pattern(
            tokens=[
                PatternToken.static("x"),
                PatternToken.variable(VarClass.REST, "rest"),
            ],
            service="svc",
        )
        parser = Parser([a, b])
        hit = match(parser, "x one two")
        assert hit.pattern is b  # 1 variable beats 2 at equal static score


class TestFieldExtraction:
    def test_fields_keyed_by_names(self):
        parser = Parser([pattern_from("%action% from %srcip% port %srcport%")])
        hit = match(parser, "Accepted from 1.2.3.4 port 22")
        assert hit.fields == {
            "action": "Accepted",
            "srcip": "1.2.3.4",
            "srcport": "22",
        }


class TestRest:
    def test_rest_consumes_remainder(self):
        parser = Parser([pattern_from("panic: %ignorerest%")])
        hit = match(parser, "panic: everything after this is ignored 123")
        assert hit is not None
        assert "everything" in hit.fields["ignorerest"]

    def test_rest_matches_empty_tail(self):
        parser = Parser([pattern_from("panic %ignorerest%")])
        assert match(parser, "panic") is not None

    def test_truncated_message_matches(self):
        parser = Parser([pattern_from("head %integer%")])
        assert match(parser, "head 5\nsecond line") is not None


class TestMisc:
    def test_no_match_returns_none(self):
        parser = Parser([pattern_from("known pattern")])
        assert match(parser, "completely different words") is None

    def test_empty_parser_matches_nothing(self):
        assert match(Parser(), "anything") is None
        assert len(Parser()) == 0

    def test_add_pattern_idempotent(self):
        parser = Parser()
        p = pattern_from("a %integer%")
        parser.add_pattern(p)
        parser.add_pattern(p)
        assert len(parser) == 1

    def test_shorter_message_no_match(self):
        parser = Parser([pattern_from("a b c")])
        assert match(parser, "a b") is None

    def test_longer_message_no_match(self):
        parser = Parser([pattern_from("a b")])
        assert match(parser, "a b c") is None

    def test_shared_prefix_patterns(self):
        parser = Parser(
            [pattern_from("job %integer% started"), pattern_from("job %integer% done")]
        )
        assert match(parser, "job 9 started").pattern.text.endswith("started")
        assert match(parser, "job 9 done").pattern.text.endswith("done")


class TestLengthBuckets:
    """Root pruning: patterns are bucketed by token count, so a match only
    ever walks candidates of the message's own length (plus ignore-rest
    patterns, which accept any sufficiently long message)."""

    def test_patterns_of_many_lengths_coexist(self):
        parser = Parser(
            [
                pattern_from("up"),
                pattern_from("count %integer%"),
                pattern_from("count %integer% of %integer%"),
            ]
        )
        assert match(parser, "up").pattern.text == "up"
        assert match(parser, "count 3").pattern.text == "count %integer%"
        assert match(parser, "count 3 of 9") is not None
        assert match(parser, "count 3 of") is None

    def test_rest_pattern_spans_length_buckets(self):
        parser = Parser(
            [pattern_from("count %integer%"), pattern_from("panic %ignorerest%")]
        )
        assert match(parser, "panic") is not None
        assert match(parser, "panic at the disco tonight 22:00") is not None
        assert match(parser, "count 7").pattern.text == "count %integer%"

    def test_rest_and_exact_compete_on_static_tokens(self):
        parser = Parser(
            [pattern_from("job %integer% done"), pattern_from("job %ignorerest%")]
        )
        # the exact pattern matches more static tokens and must win even
        # though both sub-tries accept the message
        assert match(parser, "job 5 done").pattern.text == "job %integer% done"

    def test_version_bumps_on_every_mutation(self):
        parser = Parser()
        assert parser.version == 0
        parser.add_pattern(pattern_from("a %integer%"))
        parser.add_pattern(pattern_from("b %integer%"))
        assert parser.version == 2


class TestNoCopy:
    def test_match_does_not_mutate_tokens_without_enrichment(self):
        parser = Parser([pattern_from("evt %integer%")], enrich=False)
        scanned = SC.scan("evt 7")
        before = list(scanned.tokens)
        assert parser.match(scanned) is not None
        assert scanned.tokens == before

    def test_rest_marker_sliced_only_when_present(self):
        parser = Parser([pattern_from("evt %integer%")], enrich=False)
        truncated = SC.scan("evt 7\ntail text")
        assert truncated.tokens[-1].type.value == "rest"
        assert parser.match(truncated) is not None
        assert truncated.tokens[-1].type.value == "rest"  # untouched

    def test_pre_enriched_tokens_accepted(self):
        from repro.analyzer.enrich import enrich_tokens

        parser = Parser([pattern_from("mail from %email%")])
        scanned = SC.scan("mail from ops@example.com")
        hit = parser.match(scanned, tokens=enrich_tokens(scanned.tokens))
        assert hit is not None and hit.fields["email"] == "ops@example.com"

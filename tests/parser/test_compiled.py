"""Differential equivalence suite for the compiled parser backend.

The compiled backend's contract is *bit-identical* match results to the
reference parse-trie DFS: same winning pattern under the full tie-break
order (most static tokens, then fewest variables, then the reference
fold order), same extracted fields, same static count — and ``None``
exactly when the reference misses.  These tests enforce the contract on

* pattern sets **mined** by the full pipeline from seeded generator,
  production-stream and loghub corpora, replayed over their own source
  messages (plus mutations);
* **handcrafted** adversarial sets aimed at the tie-break seams: shared
  prefixes, literal-vs-variable ambiguity, full ties, and ignore-rest
  shadowing;
* **seeded random families** of overlapping patterns drawn from a tiny
  shared vocabulary, so collisions on every tie-break level are common
  rather than lucky.

Structural properties ride along: ``match_many`` positional parity and
duplicate sharing, incremental ``add_pattern`` recompilation, frontier
telemetry, and backend selection via the factory.
"""

import random

import pytest

from tests.conftest import MessageGenerator
from repro.analyzer.pattern import Pattern, PatternToken, VarClass
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.core.records import LogRecord
from repro.loghub.corpus import DATASET_NAMES, load_dataset
from repro.parser import PARSER_BACKENDS, Parser, ParserConfig, build_parser
from repro.parser.compiled import CompiledParser
from repro.scanner import Scanner
from repro.workflow.stream import ProductionStream, StreamConfig

SC = Scanner()


def assert_backends_agree(patterns, messages, enrich=True):
    """Both backends, loaded with the *same* pattern objects, produce
    identical results — winner identity, fields, static count — on every
    message."""
    ref = Parser(patterns, enrich=enrich)
    comp = CompiledParser(patterns, enrich=enrich)
    for message in messages:
        scanned = SC.scan(message)
        a = ref.match(scanned)
        b = comp.match(scanned)
        if a is None:
            assert b is None, repr(message)
            continue
        assert b is not None, repr(message)
        assert b.pattern is a.pattern, (
            message,
            a.pattern.text,
            b.pattern.text,
        )
        assert b.fields == a.fields, repr(message)
        assert b.static_matches == a.static_matches, repr(message)
    return ref, comp


def mutated(messages, seed):
    """Word-level mutations of *messages*: drops, swaps and splices that
    push matches across pattern-length buckets and onto near-miss
    patterns."""
    rng = random.Random(seed)
    out = []
    for message in messages:
        words = message.split()
        if len(words) < 2:
            continue
        i = rng.randrange(len(words))
        out.append(" ".join(words[:i] + words[i + 1:]))  # drop one word
        j = rng.randrange(len(words))
        swapped = list(words)
        swapped[i], swapped[j] = swapped[j], swapped[i]
        out.append(" ".join(swapped))
        donor = rng.choice(messages).split()
        out.append(" ".join(words[: len(words) // 2] + donor[len(donor) // 2:]))
    return out


def mined_by_service(records):
    """Mine *records* with the full pipeline; yield each service's stored
    pattern set with the messages that produced it."""
    rtg = SequenceRTG(db=PatternDB())
    rtg.analyze_by_service(records)
    by_service = {}
    for record in records:
        by_service.setdefault(record.service, []).append(record.message)
    for service, messages in by_service.items():
        yield rtg.db.load_service(service), messages


class TestMinedCorpora:
    def test_generator_corpus(self):
        records = MessageGenerator(seed=7).records(400, n_services=4)
        for patterns, messages in mined_by_service(records):
            assert patterns  # mining must produce something to compare
            assert_backends_agree(
                patterns, messages + mutated(messages, seed=13)
            )

    def test_production_stream(self):
        stream = ProductionStream(
            StreamConfig(n_services=6, seed=41, duplicate_fraction=0.3)
        )
        records = list(stream.records(500))
        for patterns, messages in mined_by_service(records):
            assert_backends_agree(
                patterns, messages + mutated(messages, seed=17)
            )

    def test_loghub_datasets(self):
        for name in DATASET_NAMES:
            contents = load_dataset(name, 60, seed=3).contents()
            records = [LogRecord(name, m) for m in contents]
            for patterns, messages in mined_by_service(records):
                assert_backends_agree(
                    patterns, messages + mutated(messages, seed=19)
                )

    def test_enrichment_disabled_parity(self):
        records = MessageGenerator(seed=29).records(200, n_services=2)
        for patterns, messages in mined_by_service(records):
            assert_backends_agree(
                patterns, messages + mutated(messages, seed=23), enrich=False
            )


def patterns_from(texts):
    return [Pattern.from_text(text, "svc") for text in texts]


class TestTieBreaking:
    """Satellite: tie-break parity on deliberately overlapping sets."""

    def test_shared_prefix_most_static_wins(self):
        patterns = patterns_from(
            [
                "session %string% %string2%",
                "session closed %string%",
                "session closed abruptly",
                "session %string% abruptly",
            ]
        )
        ref, _ = assert_backends_agree(
            patterns,
            [
                "session closed abruptly",
                "session closed early",
                "session opened abruptly",
                "session opened late",
                "session closed",
                "session closed abruptly now",
            ],
        )
        # anchor the shared behaviour, not just the agreement: the
        # all-static pattern must beat every variable sibling
        hit = ref.match(SC.scan("session closed abruptly"))
        assert hit.pattern is patterns[2]
        assert hit.static_matches == 3

    def test_literal_vs_variable_ambiguity(self):
        patterns = patterns_from(
            [
                "error %integer% at %string%",
                "error 42 at %string%",
                "%string% 42 at disk",
                "error %integer% at disk",
            ]
        )
        ref, _ = assert_backends_agree(
            patterns,
            [
                "error 42 at disk",
                "error 42 at node",
                "error 7 at disk",
                "warn 42 at disk",
                "error x at disk",
            ],
        )
        # "error 42 at disk" satisfies all four; the 3-static candidates
        # tie on statics and variables, and the reference fold order
        # decides.  Whatever it picks, the compiled backend picked the
        # same object above; pin the count so the case stays a full tie.
        hit = ref.match(SC.scan("error 42 at disk"))
        assert hit.static_matches == 3

    def test_full_tie_resolved_identically(self):
        # same statics, same variable count — only the fold order breaks
        # the tie, in both trie buckets
        patterns = patterns_from(
            ["a %string% c", "a %alphanum% c", "%string% b c", "a b %string%"]
        )
        assert_backends_agree(
            patterns, ["a b c", "a bb c", "a ?? c", "x b c", "a b x"]
        )

    def test_ignore_rest_shadowing(self):
        patterns = patterns_from(
            [
                "kernel %string% %ignorerest%",
                "kernel oops %ignorerest%",
                "kernel oops at %string%",
                "kernel %string% at %string2%",
            ]
        )
        ref, comp = assert_backends_agree(
            patterns,
            [
                "kernel oops at boot",
                "kernel oops at boot time today",
                "kernel panic at boot",
                "kernel oops",
                "kernel oops now",
                "kernel",
            ],
        )
        # exact-length patterns shadow ignore-rest ones on statics; the
        # rest field binds only when there is a tail to bind
        hit = ref.match(SC.scan("kernel oops at boot"))
        assert hit.pattern is patterns[2]
        boundary = comp.match(SC.scan("kernel oops"))
        assert boundary.pattern is patterns[1]
        assert "ignorerest" not in boundary.fields
        tail = comp.match(SC.scan("kernel oops at boot time today"))
        assert tail.pattern is patterns[1]
        assert tail.fields["ignorerest"] == "at boot time today"
        assert ref.match(SC.scan("kernel oops")).fields == boundary.fields
        assert ref.match(
            SC.scan("kernel oops at boot time today")
        ).fields == tail.fields


#: shared vocabulary for the random families — tiny on purpose, so
#: independently drawn patterns overlap constantly
_WORDS = (
    "session", "closed", "error", "disk", "node", "failed", "at", "for",
    "port", "up",
)
_CLASSES = (VarClass.STRING, VarClass.ALNUM, VarClass.INTEGER)


def random_pattern(rng):
    tokens = []
    counts = {}
    for i in range(rng.randint(2, 6)):
        if rng.random() < 0.5:
            tokens.append(
                PatternToken.static(rng.choice(_WORDS), is_space_before=i > 0)
            )
        else:
            vc = rng.choice(_CLASSES)
            counts[vc] = counts.get(vc, 0) + 1
            name = vc.value if counts[vc] == 1 else f"{vc.value}{counts[vc]}"
            tokens.append(
                PatternToken.variable(vc, name=name, is_space_before=i > 0)
            )
    if rng.random() < 0.2:
        tokens.append(PatternToken.variable(VarClass.REST, name="ignorerest"))
    return Pattern(tokens=tokens, service="prop")


def conforming_words(rng, pattern):
    words = []
    for tok in pattern.tokens:
        if not tok.is_variable:
            words.append(tok.text)
        elif tok.var_class is VarClass.STRING:
            words.append(rng.choice(_WORDS + ("value", "thing")))
        elif tok.var_class is VarClass.ALNUM:
            words.append(rng.choice((f"id{rng.randint(0, 999)}",
                                     str(rng.randint(0, 99_999)))))
        elif tok.var_class is VarClass.INTEGER:
            words.append(str(rng.randint(0, 99_999)))
        else:  # REST: zero to three tail words — zero probes the L==k edge
            words.extend(rng.choice(_WORDS) for _ in range(rng.randint(0, 3)))
    return words


class TestRandomOverlappingFamilies:
    """Seeded property test: families of overlapping patterns drawn from
    one small vocabulary, matched against conforming and mutated
    messages.  Every tie-break level gets exercised by volume."""

    def test_families_agree(self):
        rng = random.Random(20260808)
        for _ in range(10):
            patterns = [random_pattern(rng) for _ in range(30)]
            messages = [
                " ".join(conforming_words(rng, rng.choice(patterns)))
                for _ in range(150)
            ]
            messages += mutated(messages[:50], seed=rng.randrange(10**6))
            # pure word soup for the miss path
            messages += [
                " ".join(rng.choice(_WORDS) for _ in range(rng.randint(1, 7)))
                for _ in range(30)
            ]
            assert_backends_agree(patterns, messages)


class TestMatchMany:
    def test_positional_parity_and_duplicate_sharing(self):
        stream = ProductionStream(
            StreamConfig(n_services=1, seed=5, duplicate_fraction=0.6)
        )
        messages = [r.message for r in stream.records(300)]
        patterns = next(
            iter(
                mined_by_service(
                    [LogRecord("one", m) for m in messages]
                )
            )
        )[0]
        scanned = [SC.scan(m) for m in messages]

        for cls in (Parser, CompiledParser):
            parser = cls(patterns)
            batch = parser.match_many(scanned)
            assert len(batch) == len(scanned)
            # batch results equal the one-by-one results...
            fresh = cls(patterns)
            for hit, msg in zip(batch, scanned):
                single = fresh.match(msg)
                if single is None:
                    assert hit is None
                else:
                    assert hit.pattern is single.pattern
                    assert hit.fields == single.fields
            # ...and in-batch duplicates share one result object
            by_text = {}
            for hit, message in zip(batch, messages):
                if message in by_text:
                    assert by_text[message] is hit
                by_text[message] = hit
            # one frontier sample per *unique* scanned message
            assert len(parser.last_frontiers) == len(
                {tuple(t.text for t in m.tokens) for m in scanned}
            )
            assert all(f >= 0 for f in parser.last_frontiers)

    def test_cross_backend_batch_parity(self):
        records = MessageGenerator(seed=3).records(150, n_services=1)
        patterns, messages = next(iter(mined_by_service(records)))
        scanned = [SC.scan(m) for m in messages + mutated(messages, seed=31)]
        ref_batch = Parser(patterns).match_many(scanned)
        comp_batch = CompiledParser(patterns).match_many(scanned)
        for a, b in zip(ref_batch, comp_batch):
            if a is None:
                assert b is None
            else:
                assert b.pattern is a.pattern and b.fields == a.fields


class TestIncrementalCompilation:
    def test_add_pattern_invalidates_compiled_state(self):
        texts = [
            "session closed %string%",
            "session %string% %string2%",
            "session closed abruptly",
            "kernel %string% %ignorerest%",
            "kernel oops at %string%",
        ]
        probes = [
            "session closed abruptly",
            "session opened late",
            "kernel oops at boot",
            "kernel oops at boot time",
        ]
        ref, comp = Parser(), CompiledParser()
        assert comp.match(SC.scan(probes[0])) is None  # empty set, no crash
        for text in texts:
            pattern = Pattern.from_text(text, "svc")
            ref.add_pattern(pattern)
            comp.add_pattern(pattern)
            assert comp.version == ref.version
            for probe in probes:
                scanned = SC.scan(probe)
                a, b = ref.match(scanned), comp.match(scanned)
                assert (a is None) == (b is None), (text, probe)
                if a is not None:
                    assert b.pattern is a.pattern
                    assert b.fields == a.fields

    def test_len_and_version_contract(self):
        patterns = patterns_from(["a %string% c", "x y z"])
        ref, comp = Parser(patterns), CompiledParser(patterns)
        assert len(comp) == len(ref) == 2
        assert comp.version == ref.version


class TestFrontierTelemetry:
    def test_last_frontier_counts_candidates(self):
        patterns = patterns_from(
            ["a %string% c", "a %alphanum% c", "a b %string%", "x %ignorerest%"]
        )
        for cls in (Parser, CompiledParser):
            parser = cls(patterns)
            parser.match(SC.scan("a b c"))
            three_tokens = parser.last_frontier
            assert three_tokens >= 1
            parser.match(SC.scan("zero overlap here today maybe"))
            assert parser.last_frontier >= 0

    def test_compiled_frontier_is_the_merged_candidate_count(self):
        patterns = patterns_from(
            ["a %string% c", "a %alphanum% c", "a b %string%", "x %ignorerest%"]
        )
        comp = CompiledParser(patterns)
        comp.match(SC.scan("a b c"))
        # three exact 3-token programs plus the applicable rest program
        assert comp.last_frontier == 4
        comp.match(SC.scan("x"))
        # the 1-token frontier holds just the rest program (L == k)
        assert comp.last_frontier == 1


class TestBackendSelection:
    def test_factory_builds_each_backend(self):
        assert type(build_parser()) is Parser
        assert isinstance(
            build_parser(config=ParserConfig(backend="compiled")),
            CompiledParser,
        )
        assert build_parser().backend_name == "reference"
        assert (
            build_parser(config=ParserConfig(backend="compiled")).backend_name
            == "compiled"
        )
        assert set(PARSER_BACKENDS) == {"reference", "compiled"}

    def test_factory_passes_patterns_and_enrich(self):
        patterns = patterns_from(["mail from %email%"])
        for backend in PARSER_BACKENDS:
            config = ParserConfig(backend=backend)
            on = build_parser(patterns, config=config)
            off = build_parser(patterns, config=config, enrich=False)
            assert on.match(SC.scan("mail from ops@example.com")) is not None
            assert off.match(SC.scan("mail from ops@example.com")) is None

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ParserConfig(backend="hyperspeed")

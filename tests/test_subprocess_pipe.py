"""Real-process pipe integration.

The production deployment runs Sequence-RTG as a child process of
syslog-ng with logs piped to its standard input (paper Fig. 6: "syslog-ng
starts Sequence-RTG (or uses an already running instance) and pipes the
log to its standard input").  These tests exercise that path literally:
the CLI runs in a separate Python process and receives JSON lines over a
pipe.
"""

import json
import subprocess
import sys

import pytest

from repro.core.patterndb import PatternDB


def run_cli(args, stdin_text, timeout=120):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        input=stdin_text,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.fixture()
def db_path(tmp_path):
    return str(tmp_path / "pipe.db")


def stream_text(n=40):
    lines = []
    for i in range(n):
        lines.append(
            json.dumps(
                {
                    "service": "sshd",
                    "message": f"Accepted publickey for u{i} from 10.0.{i % 9}.{i % 7} port {40000 + i} ssh2",
                }
            )
        )
    return "\n".join(lines) + "\n"


class TestServeOverPipe:
    def test_batches_processed_from_stdin(self, db_path):
        proc = run_cli(
            ["--db", db_path, "serve", "-", "--batch-size", "10"], stream_text(40)
        )
        assert proc.returncode == 0, proc.stderr
        assert "ingested 40 records" in proc.stderr
        assert proc.stderr.count("batch:") == 4
        with PatternDB(db_path) as db:
            assert db.counts()["patterns"] >= 1

    def test_partial_final_batch_flushed_on_eof(self, db_path):
        proc = run_cli(
            ["--db", db_path, "serve", "-", "--batch-size", "30"], stream_text(40)
        )
        assert proc.returncode == 0
        assert "in 2 batches" in proc.stderr

    def test_malformed_lines_survive(self, db_path):
        text = "not json\n" + stream_text(10) + "{broken\n"
        proc = run_cli(["--db", db_path, "serve", "-"], text)
        assert proc.returncode == 0
        assert "(2 malformed)" in proc.stderr


class TestServeWithWorkerPool:
    def test_worker_pool_over_stdin_pipe(self, db_path):
        proc = run_cli(
            ["--db", db_path, "serve", "-", "--batch-size", "10", "--workers", "2"],
            stream_text(40),
        )
        assert proc.returncode == 0, proc.stderr
        assert "ingested 40 records" in proc.stderr
        assert proc.stderr.count("batch:") == 4
        with PatternDB(db_path) as db:
            assert db.counts()["patterns"] >= 1

    def test_pool_database_identical_to_serial(self, db_path, tmp_path):
        serial_path = str(tmp_path / "serial.db")
        text = stream_text(40)
        run_cli(["--db", serial_path, "serve", "-", "--batch-size", "10"], text)
        proc = run_cli(
            ["--db", db_path, "serve", "-", "--batch-size", "10", "--workers", "2"],
            text,
        )
        assert proc.returncode == 0, proc.stderr

        def fingerprint(path):
            with PatternDB(path) as db:
                return sorted(
                    (r.id, r.service, r.pattern_text, r.match_count)
                    for r in db.rows()
                )

        assert fingerprint(db_path) == fingerprint(serial_path)

    def test_no_pipeline_flag(self, db_path):
        proc = run_cli(
            ["--db", db_path, "serve", "-", "--batch-size", "10", "--no-pipeline"],
            stream_text(40),
        )
        assert proc.returncode == 0, proc.stderr
        assert "ingested 40 records" in proc.stderr
        assert proc.stderr.count("batch:") == 4


class TestParseOverPipe:
    def test_parse_stdin_json_output(self, db_path):
        run_cli(["--db", db_path, "serve", "-", "--batch-size", "10"], stream_text(40))
        proc = run_cli(
            ["--db", db_path, "parse", "-", "--service", "sshd"],
            "Accepted publickey for eve from 203.0.113.5 port 2222 ssh2\n",
        )
        assert proc.returncode == 0
        result = json.loads(proc.stdout.strip())
        assert result["matched"] is True
        assert result["fields"]["srcip"] == "203.0.113.5"

"""Hexadecimal FSM: MAC and IPv6 recognition."""

import pytest

from repro.scanner.hex_fsm import HexFSM
from repro.scanner.token_types import TokenType

FSM = HexFSM()


def classify(s: str, i: int = 0):
    hit = FSM.match(s, i)
    if hit is None:
        return None
    end, ttype = hit
    return s[i:end], ttype


class TestMac:
    @pytest.mark.parametrize(
        "mac",
        ["00:1B:44:11:3A:B7", "aa:bb:cc:dd:ee:ff", "00-1b-44-11-3a-b7"],
    )
    def test_mac_forms(self, mac):
        assert classify(mac) == (mac, TokenType.MAC)

    def test_mixed_separators_rejected(self):
        assert classify("00:1b-44:11:3a:b7") is None

    def test_five_groups_not_mac(self):
        result = classify("00:1b:44:11:3a")
        assert result is None or result[1] is not TokenType.MAC

    def test_single_digit_groups_not_mac(self):
        result = classify("0:1:2:3:4:5")
        assert result is None or result[1] is not TokenType.MAC


class TestIpv6:
    @pytest.mark.parametrize(
        "addr",
        [
            "fe80::1ff:fe23:4567:890a",
            "2001:0db8:85a3:0000:0000:8a2e:0370:7334",
            "::1",
            "fe80::",
            "::ffff:10.1.2.3",  # embedded IPv4
        ],
    )
    def test_ipv6_forms(self, addr):
        assert classify(addr) == (addr, TokenType.IPV6)

    def test_plain_numbers_with_colons_not_ipv6(self):
        # "12:34:56" is time/literal territory, not an address
        assert classify("12:34:56") is None

    def test_two_double_colons_rejected(self):
        assert classify("fe80::1::2") is None

    def test_group_longer_than_four_rejected(self):
        assert classify("12345:1:2:3:4:5:6:7") is None


class TestBoundaries:
    def test_mac_followed_by_comma(self):
        assert classify("00:1b:44:11:3a:b7, up") == ("00:1b:44:11:3a:b7", TokenType.MAC)

    def test_mac_prefix_of_word_rejected(self):
        assert classify("00:1b:44:11:3a:b7x") is None

    def test_mid_string_match(self):
        s = "addr fe80::1 ok"
        end, ttype = FSM.match(s, 5)
        assert s[5:end] == "fe80::1"
        assert ttype is TokenType.IPV6

    def test_non_hex_start(self):
        assert FSM.match("ghij", 0) is None
        assert FSM.match("", 0) is None

"""Property test: scanning is lossless for single-line messages.

The paper's whitespace-management addition ("Joining token texts with a
single space wherever ``is_space_before`` is set reconstructs the
message's structure exactly") stated as a randomized property over
hundreds of generated messages mixing every scan-time token shape,
rather than a handful of hand-picked examples.
"""

import pytest

from repro.scanner.scanner import Scanner
from repro.scanner.token_types import reconstruct

from tests.conftest import MessageGenerator


@pytest.mark.parametrize("seed", range(5))
def test_reconstruct_is_byte_identical(scanner: Scanner, seed: int) -> None:
    generator = MessageGenerator(seed=seed)
    for message in generator.messages(200):
        scanned = scanner.scan(message, service="svc")
        assert reconstruct(scanned.tokens) == message, message


def test_reconstruct_stops_at_first_line_break(scanner: Scanner) -> None:
    """Multi-line messages are cut at the first newline (paper §III);
    reconstruction reproduces exactly the retained first line."""
    generator = MessageGenerator(seed=99)
    for first in generator.messages(50):
        message = first + "\n" + generator.message()
        scanned = scanner.scan(message, service="svc")
        assert scanned.truncated
        assert reconstruct(scanned.tokens) == first


def test_adjacent_tokens_reconstruct_without_spurious_space(
    scanner: Scanner,
) -> None:
    """Tokens that were adjacent in the source (key=value, trailing
    punctuation) must not gain whitespace on reconstruction."""
    for message in ("port=8080", "error: code=5, retry", "a=1 b=2.5 c=x"):
        scanned = scanner.scan(message, service="svc")
        assert reconstruct(scanned.tokens) == message

"""Table I of the paper: typical log elements and their scan-time types.

Each row of the table is exercised against the scanner; elements whose
data type the paper lists as Text map to LITERAL (or URL for URLs, which
Sequence recognises at scan time), numbers map to INTEGER/FLOAT, and the
hex/datetime rows map to their dedicated FSMs.
"""

import pytest

from repro.scanner import Scanner
from repro.scanner.token_types import TokenType

SC = Scanner()


def first_type(message: str) -> TokenType:
    return SC.scan(message).tokens[0].type


@pytest.mark.parametrize(
    "element, expected",
    [
        # Date and Time stamps -> DateTime
        ("2021-09-14 08:12:33", TokenType.TIME),
        ("Jan 12 06:26:19", TokenType.TIME),
        # MAC addresses -> Hexadecimal
        ("00:1B:44:11:3A:B7", TokenType.MAC),
        # IPv6 addresses -> Hexadecimal
        ("fe80::1ff:fe23:4567:890a", TokenType.IPV6),
        # Port numbers / line numbers and counts -> Integer
        ("8080", TokenType.INTEGER),
        ("42", TokenType.INTEGER),
        # Decimal numbers -> Float
        ("3.14159", TokenType.FLOAT),
        # IPv4 addresses -> recognised at scan time
        ("192.168.1.5", TokenType.IPV4),
        # Words -> Text
        ("connection", TokenType.LITERAL),
        # Brackets and quotes -> Text
        ("[", TokenType.LITERAL),
        ('"', TokenType.LITERAL),
        # Punctuation and control characters -> Text
        (";", TokenType.LITERAL),
        # URLs with/without query strings
        ("https://example.com/q?a=1", TokenType.URL),
        ("http://example.com/path", TokenType.URL),
        # Host names and Protocols -> Text at scan time (host detection
        # happens during analysis)
        ("node01.example.com", TokenType.LITERAL),
        ("HTTPS", TokenType.LITERAL),
        # Paths -> Text (the path FSM is the future-work extension)
        ("/var/log/messages", TokenType.LITERAL),
        # Email addresses -> Text at scan time (analysis-time detection)
        ("ops@example.com", TokenType.LITERAL),
        # Non-English characters -> Text
        ("café", TokenType.LITERAL),
        ("日本語", TokenType.LITERAL),
        # Uids and machine identifiers -> Text/Integer
        ("blk_38865049064139660", TokenType.LITERAL),
        ("30002312", TokenType.INTEGER),
    ],
)
def test_table1_element(element, expected):
    assert first_type(element) is expected


def test_duration_text_number():
    # Duration -> Text/Number: "00:01" parses as a clock-like token
    assert first_type("00:01") is TokenType.TIME


def test_key_value_pairs_split_for_analysis():
    texts = [t.text for t in SC.scan("user=root").tokens]
    assert texts == ["user", "=", "root"]


def test_sql_query_stays_text():
    tokens = SC.scan("SELECT * FROM jobs WHERE id = 5").tokens
    assert tokens[0].type is TokenType.LITERAL
    assert tokens[-1].type is TokenType.INTEGER

"""Token model: variable classification and exact reconstruction."""

from repro.scanner.token_types import (
    ANALYSIS_TIME_TYPES,
    SCAN_TIME_TYPES,
    Token,
    TokenType,
    reconstruct,
)


class TestTokenType:
    def test_literal_and_key_are_static(self):
        assert not TokenType.LITERAL.is_variable()
        assert not TokenType.KEY.is_variable()

    def test_typed_tokens_are_variables(self):
        for ttype in (
            TokenType.INTEGER,
            TokenType.FLOAT,
            TokenType.IPV4,
            TokenType.IPV6,
            TokenType.MAC,
            TokenType.TIME,
            TokenType.URL,
            TokenType.EMAIL,
            TokenType.HOST,
            TokenType.VALUE,
            TokenType.REST,
        ):
            assert ttype.is_variable(), ttype

    def test_type_partitions(self):
        assert SCAN_TIME_TYPES & ANALYSIS_TIME_TYPES == frozenset()


class TestToken:
    def test_with_type_preserves_position_and_space(self):
        tok = Token("k", TokenType.LITERAL, is_space_before=True, pos=7)
        retyped = tok.with_type(TokenType.KEY, semantic="k")
        assert retyped.type is TokenType.KEY
        assert retyped.is_space_before and retyped.pos == 7
        assert retyped.semantic == "k"

    def test_with_type_keeps_existing_semantic(self):
        tok = Token("v", TokenType.LITERAL, semantic="orig")
        assert tok.with_type(TokenType.VALUE).semantic == "orig"


class TestReconstruct:
    def test_spaces_only_where_flagged(self):
        tokens = [
            Token("a", TokenType.LITERAL, False),
            Token("=", TokenType.LITERAL, False),
            Token("1", TokenType.INTEGER, False),
            Token("done", TokenType.LITERAL, True),
        ]
        assert reconstruct(tokens) == "a=1 done"

    def test_rest_marker_invisible(self):
        tokens = [
            Token("head", TokenType.LITERAL, False),
            Token("", TokenType.REST, True),
        ]
        assert reconstruct(tokens) == "head"

    def test_empty(self):
        assert reconstruct([]) == ""

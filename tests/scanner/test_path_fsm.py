"""Path FSM (future-work extension): recognition and rejections."""

import pytest

from repro.scanner.path_fsm import PathFSM

FSM = PathFSM()


def match_text(s: str, i: int = 0) -> str | None:
    end = FSM.match(s, i)
    return s[i:end] if end > 0 else None


class TestPosix:
    @pytest.mark.parametrize(
        "path",
        [
            "/var/log/messages",
            "/usr/lib/python3.11/site-packages",
            "/tmp/core.1234",
            "/data/",
            "/etc",
        ],
    )
    def test_absolute(self, path):
        assert match_text(path) == path

    def test_followed_by_space(self):
        assert match_text("/var/log/messages not this") == "/var/log/messages"

    def test_trailing_sentence_dot_excluded(self):
        assert match_text("/var/log/messages. Next") == "/var/log/messages"

    def test_bare_slash_rejected(self):
        assert match_text("/ alone") is None


class TestRelative:
    def test_two_separators_accepted(self):
        assert match_text("src/repro/scanner") == "src/repro/scanner"

    def test_one_separator_rejected(self):
        # ratios like "3/4" and pairs like "a/b" are not paths
        assert match_text("a/b") is None

    def test_double_slash_rejected(self):
        assert match_text("http//x/y/z") is None


class TestWindows:
    def test_drive_path(self):
        assert match_text("C:\\Windows\\System32\\drivers") == "C:\\Windows\\System32\\drivers"

    def test_unc_path(self):
        assert match_text("\\\\server\\share\\dir") == "\\\\server\\share\\dir"

    def test_bare_backslash_rejected(self):
        assert match_text("\\x") is None


class TestScannerIntegration:
    def test_disabled_by_default(self):
        from repro.scanner import Scanner, ScannerConfig
        from repro.scanner.token_types import TokenType

        default = Scanner().scan("open /var/log/messages failed")
        assert [t.type for t in default.tokens if t.text.startswith("/")] == [
            TokenType.LITERAL
        ]
        enabled = Scanner(ScannerConfig(enable_path_fsm=True)).scan(
            "open /var/log/messages failed"
        )
        assert [t.type for t in enabled.tokens if t.text.startswith("/")] == [
            TokenType.PATH
        ]

"""Scanner edge cases beyond the main behaviour suite."""

from repro.scanner import Scanner, ScannerConfig
from repro.scanner.token_types import TokenType, reconstruct

SC = Scanner()


def texts(message):
    return [t.text for t in SC.scan(message).tokens]


def types(message):
    return [t.type for t in SC.scan(message).tokens]


class TestUrlEdges:
    def test_scheme_only_is_not_url(self):
        assert types("http:// broken")[0] is TokenType.LITERAL

    def test_unusual_scheme(self):
        tokens = SC.scan("via ldap+tls://dir.example.com/ou=x ok").tokens
        assert tokens[1].type is TokenType.URL

    def test_url_in_quotes(self):
        tokens = SC.scan('fetch "https://example.com/x" done').tokens
        url = [t for t in tokens if t.type is TokenType.URL]
        assert url and url[0].text == "https://example.com/x"

    def test_url_with_port_and_fragment(self):
        tokens = SC.scan("at http://h.example.com:8080/a#frag end").tokens
        assert tokens[1].text == "http://h.example.com:8080/a#frag"

    def test_not_a_scheme_mid_word(self):
        # "see:http://x" — colon breaks first, then URL is recognised
        tokens = SC.scan("see:http://example.com/x").tokens
        assert [t.type for t in tokens] == [
            TokenType.LITERAL,
            TokenType.LITERAL,
            TokenType.URL,
        ]


class TestNumbers:
    def test_plus_signed(self):
        assert types("+42")[0] is TokenType.INTEGER

    def test_sign_alone_is_literal(self):
        assert types("-")[0] is TokenType.LITERAL

    def test_double_dot_not_float(self):
        assert types("1..2")[0] is TokenType.LITERAL

    def test_comma_thousands_split(self):
        # ',' is a break char: "1,234" is three tokens
        assert texts("1,234") == ["1", ",", "234"]

    def test_leading_zero_integer(self):
        assert types("007")[0] is TokenType.INTEGER

    def test_exponent_without_fraction(self):
        assert types("x 2e10")[1] is TokenType.FLOAT


class TestStructural:
    def test_nested_brackets(self):
        assert texts("[[x]]") == ["[", "[", "x", "]", "]"]

    def test_only_punctuation(self):
        assert texts("()[]") == ["(", ")", "[", "]"]

    def test_crlf_line_endings(self):
        scanned = SC.scan("line one\r\nline two")
        assert scanned.truncated
        assert reconstruct(scanned.tokens) == "line one"

    def test_leading_whitespace(self):
        scanned = SC.scan("   indented message")
        assert scanned.tokens[0].text == "indented"

    def test_unicode_message(self):
        toks = texts("utilisateur café connecté depuis 10.0.0.1")
        assert "café" in toks

    def test_very_long_token(self):
        long_word = "x" * 5000
        scanned = SC.scan(f"start {long_word} end")
        assert scanned.tokens[1].text == long_word


class TestMaxTokensInteraction:
    def test_cap_with_existing_newline(self):
        scanner = Scanner(ScannerConfig(max_tokens=3))
        scanned = scanner.scan("a b c d e\nrest")
        assert len(scanned.tokens) == 3  # cap includes the REST marker
        assert scanned.tokens[-1].type is TokenType.REST
        assert scanned.truncated

    def test_under_cap_untouched(self):
        scanner = Scanner(ScannerConfig(max_tokens=100))
        scanned = scanner.scan("a b c")
        assert len(scanned.tokens) == 3
        assert not scanned.truncated


class TestSpacingFidelity:
    def test_paper_example_grok_compatible(self):
        # the exact-whitespace property the paper adds for external parsers
        msg = "proxy:5070 close, 403 bytes (426 B) lifetime 00:01"
        assert reconstruct(SC.scan(msg).tokens) == msg

    def test_mixed_adjacent_punctuation(self):
        msg = 'a="quoted",b=2;c=[3]'
        assert reconstruct(SC.scan(msg).tokens) == msg

"""Differential equivalence suite for the compiled scanner backend.

The compiled backend's contract is *bit-identical* token streams to the
reference FSM scanner — same text, type, ``is_space_before`` and ``pos``
on every message, under every configuration.  These tests enforce the
contract on seeded generator corpora, the bundled loghub corpora, and a
hand-written adversarial set, across all four scanner flag combinations.
"""

import itertools
import re

import pytest

from tests.conftest import MessageGenerator
from repro.loghub.corpus import DATASET_NAMES, load_dataset
from repro.scanner import ScannerConfig, build_scanner
from repro.scanner.compiled import CompiledScanner, CompiledTimeFSM
from repro.scanner.scanner import Scanner, WordCache
from repro.scanner.time_fsm import DEFAULT_LAYOUTS, SINGLE_DIGIT_LAYOUTS, TimeFSM
from repro.scanner.token_types import TokenType
from repro.workflow.stream import ProductionStream, StreamConfig

#: every (allow_single_digit_time, enable_path_fsm) combination
FLAG_COMBOS = list(itertools.product([False, True], repeat=2))

#: inputs aimed at the seams between the FSM cascade and the compiled
#: gates: boundary rejections, gate false-positive bait, flex digits,
#: offsets, carving interactions
ADVERSARIAL = [
    "",
    " ",
    "2024-01-02 10:11:12.345abc tail",
    "2024-01-02 10:11:12.345 ok",
    "+12:345 off",
    "x 12:34:56:78:9a:bc y",
    "fe80::1 and ::1 and :: alone",
    "Jan  2 03:04:05 host proc[1]: ok",
    "20171224-0:7:20:444 z",
    "a 1.2.3.4 12.5 2 for 99",
    "081109 203615 INFO dfs.DataNode$PacketResponder",
    "Mar 17 06:39:01.123456789012 x",
    "date 2024-13-01 bad month",
    "t 23:59:60 leap second",
    "31/Dec/2024:23:59:59 +0000 req",
    "u 12/25/2024 11:59:59 PM done",
    "Januar 5 is not a month",
    "12:34",
    "12:34:56",
    "9999-12-31T23:59:59.999999999Z end",
    "2024-01-02T03:04:05+01:30 tz",
    "url http://a.b/c?d=1, and (https://x/y).",
    "path /var/log/app.log and C:\\Users\\x",
    "trailing words. Really?! yes...",
    "unicode café 10.0.0.1 naïve",
    "multi\nline\nmessage",
    "numbers 42 -17 +3 1e5 2.5e-3 0.5 .5 5.",
    "brackets (a) [b] {c} <d> \"e\" 'f' k=v;x|y:z",
]


def corpus():
    msgs = MessageGenerator(seed=7).messages(400)
    stream = ProductionStream(
        StreamConfig(n_services=10, seed=41, duplicate_fraction=0.3)
    )
    msgs.extend(r.message for r in stream.records(400))
    for name in DATASET_NAMES:
        msgs.extend(load_dataset(name, 80, seed=3).contents())
    msgs.extend(ADVERSARIAL)
    return msgs


def token_keys(scanned):
    return [(t.text, t.type, t.is_space_before, t.pos) for t in scanned.tokens]


class TestBackendEquivalence:
    @pytest.mark.parametrize("single_digit,path_fsm", FLAG_COMBOS)
    def test_identical_token_streams(self, single_digit, path_fsm):
        fsm = build_scanner(
            ScannerConfig(
                allow_single_digit_time=single_digit,
                enable_path_fsm=path_fsm,
                backend="fsm",
            )
        )
        compiled = build_scanner(
            ScannerConfig(
                allow_single_digit_time=single_digit,
                enable_path_fsm=path_fsm,
                backend="compiled",
            )
        )
        for message in corpus():
            a = fsm.scan(message, service="svc")
            b = compiled.scan(message, service="svc")
            assert token_keys(a) == token_keys(b), repr(message)
            assert a.truncated == b.truncated, repr(message)
            assert a.service == b.service == "svc"

    def test_max_tokens_equivalence(self):
        for cap in (1, 2, 3, 5, 100):
            fsm = build_scanner(ScannerConfig(max_tokens=cap, backend="fsm"))
            compiled = build_scanner(
                ScannerConfig(max_tokens=cap, backend="compiled")
            )
            for message in ADVERSARIAL:
                a, b = fsm.scan(message), compiled.scan(message)
                assert token_keys(a) == token_keys(b), (cap, message)
                assert a.truncated == b.truncated
                assert len(b.tokens) <= cap

    def test_scan_many_matches_scan(self):
        compiled = build_scanner(ScannerConfig(backend="compiled"))
        batch = compiled.scan_many(ADVERSARIAL, service="s")
        assert [token_keys(m) for m in batch] == [
            token_keys(compiled.scan(m, service="s")) for m in ADVERSARIAL
        ]


class TestCompiledTimeFSM:
    @pytest.mark.parametrize("single_digit", [False, True])
    def test_match_parity_at_every_position(self, single_digit):
        ref = TimeFSM(allow_single_digit=single_digit)
        comp = CompiledTimeFSM(allow_single_digit=single_digit)
        for message in ADVERSARIAL:
            for i in range(len(message)):
                assert ref.match(message, i) == comp.match(message, i), (
                    message,
                    i,
                )

    def test_every_default_layout_has_a_program(self):
        # the whole catalogue is digit- or alpha-led; nothing should
        # land on the interpreted fallback list
        comp = CompiledTimeFSM(allow_single_digit=True)
        assert not comp._digit_fallbacks
        n_alpha = sum(
            1
            for lay in DEFAULT_LAYOUTS + SINGLE_DIGIT_LAYOUTS
            if lay[:3] in ("MON", "DAY")
        )
        assert len(comp._digit_programs) == len(
            DEFAULT_LAYOUTS + SINGLE_DIGIT_LAYOUTS
        ) - n_alpha

    def test_untranslatable_layout_falls_back(self):
        # a digit-led layout using ZZZ has no regex translation; it must
        # still match via the interpreted fallback
        comp = CompiledTimeFSM(layouts=("hh:mm ZZZ",))
        ref = TimeFSM(layouts=("hh:mm ZZZ",))
        assert comp._digit_fallbacks
        s = "12:34 UTC done"
        assert comp.match(s, 0) == ref.match(s, 0) == len("12:34 UTC")


class TestRegexAssumptions:
    def test_whitespace_class_matches_str_isspace(self):
        # the compiled word/whitespace programs use \s where the FSM uses
        # str.isspace(); prove they agree on every code point
        ws = re.compile(r"\s")
        for cp in range(0x110000):
            c = chr(cp)
            assert bool(ws.match(c)) == c.isspace(), hex(cp)


class TestWordCache:
    def test_interns_and_classifies(self):
        cache = WordCache()
        text, ttype = cache.lookup("error")
        assert text == "error" and ttype is TokenType.LITERAL
        assert cache.lookup("42")[1] is TokenType.INTEGER
        # same object back for a distinct but equal string
        again, _ = cache.lookup("err" + "or")
        assert again is text

    def test_clears_when_full(self):
        cache = WordCache(maxsize=4)
        for i in range(4):
            cache.lookup(f"w{i}")
        assert len(cache) == 4
        cache.lookup("overflow")
        assert len(cache) == 1  # dropped wholesale, then repopulated

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            WordCache(maxsize=0)


class TestBackendSelection:
    def test_factory_builds_each_backend(self):
        assert type(build_scanner(ScannerConfig(backend="fsm"))) is Scanner
        assert isinstance(
            build_scanner(ScannerConfig(backend="compiled")), CompiledScanner
        )
        assert build_scanner().backend_name == "fsm"
        assert build_scanner(ScannerConfig(backend="compiled")).backend_name == (
            "compiled"
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ScannerConfig(backend="simd")

    def test_negative_max_tokens_rejected(self):
        with pytest.raises(ValueError, match="max_tokens"):
            ScannerConfig(max_tokens=-1)

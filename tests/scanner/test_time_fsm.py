"""Datetime FSM: layout coverage, boundaries, and the leading-zero rule."""

import pytest

from repro.scanner.time_fsm import TimeFSM

FSM = TimeFSM()
FSM_SINGLE = TimeFSM(allow_single_digit=True)


def match_text(fsm: TimeFSM, s: str, i: int = 0) -> str | None:
    end = fsm.match(s, i)
    return s[i:end] if end > 0 else None


class TestLayouts:
    @pytest.mark.parametrize(
        "stamp",
        [
            "2021-09-14 08:12:33",
            "2021-09-14 08:12:33.123",
            "2021-09-14 08:12:33,456",
            "2021-09-14T08:12:33",
            "2021-09-14T08:12:33.123",
            "2021-09-14T08:12:33+02:00",
            "2021-09-14T08:12:33Z",
            "2021/09/14 08:12:33",
            "2021.09.14 08:12:33",
            "2005-06-03-15.42.50.363779",  # BGL RAS
            "2021-09-14",
            "09/14/2021 08:12:33",
            "14/Sep/2021:08:12:33 +0200",  # apache access
            "03-17 16:13:38.811",  # android logcat
            "Jan 12 06:26:19",  # syslog
            "Jan  2 06:26:19",  # syslog padded day
            "Thu Jun 09 06:07:04 2005",  # apache error
            "Sep 14 08:12:33 2021",
            "081109 203615",  # HDFS compact
            "20171223-22:15:29:606",  # HealthApp padded
            "08:12:33",
            "08:12:33.250",
            "08:12:33,250",
            "08:12",
            "Mon, 02 Jan 2006 15:04:05 -0700",  # RFC 2822
            "Tue, 14 Sep 2021 08:12:33 UTC",
            "14-Sep-2021 08:12:33",  # Oracle-style
            "2021 Sep 14 08:12:33",
        ],
    )
    def test_full_match(self, stamp):
        assert match_text(FSM, stamp) == stamp

    def test_longest_match_wins(self):
        s = "2021-09-14 08:12:33.123 rest"
        assert match_text(FSM, s) == "2021-09-14 08:12:33.123"

    def test_match_mid_string(self):
        s = "at 08:12:33 precisely"
        assert match_text(FSM, s, 3) == "08:12:33"


class TestBoundaries:
    def test_rejects_prefix_of_mac_address(self):
        # "01:23:45" would match hh:mm:ss but continues with ':67' — a MAC
        assert FSM.match("01:23:45:67:89:ab", 0) == -1

    def test_rejects_when_digits_continue(self):
        assert FSM.match("08:12:334", 0) == -1

    def test_accepts_terminal_punctuation(self):
        assert match_text(FSM, "08:12:33,") == "08:12:33"
        assert match_text(FSM, "08:12:33.") == "08:12:33"
        assert match_text(FSM, "(08:12:33)", 1) == "08:12:33"

    def test_rejects_alpha_continuation(self):
        assert FSM.match("2021-09-14x", 0) == -1

    def test_out_of_range_values(self):
        assert FSM.match("99:99:99", 0) == -1
        assert FSM.match("2021-13-40 08:12:33", 0) != len("2021-13-40 08:12:33")


class TestNonMatches:
    @pytest.mark.parametrize(
        "text",
        [
            "hello",
            "1.2.3",  # version, not a date
            "12345",
            "::1",
            "1,234",
            "a08:12:33"[0:1],
        ],
    )
    def test_no_match(self, text):
        assert FSM.match(text, 0) == -1

    def test_month_prefix_required_for_alpha(self):
        assert FSM.match("Monday might start like a day name", 0) == -1
        assert FSM.match("January 2 08:12:33", 0) > 0


class TestLeadingZeroLimitation:
    """Paper §IV: the FSM cannot parse single-digit time parts; §VI lists
    the fix as future work (``allow_single_digit=True``)."""

    RAW = "20171224-0:7:20:444"

    def test_default_rejects_healthapp_raw(self):
        assert FSM.match(self.RAW, 0) == -1

    def test_flag_accepts_healthapp_raw(self):
        assert match_text(FSM_SINGLE, self.RAW) == self.RAW

    def test_flag_accepts_bare_single_digit_clock(self):
        assert match_text(FSM_SINGLE, "1:2:3") == "1:2:3"

    def test_flag_keeps_padded_layouts(self):
        assert match_text(FSM_SINGLE, "20171223-22:15:29:606") == "20171223-22:15:29:606"

    def test_default_rejects_single_digit_clock(self):
        assert FSM.match("1:2:3", 0) == -1

"""Scanner behaviour: classification, spacing, multi-line, properties."""

import re

from hypothesis import given, settings, strategies as st

from repro.scanner import ScannedMessage, Scanner, ScannerConfig
from repro.scanner.token_types import TokenType, reconstruct

SC = Scanner()


def types_of(message: str) -> list[TokenType]:
    return [t.type for t in SC.scan(message).tokens]


def texts_of(message: str) -> list[str]:
    return [t.text for t in SC.scan(message).tokens]


class TestClassification:
    def test_sshd_line(self):
        msg = "Accepted password for root from 192.168.1.5 port 22 ssh2"
        assert types_of(msg) == [
            TokenType.LITERAL,  # Accepted
            TokenType.LITERAL,  # password
            TokenType.LITERAL,  # for
            TokenType.LITERAL,  # root
            TokenType.LITERAL,  # from
            TokenType.IPV4,
            TokenType.LITERAL,  # port
            TokenType.INTEGER,
            TokenType.LITERAL,  # ssh2
        ]

    def test_negative_integer(self):
        assert types_of("rc -2")[-1] is TokenType.INTEGER

    def test_float_and_exponent(self):
        assert types_of("took 3.25 s")[1] is TokenType.FLOAT
        assert types_of("x 1.5e-3 y")[1] is TokenType.FLOAT

    def test_ip_with_port_splits(self):
        assert texts_of("10.0.0.1:8080") == ["10.0.0.1", ":", "8080"]
        assert types_of("10.0.0.1:8080") == [
            TokenType.IPV4,
            TokenType.LITERAL,
            TokenType.INTEGER,
        ]

    def test_invalid_octet_not_ipv4(self):
        assert types_of("999.1.2.3")[0] is TokenType.LITERAL

    def test_url(self):
        tokens = SC.scan("fetch https://example.com/a/b?x=1&y=2 done").tokens
        assert tokens[1].type is TokenType.URL
        assert tokens[1].text == "https://example.com/a/b?x=1&y=2"

    def test_url_trailing_punctuation_dropped(self):
        tokens = SC.scan("see http://example.com/x.").tokens
        assert tokens[1].text == "http://example.com/x"

    def test_version_is_literal(self):
        assert types_of("version 1.2.3")[1] is TokenType.LITERAL

    def test_hex_0x_stays_literal(self):
        # scan-time types are only Time/IPv4/IPv6/MAC/Int/Float/URL/Literal
        assert types_of("at 0x7ffe01")[1] is TokenType.LITERAL

    def test_brackets_and_quotes_split(self):
        assert texts_of('sshd[24208]: "x"') == [
            "sshd", "[", "24208", "]", ":", '"', "x", '"',
        ]

    def test_equals_splits_for_kv_detection(self):
        assert texts_of("rc=-2") == ["rc", "=", "-2"]

    def test_trailing_sentence_punct_carved(self):
        assert texts_of("terminating.") == ["terminating", "."]
        assert texts_of("really?!") == ["really", "?", "!"]

    def test_ellipsis_kept_whole(self):
        assert texts_of("loading...")[0:1] == ["loading"]

    def test_percent_kept_in_word(self):
        # %-delimited source fields survive into tokens (the documented
        # unknown-tag hazard, §IV)
        assert "%disk%" in texts_of("usage %disk% high")


class TestSpacing:
    def test_is_space_before_flags(self):
        tokens = SC.scan("a=1 b").tokens
        assert [t.is_space_before for t in tokens] == [False, False, False, True]

    def test_reconstruct_exact(self):
        msg = "proxy.example.com:5070 close, 403 bytes sent (426 B)"
        assert reconstruct(SC.scan(msg).tokens) == msg

    def test_tabs_normalised_to_space(self):
        assert reconstruct(SC.scan("a\tb").tokens) == "a b"

    def test_multiple_spaces_collapse(self):
        assert reconstruct(SC.scan("Jan  2 rest").tokens) == "Jan 2 rest"


class TestMultiline:
    def test_truncated_at_first_newline(self):
        scanned = SC.scan("first line\nsecond line\nthird")
        assert scanned.truncated
        assert scanned.tokens[-1].type is TokenType.REST
        assert reconstruct(scanned.tokens) == "first line"

    def test_single_line_not_truncated(self):
        assert not SC.scan("single line").truncated

    def test_max_tokens_cap(self):
        scanner = Scanner(ScannerConfig(max_tokens=5))
        scanned = scanner.scan("one two three four five six seven")
        assert scanned.truncated
        # the cap includes the REST marker (regression: the pre-fix
        # behaviour returned max_tokens + 1 tokens)
        assert len(scanned.tokens) == 5
        assert scanned.tokens[-1].type is TokenType.REST
        assert [t.text for t in scanned.tokens[:4]] == [
            "one", "two", "three", "four"
        ]


class TestScannedMessage:
    def test_metadata(self):
        scanned = SC.scan("a b", service="svc")
        assert isinstance(scanned, ScannedMessage)
        assert scanned.service == "svc"
        assert scanned.token_count() == 2
        assert scanned.token_texts() == ["a", "b"]

    def test_empty_message(self):
        assert SC.scan("").tokens == []
        assert SC.scan("   ").tokens == []


# --- property-based tests ---------------------------------------------------

_word = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=10,
)
_message = st.lists(_word, min_size=0, max_size=12).map(" ".join)


class TestProperties:
    @given(_message)
    @settings(max_examples=200)
    def test_reconstruct_round_trip(self, message):
        """Scanning then reconstructing reproduces the space-normalised
        message — the paper's whitespace-management guarantee."""
        normalised = re.sub(r"\s+", " ", message).strip()
        assert reconstruct(SC.scan(message).tokens) == normalised

    @given(_message)
    @settings(max_examples=200)
    def test_token_invariants(self, message):
        tokens = SC.scan(message).tokens
        for tok in tokens:
            assert tok.text or tok.type is TokenType.REST
            assert not tok.text or not tok.text.isspace()
        positions = [t.pos for t in tokens]
        assert positions == sorted(positions)

    @given(st.text(max_size=60))
    @settings(max_examples=300)
    def test_never_crashes_and_covers_content(self, message):
        scanned = SC.scan(message)
        body = message.split("\n")[0]
        rebuilt = reconstruct(scanned.tokens)
        # every non-space character of the first line survives scanning
        assert sorted(rebuilt.replace(" ", "")) == sorted(
            "".join(body.split())
        )

    @given(_message)
    @settings(max_examples=100)
    def test_deterministic(self, message):
        a = [(t.text, t.type) for t in SC.scan(message).tokens]
        b = [(t.text, t.type) for t in SC.scan(message).tokens]
        assert a == b

"""Incremental frame decoding: newline and octet-counted framing."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.serve.framing import FrameDecoder, FramingError


def octet(payload: bytes) -> bytes:
    return str(len(payload)).encode() + b" " + payload


class TestNewlineFraming:
    def test_single_frame(self):
        decoder = FrameDecoder()
        assert decoder.feed(b'{"a": 1}\n') == [b'{"a": 1}']
        assert decoder.mode == "newline"
        assert decoder.buffered == 0

    def test_many_frames_one_chunk(self):
        decoder = FrameDecoder()
        assert decoder.feed(b"{1}\n{2}\n{3}\n") == [b"{1}", b"{2}", b"{3}"]

    def test_frame_split_across_chunks(self):
        decoder = FrameDecoder()
        assert decoder.feed(b'{"service": "s", "mes') == []
        assert decoder.feed(b'sage": "m"}\nnext') == [
            b'{"service": "s", "message": "m"}'
        ]
        assert decoder.buffered == len(b"next")

    def test_byte_at_a_time(self):
        decoder = FrameDecoder()
        frames = []
        for byte in b"{x}\n{y}\n":
            frames.extend(decoder.feed(bytes([byte])))
        assert frames == [b"{x}", b"{y}"]

    def test_empty_lines_are_frames(self):
        # parse_record treats them as malformed; the decoder stays dumb
        decoder = FrameDecoder()
        assert decoder.feed(b"\n\n{z}\n") == [b"", b"", b"{z}"]

    def test_flush_returns_unterminated_tail(self):
        decoder = FrameDecoder()
        decoder.feed(b"{complete}\n{tail without newline}")
        assert decoder.flush() == b"{tail without newline}"
        assert decoder.flush() is None

    def test_flush_empty_buffer(self):
        decoder = FrameDecoder()
        decoder.feed(b"{a}\n")
        assert decoder.flush() is None

    def test_oversized_line_raises(self):
        decoder = FrameDecoder(max_frame=16)
        with pytest.raises(FramingError, match="unterminated line"):
            decoder.feed(b"x" * 17)

    def test_max_frame_boundary_ok(self):
        decoder = FrameDecoder(max_frame=16)
        assert decoder.feed(b"x" * 16) == []
        assert decoder.feed(b"\n") == [b"x" * 16]


class TestOctetFraming:
    def test_single_frame(self):
        decoder = FrameDecoder()
        assert decoder.feed(octet(b'{"a": 1}')) == [b'{"a": 1}']
        assert decoder.mode == "octet"

    def test_many_frames_one_chunk(self):
        decoder = FrameDecoder()
        chunk = octet(b"{one}") + octet(b"{two}") + octet(b"{three}")
        assert decoder.feed(chunk) == [b"{one}", b"{two}", b"{three}"]

    def test_prefix_split_across_chunks(self):
        decoder = FrameDecoder()
        payload = b"{abcdefghij}"
        assert decoder.feed(b"1") == []
        assert decoder.feed(b"2 ") == []
        assert decoder.feed(payload) == [payload]

    def test_payload_split_across_chunks(self):
        decoder = FrameDecoder()
        payload = b'{"service": "s", "message": "hello"}'
        framed = octet(payload)
        assert decoder.feed(framed[:10]) == []
        assert decoder.feed(framed[10:]) == [payload]

    def test_payload_may_contain_newlines(self):
        decoder = FrameDecoder()
        payload = b'{"message": "line one\nline two"}'
        assert decoder.feed(octet(payload)) == [payload]
        assert decoder.mode == "octet"

    def test_flush_never_returns_partial_payload(self):
        decoder = FrameDecoder()
        decoder.feed(b"100 only twenty bytes")
        assert decoder.flush() is None

    def test_oversized_frame_raises(self):
        decoder = FrameDecoder(max_frame=64)
        with pytest.raises(FramingError, match="exceeds the max frame size"):
            decoder.feed(b"65 ")

    def test_malformed_prefix_raises(self):
        decoder = FrameDecoder()
        with pytest.raises(FramingError, match="malformed"):
            decoder.feed(b"12x4 {payload here}")

    def test_unterminated_prefix_raises(self):
        decoder = FrameDecoder()
        with pytest.raises(FramingError, match="never terminated"):
            decoder.feed(b"1234567890123456789012345")

    def test_zero_length_frame(self):
        decoder = FrameDecoder()
        assert decoder.feed(b"0 5 {abc}") == [b"", b"{abc}"]


class TestModeDetection:
    def test_digit_first_byte_means_octet(self):
        decoder = FrameDecoder()
        decoder.feed(b"4")
        assert decoder.mode == "octet"

    def test_brace_first_byte_means_newline(self):
        decoder = FrameDecoder()
        decoder.feed(b"{")
        assert decoder.mode == "newline"

    def test_mode_unset_before_data(self):
        decoder = FrameDecoder()
        assert decoder.mode is None
        assert decoder.feed(b"") == []
        assert decoder.mode is None


class TestChunkingInvariance:
    """However the stream is cut into chunks, the frames come out the
    same — the property the incremental decoder exists for."""

    @given(st.data())
    def test_newline_random_chunking(self, data):
        messages = [
            json.dumps({"service": f"s{i}", "message": f"m {i}"}).encode()
            for i in range(8)
        ]
        stream = b"".join(m + b"\n" for m in messages)
        frames = []
        decoder = FrameDecoder()
        pos = 0
        while pos < len(stream):
            size = data.draw(st.integers(min_value=1, max_value=len(stream) - pos))
            frames.extend(decoder.feed(stream[pos:pos + size]))
            pos += size
        assert frames == messages

    @given(st.data())
    def test_octet_random_chunking(self, data):
        messages = [
            json.dumps({"service": f"s{i}", "message": f"m {i}\nwrapped"}).encode()
            for i in range(8)
        ]
        stream = b"".join(octet(m) for m in messages)
        frames = []
        decoder = FrameDecoder()
        pos = 0
        while pos < len(stream):
            size = data.draw(st.integers(min_value=1, max_value=len(stream) - pos))
            frames.extend(decoder.feed(stream[pos:pos + size]))
            pos += size
        assert frames == messages

"""Graceful drain through the real CLI, real signals, real sockets.

Satellite 6 of the serving-tier PR: ``serve`` must treat SIGTERM as a
drain request on *both* paths — the network tier stops accepting and
flushes its shard queues; the file-fed path stops consuming stdin and
flushes the final partial batch.  Either way the process exits 0 and
every accepted record is in the database.
"""

import json
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.core.patterndb import PatternDB


@pytest.fixture()
def db_path(tmp_path):
    return str(tmp_path / "drain.db")


def spawn_serve(db_path, extra_args, stdin=subprocess.DEVNULL):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "--db", db_path, "serve", *extra_args],
        stdin=stdin,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def read_stderr_until(proc, substr, seen, timeout=30.0):
    """Collect stderr lines into *seen* until one contains *substr*."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if line:
            seen.append(line)
            if substr in line:
                return line
        elif proc.poll() is not None:
            break
    raise AssertionError(
        f"never saw {substr!r} on stderr; got: {''.join(seen)!r}"
    )


def record_lines(n, service="sshd"):
    return [
        json.dumps(
            {
                "service": service,
                "message": f"session opened for user u{i} by uid {i}",
            }
        )
        for i in range(n)
    ]


class TestNetworkDrain:
    def test_sigterm_flushes_queues_and_exits_zero(self, db_path):
        proc = spawn_serve(
            db_path,
            [
                "--listen", "tcp://127.0.0.1:0",
                "--batch-size", "1000",  # never fills: drain must flush
                "--dispatch-timeout", "30",
            ],
        )
        seen: list[str] = []
        try:
            line = read_stderr_until(proc, "listening:", seen)
            addr = line.split("tcp://", 1)[1].strip()
            host, port = addr.rsplit(":", 1)
            payload = ("\n".join(record_lines(60)) + "\n").encode()
            with socket.create_connection((host, int(port)), timeout=10) as sock:
                sock.sendall(payload)
            time.sleep(0.5)  # let the event loop enqueue everything
            proc.send_signal(signal.SIGTERM)
            stderr = "".join(seen) + proc.communicate(timeout=60)[1]
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, stderr
        assert "60 accepted" in stderr
        assert "60 records mined" in stderr
        assert "0 shed" in stderr
        with PatternDB(db_path) as db:
            assert db.counts()["patterns"] >= 1

    def test_sigterm_with_no_traffic_exits_zero(self, db_path):
        proc = spawn_serve(db_path, ["--listen", "tcp://127.0.0.1:0"])
        seen: list[str] = []
        try:
            read_stderr_until(proc, "listening:", seen)
            proc.send_signal(signal.SIGTERM)
            stderr = "".join(seen) + proc.communicate(timeout=60)[1]
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, stderr
        assert "0 accepted" in stderr


class TestFileFedDrain:
    def test_sigterm_mid_batch_flushes_partial_batch(self, db_path):
        """25 records into a batch of 10: two full batches mine, the
        5-record partial batch must be flushed by the drain — not lost
        with the process killed mid-read."""
        proc = spawn_serve(
            db_path, ["-", "--batch-size", "10"], stdin=subprocess.PIPE
        )
        seen: list[str] = []
        try:
            for line in record_lines(25):
                proc.stdin.write(line + "\n")
            proc.stdin.flush()
            # both full batches mined -> the 5-record tail is pending
            read_stderr_until(proc, "batch:", seen)
            read_stderr_until(proc, "batch:", seen)
            proc.send_signal(signal.SIGTERM)
            read_stderr_until(proc, "drain: signal received", seen)
            # the stop flag is polled at the next line: feed one trigger
            # line (consumed, not mined) so the loop observes the drain
            proc.stdin.write(record_lines(1)[0] + "\n")
            proc.stdin.flush()
            stderr = "".join(seen) + proc.stderr.read()
            assert proc.wait(timeout=60) == 0, stderr
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stdin.close()
            proc.stdout.close()
            proc.stderr.close()
        assert "ingested 25 records" in stderr
        assert "in 3 batches" in stderr  # 10 + 10 + the flushed 5
        with PatternDB(db_path) as db:
            assert db.counts()["patterns"] >= 1

    def test_sigterm_stream_mode_closes_driver(self, db_path):
        proc = spawn_serve(
            db_path,
            ["-", "--mode", "stream", "--micro-batch", "1"],
            stdin=subprocess.PIPE,
        )
        seen: list[str] = []
        try:
            for line in record_lines(12):
                proc.stdin.write(line + "\n")
            proc.stdin.flush()
            time.sleep(1.0)  # per-message micro-batches: all 12 offered
            proc.send_signal(signal.SIGTERM)
            read_stderr_until(proc, "drain: signal received", seen)
            proc.stdin.write(record_lines(1)[0] + "\n")
            proc.stdin.flush()
            stderr = "".join(seen) + proc.stderr.read()
            assert proc.wait(timeout=60) == 0, stderr
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stdin.close()
            proc.stdout.close()
            proc.stderr.close()
        assert "stream: 12 messages" in stderr
        with PatternDB(db_path) as db:
            assert db.counts()["patterns"] >= 1

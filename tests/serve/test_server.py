"""Serving tier end-to-end: listeners → shard router → warm miners.

The heart of this file is the differential test: records fed through a
socket must leave the pattern database byte-identical to the same
records fed through the file path — pattern ids, texts, supports and
stored examples, fastpath on and off, serial and pooled.
"""

import json
import socket
import time

import pytest

from repro.core.config import RTGConfig
from repro.core.parallel import PersistentParallelSequenceRTG
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.serve import (
    ListenSpec,
    ServeConfig,
    ServeServer,
    parse_listen_specs,
)
from repro.workflow.stream import ProductionStream, StreamConfig


def records_for_test(n=200, n_services=8, seed=21):
    stream = ProductionStream(StreamConfig(n_services=n_services, seed=seed))
    return list(stream.records(n))


def db_fingerprint(db):
    return sorted(
        (row.id, row.service, row.pattern_text, row.match_count,
         tuple(row.examples))
        for row in db.rows()
    )


def jsonl(records) -> bytes:
    return b"".join(
        json.dumps({"service": r.service, "message": r.message}).encode() + b"\n"
        for r in records
    )


def send_tcp(addr: str, payload: bytes) -> None:
    host, port = addr.rsplit(":", 1)
    with socket.create_connection((host, int(port)), timeout=10) as sock:
        sock.sendall(payload)


def http_request(addr: str, raw: bytes) -> tuple[int, dict]:
    host, port = addr.rsplit(":", 1)
    with socket.create_connection((host, int(port)), timeout=10) as sock:
        sock.sendall(raw)
        response = b""
        while b"\r\n\r\n" not in response:
            chunk = sock.recv(65536)
            if not chunk:
                break
            response += chunk
        head, _, body = response.partition(b"\r\n\r\n")
        status = int(head.split(None, 2)[1])
        length = 0
        for line in head.split(b"\r\n")[1:]:
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                length = int(value.strip())
        while len(body) < length:
            chunk = sock.recv(65536)
            if not chunk:
                break
            body += chunk
        return status, json.loads(body)


def http_post(addr: str, body: bytes, keep_alive=False) -> tuple[int, dict]:
    connection = b"keep-alive" if keep_alive else b"close"
    return http_request(
        addr,
        b"POST /ingest HTTP/1.1\r\nHost: t\r\nContent-Length: "
        + str(len(body)).encode()
        + b"\r\nConnection: " + connection + b"\r\n\r\n" + body,
    )


def serve_config(**overrides) -> ServeConfig:
    defaults = dict(
        listen=(ListenSpec(scheme="tcp", host="127.0.0.1", port=0),),
        batch_size=100,
        dispatch_timeout_s=0.2,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestListenSpecs:
    def test_parse_all_schemes(self):
        specs = parse_listen_specs(
            "tcp://127.0.0.1:7514,unix:///run/rtg.sock,http://0.0.0.0:8080"
        )
        assert [s.scheme for s in specs] == ["tcp", "unix", "http"]
        assert specs[0].port == 7514
        assert specs[1].path == "/run/rtg.sock"
        assert str(specs[2]) == "http://0.0.0.0:8080"

    @pytest.mark.parametrize(
        "text",
        ["", "ftp://x:1", "tcp://nohost", "unix://", "tcp://h:notaport"],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            parse_listen_specs(text)


class TestServeConfigValidation:
    def test_rejects_bad_values(self):
        spec = (ListenSpec(scheme="tcp", host="127.0.0.1", port=0),)
        with pytest.raises(ValueError):
            ServeConfig(listen=())
        with pytest.raises(ValueError):
            ServeConfig(listen=spec, batch_size=0)
        with pytest.raises(ValueError):
            ServeConfig(listen=spec, high_water=-1)
        with pytest.raises(ValueError):
            ServeConfig(listen=spec, overload="panic")
        with pytest.raises(ValueError):
            ServeConfig(listen=spec, dispatch_timeout_s=0)


class TestEndToEndSerial:
    def test_tcp_newline_feed_mines_everything(self):
        records = records_for_test(n=150)
        rtg = SequenceRTG(db=PatternDB())
        server = ServeServer(rtg, serve_config())
        endpoints = server.start_in_background()
        send_tcp(dict(endpoints)["tcp"], jsonl(records))
        assert wait_until(lambda: server.stats.accepted == len(records))
        stats = server.shutdown()
        assert stats.drained
        assert stats.accepted == len(records)
        assert stats.records_mined == len(records)
        assert stats.shed == 0 and stats.malformed == 0
        assert len(db_fingerprint(rtg.db)) > 0

    def test_tcp_octet_counted_feed(self):
        records = records_for_test(n=40)
        payload = b"".join(
            (lambda m: str(len(m)).encode() + b" " + m)(
                json.dumps(
                    {"service": r.service, "message": r.message}
                ).encode()
            )
            for r in records
        )
        rtg = SequenceRTG(db=PatternDB())
        server = ServeServer(rtg, serve_config())
        endpoints = server.start_in_background()
        send_tcp(dict(endpoints)["tcp"], payload)
        assert wait_until(lambda: server.stats.accepted == len(records))
        stats = server.shutdown()
        assert stats.records_mined == len(records)

    def test_unix_socket_feed(self, tmp_path):
        records = records_for_test(n=30)
        rtg = SequenceRTG(db=PatternDB())
        sock_path = str(tmp_path / "rtg.sock")
        server = ServeServer(
            rtg,
            serve_config(listen=(ListenSpec(scheme="unix", path=sock_path),)),
        )
        endpoints = server.start_in_background()
        assert endpoints == [("unix", sock_path)]
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.connect(sock_path)
            sock.sendall(jsonl(records))
        assert wait_until(lambda: server.stats.accepted == len(records))
        stats = server.shutdown()
        assert stats.records_mined == len(records)
        import os
        assert not os.path.exists(sock_path)  # cleaned up on drain

    def test_unterminated_tail_frame_is_submitted_at_eof(self):
        rtg = SequenceRTG(db=PatternDB())
        server = ServeServer(rtg, serve_config())
        endpoints = server.start_in_background()
        body = jsonl(records_for_test(n=3))
        send_tcp(dict(endpoints)["tcp"], body[:-1])  # strip final newline
        assert wait_until(lambda: server.stats.accepted == 3)
        server.shutdown()
        assert server.stats.records_mined == 3

    def test_malformed_frames_counted_not_mined(self):
        rtg = SequenceRTG(db=PatternDB())
        server = ServeServer(rtg, serve_config())
        endpoints = server.start_in_background()
        good = records_for_test(n=10)
        payload = b"not json\n" + jsonl(good) + b'{"service": "s"}\n'
        send_tcp(dict(endpoints)["tcp"], payload)
        assert wait_until(lambda: server.stats.frames == 12)
        stats = server.shutdown()
        assert stats.accepted == 10
        assert stats.malformed == 2
        assert stats.records_mined == 10


class TestHTTPFrontDoor:
    def test_post_ingest_and_healthz(self):
        records = records_for_test(n=25)
        rtg = SequenceRTG(db=PatternDB())
        server = ServeServer(
            rtg,
            serve_config(listen=(ListenSpec(scheme="http", host="127.0.0.1", port=0),)),
        )
        endpoints = server.start_in_background()
        addr = dict(endpoints)["http"]
        status, body = http_post(addr, jsonl(records))
        assert status == 200
        assert body == {"accepted": 25, "shed": 0, "malformed": 0}
        status, body = http_request(
            addr, b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        assert (status, body) == (200, {"status": "ok"})
        stats = server.shutdown()
        assert stats.records_mined == 25

    def test_post_body_without_trailing_newline(self):
        rtg = SequenceRTG(db=PatternDB())
        server = ServeServer(
            rtg,
            serve_config(listen=(ListenSpec(scheme="http", host="127.0.0.1", port=0),)),
        )
        addr = dict(server.start_in_background())["http"]
        status, body = http_post(addr, jsonl(records_for_test(n=5))[:-1])
        assert status == 200 and body["accepted"] == 5
        server.shutdown()

    def test_unknown_path_404(self):
        rtg = SequenceRTG(db=PatternDB())
        server = ServeServer(
            rtg,
            serve_config(listen=(ListenSpec(scheme="http", host="127.0.0.1", port=0),)),
        )
        addr = dict(server.start_in_background())["http"]
        status, _ = http_request(
            addr, b"GET /nope HTTP/1.1\r\nHost: t\r\n\r\n"
        )
        assert status == 404
        server.shutdown()

    def test_missing_content_length_411(self):
        rtg = SequenceRTG(db=PatternDB())
        server = ServeServer(
            rtg,
            serve_config(listen=(ListenSpec(scheme="http", host="127.0.0.1", port=0),)),
        )
        addr = dict(server.start_in_background())["http"]
        status, _ = http_request(
            addr, b"POST /ingest HTTP/1.1\r\nHost: t\r\n\r\n"
        )
        assert status == 411
        server.shutdown()

    def test_shed_surfaces_as_429(self):
        """Above the high-water mark with the shed policy, the HTTP
        response is 429 and reports exactly what was refused."""
        records = records_for_test(n=50, n_services=1)
        rtg = SequenceRTG(db=PatternDB())
        server = ServeServer(
            rtg,
            serve_config(
                listen=(ListenSpec(scheme="http", host="127.0.0.1", port=0),),
                batch_size=1000,
                high_water=10,
                overload="shed",
                dispatch_timeout_s=30,  # dispatcher sits; queue stays full
            ),
        )
        addr = dict(server.start_in_background())["http"]
        status, body = http_post(addr, jsonl(records))
        assert status == 429
        assert body["accepted"] == 10
        assert body["shed"] == 40
        stats = server.shutdown()
        # drain exactness: everything accepted was mined, shed is exact
        assert stats.records_mined == stats.accepted == 10
        assert stats.shed == 40


class TestDrainExactness:
    def test_all_accepted_and_queued_records_are_mined(self):
        """SIGTERM-equivalent drain under load: no accepted record is
        lost, shed counts are exact, the server reports drained."""
        records = records_for_test(n=120)
        rtg = SequenceRTG(db=PatternDB())
        server = ServeServer(
            rtg,
            serve_config(batch_size=1000, dispatch_timeout_s=30),
        )
        endpoints = server.start_in_background()
        send_tcp(dict(endpoints)["tcp"], jsonl(records))
        assert wait_until(lambda: server.stats.accepted == len(records))
        # nothing mined yet: the dispatcher is still waiting for a full
        # batch — drain must flush the queues, not abandon them
        stats = server.shutdown()
        assert stats.drained
        assert stats.records_mined == len(records)
        assert stats.shed == 0
        assert server.router.total_queued == 0

    def test_server_is_single_use(self):
        rtg = SequenceRTG(db=PatternDB())
        server = ServeServer(rtg, serve_config())
        server.start_in_background()
        server.shutdown()
        import asyncio
        with pytest.raises(RuntimeError, match="single-use"):
            asyncio.run(server.run())


class TestBitIdentity:
    """Network-fed mining must be byte-identical to file-fed mining."""

    @pytest.mark.parametrize("fastpath", [True, False])
    def test_serial_network_equals_file(self, fastpath):
        records = records_for_test(n=300, n_services=10, seed=33)
        batch = 100
        config = RTGConfig(batch_size=batch, enable_fastpath=fastpath)

        reference = SequenceRTG(db=PatternDB(), config=config)
        for k in range(0, len(records), batch):
            reference.analyze_by_service(records[k:k + batch])

        rtg = SequenceRTG(db=PatternDB(), config=config)
        server = ServeServer(
            rtg, serve_config(batch_size=batch, dispatch_timeout_s=30)
        )
        endpoints = server.start_in_background()
        send_tcp(dict(endpoints)["tcp"], jsonl(records))
        assert wait_until(lambda: server.stats.accepted == len(records))
        server.shutdown()

        assert db_fingerprint(rtg.db) == db_fingerprint(reference.db)

    @pytest.mark.parametrize("fastpath", [True, False])
    def test_pool_network_equals_file(self, fastpath):
        """The tentpole invariant: socket → shard queues → warm pool
        mines identically to file → shard_records → warm pool."""
        records = records_for_test(n=300, n_services=12, seed=44)
        batch = 100
        config = RTGConfig(batch_size=batch, enable_fastpath=fastpath)

        reference_pool = PersistentParallelSequenceRTG(
            db=PatternDB(), config=config, n_workers=2
        )
        try:
            for k in range(0, len(records), batch):
                reference_pool.analyze_by_service(records[k:k + batch])
        finally:
            reference_pool.close()

        pool = PersistentParallelSequenceRTG(
            db=PatternDB(), config=config, n_workers=2
        )
        try:
            server = ServeServer(
                pool, serve_config(batch_size=batch, dispatch_timeout_s=30)
            )
            endpoints = server.start_in_background()
            send_tcp(dict(endpoints)["tcp"], jsonl(records))
            assert wait_until(lambda: server.stats.accepted == len(records))
            server.shutdown()
            assert server._mode == "pool"
            assert server.n_shards == 2
            fingerprint = db_fingerprint(pool.db)
        finally:
            pool.close()

        assert fingerprint == db_fingerprint(reference_pool.db)


class TestStreamMode:
    def test_stream_driver_mines_over_the_network(self):
        records = records_for_test(n=80, n_services=4, seed=9)
        rtg = SequenceRTG(
            db=PatternDB(),
            config=RTGConfig(mode="stream"),
        )
        driver = rtg.stream_driver()
        server = ServeServer(driver, serve_config())
        endpoints = server.start_in_background()
        send_tcp(dict(endpoints)["tcp"], jsonl(records))
        assert wait_until(lambda: server.stats.accepted == len(records))
        stats = server.shutdown()
        assert server._mode == "stream"
        assert stats.records_mined == len(records)
        assert driver.stats.n_messages == len(records)
        # the drain closed the driver: its final flush mined patterns
        assert len(db_fingerprint(rtg.db)) > 0

"""Shard router: sticky consistent hashing, bounded queues, policies.

Satellite of the serving-tier PR: the routing tests pin the property
the whole tier's bit-identity rests on — the network router shards by
the *same* hash as the persistent pool, so moving ingest from a file to
a socket never moves a service to a different worker.
"""

import threading
import time

import pytest

from repro.core.parallel import route_service, shard_records
from repro.core.records import LogRecord
from repro.obs.metrics import MetricsRegistry
from repro.serve.router import OVERLOAD_POLICIES, ShardRouter
from repro.workflow.stream import ProductionStream, StreamConfig


def records_for_test(n=400, n_services=24, seed=11):
    stream = ProductionStream(StreamConfig(n_services=n_services, seed=seed))
    return list(stream.records(n))


class TestStickyRouting:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 4, 8])
    def test_matches_pool_hash_for_production_services(self, n_shards):
        """Same crc32 route as the worker pool, service by service."""
        stream = ProductionStream(StreamConfig(n_services=40, seed=7))
        router = ShardRouter(n_shards=n_shards, high_water=1000)
        for service in stream.service_names:
            assert router.shard_for(service) == route_service(service, n_shards)

    def test_routing_is_stable_across_instances(self):
        a = ShardRouter(n_shards=4, high_water=10)
        b = ShardRouter(n_shards=4, high_water=99, policy="shed")
        for service in ("sshd", "nginx", "postgres", "kernel"):
            assert a.shard_for(service) == b.shard_for(service)

    def test_skew_bound_over_production_services(self):
        """crc32 spreads the synthetic fleet acceptably: no empty shard
        and no shard hoarding more than half the services."""
        stream = ProductionStream(StreamConfig(n_services=64, seed=3))
        n_shards = 4
        router = ShardRouter(n_shards=n_shards, high_water=1000)
        per_shard = [0] * n_shards
        for service in stream.service_names:
            per_shard[router.shard_for(service)] += 1
        assert all(count > 0 for count in per_shard)
        assert max(per_shard) <= len(stream.service_names) // 2

    def test_offer_lands_on_sticky_shard(self):
        router = ShardRouter(n_shards=4, high_water=100)
        records = records_for_test(n=50)
        for record in records:
            assert router.offer(record) == "accepted"
        for index in range(4):
            expected = sum(
                1 for r in records if route_service(r.service, 4) == index
            )
            assert router.depth(index) == expected


class TestTakeBatch:
    def test_reproduces_file_fed_shard_splits(self):
        """Consecutive take_batch(B) windows must equal the file path's
        shard_records(records[k*B:(k+1)*B]) — the bit-identity seam."""
        records = records_for_test(n=300)
        n_shards, batch = 3, 100
        router = ShardRouter(n_shards=n_shards, high_water=1000)
        for record in records:
            router.offer(record)
        for k in range(3):
            shards, taken = router.take_batch(batch)
            assert taken == batch
            window = records[k * batch:(k + 1) * batch]
            assert shards == shard_records(window, n_shards)
        assert router.total_queued == 0

    def test_partial_batch_takes_oldest_first(self):
        records = records_for_test(n=30)
        router = ShardRouter(n_shards=2, high_water=100)
        for record in records:
            router.offer(record)
        shards, taken = router.take_batch(10)
        assert taken == 10
        assert shards == shard_records(records[:10], 2)
        assert router.total_queued == 20

    def test_empty_router(self):
        router = ShardRouter(n_shards=2, high_water=10)
        shards, taken = router.take_batch(5)
        assert taken == 0
        assert shards == [[], []]


class TestOverloadPolicies:
    def full_router(self, policy, n=1, high_water=3):
        router = ShardRouter(n_shards=n, high_water=high_water, policy=policy)
        for i in range(high_water):
            assert router.offer(LogRecord("svc", f"old {i}")) == "accepted"
        return router

    def test_block_refuses_without_enqueuing(self):
        router = self.full_router("block")
        assert router.offer(LogRecord("svc", "new")) == "blocked"
        assert router.depth(0) == 3
        assert router.shed_total == 0
        # space frees -> the retry succeeds (what the handler loop does)
        router.take_batch(1)
        assert router.offer(LogRecord("svc", "new")) == "accepted"

    def test_shed_refuses_newest(self):
        router = self.full_router("shed")
        assert router.offer(LogRecord("svc", "new")) == "shed"
        assert router.shed_total == 1
        shards, _ = router.take_batch(10)
        assert [r.message for r in shards[0]] == ["old 0", "old 1", "old 2"]

    def test_drop_oldest_evicts_front(self):
        router = self.full_router("drop_oldest")
        assert router.offer(LogRecord("svc", "new")) == "accepted"
        assert router.shed_total == 1
        assert router.depth(0) == 3
        shards, _ = router.take_batch(10)
        assert [r.message for r in shards[0]] == ["old 1", "old 2", "new"]

    def test_high_water_is_per_shard(self):
        router = ShardRouter(n_shards=4, high_water=2, policy="shed")
        # find two services on different shards
        names = [f"svc{i}" for i in range(64)]
        a = next(s for s in names if route_service(s, 4) == 0)
        b = next(s for s in names if route_service(s, 4) == 1)
        for _ in range(2):
            assert router.offer(LogRecord(a, "m")) == "accepted"
        assert router.offer(LogRecord(a, "m")) == "shed"
        assert router.offer(LogRecord(b, "m")) == "accepted"

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ShardRouter(n_shards=0, high_water=10)
        with pytest.raises(ValueError):
            ShardRouter(n_shards=1, high_water=0)
        with pytest.raises(ValueError):
            ShardRouter(n_shards=1, high_water=10, policy="panic")
        assert OVERLOAD_POLICIES == ("block", "shed", "drop_oldest")


class TestWaiting:
    def test_wait_for_returns_when_count_reached(self):
        router = ShardRouter(n_shards=1, high_water=100)

        def feed():
            time.sleep(0.05)
            for i in range(5):
                router.offer(LogRecord("svc", f"m{i}"))

        thread = threading.Thread(target=feed)
        thread.start()
        total = router.wait_for(5, timeout=5.0)
        thread.join()
        assert total == 5

    def test_wait_for_times_out(self):
        router = ShardRouter(n_shards=1, high_water=100)
        router.offer(LogRecord("svc", "m"))
        start = time.monotonic()
        total = router.wait_for(10, timeout=0.1)
        assert time.monotonic() - start < 2.0
        assert total == 1

    def test_notify_interrupts_waiter(self):
        """The drain signal must not let the dispatcher sleep out its
        deadline — notify() returns the wait immediately."""
        router = ShardRouter(n_shards=1, high_water=100)
        woke = threading.Event()

        def wait():
            router.wait_for(10, timeout=30.0)
            woke.set()

        thread = threading.Thread(target=wait, daemon=True)
        thread.start()
        time.sleep(0.05)
        router.notify()
        assert woke.wait(timeout=5.0)
        thread.join(timeout=5.0)


class TestMetrics:
    def test_counters_and_gauge_published(self):
        registry = MetricsRegistry()
        router = ShardRouter(
            n_shards=1, high_water=2, policy="shed", metrics=registry
        )
        router.offer(LogRecord("svc", "a"))
        router.offer(LogRecord("svc", "b"))
        router.offer(LogRecord("svc", "c"))  # shed
        accepted = registry.counter("rtg_serve_accepted_total")
        shed = registry.counter("rtg_serve_shed_total")
        depth = registry.gauge("rtg_serve_queue_depth")
        assert accepted.value(shard="0") == 2
        assert shed.value(shard="0", policy="shed") == 1
        assert depth.value(shard="0") == 2
        router.take_batch(10)
        assert depth.value(shard="0") == 0

"""Zipf sampler: determinism, distribution shape, validation."""

import pytest
from hypothesis import given, strategies as st

from repro._util.sampling import ZipfSampler


class TestZipfSampler:
    def test_deterministic_per_seed(self):
        a = ZipfSampler(10, seed=3).sample_many(100)
        b = ZipfSampler(10, seed=3).sample_many(100)
        assert a == b

    def test_different_seeds_differ(self):
        a = ZipfSampler(10, seed=1).sample_many(100)
        b = ZipfSampler(10, seed=2).sample_many(100)
        assert a != b

    def test_samples_in_range(self):
        sampler = ZipfSampler(5, seed=0)
        assert all(0 <= x < 5 for x in sampler.sample_many(500))

    def test_rank_zero_most_frequent(self):
        sampler = ZipfSampler(20, s=1.2, seed=0)
        draws = sampler.sample_many(5000)
        counts = [draws.count(i) for i in range(20)]
        assert counts[0] == max(counts)
        assert counts[0] > counts[10]

    def test_probabilities_sum_to_one(self):
        probs = ZipfSampler(7, s=1.5, seed=0).probabilities()
        assert abs(sum(probs) - 1.0) < 1e-12
        assert all(probs[i] >= probs[i + 1] for i in range(len(probs) - 1))

    def test_uniform_when_s_zero(self):
        probs = ZipfSampler(4, s=0.0, seed=0).probabilities()
        assert all(abs(p - 0.25) < 1e-12 for p in probs)

    def test_single_item(self):
        assert ZipfSampler(1, seed=0).sample_many(10) == [0] * 10

    @pytest.mark.parametrize("n", [0, -1])
    def test_invalid_n(self, n):
        with pytest.raises(ValueError):
            ZipfSampler(n)

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            ZipfSampler(5, s=-0.1)

    @given(n=st.integers(1, 50), s=st.floats(0, 3), seed=st.integers(0, 2**16))
    def test_property_range_and_probs(self, n, s, seed):
        sampler = ZipfSampler(n, s=s, seed=seed)
        assert 0 <= sampler.sample() < n
        assert abs(sum(sampler.probabilities()) - 1.0) < 1e-9

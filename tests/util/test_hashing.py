"""Pattern id hashing: unique and reproducible per (pattern, service)."""

import hashlib

from repro._util.hashing import pattern_id


class TestPatternId:
    def test_deterministic(self):
        a = pattern_id("%action% from %srcip% port %srcport%", "sshd")
        b = pattern_id("%action% from %srcip% port %srcport%", "sshd")
        assert a == b

    def test_is_sha1_hex(self):
        pid = pattern_id("x", "y")
        assert len(pid) == 40
        assert set(pid) <= set("0123456789abcdef")

    def test_service_distinguishes(self):
        assert pattern_id("same pattern", "sshd") != pattern_id("same pattern", "httpd")

    def test_pattern_distinguishes(self):
        assert pattern_id("a %integer%", "svc") != pattern_id("b %integer%", "svc")

    def test_matches_manual_sha1(self):
        text, service = "%string% connected", "mysvc"
        expected = hashlib.sha1((text + service).encode()).hexdigest()
        assert pattern_id(text, service) == expected

    def test_unicode_safe(self):
        pid = pattern_id("café %integer% établi", "réseau")
        assert len(pid) == 40

    def test_empty_inputs(self):
        assert len(pattern_id("", "")) == 40
        # concatenation boundary matters: (ab, c) != (a, bc)
        assert pattern_id("ab", "c") == pattern_id("ab", "c")

"""Stage timer accounting."""

from repro._util.timers import StageTimer


class TestStageTimer:
    def test_accumulates_elapsed(self):
        timer = StageTimer()
        with timer.stage("scan"):
            pass
        with timer.stage("scan"):
            pass
        assert timer.count("scan") == 2
        assert timer.elapsed("scan") >= 0.0

    def test_unknown_stage_is_zero(self):
        timer = StageTimer()
        assert timer.elapsed("nope") == 0.0
        assert timer.count("nope") == 0

    def test_total_sums_stages(self):
        timer = StageTimer()
        with timer.stage("a"):
            pass
        with timer.stage("b"):
            pass
        assert abs(timer.total() - (timer.elapsed("a") + timer.elapsed("b"))) < 1e-9

    def test_report_snapshot_is_copy(self):
        timer = StageTimer()
        with timer.stage("a"):
            pass
        report = timer.report()
        report["a"] = 999.0
        assert timer.elapsed("a") != 999.0

    def test_records_time_even_on_exception(self):
        timer = StageTimer()
        try:
            with timer.stage("fail"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert timer.count("fail") == 1

    def test_reset(self):
        timer = StageTimer()
        with timer.stage("a"):
            pass
        timer.reset()
        assert timer.total() == 0.0
        assert timer.count("a") == 0

"""Registry semantics: families, labels, thread safety, snapshot/merge."""

import threading

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    snapshot_to_dict,
)


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labelled_samples_are_independent(self):
        counter = MetricsRegistry().counter("events_total")
        counter.inc(service="a")
        counter.inc(3, service="b")
        assert counter.value(service="a") == 1
        assert counter.value(service="b") == 3
        assert counter.value(service="c") == 0

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("events_total")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_label_order_is_canonical(self):
        counter = MetricsRegistry().counter("events_total")
        counter.inc(a="1", b="2")
        counter.inc(b="2", a="1")
        assert counter.value(a="1", b="2") == 2


class TestGauge:
    def test_set_overwrites(self):
        gauge = MetricsRegistry().gauge("size")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value() == 2


class TestHistogram:
    def test_observe_places_in_buckets(self):
        hist = MetricsRegistry().histogram("lat", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)  # overflow
        assert hist.count() == 3
        assert hist.sum() == pytest.approx(5.55)

    def test_boundary_lands_in_its_bucket(self):
        """Prometheus buckets are `le` (inclusive upper bounds)."""
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        hist.observe(0.1)
        dump = snapshot_to_dict(registry.snapshot())
        (sample,) = dump["lat"]["samples"]
        assert sample["buckets"]["0.1"] == 1

    def test_default_buckets_are_the_latency_scale(self):
        hist = MetricsRegistry().histogram("lat")
        assert hist.buckets == LATENCY_BUCKETS

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            MetricsRegistry().histogram("lat", buckets=(1.0, 0.1))


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_const_labels_stamped_on_every_sample(self):
        """Pool workers stamp worker=N; the const labels must merge with
        per-call labels into one canonical key."""
        registry = MetricsRegistry(const_labels={"worker": "3"})
        counter = registry.counter("events_total")
        counter.inc(service="a")
        counter.inc()
        (key_a, key_bare) = sorted(counter.samples())
        assert dict(key_bare) == {"worker": "3"} or dict(key_a) == {"worker": "3"}
        keys = {tuple(sorted(dict(k).items())) for k in counter.samples()}
        assert (("service", "a"), ("worker", "3")) in keys
        assert (("worker", "3"),) in keys

    def test_collect_is_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert [m.name for m in registry.collect()] == ["a", "b"]


class TestThreadSafety:
    def test_concurrent_updates_lose_nothing(self):
        """The ingester's reader thread and the scrape server touch the
        registry concurrently with analysis; counts must stay exact."""
        registry = MetricsRegistry()
        counter = registry.counter("events_total")
        hist = registry.histogram("lat", buckets=(0.5,))
        n_threads, per_thread = 8, 2000

        def work():
            for _ in range(per_thread):
                counter.inc(service="s")
                hist.observe(0.1, stage="scan")

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value(service="s") == n_threads * per_thread
        assert hist.count(stage="scan") == n_threads * per_thread


class TestSnapshotDeltaMerge:
    def test_delta_subtracts_counters_and_histograms(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        hist = registry.histogram("h", buckets=(1.0,))
        counter.inc(5)
        hist.observe(0.5)
        before = registry.snapshot()
        counter.inc(2)
        hist.observe(2.0)
        delta = MetricsRegistry.snapshot_delta(before, registry.snapshot())
        assert delta["c"]["samples"][()] == 2
        counts, h_sum, h_count = delta["h"]["samples"][()]
        assert counts == (0, 1)  # only the overflow observation is new
        assert h_sum == pytest.approx(2.0)
        assert h_count == 1

    def test_delta_of_new_sample_counts_from_zero(self):
        registry = MetricsRegistry()
        before = registry.snapshot()
        registry.counter("c").inc(4, service="new")
        delta = MetricsRegistry.snapshot_delta(before, registry.snapshot())
        assert delta["c"]["samples"][(("service", "new"),)] == 4

    def test_delta_gauges_take_the_after_value(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(10)
        before = registry.snapshot()
        gauge.set(3)
        delta = MetricsRegistry.snapshot_delta(before, registry.snapshot())
        assert delta["g"]["samples"][()] == 3

    def test_merge_adds_counters_and_overwrites_gauges(self):
        worker = MetricsRegistry(const_labels={"worker": "0"})
        worker.counter("c", "help").inc(5, service="a")
        worker.gauge("g").set(7)
        worker.histogram("h", buckets=(1.0,)).observe(0.2)

        parent = MetricsRegistry()
        parent.counter("c").inc(1, service="a", worker="0")
        parent.merge(worker.snapshot())
        parent.merge(worker.snapshot())

        assert parent.counter("c").value(service="a", worker="0") == 11
        assert parent.gauge("g").value(worker="0") == 7
        assert parent.histogram("h", buckets=(1.0,)).count(worker="0") == 2

    def test_merge_creates_missing_families_with_help_and_buckets(self):
        source = MetricsRegistry()
        source.histogram("h", "the help", buckets=(0.5, 2.0)).observe(1.0)
        target = MetricsRegistry()
        target.merge(source.snapshot())
        hist = target.histogram("h")
        assert hist.help == "the help"
        assert hist.buckets == (0.5, 2.0)
        assert hist.count() == 1

    def test_snapshot_is_picklable(self):
        """Worker deltas cross a multiprocessing pipe."""
        import pickle

        registry = MetricsRegistry(const_labels={"worker": "1"})
        registry.counter("c").inc(service="a")
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snapshot = pickle.loads(pickle.dumps(registry.snapshot()))
        restored = MetricsRegistry()
        restored.merge(snapshot)
        assert restored.counter("c").value(service="a", worker="1") == 1


class TestJsonDump:
    def test_histogram_buckets_cumulative_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(9.0)
        dump = registry.to_dict()
        (sample,) = dump["h"]["samples"]
        assert sample["buckets"] == {"0.1": 1, "1.0": 2, "+Inf": 3}
        assert sample["count"] == 3

    def test_json_serialisable(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c", "help").inc(2, service="a")
        registry.histogram("h").observe(0.01, stage="scan")
        text = json.dumps(registry.to_dict())
        assert "stage" in text

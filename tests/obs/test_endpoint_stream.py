"""Acceptance: the ``/metrics`` endpoint during live stream runs.

For each execution path — serial :class:`SequenceRTG`, the cold
:class:`ParallelSequenceRTG` pool and the warm
:class:`PersistentParallelSequenceRTG` pool — the miner's registry is
served over HTTP while ``process_stream`` is driving batches, and the
scrape must expose stage-latency histograms and fast-lane counters in
Prometheus text format.
"""

import urllib.request

import pytest

from repro.core.parallel import (
    ParallelSequenceRTG,
    PersistentParallelSequenceRTG,
)
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.obs.server import MetricsServer
from repro.workflow.stream import ProductionStream, StreamConfig


def batches(n_batches=3, per_batch=200, n_services=8, seed=11):
    stream = ProductionStream(StreamConfig(
        n_services=n_services, seed=seed, duplicate_fraction=0.5,
    ))
    return [list(stream.records(per_batch)) for _ in range(n_batches)]


def scrape(url: str) -> str:
    with urllib.request.urlopen(url, timeout=5) as response:
        assert response.status == 200
        assert response.headers["Content-Type"].startswith(
            "text/plain; version=0.0.4"
        )
        return response.read().decode("utf-8")


def assert_scrape_complete(text: str, expect_workers: bool) -> None:
    # per-stage latency histograms, with cumulative buckets and +Inf
    for stage in ("scan", "parse", "analyze", "persist"):
        assert f'stage="{stage}"' in text
    assert "rtg_stage_latency_seconds_bucket" in text
    assert 'le="+Inf"' in text
    assert "rtg_stage_latency_seconds_sum" in text
    # throughput counters and batch aggregates
    assert "rtg_records_total{" in text
    assert "rtg_batches_total " in text
    assert "rtg_matched_fraction " in text
    # fast-lane hit/miss counters
    assert 'rtg_fastlane_events_total{cache="dedup",event="unique"}' in text
    assert 'cache="scan"' in text
    # database gauges
    assert 'rtg_patterndb_rows{table="patterns"}' in text
    if expect_workers:
        assert 'worker="' in text
        assert "rtg_pool_workers " in text


def drive_and_scrape(miner, expect_workers: bool) -> None:
    with MetricsServer(miner.metrics, port=0) as server:
        mid_scrapes = []
        for result in miner.process_stream(batches()):
            assert result.n_records > 0
            mid_scrapes.append(scrape(server.url))
        final = scrape(server.url)
    # scrapes during the run already carry the live families
    assert "rtg_stage_latency_seconds_count" in mid_scrapes[0]
    assert_scrape_complete(final, expect_workers=expect_workers)


class TestEndpointDuringStream:
    def test_serial_path(self):
        drive_and_scrape(SequenceRTG(db=PatternDB()), expect_workers=False)

    def test_cold_pool_path(self):
        miner = ParallelSequenceRTG(db=PatternDB(), n_workers=3)
        drive_and_scrape(miner, expect_workers=True)

    def test_warm_pool_path(self):
        with PersistentParallelSequenceRTG(db=PatternDB(), n_workers=3) as miner:
            drive_and_scrape(miner, expect_workers=True)
            # warm-pool extras: journal cursor-lag gauges per worker
            text = scrape_registry(miner)
            assert "rtg_journal_lag{" in text


def scrape_registry(miner) -> str:
    from repro.obs.exposition import render_prometheus

    return render_prometheus(miner.metrics)


class TestPoolAggregation:
    def test_worker_samples_survive_merge_with_labels(self):
        """Stage histograms recorded inside workers surface in the
        parent registry with their worker label."""
        with PersistentParallelSequenceRTG(db=PatternDB(), n_workers=2) as miner:
            for batch in batches(n_batches=2):
                miner.analyze_by_service(batch)
            snap = miner.metrics.snapshot()
            samples = snap["rtg_stage_latency_seconds"]["samples"]
            workers = {dict(key).get("worker") for key in samples}
            assert workers - {None}, "no worker-labelled stage samples"

    def test_mining_counters_match_across_paths(self):
        """The same stream yields identical mining counters (records,
        matched, unmatched, patterns) on all three paths."""
        def totals(registry):
            snap = registry.snapshot()
            out = {}
            for name in (
                "rtg_records_total", "rtg_matched_total",
                "rtg_unmatched_total", "rtg_patterns_total",
            ):
                per_service: dict[str, float] = {}
                for key, value in snap.get(name, {}).get("samples", {}).items():
                    service = dict(key).get("service")
                    per_service[service] = per_service.get(service, 0) + value
                out[name] = per_service
            return out

        serial = SequenceRTG(db=PatternDB())
        for batch in batches():
            serial.analyze_by_service(batch)

        cold = ParallelSequenceRTG(db=PatternDB(), n_workers=3)
        for batch in batches():
            cold.analyze_by_service(batch)

        with PersistentParallelSequenceRTG(db=PatternDB(), n_workers=3) as warm:
            for batch in batches():
                warm.analyze_by_service(batch)
            assert totals(serial.metrics) == totals(cold.metrics)
            assert totals(serial.metrics) == totals(warm.metrics)

    def test_batches_total_counts_each_batch_once(self):
        """Worker-side batch aggregates must not double-count on merge."""
        with PersistentParallelSequenceRTG(db=PatternDB(), n_workers=3) as warm:
            for batch in batches(n_batches=4):
                warm.analyze_by_service(batch)
            assert warm.metrics.counter("rtg_batches_total").value() == 4

    def test_metrics_disabled_end_to_end(self):
        from repro.core.config import RTGConfig

        config = RTGConfig(enable_metrics=False)
        with PersistentParallelSequenceRTG(
            db=PatternDB(), config=config, n_workers=2
        ) as warm:
            result = warm.analyze_by_service(batches(n_batches=1)[0])
            assert result.metrics == {}
            assert warm.metrics.collect() == []

"""The stdlib ``/metrics`` scrape endpoint."""

import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.server import MetricsServer


def scrape(url: str) -> tuple[int, str, str]:
    with urllib.request.urlopen(url, timeout=5) as response:
        return (
            response.status,
            response.headers["Content-Type"],
            response.read().decode("utf-8"),
        )


class TestMetricsServer:
    def test_serves_registry_rendering(self):
        registry = MetricsRegistry()
        registry.counter("rtg_events_total", "help").inc(3)
        with MetricsServer(registry, port=0) as server:
            status, content_type, body = scrape(server.url)
        assert status == 200
        assert content_type.startswith("text/plain; version=0.0.4")
        assert "rtg_events_total 3\n" in body

    def test_scrape_sees_live_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("rtg_events_total")
        with MetricsServer(registry, port=0) as server:
            counter.inc()
            assert "rtg_events_total 1" in scrape(server.url)[2]
            counter.inc(4)
            assert "rtg_events_total 5" in scrape(server.url)[2]

    def test_other_paths_are_404(self):
        with MetricsServer(MetricsRegistry(), port=0) as server:
            root = server.url.rsplit("/metrics", 1)[0] + "/other"
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(root, timeout=5)
            assert exc_info.value.code == 404

    def test_port_zero_binds_a_real_port(self):
        server = MetricsServer(MetricsRegistry(), port=0)
        try:
            port = server.start()
            assert port > 0
            assert server.port == port
            assert f":{port}/metrics" in server.url
        finally:
            server.close()

    def test_close_is_idempotent(self):
        server = MetricsServer(MetricsRegistry(), port=0)
        server.start()
        server.close()
        server.close()
        with pytest.raises(RuntimeError, match="not running"):
            server.port

    def test_start_is_idempotent(self):
        server = MetricsServer(MetricsRegistry(), port=0)
        try:
            assert server.start() == server.start()
        finally:
            server.close()

"""MetricsObserver semantics on the serial engine, and the fold helpers."""

import pytest

from repro.core.config import RTGConfig
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.core.records import LogRecord
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import (
    METRIC_HELP,
    MetricsObserver,
    fold_batch_result,
    observe_patterndb,
)

from tests.conftest import MessageGenerator


def mined(n=300, **config):
    rtg = SequenceRTG(db=PatternDB(), config=RTGConfig(**config))
    result = rtg.analyze_by_service(
        MessageGenerator(seed=3).records(n, n_services=3)
    )
    return rtg, result


class TestSerialPath:
    def test_expected_families_present(self):
        rtg, _ = mined()
        names = {m.name for m in rtg.metrics.collect()}
        assert {
            "rtg_stage_latency_seconds",
            "rtg_records_total",
            "rtg_matched_total",
            "rtg_unmatched_total",
            "rtg_patterns_total",
            "rtg_batches_total",
            "rtg_matched_fraction",
            "rtg_fastlane_events_total",
            "rtg_patterndb_rows",
            "rtg_patterndb_patterns",
        } <= names

    def test_every_metric_has_registered_help(self):
        rtg, _ = mined()
        for metric in rtg.metrics.collect():
            assert metric.help == METRIC_HELP[metric.name]

    def test_stage_latency_counts_stage_executions(self):
        """One observation per stage per service group."""
        rtg, result = mined()
        hist = rtg.metrics.histogram("rtg_stage_latency_seconds")
        # scan, parse and analyze samples additionally carry their
        # backend label
        assert hist.count(stage="scan", backend="fsm") == result.n_services
        assert (
            hist.count(stage="parse", backend="reference") == result.n_services
        )
        assert (
            hist.count(stage="analyze", backend="reference")
            == result.n_services
        )
        for stage in ("partition_length", "persist"):
            assert hist.count(stage=stage) == result.n_services

    def test_analyze_trie_nodes_histogram(self):
        """One trie-node observation per mined length partition, labelled
        with the analyser backend."""
        rtg, result = mined()
        hist = rtg.metrics.histogram("rtg_analyze_trie_nodes")
        assert result.n_partitions > 0
        assert hist.count(backend="reference") == result.n_partitions
        assert hist.sum(backend="reference") >= result.n_partitions

    def test_counters_agree_with_batch_result(self):
        rtg, result = mined()
        snap = rtg.metrics.snapshot()

        def total(name):
            return sum(snap[name]["samples"].values())

        assert total("rtg_records_total") == result.n_records
        assert total("rtg_matched_total") == result.n_matched
        assert total("rtg_unmatched_total") == result.n_unmatched
        assert total("rtg_patterns_total") == result.n_new_patterns
        assert rtg.metrics.counter("rtg_batches_total").value() == 1

    def test_db_gauges_track_database_state(self):
        rtg, _ = mined()
        counts = rtg.db.counts()
        rows = rtg.metrics.gauge("rtg_patterndb_rows")
        assert rows.value(table="patterns") == counts["patterns"]
        per_service = rtg.metrics.gauge("rtg_patterndb_patterns")
        for service, n in rtg.db.counts_by_service().items():
            assert per_service.value(service=service) == n

    def test_batch_result_carries_metrics_delta(self):
        """``BatchResult.metrics`` is the per-batch registry delta, not
        the cumulative state: the second batch reports its own counts."""
        rtg = SequenceRTG(db=PatternDB())
        generator = MessageGenerator(seed=3)
        rtg.analyze_by_service(generator.records(200, n_services=2))
        second = rtg.analyze_by_service(generator.records(100, n_services=2))
        batches = second.metrics["rtg_batches_total"]["samples"][0]["value"]
        assert batches == 1
        records = sum(
            s["value"] for s in second.metrics["rtg_records_total"]["samples"]
        )
        assert records == second.n_records

    def test_matched_fraction_gauge(self):
        rtg = SequenceRTG(db=PatternDB())
        records = MessageGenerator(seed=3).records(200, n_services=2)
        rtg.analyze_by_service(records)
        result = rtg.analyze_by_service(records[:100])
        gauge = rtg.metrics.gauge("rtg_matched_fraction")
        assert gauge.value() == pytest.approx(result.matched_fraction)
        assert gauge.value() > 0

    def test_fastlane_counters_mirror_cache_delta(self):
        rtg, result = mined()
        fastlane = rtg.metrics.counter("rtg_fastlane_events_total")
        assert fastlane.value(cache="dedup", event="unique") == result.cache[
            "dedup_unique"
        ]
        assert fastlane.value(cache="dedup", event="duplicate") == result.cache[
            "dedup_duplicates"
        ]

    def test_disabled_metrics_record_nothing(self):
        rtg, result = mined(enable_metrics=False)
        assert rtg.metrics.collect() == []
        assert result.metrics == {}


class TestFoldBatchResult:
    def test_pool_counters_folded(self):
        rtg, result = mined()
        result.pool = {
            "workers": 3,
            "spawns": 3,
            "respawns": 1,
            "sync_patterns": 12,
            "sync_bytes": 4096,
        }
        registry = MetricsRegistry()
        fold_batch_result(registry, result)
        assert registry.gauge("rtg_pool_workers").value() == 3
        events = registry.counter("rtg_pool_events_total")
        assert events.value(event="spawn") == 3
        assert events.value(event="respawn") == 1
        assert registry.counter("rtg_pool_sync_patterns_total").value() == 12
        assert registry.counter("rtg_pool_sync_bytes_total").value() == 4096


class TestObservePatternDB:
    def test_snapshot_of_existing_database(self):
        rtg, _ = mined()
        registry = MetricsRegistry()
        observe_patterndb(registry, rtg.db)
        assert registry.gauge("rtg_patterndb_rows").value(
            table="patterns"
        ) == rtg.db.counts()["patterns"]


class TestWorkerMode:
    def test_batch_level_off_skips_batch_aggregates(self):
        registry = MetricsRegistry(const_labels={"worker": "0"})
        rtg = SequenceRTG(db=PatternDB(), metrics=registry)
        for observer in rtg.engine.observers:
            if isinstance(observer, MetricsObserver):
                observer.batch_level = False
                observer.db = None
        result = rtg.analyze_by_service(
            [LogRecord("svc", f"event {i} done") for i in range(10)]
        )
        names = {m.name for m in registry.collect() if m.samples()}
        assert "rtg_batches_total" not in names
        assert "rtg_patterndb_rows" not in names
        assert "rtg_stage_latency_seconds" in names
        assert result.metrics == {}
        # every sample carries the worker const label
        for metric in registry.collect():
            for key in metric.samples():
                assert dict(key)["worker"] == "0"

"""Prometheus text exposition format details."""

from repro.obs.exposition import CONTENT_TYPE, render_prometheus
from repro.obs.metrics import MetricsRegistry


def test_content_type_is_version_0_0_4():
    assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"


def test_help_and_type_lines():
    registry = MetricsRegistry()
    registry.counter("rtg_events_total", "Things that happened").inc()
    text = render_prometheus(registry)
    assert "# HELP rtg_events_total Things that happened\n" in text
    assert "# TYPE rtg_events_total counter\n" in text
    assert "rtg_events_total 1\n" in text


def test_labels_sorted_and_quoted():
    registry = MetricsRegistry()
    registry.counter("c").inc(b="2", a="1")
    assert 'c{a="1",b="2"} 1' in render_prometheus(registry)


def test_label_values_escaped():
    registry = MetricsRegistry()
    registry.counter("c").inc(path='a"b\\c\nd')
    assert 'c{path="a\\"b\\\\c\\nd"} 1' in render_prometheus(registry)


def test_histogram_buckets_cumulative_and_terminated_by_inf():
    registry = MetricsRegistry()
    hist = registry.histogram("h", buckets=(0.1, 1.0))
    hist.observe(0.05, stage="scan")
    hist.observe(0.5, stage="scan")
    hist.observe(7.0, stage="scan")
    text = render_prometheus(registry)
    assert 'h_bucket{le="0.1",stage="scan"} 1\n' in text
    assert 'h_bucket{le="1",stage="scan"} 2\n' in text
    assert 'h_bucket{le="+Inf",stage="scan"} 3\n' in text
    assert 'h_sum{stage="scan"} 7.55' in text
    assert 'h_count{stage="scan"} 3\n' in text


def test_integral_floats_render_as_integers():
    registry = MetricsRegistry()
    registry.gauge("g").set(4.0)
    assert "g 4\n" in render_prometheus(registry)


def test_output_is_deterministic():
    def build():
        registry = MetricsRegistry()
        registry.counter("b_total").inc(5, service="y")
        registry.counter("b_total").inc(1, service="x")
        registry.gauge("a").set(2)
        return render_prometheus(registry)

    assert build() == build()


def test_families_sorted_by_name():
    registry = MetricsRegistry()
    registry.counter("z_total").inc()
    registry.gauge("a").set(1)
    text = render_prometheus(registry)
    assert text.index("# TYPE a gauge") < text.index("# TYPE z_total counter")


def test_empty_registry_renders_empty():
    assert render_prometheus(MetricsRegistry()) == ""

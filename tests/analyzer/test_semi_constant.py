"""Semi-constant value expansion (§VI future work).

"it would be more interesting to create as many patterns as there are
variations of this semi-constant variable, each pattern having a
constant value at its position."
"""

from repro.analyzer import Analyzer, AnalyzerConfig
from repro.parser import Parser
from repro.scanner import Scanner

SC = Scanner()


def analyze(messages, **config_kwargs):
    config = AnalyzerConfig(merge_threshold=1, **config_kwargs)
    return Analyzer(config).analyze([SC.scan(m) for m in messages])


STATE_MESSAGES = [
    f"link eth0 changed state to {s} at step {i}"
    for i, s in enumerate(["up", "down"] * 6)
]


class TestDisabledByDefault:
    def test_published_behaviour_single_pattern(self):
        patterns = analyze(STATE_MESSAGES)
        assert [p.text for p in patterns] == [
            "link eth0 changed state to %string% at step %integer%"
        ]


class TestExpansion:
    def test_one_pattern_per_value(self):
        patterns = analyze(STATE_MESSAGES, semi_constant_max_values=4)
        texts = sorted(p.text for p in patterns)
        assert texts == [
            "link eth0 changed state to down at step %integer%",
            "link eth0 changed state to up at step %integer%",
        ]

    def test_supports_split_by_value(self):
        patterns = analyze(STATE_MESSAGES, semi_constant_max_values=4)
        assert sorted(p.support for p in patterns) == [6, 6]

    def test_many_valued_variables_not_expanded(self):
        messages = [f"request id req{i} served" for i in range(30)]
        patterns = analyze(messages, semi_constant_max_values=3)
        assert len(patterns) == 1
        assert "%alphanum%" in patterns[0].text

    def test_limit_respected(self):
        # 3 distinct values but limit 2: no expansion
        messages = [
            f"mode set to {m} now ok" for m in ("auto", "manual", "hybrid") * 4
        ]
        patterns = analyze(messages, semi_constant_max_values=2)
        assert len(patterns) == 1

    def test_time_never_expanded(self):
        messages = ["tick at 08:12:33 done", "tick at 08:12:34 done"] * 3
        patterns = analyze(messages, semi_constant_max_values=4)
        assert len(patterns) == 1
        assert "%msgtime%" in patterns[0].text

    def test_expanded_patterns_parse_their_traffic(self):
        patterns = analyze(STATE_MESSAGES, semi_constant_max_values=4)
        parser = Parser(patterns)
        for message in STATE_MESSAGES:
            hit = parser.match(SC.scan(message))
            assert hit is not None
            value = "up" if " up " in f" {message} " else "down"
            assert value in hit.pattern.text

    def test_examples_filtered_per_value(self):
        patterns = analyze(STATE_MESSAGES, semi_constant_max_values=4)
        for pattern in patterns:
            value = "up" if " up " in f" {pattern.text} " else "down"
            for example in pattern.examples:
                assert value in example

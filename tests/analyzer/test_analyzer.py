"""Analyser behaviour: merge rules, constant folding, legacy mode."""

from hypothesis import given, settings, strategies as st

from repro.analyzer import Analyzer, AnalyzerConfig, LegacyAnalyzer
from repro.parser import Parser
from repro.scanner import Scanner

SC = Scanner()


def analyze(messages, config=None):
    return Analyzer(config).analyze([SC.scan(m) for m in messages])


def pattern_texts(messages, config=None):
    return sorted(p.text for p in analyze(messages, config))


class TestIdMerge:
    def test_block_ids_merge(self):
        texts = pattern_texts(
            [f"deleting block blk_{i} now" for i in (101, 202, 303)]
        )
        assert texts == ["deleting block %alphanum% now"]

    def test_hex_ids_merge_without_digits(self):
        # letters-only hashes are still identifiers
        texts = pattern_texts(["commit deadbeef done", "commit cafebabe done"])
        assert texts == ["commit %alphanum% done"]

    def test_two_values_suffice(self):
        texts = pattern_texts(["job j1 ok", "job j2 ok"])
        assert texts == ["job %alphanum% ok"]

    def test_disabled_by_config(self):
        config = AnalyzerConfig(id_merge=False)
        texts = pattern_texts(["job j1 ok", "job j2 ok"], config)
        assert len(texts) == 2

    def test_plain_words_not_id_merged(self):
        texts = pattern_texts(["status up now", "status down now"])
        assert len(texts) == 2


class TestWordMerge:
    def test_above_threshold_merges(self):
        messages = [f"login user{u} accepted" for u in "abcdef"]  # 6 distinct
        # usernames here are pure alpha: usera, userb, ...
        messages = [f"login {u} accepted" for u in
                    ("alpha", "bravo", "carol", "delta", "echo", "frank")]
        assert pattern_texts(messages) == ["login %string% accepted"]

    def test_at_or_below_threshold_stays_split(self):
        messages = [f"login {u} accepted" for u in ("alpha", "bravo", "carol")]
        assert len(pattern_texts(messages)) == 3

    def test_dissimilar_events_not_merged(self):
        # five events sharing only token count; children differ entirely
        messages = [
            "alpha opens the gate",
            "bravo closes a window",
            "carol deletes some files",
            "delta rewrites those rules",
            "echo restarts every daemon",
        ]
        assert len(pattern_texts(messages)) == 5

    def test_merge_threshold_configurable(self):
        messages = [f"login {u} accepted" for u in ("alpha", "bravo", "carol")]
        config = AnalyzerConfig(merge_threshold=2)
        assert pattern_texts(messages, config) == ["login %string% accepted"]


class TestConstantFolding:
    def test_single_valued_integer_folds(self):
        """Limitation 4 mitigation: a port that is always 22 is static."""
        messages = [f"conn from 10.0.0.{i} port 22" for i in range(5)]
        texts = pattern_texts(messages)
        assert texts == ["conn from %srcip% port 22"]

    def test_varying_integer_stays_variable(self):
        messages = [f"conn from 10.0.0.{i} port {22000 + i}" for i in range(5)]
        assert pattern_texts(messages) == ["conn from %srcip% port %srcport%"]

    def test_folding_disabled(self):
        messages = [f"conn from 10.0.0.{i} port 22" for i in range(5)]
        config = AnalyzerConfig(fold_constants=False)
        assert pattern_texts(messages, config) == [
            "conn from %srcip% port %srcport%"
        ]

    def test_time_never_folds(self):
        messages = ["at 08:12:33 tick"] * 5
        texts = pattern_texts(messages)
        assert texts == ["at %msgtime% tick"]

    def test_below_min_support_not_folded(self):
        config = AnalyzerConfig(fold_min_support=10)
        messages = [f"conn from 10.0.0.{i} port 22" for i in range(5)]
        assert pattern_texts(messages, config) == [
            "conn from %srcip% port %srcport%"
        ]


class TestEmission:
    def test_support_and_examples(self):
        messages = [f"delete blk_{i} ok" for i in range(6)]
        (pattern,) = analyze(messages)
        assert pattern.support == 6
        assert len(pattern.examples) == 3
        assert all(e in messages for e in pattern.examples)

    def test_empty_input(self):
        assert analyze([]) == []

    def test_exact_spacing_preserved(self):
        messages = [f"rc={i} done" for i in range(5)]
        (pattern,) = analyze(messages)
        assert pattern.text == "rc=%rc% done"

    def test_kv_semantic_naming(self):
        messages = [f"login user={u} ok" for u in ("ann", "bob", "cyd", "dan", "eve")]
        (pattern,) = analyze(messages)
        assert "%user%" in pattern.text


class TestLegacyAnalyzer:
    def test_handles_mixed_lengths_in_one_trie(self):
        messages = ["a b", "a b c", "a b c d"]
        patterns = LegacyAnalyzer().analyze([SC.scan(m) for m in messages])
        assert len(patterns) == 3

    def test_never_folds_constants(self):
        messages = [f"conn from 10.0.0.{i} port 22" for i in range(5)]
        patterns = LegacyAnalyzer().analyze([SC.scan(m) for m in messages])
        assert patterns[0].render(exact_spacing=False).endswith("%srcport%")

    def test_pairwise_merge_groups_similar_siblings(self):
        messages = [f"login {u} accepted" for u in ("alpha", "bravo")]
        patterns = LegacyAnalyzer().analyze([SC.scan(m) for m in messages])
        # the legacy comparison merges at >=2 similar siblings
        assert len(patterns) == 1

    def test_records_trie_size(self):
        analyzer = LegacyAnalyzer()
        analyzer.analyze([SC.scan("a b c")])
        assert analyzer.last_trie_nodes >= 4


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["open", "close", "read"]),
                st.integers(0, 10_000),
                st.sampled_from(["ok", "failed"]),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_patterns_match_their_own_examples(self, rows):
        """Core invariant: every discovered pattern parses every example
        message stored with it."""
        messages = [f"{verb} file {num} {status}" for verb, num, status in rows]
        patterns = analyze(messages)
        parser = Parser(patterns)
        for pattern in patterns:
            for example in pattern.examples:
                hit = parser.match(SC.scan(example))
                assert hit is not None

    @given(
        st.lists(
            st.integers(0, 3),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_supports_sum_to_message_count(self, picks):
        templates = [
            "alpha {} beta",
            "gamma delta {}",
            "x y",
            "solo",
        ]
        messages = [templates[p].format(i) for i, p in enumerate(picks)]
        by_len = {}
        for m in messages:
            by_len.setdefault(len(SC.scan(m).tokens), []).append(m)
        total = 0
        for group in by_len.values():
            for pattern in analyze(group):
                total += pattern.support
        assert total == len(messages)

    def test_deterministic(self):
        messages = [f"evt {i} blk_{i * 7} u{i % 3}" for i in range(40)]
        a = pattern_texts(messages)
        b = pattern_texts(messages)
        assert a == b


class TestMergeMechanics:
    def test_typed_and_literal_siblings_never_cross_merge(self):
        """The Proxifier mechanism: INTEGER-typed tokens and alnum
        literals at the same position stay on separate edges."""
        messages = ["sent (426) ok", "sent (64K) ok", "sent (311) ok",
                    "sent (12K) ok"]
        patterns = analyze(messages)
        classes = sorted(
            t.var_class.value
            for p in patterns
            for t in p.tokens
            if t.is_variable
        )
        assert classes == ["alphanum", "integer"]

    def test_punctuation_siblings_never_merge(self):
        messages = ["x ( y", "x ) y", "x [ y", "x ] y", "x , y", "x ; y"]
        patterns = analyze(messages)
        assert len(patterns) == 6  # six punctuation variants stay distinct

    def test_merged_variable_edge_reused_across_groups(self):
        # two id groups merging at the same node fold into one V-edge
        messages = [f"evt blk_{i} end" for i in range(3)] + [
            f"evt run_{i} end" for i in range(3)
        ]
        patterns = analyze(messages)
        assert len(patterns) == 1
        assert patterns[0].support == 6

    def test_semantic_key_separates_typed_edges(self):
        # port=5 and size=5: same token type, different k=v semantics
        messages = [f"conn port = {i} ok" for i in range(4)] + [
            f"conn size = {i} ok" for i in range(4)
        ]
        patterns = analyze(messages)
        texts = sorted(p.text for p in patterns)
        assert texts == ["conn port = %port% ok", "conn size = %size% ok"]

    def test_word_similarity_config(self):
        # with similarity 0 every word sibling is group-compatible; with
        # 1.0 only identical child sets group
        messages = [
            "state alpha x1 done",
            "state bravo x2 done",
            "state carol x3 done",
            "state delta x4 done",
            "state echo x5 done",
        ]
        loose = AnalyzerConfig(word_similarity=0.0)
        assert len(pattern_texts(messages, loose)) == 1
        strict = AnalyzerConfig(word_similarity=1.0)
        # each word's child (x1..x5 merge into one alnum var first? no:
        # merging is top-down, children are distinct literals at group
        # time) -> no grouping, events stay split
        assert len(pattern_texts(messages, strict)) == 5

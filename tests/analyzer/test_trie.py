"""Analysis trie mechanics: insertion, counting, subtree union."""

from repro.analyzer.trie import END_KEY, AnalysisTrie, TrieNode, token_key
from repro.scanner import Scanner
from repro.scanner.token_types import Token, TokenType

SC = Scanner()


def insert(trie: AnalysisTrie, message: str) -> None:
    scanned = SC.scan(message)
    trie.insert(scanned, scanned.tokens)


class TestTokenKey:
    def test_literal_keyed_by_text(self):
        assert token_key(Token("foo", TokenType.LITERAL)) == "Lfoo"

    def test_typed_keyed_by_type(self):
        assert token_key(Token("42", TokenType.INTEGER)) == "Tinteger"

    def test_semantic_in_key(self):
        tok = Token("42", TokenType.INTEGER, semantic="port")
        assert token_key(tok) == "Tinteger:port"

    def test_key_type_keyed_by_text(self):
        assert token_key(Token("user", TokenType.KEY)) == "Luser"


class TestInsertion:
    def test_counts_accumulate(self):
        trie = AnalysisTrie()
        insert(trie, "a b")
        insert(trie, "a b")
        insert(trie, "a c")
        assert trie.n_messages == 3
        a = trie.root.children["La"]
        assert a.count == 3
        assert a.children["Lb"].count == 2
        assert a.children["Lc"].count == 1

    def test_end_marker_holds_examples(self):
        trie = AnalysisTrie()
        for i in range(5):
            insert(trie, f"start {i} end")
        node = trie.root.children["Lstart"].children["Tinteger"].children["Lend"]
        end = node.children[END_KEY]
        assert end.count == 5
        assert len(end.examples) == 3  # capped at three unique examples

    def test_typed_values_tracked(self):
        trie = AnalysisTrie()
        insert(trie, "x 1")
        insert(trie, "x 1")
        insert(trie, "x 2")
        node = trie.root.children["Lx"].children["Tinteger"]
        assert node.values == {"1": 2, "2": 1}

    def test_value_overflow(self):
        trie = AnalysisTrie()
        for i in range(20):
            insert(trie, f"x {i}")
        node = trie.root.children["Lx"].children["Tinteger"]
        assert node.overflow
        assert node.values is None

    def test_node_count(self):
        trie = AnalysisTrie()
        insert(trie, "a b")
        # root, La, Lb, END
        assert trie.node_count() == 4


class TestAbsorb:
    def test_union_merges_counts_and_children(self):
        trie = AnalysisTrie()
        insert(trie, "u1 login ok")
        insert(trie, "u2 login failed")
        a = trie.root.children.pop("Lu1")
        b = trie.root.children.pop("Lu2")
        a.absorb(b)
        assert a.count == 2
        login = a.children["Llogin"]
        assert set(login.children) == {"Lok", "Lfailed"}

    def test_absorb_merges_examples_capped(self):
        a = TrieNode(examples=["e1", "e2"])
        b = TrieNode(examples=["e2", "e3", "e4"])
        a.absorb(b)
        assert a.examples == ["e1", "e2", "e3"]

    def test_absorb_propagates_overflow(self):
        a = TrieNode()
        b = TrieNode(overflow=True)
        a.observe("x")
        a.absorb(b)
        assert a.overflow and a.values is None

    def test_absorb_conflicting_semantics_cleared(self):
        a = TrieNode(semantic="port")
        b = TrieNode(semantic="size")
        a.absorb(b)
        assert a.semantic is None

"""Semantic variable naming heuristics."""

from repro.analyzer.naming import assign_names
from repro.analyzer.pattern import PatternToken, VarClass


def named(parts: list) -> list[str]:
    """Build tokens from ('word' or VarClass) parts, return variable names."""
    tokens = [
        PatternToken.variable(p) if isinstance(p, VarClass) else PatternToken.static(p)
        for p in parts
    ]
    assign_names(tokens)
    return [t.name for t in tokens if t.is_variable]


class TestDirectionContext:
    def test_paper_example(self):
        # %action% from %srcip% port %srcport%
        names = named([VarClass.STRING, "from", VarClass.IPV4, "port", VarClass.INTEGER])
        assert names == ["action", "srcip", "srcport"]

    def test_destination_context(self):
        names = named(["forwarded", "to", VarClass.IPV4, "port", VarClass.INTEGER])
        assert names == ["dstip", "dstport"]

    def test_direction_switches_mid_pattern(self):
        names = named(
            ["from", VarClass.IPV4, "to", VarClass.IPV4]
        )
        assert names == ["srcip", "dstip"]

    def test_host_direction(self):
        assert named(["from", VarClass.HOST]) == ["srchost"]


class TestKeywords:
    def test_pid_uid_size(self):
        assert named(["pid", VarClass.INTEGER]) == ["pid"]
        assert named(["uid", VarClass.INTEGER]) == ["uid"]
        assert named(["size", VarClass.INTEGER]) == ["size"]

    def test_user_string(self):
        assert named(["user", VarClass.STRING]) == ["user"]

    def test_plain_integer(self):
        assert named(["count-free-word", VarClass.INTEGER]) == ["integer"]


class TestDefaults:
    def test_action_only_at_message_start(self):
        assert named([VarClass.STRING, "x"]) == ["action"]
        assert named(["x", VarClass.STRING]) == ["string"]

    def test_base_names(self):
        assert named(["at", VarClass.TIME]) == ["msgtime"]
        assert named(["via", VarClass.URL]) == ["url"]
        assert named(["dev", VarClass.MAC]) == ["mac"]
        assert named(["load", VarClass.FLOAT]) == ["float"]

    def test_punctuation_does_not_reset_context(self):
        # "port" then "(" then integer: the bracket carries no meaning
        names = named(["port", "(", VarClass.INTEGER])
        assert names == ["srcport"]


class TestDeduplication:
    def test_numeric_suffixes(self):
        names = named([VarClass.INTEGER, VarClass.INTEGER, VarClass.INTEGER])
        assert names == ["integer", "integer1", "integer2"]

    def test_different_names_not_suffixed(self):
        names = named(["from", VarClass.IPV4, "port", VarClass.INTEGER])
        assert names == ["srcip", "srcport"]


class TestSemantics:
    def test_kv_semantic_wins(self):
        tokens = [
            PatternToken.static("user"),
            PatternToken.static("="),
            PatternToken.variable(VarClass.STRING),
        ]
        assign_names(tokens, [None, None, "User-Name"])
        assert tokens[2].name == "user_name"

    def test_sanitised_to_tag_safe(self):
        tokens = [PatternToken.variable(VarClass.STRING)]
        assign_names(tokens, ["x!!y"])
        assert tokens[0].name == "x__y"

"""Differential equivalence suite for the compiled analyser backend.

The compiled backend's contract is *byte-identical* pattern output to
the reference per-node analysis trie: same pattern list order (the DFS
emission walk over identical dict orders), same texts, supports,
examples, token structures and semantic names, and the same
``last_trie_nodes`` telemetry.  These tests enforce the contract on

* **mined corpora**: seeded generator, production-stream and loghub
  messages partitioned exactly the way ``AnalyzeStage`` partitions them
  (per service, per token count), across every behavioural config axis
  (enrichment, folding, id-merge, thresholds, semi-constant expansion);
* **handcrafted families** aimed at the merge seams: Rule B id groups,
  Rule A similarity groups at the threshold boundary, value-cap
  overflow, fold-support boundaries, and double merges colliding on one
  ``V`` key;
* the **weighted-insert property** (satellite): one insert with ``n=k``
  must equal ``k`` single inserts on both backends — patterns, node
  counts, observed values, captured examples.

Structural properties ride along: scratch-state reset-and-reuse across
partitions (satellite regression), and backend selection via the
factory.
"""

import random

import pytest

from tests.conftest import MessageGenerator
from repro.analyzer import (
    ANALYZER_BACKENDS,
    Analyzer,
    AnalyzerConfig,
    build_analyzer,
)
from repro.analyzer.compiled import CompiledAnalyzer
from repro.loghub.corpus import DATASET_NAMES, load_dataset
from repro.scanner import Scanner
from repro.workflow.stream import ProductionStream, StreamConfig

SC = Scanner()


def fingerprint(pattern):
    """Everything a pattern carries, in comparable form."""
    return (
        pattern.text,
        pattern.service,
        pattern.support,
        tuple(pattern.examples),
        tuple(
            (t.is_variable, t.text, t.var_class, t.name, t.is_space_before)
            for t in pattern.tokens
        ),
    )


def partitions_for(messages, service="svc"):
    """Scan *messages* and partition by token count, the way
    ``AnalyzeStage`` feeds the analyser — one partition per length, in
    length order."""
    by_length = {}
    for message in messages:
        scanned = SC.scan(message, service=service)
        by_length.setdefault(scanned.token_count(), []).append(scanned)
    return [partition for _, partition in sorted(by_length.items())]


#: the behavioural axes of AnalyzerConfig, one variation each, plus the
#: similarity edge cases (exact-match-only grouping and an impossible
#: threshold where only the both-empty rule fires)
CONFIG_VARIATIONS = (
    {},
    {"enrich": False},
    {"fold_constants": False},
    {"fold_min_support": 1},
    {"id_merge": False},
    {"merge_threshold": 1},
    {"semi_constant_max_values": 3},
    {"word_similarity": 1.0},
    {"word_similarity": 1.5},
)


def assert_backends_agree(partitions, **config_kwargs):
    """One analyser instance per backend mines every partition in
    sequence (exercising scratch reuse); outputs must be identical."""
    ref = Analyzer(AnalyzerConfig(**config_kwargs))
    comp = CompiledAnalyzer(
        AnalyzerConfig(backend="compiled", **config_kwargs)
    )
    mined_something = False
    for partition in partitions:
        a = ref.analyze(partition)
        b = comp.analyze(partition)
        assert comp.last_trie_nodes == ref.last_trie_nodes
        assert [fingerprint(p) for p in b] == [fingerprint(p) for p in a]
        mined_something = mined_something or bool(a)
    assert mined_something  # the corpus must actually produce patterns


class TestMinedCorpora:
    def test_generator_corpus(self):
        records = MessageGenerator(seed=7).records(400, n_services=4)
        by_service = {}
        for record in records:
            by_service.setdefault(record.service, []).append(record.message)
        for kwargs in CONFIG_VARIATIONS:
            for messages in by_service.values():
                assert_backends_agree(partitions_for(messages), **kwargs)

    def test_production_stream(self):
        stream = ProductionStream(
            StreamConfig(n_services=6, seed=41, duplicate_fraction=0.3)
        )
        records = list(stream.records(500))
        by_service = {}
        for record in records:
            by_service.setdefault(record.service, []).append(record.message)
        for kwargs in CONFIG_VARIATIONS:
            for messages in by_service.values():
                assert_backends_agree(partitions_for(messages), **kwargs)

    def test_loghub_datasets(self):
        for name in DATASET_NAMES:
            contents = load_dataset(name, 60, seed=3).contents()
            assert_backends_agree(partitions_for(contents, service=name))

    def test_arbitrary_messages(self):
        """Pure token soup (every scan-time token shape) — mining rarely
        generalises here, but the tries must still be identical."""
        gen = MessageGenerator(seed=23)
        messages = [gen.message() for _ in range(300)]
        for kwargs in CONFIG_VARIATIONS:
            assert_backends_agree(partitions_for(messages), **kwargs)


class TestHandcraftedMergeFamilies:
    """The merge seams, pinned one by one."""

    def check(self, messages, **kwargs):
        assert_backends_agree(partitions_for(messages), **kwargs)

    def test_rule_b_id_merge(self):
        self.check(
            [f"deleting block blk_{n} now" for n in (17, 9423, 100, 85)]
        )

    def test_rule_b_hex_ids(self):
        self.check(
            [f"request {h} finished ok" for h in
             ("fcbcdfce", "00ab1234", "deadbeef", "0badcafe")]
        )

    def test_rule_a_at_threshold_boundary(self):
        # exactly merge_threshold distinct words must NOT merge;
        # threshold+1 must — run both sides of the boundary
        words = ["alpha", "bravo", "charlie", "delta", "echo"]
        self.check([f"state changed to {w} today" for w in words[:4]])
        self.check([f"state changed to {w} today" for w in words])

    def test_value_cap_overflow(self):
        # more than VALUE_CAP (8) distinct values through one typed edge
        self.check([f"served request in {i} ms" for i in range(12)])

    def test_fold_support_boundary(self):
        # a single-valued integer edge right at/below fold_min_support
        for copies in (2, 3, 4):
            self.check(["worker heartbeat 7 ok"] * copies)

    def test_double_merge_collides_on_one_v_key(self):
        # Rule B merges ids into Valnum; a later Rule A group of
        # id-looking words at the same position must absorb into the
        # *existing* V node, not create a second one
        messages = [f"job j{n} done fast" for n in range(3)] + [
            f"job task{n}x done fast" for n in range(5)
        ]
        self.check(messages, merge_threshold=2)

    def test_semi_constant_expansion(self):
        messages = (
            ["link state up port 7"] * 4
            + ["link state down port 9"] * 3
            + ["link state up port 12"] * 2
        )
        self.check(messages, semi_constant_max_values=2)

    def test_enriched_shapes(self):
        # key=value triples, emails and hostnames retype at analysis
        # time; both backends must see the same enriched token stream
        self.check(
            [
                f"login user=u{n} from node{n}.cluster.example.com "
                f"contact ops{n}@example.com" for n in range(6)
            ]
        )

    def test_deep_merge_after_parent_union(self):
        # merging at the first position unifies subtrees; the *second*
        # position then holds siblings contributed by different parents
        # and must merge (or not) identically on the unified trie
        messages = [
            f"host{a} reported {w} status" for a in range(6)
            for w in ("good", "bad")
        ]
        self.check(messages, merge_threshold=1)


class TestWeightedInsertEquivalence:
    """Satellite: one insert with n=k ≡ k single inserts, per backend."""

    def corpora(self):
        gen_records = MessageGenerator(seed=31).records(300, n_services=1)
        yield [r.message for r in gen_records]
        stream = ProductionStream(
            StreamConfig(n_services=1, seed=13, duplicate_fraction=0.6)
        )
        yield [r.message for r in stream.records(300)]
        yield load_dataset(DATASET_NAMES[0], 80, seed=5).contents()

    def test_weighted_equals_repeated(self):
        for messages in self.corpora():
            # duplicate-heavy stream: replicate each message a few times
            rng = random.Random(77)
            repeated = []
            for message in messages:
                repeated.extend([message] * rng.randint(1, 4))
            for backend in ANALYZER_BACKENDS:
                for partition in partitions_for(repeated):
                    dedup: dict[str, int] = {}
                    uniques = []
                    for msg in partition:
                        if msg.original not in dedup:
                            dedup[msg.original] = 0
                            uniques.append(msg)
                        dedup[msg.original] += 1
                    counts = [dedup[m.original] for m in uniques]

                    analyzer = build_analyzer(AnalyzerConfig(backend=backend))
                    plain = analyzer.analyze(partition)
                    plain_nodes = analyzer.last_trie_nodes
                    weighted = analyzer.analyze(uniques, counts=counts)
                    assert analyzer.last_trie_nodes == plain_nodes
                    assert [fingerprint(p) for p in weighted] == [
                        fingerprint(p) for p in plain
                    ]


class TestScratchReuse:
    """Satellite regression: resetting and reusing one analyser across
    partitions changes nothing versus a fresh instance per partition."""

    @pytest.mark.parametrize("backend", ANALYZER_BACKENDS)
    def test_reused_instance_matches_fresh_instances(self, backend):
        records = MessageGenerator(seed=47).records(250, n_services=1)
        partitions = partitions_for([r.message for r in records])
        assert len(partitions) > 1  # reuse must actually be exercised
        reused = build_analyzer(AnalyzerConfig(backend=backend))
        for partition in partitions:
            fresh = build_analyzer(AnalyzerConfig(backend=backend))
            a = fresh.analyze(partition)
            b = reused.analyze(partition)
            assert reused.last_trie_nodes == fresh.last_trie_nodes
            assert [fingerprint(p) for p in b] == [fingerprint(p) for p in a]

    def test_trie_reset_drops_state(self):
        from repro.analyzer.trie import AnalysisTrie

        trie = AnalysisTrie()
        scanned = SC.scan("session opened for root")
        trie.insert(scanned, scanned.tokens)
        assert trie.node_count() > 1 and trie.n_messages == 1
        trie.reset()
        assert trie.node_count() == 1
        assert trie.n_messages == 0
        assert not trie.root.children


class TestBackendSelection:
    def test_factory_builds_each_backend(self):
        assert type(build_analyzer()) is Analyzer
        assert isinstance(
            build_analyzer(AnalyzerConfig(backend="compiled")),
            CompiledAnalyzer,
        )
        assert build_analyzer().backend_name == "reference"
        assert (
            build_analyzer(AnalyzerConfig(backend="compiled")).backend_name
            == "compiled"
        )
        assert set(ANALYZER_BACKENDS) == {"reference", "compiled"}

    def test_factory_passes_config(self):
        config = AnalyzerConfig(backend="compiled", merge_threshold=2)
        assert build_analyzer(config).config is config

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            AnalyzerConfig(backend="hyperspeed")

    def test_empty_partition(self):
        for backend in ANALYZER_BACKENDS:
            assert build_analyzer(AnalyzerConfig(backend=backend)).analyze([]) == []

"""Pattern model: rendering, ids, complexity, round trips, unknown tags."""

import pytest
from hypothesis import given, strategies as st

from repro._util.hashing import pattern_id
from repro.analyzer.pattern import (
    Pattern,
    PatternToken,
    UnknownTagError,
    VarClass,
    var_class_for,
)
from repro.scanner.token_types import TokenType


def make_pattern(service="sshd") -> Pattern:
    return Pattern(
        tokens=[
            PatternToken.variable(VarClass.STRING, "action", is_space_before=False),
            PatternToken.static("from"),
            PatternToken.variable(VarClass.IPV4, "srcip"),
            PatternToken.static("port"),
            PatternToken.variable(VarClass.INTEGER, "srcport"),
        ],
        service=service,
    )


class TestRendering:
    def test_paper_example(self):
        assert make_pattern().text == "%action% from %srcip% port %srcport%"

    def test_exact_spacing(self):
        pattern = Pattern(
            tokens=[
                PatternToken.static("rc", is_space_before=False),
                PatternToken.static("=", is_space_before=False),
                PatternToken.variable(VarClass.INTEGER, is_space_before=False),
            ]
        )
        assert pattern.render(exact_spacing=True) == "rc=%integer%"

    def test_legacy_spacing_inserts_everywhere(self):
        """Limitation 3 of the seminal tool: a whitespace between every
        pair of tokens regardless of the original message."""
        pattern = Pattern(
            tokens=[
                PatternToken.static("rc", is_space_before=False),
                PatternToken.static("=", is_space_before=False),
                PatternToken.variable(VarClass.INTEGER, is_space_before=False),
            ]
        )
        assert pattern.render(exact_spacing=False) == "rc = %integer%"


class TestIdentity:
    def test_id_is_sha1_of_text_and_service(self):
        pattern = make_pattern()
        assert pattern.id == pattern_id(pattern.text, "sshd")

    def test_id_changes_with_service(self):
        assert make_pattern("a").id != make_pattern("b").id

    def test_id_reproducible_across_instances(self):
        assert make_pattern().id == make_pattern().id


class TestComplexity:
    def test_fraction_of_variables(self):
        assert make_pattern().complexity == pytest.approx(3 / 5)

    def test_all_static_is_zero(self):
        pattern = Pattern(tokens=[PatternToken.static("fixed")])
        assert pattern.complexity == 0.0

    def test_all_variables_is_one(self):
        pattern = Pattern(
            tokens=[PatternToken.variable(VarClass.STRING) for _ in range(3)]
        )
        assert pattern.complexity == 1.0

    def test_empty_pattern_is_one(self):
        assert Pattern(tokens=[]).complexity == 1.0


class TestExamples:
    def test_limit_three_unique(self):
        pattern = make_pattern()
        assert pattern.add_example("a")
        assert not pattern.add_example("a")  # duplicate
        assert pattern.add_example("b")
        assert pattern.add_example("c")
        assert not pattern.add_example("d")  # over the cap
        assert pattern.examples == ["a", "b", "c"]


class TestTextRoundTrip:
    def test_from_text_parses_semantic_tags(self):
        pattern = Pattern.from_text("%action% from %srcip% port %srcport%", "sshd")
        assert pattern.text == "%action% from %srcip% port %srcport%"
        assert pattern.tokens[2].var_class is VarClass.IPV4
        assert pattern.tokens[4].var_class is VarClass.INTEGER

    def test_from_text_numbered_suffixes(self):
        pattern = Pattern.from_text("%integer% and %integer1%")
        assert pattern.tokens[0].var_class is VarClass.INTEGER
        assert pattern.tokens[2].var_class is VarClass.INTEGER

    def test_suffix_on_digit_ending_tag(self):
        # regression: a second IPv4 variable renders as %ipv41%; naive
        # digit stripping would resolve it to the unknown tag "ipv"
        pattern = Pattern.from_text("from %ipv4% to %ipv41%")
        assert pattern.tokens[1].var_class is VarClass.IPV4
        assert pattern.tokens[3].var_class is VarClass.IPV4

    def test_unknown_tag_raises(self):
        """The documented %-delimiter hazard (paper §IV)."""
        with pytest.raises(UnknownTagError):
            Pattern.from_text("usage %disk% exceeded")

    def test_embedded_tag_raises(self):
        with pytest.raises(UnknownTagError):
            Pattern.from_text("load=%cpu%now")

    def test_plain_percent_sign_ok(self):
        pattern = Pattern.from_text("usage 99% of quota")
        assert pattern.tokens[1].text == "99%"

    def test_dict_round_trip(self):
        pattern = make_pattern()
        pattern.support = 5
        pattern.add_example("Accepted from 1.2.3.4 port 22")
        clone = Pattern.from_dict(pattern.to_dict())
        assert clone.text == pattern.text
        assert clone.id == pattern.id
        assert clone.support == 5
        assert clone.examples == pattern.examples

    @given(
        st.lists(
            st.sampled_from(
                ["alpha", "beta", "%integer%", "%srcip%", "%string%", "%msgtime%"]
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_property_round_trip(self, words):
        text = " ".join(words)
        assert Pattern.from_text(text).text == text


class TestVarClassFor:
    def test_maps_typed_tokens(self):
        assert var_class_for(TokenType.INTEGER) is VarClass.INTEGER
        assert var_class_for(TokenType.TIME) is VarClass.TIME
        assert var_class_for(TokenType.REST) is VarClass.REST

    def test_rejects_literal(self):
        with pytest.raises(ValueError):
            var_class_for(TokenType.LITERAL)

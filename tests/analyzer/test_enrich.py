"""Analysis-time enrichment: key/value pairs, e-mails, host names."""

import pytest

from repro.analyzer.enrich import enrich_tokens, is_email, is_hostname
from repro.scanner import Scanner
from repro.scanner.token_types import TokenType

SC = Scanner()


def enriched(message: str):
    return enrich_tokens(SC.scan(message).tokens)


class TestKeyValue:
    def test_kv_triple_retyped(self):
        tokens = enriched("rc = 0 done")
        assert tokens[0].type is TokenType.KEY
        assert tokens[2].type is TokenType.INTEGER
        assert tokens[2].semantic == "rc"

    def test_kv_without_spaces(self):
        tokens = enriched("user=root")
        assert tokens[0].type is TokenType.KEY
        assert tokens[2].type is TokenType.VALUE
        assert tokens[2].semantic == "user"

    def test_literal_value_becomes_variable(self):
        tokens = enriched("state=active")
        assert tokens[2].type is TokenType.VALUE
        assert tokens[2].type.is_variable()

    def test_key_must_start_alpha(self):
        tokens = enriched("1=2")
        assert tokens[0].type is TokenType.INTEGER

    def test_double_equals_not_kv(self):
        tokens = enriched("a = = b")
        assert tokens[0].type is TokenType.LITERAL

    def test_original_tokens_untouched(self):
        scanned = SC.scan("user=root")
        enrich_tokens(scanned.tokens)
        assert scanned.tokens[0].type is TokenType.LITERAL


class TestEmail:
    @pytest.mark.parametrize(
        "addr", ["ops@example.com", "a.b-c@dept.example.fr", "x@y.io"]
    )
    def test_positive(self, addr):
        assert is_email(addr)
        assert enriched(f"mail from {addr}")[2].type is TokenType.EMAIL

    @pytest.mark.parametrize(
        "text", ["not-an-email", "@example.com", "a@b", "a@@b.com", "a@b..com"]
    )
    def test_negative(self, text):
        assert not is_email(text)


class TestHostname:
    @pytest.mark.parametrize(
        "host",
        ["node17.cluster.example.com", "proxy.cse.cuhk.edu.hk", "db01.example.com",
         "web.example.fr"],
    )
    def test_positive(self, host):
        assert is_hostname(host)
        assert enriched(f"connect {host} ok")[1].type is TokenType.HOST

    @pytest.mark.parametrize(
        "text",
        [
            "archive.tar",  # two labels, unknown TLD
            "1.5",  # decimal
            "dfs.DataNode$PacketResponder",  # java component ($ illegal)
            "a..b.com",
            ".leading.com",
            "trailing.com.",
            "192.168.1.5",  # numeric last label
            "noDotsHere",
        ],
    )
    def test_negative(self, text):
        assert not is_hostname(text)


class TestLengthPreserved:
    def test_enrichment_never_changes_token_count(self):
        for message in (
            "user=root uid = 0 from ops@example.com at node1.example.com",
            "a b c",
            "",
        ):
            tokens = SC.scan(message).tokens
            assert len(enrich_tokens(tokens)) == len(tokens)

"""Command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def db_path(tmp_path):
    return str(tmp_path / "cli.db")


def write_log(tmp_path, lines, name="input.log"):
    path = tmp_path / name
    path.write_text("\n".join(lines) + "\n")
    return str(path)


SSH_LINES = [
    f"Accepted password for user{i} from 10.0.0.{i} port {41000 + i} ssh2"
    for i in range(8)
]


class TestMine:
    def test_mine_prints_patterns(self, tmp_path, db_path, capsys):
        log = write_log(tmp_path, SSH_LINES)
        assert main(["--db", db_path, "mine", log, "--service", "sshd"]) == 0
        out = capsys.readouterr().out
        assert "%srcip%" in out
        assert "%srcport%" in out

    def test_mine_persists(self, tmp_path, db_path, capsys):
        log = write_log(tmp_path, SSH_LINES)
        main(["--db", db_path, "mine", log, "--service", "sshd"])
        capsys.readouterr()
        main(["--db", db_path, "stats"])
        out = capsys.readouterr().out
        assert "patterns: 1" in out


class TestParse:
    def test_parse_reports_matches(self, tmp_path, db_path, capsys):
        log = write_log(tmp_path, SSH_LINES)
        main(["--db", db_path, "mine", log, "--service", "sshd"])
        capsys.readouterr()
        new = write_log(
            tmp_path,
            ["Accepted password for eve99 from 9.9.9.9 port 1234 ssh2",
             "something unknown entirely"],
            name="new.log",
        )
        main(["--db", db_path, "parse", new, "--service", "sshd"])
        out_lines = capsys.readouterr().out.strip().splitlines()
        first = json.loads(out_lines[0])
        assert first["matched"] is True
        assert first["fields"]["srcip"] == "9.9.9.9"
        assert json.loads(out_lines[1])["matched"] is False


class TestServe:
    def test_serve_ingests_json_lines(self, tmp_path, db_path, capsys):
        lines = [
            json.dumps({"service": "sshd", "message": m}) for m in SSH_LINES
        ] + ["malformed junk"]
        stream = write_log(tmp_path, lines, name="stream.jsonl")
        assert main(
            ["--db", db_path, "serve", stream, "--batch-size", "4"]
        ) == 0
        err = capsys.readouterr().err
        assert "ingested 8 records (1 malformed) in 2 batches" in err

    def test_serve_with_metrics_port(self, tmp_path, db_path, capsys,
                                     monkeypatch):
        """`serve --metrics-port` announces the endpoint and serves the
        miner's registry while the stream runs."""
        import urllib.request

        from repro.obs.server import MetricsServer

        scrapes = []
        original_close = MetricsServer.close

        def scraping_close(self):
            if self._httpd is not None:
                with urllib.request.urlopen(self.url, timeout=5) as response:
                    scrapes.append(response.read().decode("utf-8"))
            original_close(self)

        monkeypatch.setattr(MetricsServer, "close", scraping_close)
        lines = [json.dumps({"service": "sshd", "message": m}) for m in SSH_LINES]
        stream = write_log(tmp_path, lines, name="stream.jsonl")
        assert main(
            ["--db", db_path, "serve", stream, "--batch-size", "4",
             "--metrics-port", "0"]
        ) == 0
        err = capsys.readouterr().err
        assert "metrics: http://127.0.0.1:" in err
        (body,) = scrapes
        assert "rtg_batches_total 2" in body
        assert "rtg_stage_latency_seconds_bucket" in body


class TestMetricsCommand:
    def _mine(self, tmp_path, db_path):
        log = write_log(tmp_path, SSH_LINES)
        main(["--db", db_path, "mine", log, "--service", "sshd"])

    def test_prometheus_snapshot(self, tmp_path, db_path, capsys):
        self._mine(tmp_path, db_path)
        capsys.readouterr()
        assert main(["--db", db_path, "metrics"]) == 0
        out = capsys.readouterr().out
        assert 'rtg_patterndb_rows{table="patterns"} 1' in out
        assert 'rtg_patterndb_patterns{service="sshd"} 1' in out

    def test_json_snapshot(self, tmp_path, db_path, capsys):
        self._mine(tmp_path, db_path)
        capsys.readouterr()
        assert main(["--db", db_path, "metrics", "--format", "json"]) == 0
        dump = json.loads(capsys.readouterr().out)
        assert dump["rtg_patterndb_rows"]["kind"] == "gauge"


class TestExport:
    def _mine(self, tmp_path, db_path):
        log = write_log(tmp_path, SSH_LINES)
        main(["--db", db_path, "mine", log, "--service", "sshd"])

    def test_export_syslog_ng(self, tmp_path, db_path, capsys):
        self._mine(tmp_path, db_path)
        capsys.readouterr()
        main(["--db", db_path, "export", "--format", "syslog-ng"])
        out = capsys.readouterr().out
        assert "<patterndb" in out and "@IPv4:srcip@" in out

    def test_export_grok_with_filters(self, tmp_path, db_path, capsys):
        self._mine(tmp_path, db_path)
        capsys.readouterr()
        main(["--db", db_path, "export", "--format", "grok", "--min-count", "1"])
        assert "grok {" in capsys.readouterr().out

    def test_export_yaml(self, tmp_path, db_path, capsys):
        self._mine(tmp_path, db_path)
        capsys.readouterr()
        main(["--db", db_path, "export", "--format", "yaml"])
        assert "patterndb:" in capsys.readouterr().out


class TestFlags:
    def test_single_digit_time_flag(self, tmp_path, db_path, capsys):
        lines = [f"evt at 20171224-0:7:{i}:444 code {i}" for i in range(10, 16)]
        log = write_log(tmp_path, lines)
        main(["--db", db_path, "--single-digit-time", "mine", log, "--service", "app"])
        out = capsys.readouterr().out
        assert "%msgtime%" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestMaintenance:
    def test_prune(self, tmp_path, db_path, capsys):
        log = write_log(tmp_path, SSH_LINES + ["one rare oddball message here"])
        main(["--db", db_path, "mine", log, "--service", "sshd"])
        capsys.readouterr()
        main(["--db", db_path, "prune", "--threshold", "3"])
        err = capsys.readouterr().err
        assert "pruned 1 patterns" in err

    def test_merge(self, tmp_path, capsys):
        db_a = str(tmp_path / "a.db")
        db_b = str(tmp_path / "b.db")
        log1 = write_log(tmp_path, SSH_LINES, name="a.log")
        log2 = write_log(
            tmp_path,
            [f"job j{i} finished in {i} ms" for i in range(6)],
            name="b.log",
        )
        main(["--db", db_a, "mine", log1, "--service", "sshd"])
        main(["--db", db_b, "mine", log2, "--service", "batch"])
        capsys.readouterr()
        main(["--db", db_a, "merge", db_b])
        capsys.readouterr()
        main(["--db", db_a, "stats"])
        out = capsys.readouterr().out
        assert "patterns: 2" in out
        assert "services: 2" in out


class TestEvaluateAndArtifact:
    def test_evaluate_prints_scores(self, db_path, capsys):
        main(["--db", db_path, "evaluate", "Apache", "--mode", "both"])
        out = capsys.readouterr().out
        assert "Apache raw:" in out and "Apache preprocessed:" in out

    def test_artifact_export(self, tmp_path, db_path, capsys):
        out_dir = str(tmp_path / "bundle")
        main(["--db", db_path, "artifact", out_dir, "--datasets", "Apache"])
        import os
        assert os.path.exists(os.path.join(out_dir, "manifest.json"))
        assert os.path.exists(os.path.join(out_dir, "Apache_mapping.csv"))

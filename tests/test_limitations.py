"""Executable documentation of the paper's §IV "Limitations".

Each limitation the paper reports is reproduced here on purpose: these
tests pin the *published* behaviour (and, where §VI lists a fix as
future work, show the flag that repairs it).
"""

from repro.analyzer import Analyzer
from repro.analyzer.pattern import Pattern, UnknownTagError
from repro.core.config import RTGConfig
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.core.records import LogRecord
from repro.scanner import Scanner, ScannerConfig
from repro.scanner.token_types import TokenType

import pytest


class TestLeadingZeroTimes:
    """"the DateTime finite state machine of Sequence cannot correctly
    detect time stamps where the leading zero on a time part is not
    present" — with the §VI fix behind a flag."""

    RAW = "20171224-0:7:20:444|Step_LSC|30002312|onStandStepChanged 3579"

    def test_default_fails_to_parse_time(self):
        tokens = Scanner().scan(self.RAW).tokens
        assert tokens[0].type is not TokenType.TIME

    def test_future_work_flag_fixes_it(self):
        scanner = Scanner(ScannerConfig(allow_single_digit_time=True))
        assert scanner.scan(self.RAW).tokens[0].type is TokenType.TIME

    def test_split_produces_two_patterns_for_one_event(self):
        """The observable consequence: padded and unpadded lines of the
        same event land in different patterns."""
        rtg = SequenceRTG(db=PatternDB())
        messages = [
            f"sync done at 20171224-{h:02d}:15:29:606 count {i}"
            for i, h in enumerate((10, 11, 12))
        ] + [
            f"sync done at 20171224-0:7:{s}:444 count {i}"
            for i, s in enumerate((20, 21, 22))
        ]
        result = rtg.analyze_by_service([LogRecord("app", m) for m in messages])
        assert result.n_new_patterns == 2


class TestAlnumIntegerFlip:
    """"alphanumeric fields where it is common for the data to be fully
    numeric in some cases may result in the production of two patterns
    for the same event" (the Proxifier failure)."""

    def test_two_patterns_for_one_event(self):
        rtg = SequenceRTG(db=PatternDB())
        messages = [f"sent ({v}) total" for v in ("426", "64K", "311", "12K")]
        result = rtg.analyze_by_service([LogRecord("proxifier", m) for m in messages])
        assert result.n_new_patterns == 2


class TestPercentDelimiter:
    """"log messages that contain fields delimited by the % sign ...
    will cause an unknown tag error at parsing time"."""

    def test_percent_field_survives_into_pattern(self):
        analyzer = Analyzer()
        scanner = Scanner()
        patterns = analyzer.analyze(
            [scanner.scan(f"usage %disk% at {i}") for i in range(4)]
        )
        assert any("%disk%" in p.text for p in patterns)

    def test_reloading_such_a_pattern_errors(self):
        with pytest.raises(UnknownTagError):
            Pattern.from_text("usage %disk% at %integer%")


class TestFewExamples:
    """"Sequence-RTG unfortunately struggles to find patterns if only one
    or two examples of the message is present ... Any pattern whose count
    of matches is less than the threshold is considered useless and thus
    not saved."""

    def test_single_example_is_word_for_word(self):
        rtg = SequenceRTG(db=PatternDB())
        result = rtg.analyze_by_service(
            [LogRecord("svc", "completely novel failure involving widget")]
        )
        (pattern,) = result.new_patterns
        assert pattern.complexity == 0.0  # no variables discovered

    def test_save_threshold_drops_rare_patterns(self):
        rtg = SequenceRTG(db=PatternDB(), config=RTGConfig(save_threshold=3))
        result = rtg.analyze_by_service(
            [LogRecord("svc", "completely novel failure involving widget")]
        )
        assert result.n_new_patterns == 0
        assert result.n_below_threshold == 1


class TestMultiLine:
    """"we decided to process them only to the first line break, create a
    pattern only for that first line, and add a marker"."""

    def test_pattern_from_first_line_only(self):
        rtg = SequenceRTG(db=PatternDB())
        stack_trace = "java.io.IOException: oops\n  at Foo.bar(Foo.java:1)\n  at Baz"
        result = rtg.analyze_by_service([LogRecord("app", stack_trace)] * 3)
        (pattern,) = result.new_patterns
        assert "Foo.bar" not in pattern.text
        assert pattern.tokens[-1].var_class is not None  # the ignore marker

    def test_marker_lets_parser_ignore_the_rest(self):
        rtg = SequenceRTG(db=PatternDB())
        rtg.analyze_by_service(
            [LogRecord("app", "fatal error occurred\ndetails follow")] * 3
        )
        parser = rtg.parser_for("app")
        other = rtg.scanner.scan(
            "fatal error occurred\ncompletely different second line", service="app"
        )
        assert parser.match(other) is not None


class TestPathStrings:
    """"some path strings are processed correctly but some may remain as
    static text and generate multiple patterns for a single event" — the
    §VI path FSM is the future-work fix."""

    MESSAGES = [
        "open /var/log/app/one.log failed",
        "open /srv/data/two.db failed",
        "open /etc/thing/three.conf failed",
    ]

    def _count_patterns(self, scanner_config):
        config = RTGConfig(scanner=scanner_config)
        rtg = SequenceRTG(db=PatternDB(), config=config)
        result = rtg.analyze_by_service(
            [LogRecord("svc", m) for m in self.MESSAGES]
        )
        return result.n_new_patterns

    def test_default_splits_event_per_path(self):
        assert self._count_patterns(ScannerConfig()) == 3

    def test_path_fsm_unifies_the_event(self):
        assert self._count_patterns(ScannerConfig(enable_path_fsm=True)) == 1

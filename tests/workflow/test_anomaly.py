"""Volume/novelty anomaly detection (§VI future work) with fault injection."""

import random

import pytest

from repro.workflow.anomaly import (
    AnomalyConfig,
    NoveltyAnomalyDetector,
    VolumeAnomalyDetector,
)


def feed_steady(detector, service="sshd", n=20, base=100.0, jitter=5.0, seed=1):
    rng = random.Random(seed)
    alerts = []
    for bucket in range(n):
        a = detector.observe(service, bucket, base + rng.uniform(-jitter, jitter))
        if a:
            alerts.append(a)
    return alerts


class TestVolumeDetector:
    def test_steady_traffic_never_alerts(self):
        detector = VolumeAnomalyDetector()
        assert feed_steady(detector) == []

    def test_spike_detected(self):
        detector = VolumeAnomalyDetector()
        feed_steady(detector)
        anomaly = detector.observe("sshd", 99, 100.0 * 8)
        assert anomaly is not None
        assert anomaly.kind == "spike"
        assert anomaly.zscore > 3

    def test_drop_detected(self):
        detector = VolumeAnomalyDetector()
        feed_steady(detector)
        anomaly = detector.observe("sshd", 99, 1.0)
        assert anomaly is not None and anomaly.kind == "drop"

    def test_no_alerts_before_min_history(self):
        detector = VolumeAnomalyDetector(AnomalyConfig(min_history=10))
        for bucket in range(9):
            assert detector.observe("svc", bucket, 100.0 if bucket < 8 else 9999.0) is None or bucket >= 9

    def test_routine_growth_absorbed(self):
        """Slow load growth is 'routine extra load', not an anomaly."""
        detector = VolumeAnomalyDetector()
        alerts = []
        level = 100.0
        for bucket in range(40):
            level *= 1.02  # +2% per bucket
            a = detector.observe("web", bucket, level)
            if a:
                alerts.append(a)
        assert alerts == []

    def test_sustained_incident_keeps_alerting(self):
        detector = VolumeAnomalyDetector()
        feed_steady(detector)
        first = detector.observe("sshd", 50, 900.0)
        second = detector.observe("sshd", 51, 900.0)
        assert first is not None and second is not None

    def test_services_independent(self):
        detector = VolumeAnomalyDetector()
        feed_steady(detector, service="a")
        assert detector.observe("b", 0, 100000.0) is None  # no history for b

    def test_observe_bucket_collects(self):
        detector = VolumeAnomalyDetector()
        feed_steady(detector, service="a")
        feed_steady(detector, service="b", base=50.0)
        alerts = detector.observe_bucket(99, {"a": 100.0, "b": 5000.0})
        assert [x.service for x in alerts] == ["b"]

    @pytest.mark.parametrize(
        "kwargs", [{"window": 1}, {"ewma_alpha": 0.0}, {"min_history": 1}]
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            AnomalyConfig(**kwargs)


class TestNoveltyDetector:
    def test_new_pattern_burst_detected(self):
        detector = NoveltyAnomalyDetector()
        rng = random.Random(0)
        pool = [f"p{i}" for i in range(40)]
        for bucket in range(15):
            # steady trickle: a couple of fresh patterns per bucket
            ids = rng.sample(pool, 10) + [f"new-{bucket}-{j}" for j in range(2)]
            assert detector.observe_bucket(bucket, ids) is None
        burst = [f"burst-{j}" for j in range(60)]
        anomaly = detector.observe_bucket(99, burst)
        assert anomaly is not None
        assert anomaly.kind == "novelty"

    def test_repeats_are_not_novel(self):
        detector = NoveltyAnomalyDetector()
        for bucket in range(12):
            detector.observe_bucket(bucket, ["a", "b", "c"])
        # the same ids again: zero fresh patterns, consistent with history
        assert detector.observe_bucket(99, ["a", "b", "c"] * 10) is None

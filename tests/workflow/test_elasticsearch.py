"""Elasticsearch simulacrum."""

from repro.workflow.elasticsearch import SimulatedElasticsearch


class TestIndexing:
    def test_index_and_count(self):
        es = SimulatedElasticsearch()
        es.index("logs-001", {"service": "sshd", "matched": True})
        es.index("logs-001", {"service": "httpd", "matched": False})
        es.index("logs-002", {"service": "sshd", "matched": True})
        assert es.count("logs-001") == 2
        assert es.count("logs-002") == 1
        assert es.count("missing") == 0
        assert es.total_documents() == 3
        assert es.indices() == ["logs-001", "logs-002"]

    def test_documents_copied(self):
        es = SimulatedElasticsearch()
        doc = {"a": 1}
        es.index("i", doc)
        doc["a"] = 2
        assert es.search("i")[0]["a"] == 1


class TestSearch:
    def test_term_filter(self):
        es = SimulatedElasticsearch()
        for i in range(5):
            es.index("i", {"svc": "a" if i % 2 else "b", "n": i})
        hits = es.search("i", term={"svc": "a"}, size=10)
        assert len(hits) == 2

    def test_size_limit(self):
        es = SimulatedElasticsearch()
        for i in range(20):
            es.index("i", {"n": i})
        assert len(es.search("i", size=7)) == 7

    def test_aggregate_terms(self):
        es = SimulatedElasticsearch()
        for svc in ("a", "a", "b"):
            es.index("i", {"svc": svc})
        assert es.aggregate_terms("i", "svc") == {"a": 2, "b": 1}

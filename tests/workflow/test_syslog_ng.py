"""syslog-ng simulacrum: routing and test-case-validated promotion."""

from repro.analyzer.pattern import Pattern
from repro.core.records import LogRecord
from repro.workflow.syslog_ng import SyslogNG


def auth_pattern() -> Pattern:
    pattern = Pattern.from_text(
        "Accepted password for %alphanum% from %srcip% port %srcport% ssh2", "sshd"
    )
    pattern.add_example("Accepted password for u1 from 1.2.3.4 port 22 ssh2")
    return pattern


class TestRouting:
    def test_unmatched_before_promotion(self):
        ng = SyslogNG()
        result = ng.route(LogRecord("sshd", "Accepted password for u1 from 1.2.3.4 port 22 ssh2"))
        assert not result.matched
        assert ng.n_unmatched == 1

    def test_matched_after_promotion(self):
        ng = SyslogNG()
        report = ng.promote([auth_pattern()])
        assert report.promoted == 1
        result = ng.route(
            LogRecord("sshd", "Accepted password for u9 from 9.9.9.9 port 2222 ssh2")
        )
        assert result.matched
        assert result.pattern_id == auth_pattern().id
        assert result.fields["srcip"] == "9.9.9.9"

    def test_service_scoping(self):
        ng = SyslogNG()
        ng.promote([auth_pattern()])
        result = ng.route(
            LogRecord("httpd", "Accepted password for u9 from 9.9.9.9 port 2222 ssh2")
        )
        assert not result.matched


class TestPromotion:
    def test_idempotent(self):
        ng = SyslogNG()
        ng.promote([auth_pattern()])
        report = ng.promote([auth_pattern()])
        assert report.promoted == 0
        assert ng.n_patterns == 1

    def test_rejects_pattern_failing_own_test_case(self):
        bad = Pattern.from_text("totally %integer% different", "sshd")
        bad.add_example("this example does not match at all")
        report = SyslogNG().promote([bad])
        assert report.rejected == 1
        assert report.promoted == 0

    def test_conflict_when_example_matches_existing(self):
        """§IV: test cases 'would match more than one pattern. In these
        instances, the most correct pattern would be promoted and the
        other discarded.'"""
        ng = SyslogNG()
        ng.promote([auth_pattern()])
        duplicate = Pattern.from_text(
            "Accepted password for %string% from %srcip% port %srcport% %string1%",
            "sshd",
        )
        duplicate.add_example("Accepted password for u2 from 2.2.2.2 port 22 ssh2")
        report = ng.promote([duplicate])
        assert report.conflicts == 1
        assert ng.n_patterns == 1

    def test_pattern_without_examples_promotes(self):
        pattern = Pattern.from_text("bare %integer% pattern", "svc")
        assert SyslogNG().promote([pattern]).promoted == 1

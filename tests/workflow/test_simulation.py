"""Production simulation: the Fig. 7 dynamics at test scale."""

import pytest

from repro.workflow import ProductionSimulation, SimulationConfig, StreamConfig


@pytest.fixture(scope="module")
def history():
    config = SimulationConfig(
        days=9,
        msgs_per_day=(1200, 1500),
        batch_size=300,
        review_every_days=2,
        promote_min_count=5,
        churn_templates_per_day=2,
        stream=StreamConfig(n_services=30),
    )
    sim = ProductionSimulation(config)
    return sim, sim.run()


class TestBootstrap:
    def test_initial_unmatched_75_to_85_percent(self, history):
        _, days = history
        # paper: 75-80% unmatched before Sequence-RTG
        assert 0.70 <= days[0].unmatched_fraction <= 0.88

    def test_bootstrap_promotes_some_patterns(self, history):
        sim, _ = history
        assert sim.syslog.n_patterns > 0


class TestDynamics:
    def test_unmatched_fraction_drops(self, history):
        _, days = history
        assert days[-1].unmatched_fraction < days[0].unmatched_fraction - 0.2

    def test_promotions_happen_on_review_days(self, history):
        _, days = history
        promoted_days = [d.day for d in days if d.n_promoted > 0]
        assert promoted_days
        assert all(day % 2 == 0 for day in promoted_days)

    def test_patterndb_grows_monotonically(self, history):
        _, days = history
        sizes = [d.patterndb_size for d in days]
        assert sizes == sorted(sizes)

    def test_batch_fill_time_grows(self, history):
        """§IV: as patterns are promoted the unmatched stream thins and
        the time to fill a batch grows (15 -> 25-30 minutes in prod)."""
        _, days = history
        assert days[-1].batch_fill_minutes >= days[0].batch_fill_minutes

    def test_day_accounting(self, history):
        _, days = history
        for d in days:
            assert d.n_matched + d.n_unmatched == d.n_messages
            assert d.analysis_seconds >= 0.0


class TestSinks:
    def test_everything_indexed(self, history):
        sim, days = history
        total = sum(d.n_messages for d in days)
        assert sim.es.total_documents() == total

    def test_daily_indices(self, history):
        sim, days = history
        assert len(sim.es.indices()) == len(days)


class TestWorkerPoolSimulation:
    def _config(self, n_workers):
        return SimulationConfig(
            days=3,
            msgs_per_day=(700, 900),
            batch_size=200,
            review_every_days=2,
            promote_min_count=5,
            churn_templates_per_day=2,
            n_workers=n_workers,
            stream=StreamConfig(n_services=20),
        )

    def test_pool_miner_matches_serial(self):
        """n_workers > 1 swaps the miner for a persistent pool; the
        deployment dynamics and the mined database must not change."""
        with ProductionSimulation(self._config(1)) as serial:
            serial_days = serial.run()
            serial_rows = sorted(
                (r.id, r.service, r.match_count) for r in serial.rtg.db.rows()
            )
        with ProductionSimulation(self._config(2)) as pooled:
            pooled_days = pooled.run()
            pooled_rows = sorted(
                (r.id, r.service, r.match_count) for r in pooled.rtg.db.rows()
            )
        assert pooled_rows == serial_rows
        for s, p in zip(serial_days, pooled_days):
            assert (s.n_messages, s.n_matched, s.n_promoted) == (
                p.n_messages,
                p.n_matched,
                p.n_promoted,
            )

    def test_close_terminates_pool_workers(self):
        sim = ProductionSimulation(self._config(2))
        sim.run(days=1)
        procs = [h.process for h in sim.rtg._workers if h is not None]
        assert procs
        sim.close()
        for proc in procs:
            assert not proc.is_alive()
        sim.close()  # idempotent

"""Pattern-triggered actions (paper §I/Fig. 1)."""

import pytest

from repro.analyzer.pattern import Pattern
from repro.core.records import LogRecord
from repro.workflow.actions import ActionEngine, ActionRule
from repro.workflow.syslog_ng import SyslogNG


@pytest.fixture()
def routed():
    """A syslog-ng with one promoted auth pattern plus a route helper."""
    ng = SyslogNG()
    pattern = Pattern.from_text(
        "Failed password for %alphanum% from %srcip% port %srcport% ssh2", "sshd"
    )
    ng.promote([pattern])

    def route(message, service="sshd"):
        return ng.route(LogRecord(service, message)), pattern.id

    return route


def failed_login(i=1):
    return f"Failed password for u{i} from 10.0.0.{i} port {4000 + i} ssh2"


class TestDispatch:
    def test_rule_fires_on_matching_pattern(self, routed):
        result, pid = routed(failed_login())
        engine = ActionEngine()
        engine.add_rule(ActionRule(name="auth-fail", pattern_id=pid))
        fired = engine.process("sshd", failed_login(), result)
        assert fired == ["auth-fail"]
        assert engine.counters["auth-fail"] == 1

    def test_notification_carries_extracted_fields(self, routed):
        result, pid = routed(failed_login(7))
        engine = ActionEngine()
        engine.add_rule(ActionRule(name="auth-fail", pattern_id=pid))
        engine.process("sshd", failed_login(7), result)
        (note,) = engine.drain_notifications()
        assert note.fields["srcip"] == "10.0.0.7"
        assert note.service == "sshd"
        assert engine.notifications == []  # drained

    def test_wildcard_rule_scoped_by_service(self, routed):
        result, _ = routed(failed_login())
        engine = ActionEngine()
        engine.add_rule(ActionRule(name="any-sshd", pattern_id="*", service="sshd"))
        engine.add_rule(ActionRule(name="any-httpd", pattern_id="*", service="httpd"))
        fired = engine.process("sshd", failed_login(), result)
        assert fired == ["any-sshd"]

    def test_unmatched_messages_never_fire(self, routed):
        result, _ = routed("garbled nonsense", service="sshd")
        engine = ActionEngine()
        engine.add_rule(ActionRule(name="all", pattern_id="*"))
        assert engine.process("sshd", "garbled nonsense", result) == []

    def test_other_pattern_does_not_fire(self, routed):
        result, _ = routed(failed_login())
        engine = ActionEngine()
        engine.add_rule(ActionRule(name="specific", pattern_id="deadbeef" * 5))
        assert engine.process("sshd", failed_login(), result) == []


class TestCallbacks:
    def test_callback_invoked(self, routed):
        """The restart-a-service / run-a-diagnostic hook."""
        result, pid = routed(failed_login())
        calls = []
        engine = ActionEngine()
        engine.add_rule(
            ActionRule(
                name="restart",
                pattern_id=pid,
                notify=False,
                callback=lambda rule, res, msg: calls.append((rule.name, msg)),
            )
        )
        engine.process("sshd", failed_login(), result)
        assert calls == [("restart", failed_login())]
        assert engine.notifications == []


class TestRateLimit:
    def test_storm_throttled(self, routed):
        result, pid = routed(failed_login())
        engine = ActionEngine()
        engine.add_rule(
            ActionRule(name="page", pattern_id=pid, max_per_window=3, window=1000)
        )
        for _ in range(50):
            engine.process("sshd", failed_login(), result)
        assert engine.counters["page"] == 3

    def test_window_slides(self, routed):
        result, pid = routed(failed_login())
        engine = ActionEngine()
        engine.add_rule(
            ActionRule(name="page", pattern_id=pid, max_per_window=1, window=10)
        )
        engine.process("sshd", failed_login(), result)
        for _ in range(20):  # advance the clock past the window
            engine.process("sshd", "no match", type(result)(matched=False))
        engine.process("sshd", failed_login(), result)
        assert engine.counters["page"] == 2


class TestValidation:
    def test_duplicate_rule_name_rejected(self):
        engine = ActionEngine()
        engine.add_rule(ActionRule(name="x"))
        with pytest.raises(ValueError):
            engine.add_rule(ActionRule(name="x"))

"""Production stream generator."""

from repro.workflow.stream import ProductionStream, StreamConfig


def small_stream(**overrides):
    kwargs = dict(n_services=12, seed=4)
    kwargs.update(overrides)
    return ProductionStream(StreamConfig(**kwargs))


class TestStream:
    def test_deterministic(self):
        a = [r.message for r in small_stream().records(200)]
        b = [r.message for r in small_stream().records(200)]
        assert a == b

    def test_service_count(self):
        stream = small_stream()
        assert len(stream.service_names) == 12
        assert len(set(stream.service_names)) == 12

    def test_records_carry_known_services(self):
        stream = small_stream()
        names = set(stream.service_names)
        assert all(r.service in names for r in stream.records(100))

    def test_messages_have_no_unfilled_slots(self):
        stream = small_stream()
        assert all("{" not in r.message for r in stream.records(200))

    def test_popularity_skew(self):
        stream = small_stream(service_zipf=1.3)
        from collections import Counter

        counts = Counter(r.service for r in stream.records(3000))
        top = counts.most_common()
        assert top[0][1] > top[-1][1] * 3

    def test_churn_adds_templates(self):
        stream = small_stream()
        before = stream.n_templates
        stream.add_churn_templates(5)
        assert stream.n_templates == before + 5

    def test_churn_templates_get_traffic(self):
        stream = small_stream(n_services=1)
        baseline = {r.message.split()[0] for r in stream.records(500)}
        stream.add_churn_templates(30)
        after = list(stream.records(2000))
        # with 30 new templates inserted at random ranks, new message
        # shapes must appear
        new_shapes = {r.message for r in after}
        assert len(new_shapes) > 100

#!/usr/bin/env python3
"""Grouping-accuracy evaluation on a LogHub-style dataset (paper §IV).

Loads the synthetic OpenSSH dataset (2,000 labelled lines), runs the
Sequence-RTG pipeline on both the pre-processed and the raw variant, and
compares against the Drain baseline — a one-dataset slice of the paper's
Table II/III methodology.

Run:  python examples/loghub_accuracy.py [dataset]
"""

import sys

from repro.baselines import Drain
from repro.loghub import (
    DATASET_NAMES,
    evaluate_baseline,
    evaluate_sequence_rtg,
    load_dataset,
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "OpenSSH"
    if name not in DATASET_NAMES:
        raise SystemExit(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")

    dataset = load_dataset(name)
    print(f"dataset {name}: {len(dataset.lines)} lines, {dataset.n_events} events")
    print("\nsample lines:")
    for line in dataset.lines[:3]:
        print(f"  [{line.event_id}] {line.raw[:100]}")

    pre = evaluate_sequence_rtg(dataset, mode="preprocessed")
    raw = evaluate_sequence_rtg(dataset, mode="raw")
    drain = evaluate_baseline(Drain(), dataset)

    print(f"\ngrouping accuracy (methodology of Zhu et al.):")
    print(f"  Sequence-RTG, pre-processed : {pre:.3f}")
    print(f"  Sequence-RTG, raw logs      : {raw:.3f}")
    print(f"  Drain (best baseline)       : {drain:.3f}")
    print(
        "\nNote: Sequence-RTG needs no pre-processing — the raw score is"
        "\nthe one a production deployment gets for free."
    )


if __name__ == "__main__":
    main()

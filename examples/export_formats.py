#!/usr/bin/env python3
"""Pattern export for other log-management parsers (paper §III, Fig. 3/4).

Mines the paper's running example — ``%action% from %srcip% port
%srcport%`` style auth events — and renders the stored patterns in all
three supported formats: syslog-ng patterndb XML (with the stored
example messages as test cases), YAML for DevOps pipelines, and
Logstash Grok filters tagged with the reproducible pattern id.

Run:  python examples/export_formats.py
"""

from repro import LogRecord, SequenceRTG
from repro.core.export import export_patterns

EVENTS = [
    "Accepted publickey from 192.168.4.2 port 50022",
    "Accepted publickey from 10.31.7.8 port 41332",
    "Accepted publickey from 172.16.9.1 port 59000",
    "Disconnected from 192.0.2.44 port 22100",
    "Disconnected from 198.51.100.2 port 33410",
    "Disconnected from 203.0.113.9 port 40210",
]


def main() -> None:
    rtg = SequenceRTG()
    rtg.analyze_by_service([LogRecord("sshd", m) for m in EVENTS])

    for fmt in ("syslog-ng", "yaml", "grok"):
        print(f"===== {fmt} " + "=" * (60 - len(fmt)))
        print(
            export_patterns(
                rtg.db,
                fmt=fmt,
                # the review filters: only strong, low-complexity patterns
                min_count=1,
                max_complexity=0.9,
            )
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Anomaly detection on log volumes — the paper's §VI future work.

Runs the production stream through syslog-ng + Sequence-RTG, buckets
message counts per service per hour, and feeds them to the volume
anomaly detector.  Midway through, two faults are injected: a 10×
message storm on one service (e.g. a crash loop) and a silent outage on
another (its daemon died).  Both must be flagged while the routine
+2%/hour load growth stays quiet.

Run:  python examples/anomaly_detection.py
"""

import random
from collections import defaultdict

from repro.workflow import (
    AnomalyConfig,
    ProductionStream,
    StreamConfig,
    VolumeAnomalyDetector,
)

HOURS = 48
STORM_SERVICE_RANK = 0  # the busiest service crash-loops
OUTAGE_SERVICE_RANK = 1  # the second busiest goes silent
FAULT_HOUR = 36


def main() -> None:
    stream = ProductionStream(StreamConfig(n_services=40, seed=21))
    rng = random.Random(4)
    # 40 services x 48 hours is ~2000 tests: with a z=3 threshold pure
    # multinomial sampling noise would fire dozens of times (the multiple
    # testing problem), so fleet-wide monitoring uses a wider threshold —
    # the injected faults sit at |z| > 7 regardless
    detector = VolumeAnomalyDetector(AnomalyConfig(window=24, z_threshold=5.5))

    # identify the two busiest services from a warmup sample
    warmup = defaultdict(int)
    for record in stream.records(5_000):
        warmup[record.service] += 1
    ranked = sorted(warmup, key=warmup.get, reverse=True)
    storm_svc, outage_svc = ranked[STORM_SERVICE_RANK], ranked[OUTAGE_SERVICE_RANK]
    print(f"watching {len(ranked)} services; injecting at hour {FAULT_HOUR}:")
    print(f"  message storm on   {storm_svc}")
    print(f"  silent outage on   {outage_svc}\n")

    base_rate = 1_500
    alerts = []
    for hour in range(HOURS):
        rate = int(base_rate * (1.02 ** hour))  # routine growth
        counts = defaultdict(int)
        for record in stream.records(rate + rng.randint(-50, 50)):
            counts[record.service] += 1
        if hour >= FAULT_HOUR:
            counts[storm_svc] *= 10  # crash loop spamming the log
            counts[outage_svc] = 0  # daemon died, no messages at all
        for anomaly in detector.observe_bucket(hour, dict(counts)):
            alerts.append(anomaly)
            print(
                f"hour {hour:2d}  {anomaly.kind.upper():6s}  {anomaly.service:14s} "
                f"observed={anomaly.observed:7.0f} expected={anomaly.expected:7.1f} "
                f"z={anomaly.zscore:+.1f}"
            )

    flagged = {a.service for a in alerts}
    assert storm_svc in flagged, "storm missed!"
    assert outage_svc in flagged, "outage missed!"
    pre_fault = [a for a in alerts if a.bucket < FAULT_HOUR]
    assert len(pre_fault) <= 2, "too many false alarms"
    print(f"\n{len(alerts)} alerts total, {len(pre_fault)} false alarms before injection")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Pattern-triggered actions and the administrator review report.

The end goal of the whole workflow (paper §I): once messages match known
patterns, the infrastructure can "send notifications to system or
service administrators, e.g. in the event of a failure or malfunction,
or trigger some predefined actions, e.g. restart a service or run an
automated diagnostic task".

This example mines patterns from an auth log, prints the ranked review
report an administrator would use for promotion, promotes the patterns,
wires two action rules — a rate-limited notification on failed logins
and a restart callback on a crash pattern — and replays traffic with a
brute-force burst injected.

Run:  python examples/alerting_actions.py
"""

import random

from repro import LogRecord, SequenceRTG
from repro.core.report import review_report
from repro.workflow import ActionEngine, ActionRule, SyslogNG

rng = random.Random(11)


def failed(i):
    return f"Failed password for invalid user u{i} from 203.0.113.{i % 250 + 1} port {40000 + i} ssh2"


def accepted(i):
    return f"Accepted password for user{i % 9} from 10.0.0.{i % 250 + 1} port {50000 + i} ssh2"


def crashed(i):
    return f"worker process {1000 + i} exited on signal 11"


def main() -> None:
    # --- 1. mine patterns from a training window -----------------------
    training = [accepted(i) for i in range(20)]
    training += [failed(i) for i in range(20)]
    training += [crashed(i) for i in range(6)]
    rng.shuffle(training)
    rtg = SequenceRTG()
    rtg.analyze_by_service([LogRecord("sshd", m) for m in training])

    # --- 2. the review report administrators read ----------------------
    print(review_report(rtg.db, limit=5))

    # --- 3. promote into syslog-ng and attach action rules -------------
    ng = SyslogNG()
    patterns = {row.pattern_text: row.to_pattern() for row in rtg.db.rows()}
    ng.promote(list(patterns.values()))

    failed_pid = next(p.id for t, p in patterns.items() if t.startswith("Failed"))
    crash_pid = next(p.id for t, p in patterns.items() if "exited on signal" in t)

    restarts = []
    engine = ActionEngine()
    engine.add_rule(
        ActionRule(
            name="brute-force-alert",
            pattern_id=failed_pid,
            max_per_window=3,  # page at most 3 times per 1000 messages
            window=1000,
        )
    )
    engine.add_rule(
        ActionRule(
            name="restart-worker",
            pattern_id=crash_pid,
            notify=False,
            callback=lambda rule, res, msg: restarts.append(
                next(iter(res.fields.values()), "?")
            ),
        )
    )

    # --- 4. replay live traffic with a brute-force burst ---------------
    live = [accepted(i) for i in range(200)]
    live += [failed(1000 + i) for i in range(120)]  # the attack
    live += [crashed(50), crashed(51)]
    rng.shuffle(live)
    for message in live:
        record = LogRecord("sshd", message)
        engine.process("sshd", message, ng.route(record))

    notes = engine.drain_notifications()
    print(f"traffic: {len(live)} messages "
          f"({ng.n_matched} matched, {ng.n_unmatched} unmatched)")
    print(f"brute-force alerts sent: {len(notes)} "
          f"(rate limit capped a {engine.counters['brute-force-alert']}-firing storm)")
    for note in notes:
        print(f"  ALERT {note.rule}: {note.fields}")
    print(f"worker restarts triggered: {len(restarts)} (pids {restarts})")

    assert len(notes) == 3  # rate limited
    assert len(restarts) == 2


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: mine patterns from a handful of log messages.

Demonstrates the three core stages of Sequence-RTG on a mixed stream:
scan + analyse (pattern discovery), persistence with reproducible SHA1
pattern ids, and parsing new messages against the discovered patterns
with field extraction.

Run:  python examples/quickstart.py
"""

from repro import LogRecord, SequenceRTG

MESSAGES = [
    # an sshd-like service — enough distinct users for the analyser to
    # recognise the position as a variable (a column needs more distinct
    # values than the merge threshold; see AnalyzerConfig.merge_threshold)
    ("sshd", "Accepted password for alice from 192.168.1.5 port 50321 ssh2"),
    ("sshd", "Accepted password for bob from 10.0.7.13 port 42100 ssh2"),
    ("sshd", "Accepted password for carol from 172.16.0.9 port 39980 ssh2"),
    ("sshd", "Accepted password for dave from 172.16.3.1 port 44210 ssh2"),
    ("sshd", "Accepted password for erin from 10.8.0.40 port 51011 ssh2"),
    ("sshd", "Accepted password for frank from 192.168.77.2 port 47017 ssh2"),
    ("sshd", "Failed password for invalid user guest from 52.80.34.196 port 59404 ssh2"),
    ("sshd", "Failed password for invalid user admin from 52.80.34.197 port 59405 ssh2"),
    # an HDFS-like service (note: same batch, different service)
    ("hdfs", "PacketResponder 1 for block blk_38865049064139660 terminating"),
    ("hdfs", "PacketResponder 0 for block blk_-6952295868487656571 terminating"),
    ("hdfs", "PacketResponder 2 for block blk_8229193803249955061 terminating"),
]


def main() -> None:
    rtg = SequenceRTG()  # in-memory pattern database

    # --- discovery: the AnalyzeByService workflow (paper Fig. 2) -------
    result = rtg.analyze_by_service(
        [LogRecord(service, message) for service, message in MESSAGES]
    )
    print(f"batch: {result.n_records} records from {result.n_services} services")
    print(f"discovered {result.n_new_patterns} patterns:\n")
    for pattern in result.new_patterns:
        print(f"  [{pattern.service}] {pattern.text}")
        print(f"      id={pattern.id}  complexity={pattern.complexity:.2f}"
              f"  support={pattern.support}")

    # --- parsing: match a new message against the known patterns -------
    print("\nparsing a new message:")
    new_message = "Accepted password for mallory from 203.0.113.77 port 61001 ssh2"
    scanned = rtg.scanner.scan(new_message, service="sshd")
    hit = rtg.parser_for("sshd").match(scanned)
    assert hit is not None
    print(f"  message : {new_message}")
    print(f"  pattern : {hit.pattern.text}")
    print(f"  fields  : {hit.fields}")

    # --- persistence: the same pattern keeps the same id forever -------
    print("\npattern database contents:")
    for row in rtg.db.rows():
        print(f"  {row.id[:12]}…  [{row.service}] count={row.match_count}"
              f"  examples={len(row.examples)}")


if __name__ == "__main__":
    main()

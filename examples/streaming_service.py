#!/usr/bin/env python3
"""Continuous stream ingestion — Sequence-RTG as a syslog-ng child process.

The production deployment (paper Fig. 6) pipes unmatched messages from
syslog-ng into Sequence-RTG's stdin as JSON lines and lets the miner
trigger an analysis whenever a full batch has accumulated.  This example
reproduces that loop in-process: a synthetic 241-service production
stream is serialised to JSON lines, ingested in batches, analysed, and
the discovered patterns persisted to an on-disk SQLite database that
survives restarts.

Run:  python examples/streaming_service.py
"""

import json
import os
import tempfile

from repro import PatternDB, RTGConfig, SequenceRTG, StreamIngester
from repro.workflow import ProductionStream, StreamConfig

BATCH_SIZE = 500
N_MESSAGES = 3_000


def json_lines(n: int):
    """Simulate the syslog-ng pipe: one JSON object per line."""
    stream = ProductionStream(StreamConfig(n_services=60, seed=11))
    for record in stream.records(n):
        yield json.dumps(record.to_json_dict())


def main() -> None:
    db_path = os.path.join(tempfile.mkdtemp(prefix="sequence-rtg-"), "patterns.db")
    print(f"pattern database: {db_path}")

    config = RTGConfig(batch_size=BATCH_SIZE, save_threshold=2)
    rtg = SequenceRTG(db=PatternDB(db_path), config=config)
    ingester = StreamIngester(batch_size=BATCH_SIZE)

    for i, result in enumerate(
        rtg.process_stream(ingester.batches(json_lines(N_MESSAGES)))
    ):
        print(
            f"batch {i + 1}: {result.n_records} records "
            f"({result.n_services} services) -> "
            f"{result.n_matched} matched known patterns, "
            f"{result.n_new_patterns} new patterns, "
            f"{result.n_below_threshold} below save threshold"
        )

    counts = rtg.db.counts()
    print(
        f"\ningested {ingester.stats.n_records} records in "
        f"{ingester.stats.n_batches} batches"
    )
    print(
        f"database now holds {counts['patterns']} patterns across "
        f"{counts['services']} services ({counts['examples']} stored examples)"
    )

    # A restart: a fresh SequenceRTG over the same database parses
    # immediately — patterns persisted between executions (paper §III).
    rtg2 = SequenceRTG(db=PatternDB(db_path), config=config)
    stream = ProductionStream(StreamConfig(n_services=60, seed=11))
    matched = total = 0
    for record in stream.records(1_000):
        total += 1
        scanned = rtg2.scanner.scan(record.message, service=record.service)
        if rtg2.parser_for(record.service).match(scanned) is not None:
            matched += 1
    print(f"after restart: {matched}/{total} messages matched persisted patterns")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Deployment simulation — the Fig. 7 experiment at example scale.

Simulates the CC-IN2P3 workflow after the integration of Sequence-RTG
(paper Fig. 6): syslog-ng routes a multi-service stream against its
pattern database, unmatched messages are mined in batches, and every few
days the administrators review and promote the strongest patterns.  The
unmatched fraction starts at 75-80% (only the hand-maintained patterns
match) and falls towards ~15% as promotions accumulate, never reaching
zero because services keep shipping new log events.

Run:  python examples/production_simulation.py [days]
"""

import sys

from repro.workflow import ProductionSimulation, SimulationConfig, StreamConfig


def bar(fraction: float, width: int = 40) -> str:
    filled = round(fraction * width)
    return "#" * filled + "." * (width - filled)


def main() -> None:
    days = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    config = SimulationConfig(
        days=days,
        msgs_per_day=(4_000, 5_500),  # paper: 70-100M, scaled for an example
        batch_size=500,  # paper: 100,000
        stream=StreamConfig(n_services=120),
    )
    sim = ProductionSimulation(config)

    print(f"bootstrapping hand-maintained patterndb "
          f"(target coverage ~{config.initial_coverage:.0%}) ...")
    history = sim.run()

    print("\nday  unmatched  " + " " * 34 + "promoted  patterndb")
    for stats in history:
        marker = f"  +{stats.n_promoted}" if stats.n_promoted else ""
        print(
            f"{stats.day:3d}  {stats.unmatched_fraction:8.1%}  "
            f"|{bar(stats.unmatched_fraction)}|  "
            f"{stats.n_promoted:5d}  {stats.patterndb_size:6d}{marker and ''}"
        )

    first, last = history[0], history[-1]
    print(
        f"\nunmatched fraction: {first.unmatched_fraction:.0%} (day 1) -> "
        f"{last.unmatched_fraction:.0%} (day {last.day})"
    )
    print(
        f"avg analysis time per batch on the final day: "
        f"{last.analysis_seconds / max(1, last.n_batches):.2f}s; "
        f"batch fill time {history[0].batch_fill_minutes:.0f} -> "
        f"{last.batch_fill_minutes:.0f} simulated minutes"
    )
    print(f"documents indexed in simulated Elasticsearch: {sim.es.total_documents()}")


if __name__ == "__main__":
    main()

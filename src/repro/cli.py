"""Command-line interface.

Mirrors the production entry points of the tool:

* ``sequence-rtg serve`` — the data-stream ingester (paper §III): reads
  JSON lines (``{"service": ..., "message": ...}``) from stdin or a
  file, analyses per batch, persists patterns to the database;
* ``sequence-rtg mine`` — ad-hoc analysis of a plain log file for one
  service ("use Sequence-RTG as an ad-hoc service ... from a file of
  messages to make patterns to save doing it by hand", §IV);
* ``sequence-rtg parse`` — match messages against the stored patterns;
* ``sequence-rtg export`` — the ``ExportPatterns`` function: render the
  stored patterns as syslog-ng patterndb XML, YAML or Logstash Grok,
  with the review-selection filters;
* ``sequence-rtg stats`` — database statistics;
* ``sequence-rtg metrics`` — a point-in-time metrics snapshot of the
  pattern database (Prometheus text or JSON); live scraping of a
  running miner is ``serve --metrics-port``.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading

from repro.core.config import EXECUTION_MODES, RTGConfig, StreamingConfig
from repro.core.export import FORMATS, export_patterns
from repro.core.ingest import StreamIngester
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.core.records import LogRecord
from repro.analyzer.analyzer import ANALYZER_BACKENDS, AnalyzerConfig
from repro.parser.parser import PARSER_BACKENDS, ParserConfig
from repro.scanner.scanner import SCANNER_BACKENDS, ScannerConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="sequence-rtg",
        description="Efficient and production-ready pattern mining in system log messages",
    )
    parser.add_argument(
        "--db", default="sequence-rtg.db", help="pattern database path"
    )
    parser.add_argument(
        "--single-digit-time",
        action="store_true",
        help="enable the future-work datetime fix (single-digit time parts)",
    )
    parser.add_argument(
        "--path-fsm",
        action="store_true",
        help="enable the future-work path finite state machine",
    )
    parser.add_argument(
        "--scanner-backend",
        choices=SCANNER_BACKENDS,
        default="fsm",
        help="tokenizer implementation: the reference character FSM "
        "cascade or the compiled regex-program backend (identical "
        "token output, higher throughput)",
    )
    parser.add_argument(
        "--parser-backend",
        choices=PARSER_BACKENDS,
        default="reference",
        help="pattern matcher implementation: the reference parse-trie "
        "DFS or the compiled table-driven backend (identical match "
        "output, higher throughput)",
    )
    parser.add_argument(
        "--analyzer-backend",
        choices=ANALYZER_BACKENDS,
        default="reference",
        help="pattern miner implementation: the reference per-node "
        "analysis trie or the compiled flat-arena backend (identical "
        "pattern output, higher throughput)",
    )
    parser.add_argument(
        "--durable-db",
        action="store_true",
        help="full-durability pattern DB (fsync per commit) instead of "
        "the default WAL + synchronous=NORMAL",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="ingest a JSON-lines stream and analyse in batches")
    serve.add_argument("input", nargs="?", default="-", help="input file ('-' for stdin)")
    serve.add_argument("--batch-size", type=int, default=100_000)
    serve.add_argument("--save-threshold", type=int, default=1)
    serve.add_argument(
        "--listen",
        default=None,
        metavar="ENDPOINTS",
        help="serve over the network instead of reading a file: "
        "comma-separated tcp://host:port, unix:///path and "
        "http://host:port endpoints (framed JSONL on tcp/unix, "
        "POST /ingest on http; port 0 = ephemeral)",
    )
    serve.add_argument(
        "--high-water",
        type=int,
        default=0,
        metavar="N",
        help="network mode: per-shard queue bound in records before the "
        "overload policy applies (0 = 2x batch size split across shards)",
    )
    serve.add_argument(
        "--overload",
        choices=("block", "shed", "drop_oldest"),
        default="block",
        help="network mode: what happens at a full shard queue — block "
        "(TCP pushback), shed (refuse newest, HTTP 429) or drop_oldest",
    )
    serve.add_argument(
        "--dispatch-timeout",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="network mode: max seconds a partial mining batch waits "
        "for more records",
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="network mode: seconds live connections get to finish "
        "after SIGTERM before being cancelled",
    )
    serve.add_argument(
        "--ingest-join-timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="file mode: seconds to wait for the pipelined reader "
        "thread on shutdown before declaring it leaked",
    )
    serve.add_argument(
        "--mode",
        dest="exec_mode",
        choices=EXECUTION_MODES,
        default="batch",
        help="batch mines every full batch (the paper's workflow); "
        "stream processes micro-batches with bounded per-message "
        "latency and defers mining to evolving-state flushes",
    )
    serve.add_argument(
        "--micro-batch",
        type=int,
        default=None,
        metavar="N",
        help="stream mode: records per micro-batch (1 = per-message)",
    )
    serve.add_argument(
        "--micro-batch-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stream mode: max seconds a partial micro-batch waits",
    )
    serve.add_argument(
        "--flush-pending",
        type=int,
        default=None,
        metavar="N",
        help="stream mode: mine once this many distinct unmatched "
        "messages are pending",
    )
    serve.add_argument(
        "--flush-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stream mode: mine at least this often",
    )
    serve.add_argument(
        "--pattern-ttl-days",
        type=float,
        default=None,
        metavar="DAYS",
        help="stream mode: evict patterns not matched for this many "
        "days (0 = keep forever)",
    )
    serve.add_argument(
        "--no-drift",
        action="store_true",
        help="stream mode: disable drift merge/split maintenance",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="persistent worker processes for analysis "
        "(1 = in-process serial; 0 = one per CPU minus one)",
    )
    serve.add_argument(
        "--no-pipeline",
        action="store_true",
        help="disable background ingest prefetch (parse batches inline)",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve Prometheus metrics on http://127.0.0.1:PORT/metrics "
        "while ingesting (0 = pick a free port)",
    )

    mine = sub.add_parser("mine", help="mine patterns from a plain log file")
    mine.add_argument("input", help="log file, one message per line")
    mine.add_argument("--service", required=True, help="source system name")
    mine.add_argument("--batch-size", type=int, default=100_000)

    parse = sub.add_parser("parse", help="match messages against stored patterns")
    parse.add_argument("input", nargs="?", default="-", help="log file ('-' for stdin)")
    parse.add_argument("--service", required=True)

    export = sub.add_parser("export", help="export stored patterns for other parsers")
    export.add_argument("--format", choices=FORMATS, default="syslog-ng")
    export.add_argument("--service", default=None)
    export.add_argument("--min-count", type=int, default=1)
    export.add_argument("--max-complexity", type=float, default=1.0)

    sub.add_parser("stats", help="print database statistics")

    metrics = sub.add_parser(
        "metrics", help="point-in-time metrics snapshot of the pattern database"
    )
    metrics.add_argument(
        "--format",
        choices=("prometheus", "json"),
        default="prometheus",
        help="output format (Prometheus text exposition or JSON)",
    )

    prune = sub.add_parser(
        "prune", help="drop patterns below the save threshold (§IV limitations)"
    )
    prune.add_argument("--threshold", type=int, required=True)

    merge = sub.add_parser(
        "merge", help="merge another instance's pattern database into this one"
    )
    merge.add_argument("source", help="path of the database to merge from")

    evaluate = sub.add_parser(
        "evaluate", help="grouping accuracy on a synthetic LogHub dataset"
    )
    evaluate.add_argument("dataset", help="dataset name, e.g. OpenSSH")
    evaluate.add_argument(
        "--mode", choices=("raw", "preprocessed", "both"), default="both"
    )

    artifact = sub.add_parser(
        "artifact", help="export the reproduction artifact bundle (AVAILABILITY)"
    )
    artifact.add_argument("out_dir")
    artifact.add_argument(
        "--datasets", nargs="*", default=None, help="subset of dataset names"
    )

    report = sub.add_parser(
        "report", help="ranked Markdown review report for administrators"
    )
    report.add_argument("--service", default=None)
    report.add_argument("--min-count", type=int, default=1)
    report.add_argument("--max-complexity", type=float, default=1.0)
    report.add_argument("--limit", type=int, default=50)
    return parser


def _open_input(path: str):
    if path == "-":
        return sys.stdin
    return open(path, encoding="utf-8", errors="replace")


def _streaming_config(args: argparse.Namespace) -> StreamingConfig:
    """Fold the serve subcommand's stream knobs over the defaults."""
    defaults = StreamingConfig()
    return StreamingConfig(
        micro_batch_size=(
            args.micro_batch
            if args.micro_batch is not None
            else defaults.micro_batch_size
        ),
        micro_batch_timeout_s=(
            args.micro_batch_timeout
            if args.micro_batch_timeout is not None
            else defaults.micro_batch_timeout_s
        ),
        flush_pending=(
            args.flush_pending
            if args.flush_pending is not None
            else defaults.flush_pending
        ),
        flush_interval_s=(
            args.flush_interval
            if args.flush_interval is not None
            else defaults.flush_interval_s
        ),
        pattern_ttl_days=(
            args.pattern_ttl_days
            if args.pattern_ttl_days is not None
            else defaults.pattern_ttl_days
        ),
        drift_merge=not args.no_drift,
        drift_split=not args.no_drift,
    )


def _make_rtg(args: argparse.Namespace, batch_size: int = 100_000) -> SequenceRTG:
    # the serve subcommand's execution mode (dest=exec_mode; evaluate
    # has an unrelated --mode); other subcommands run batch
    mode = getattr(args, "exec_mode", "batch")
    config = RTGConfig(
        batch_size=batch_size,
        save_threshold=getattr(args, "save_threshold", 1),
        db_durable=args.durable_db,
        mode=mode,
        streaming=(
            _streaming_config(args) if mode == "stream" else StreamingConfig()
        ),
        scanner=ScannerConfig(
            allow_single_digit_time=args.single_digit_time,
            enable_path_fsm=args.path_fsm,
            backend=args.scanner_backend,
        ),
        parser=ParserConfig(backend=args.parser_backend),
        analyzer=AnalyzerConfig(backend=args.analyzer_backend),
    )
    return SequenceRTG(
        db=PatternDB(args.db, durable=args.durable_db), config=config
    )


class _DrainRequest:
    """SIGTERM/SIGINT → a stop flag the file-fed serve loops honour.

    Without this, a signal mid-batch kills the process wherever it
    stands: the pipelined ingester generator is abandoned (its reader
    thread joined only at GC) and the final partial batch is dropped.
    With it, the loops stop consuming input at the next line, the
    ingester yields what it has, the engine mines it, and the process
    exits 0 — the same flush-then-exit contract the network tier's
    graceful drain makes.
    """

    def __init__(self) -> None:
        self.stop = threading.Event()
        self._previous: dict[int, object] = {}

    def __enter__(self) -> "_DrainRequest":
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._previous[signum] = signal.signal(signum, self._handle)
            except ValueError:  # not the main thread (embedded use)
                pass
        return self

    def _handle(self, signum, frame) -> None:
        self.stop.set()
        print("drain: signal received, flushing", file=sys.stderr)

    def __exit__(self, *exc) -> None:
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)


def _interruptible(lines, stop: threading.Event):
    """Pass lines through until EOF or the drain flag is raised.

    Raising the flag turns into a clean EOF for the ingester, which
    then emits its final partial batch deterministically.
    """
    for line in lines:
        if stop.is_set():
            return
        yield line


def _serve_stream(args: argparse.Namespace, rtg: SequenceRTG) -> int:
    """The ``serve --mode stream`` loop: per-record micro-batching."""
    from repro.core.ingest import parse_record

    driver = rtg.stream_driver()
    metrics_server = None
    if args.metrics_port is not None:
        from repro.obs.server import MetricsServer

        metrics_server = MetricsServer(rtg.metrics, port=args.metrics_port)
        metrics_server.start()
        print(f"metrics: {metrics_server.url}", file=sys.stderr)
    n_lines = n_malformed = 0
    try:
        with _DrainRequest() as drain, _open_input(args.input) as stream:
            for line in _interruptible(stream, drain.stop):
                n_lines += 1
                record = parse_record(line)
                if record is None:
                    n_malformed += 1
                    continue
                driver.offer(record)
                driver.poll()
    finally:
        driver.close()
        if metrics_server is not None:
            metrics_server.close()
    stats = driver.stats
    print(
        f"stream: {stats.n_messages} messages in {stats.n_micro_batches} "
        f"micro-batches ({n_malformed}/{n_lines} lines malformed), "
        f"{stats.n_matched} matched, {stats.n_flushes} flushes, "
        f"{stats.n_new_patterns} new patterns, {stats.n_evicted} evicted, "
        f"{stats.n_drift_merges} drift merges, {stats.n_drift_splits} "
        f"drift splits, p99 per-message latency {driver.p99() * 1e3:.3f} ms",
        file=sys.stderr,
    )
    return 0


def _serve_listen(args: argparse.Namespace, rtg: SequenceRTG) -> int:
    """``serve --listen``: the async network ingest tier."""
    import asyncio

    from repro.serve import ServeConfig, ServeServer, parse_listen_specs

    specs = parse_listen_specs(args.listen)
    pool = None
    if args.exec_mode == "stream":
        miner = rtg.stream_driver()
        registry = rtg.metrics
    elif args.workers != 1:
        from repro.core.parallel import PersistentParallelSequenceRTG

        pool = miner = PersistentParallelSequenceRTG(
            db=rtg.db, config=rtg.config, n_workers=args.workers or None
        )
        registry = pool.metrics
    else:
        miner = rtg
        registry = rtg.metrics
    metrics_server = None
    if args.metrics_port is not None:
        from repro.obs.server import MetricsServer

        metrics_server = MetricsServer(registry, port=args.metrics_port)
        metrics_server.start()
        print(f"metrics: {metrics_server.url}", file=sys.stderr)
    server = ServeServer(
        miner,
        ServeConfig(
            listen=tuple(specs),
            batch_size=args.batch_size,
            high_water=args.high_water,
            overload=args.overload,
            dispatch_timeout_s=args.dispatch_timeout,
            drain_grace_s=args.drain_grace,
        ),
    )

    def announce(endpoints) -> None:
        rendered = ", ".join(f"{scheme}://{addr}" for scheme, addr in endpoints)
        print(f"listening: {rendered}", file=sys.stderr)

    try:
        asyncio.run(server.run(install_signals=True, ready=announce))
    finally:
        if pool is not None:
            pool.close()
        if metrics_server is not None:
            metrics_server.close()
    summary = server.summary()
    print(
        f"serve: {summary['accepted']} accepted ({summary['shed']} shed, "
        f"{summary['malformed']} malformed) over {summary['connections']} "
        f"connections; {summary['records_mined']} records mined in "
        f"{summary['batches']} batches, {summary['new_patterns']} new "
        f"patterns, p99 ingest latency "
        f"{summary['p99_ingest_latency_s'] * 1e3:.3f} ms",
        file=sys.stderr,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "serve":
        rtg = _make_rtg(args, args.batch_size)
        if args.exec_mode == "stream" and args.workers != 1:
            print(
                "error: --mode stream is serial-only (worker pools "
                "run batch mode); drop --workers",
                file=sys.stderr,
            )
            return 2
        if args.listen is not None:
            return _serve_listen(args, rtg)
        if args.exec_mode == "stream":
            return _serve_stream(args, rtg)
        if args.workers != 1:
            # persistent pool over the same shared DB (the in-process
            # instance is only used for its config/db wiring)
            from repro.core.parallel import PersistentParallelSequenceRTG

            miner = PersistentParallelSequenceRTG(
                db=rtg.db,
                config=rtg.config,
                n_workers=args.workers or None,
            )
        else:
            miner = rtg
        metrics_server = None
        if args.metrics_port is not None:
            from repro.obs.server import MetricsServer

            metrics_server = MetricsServer(miner.metrics, port=args.metrics_port)
            metrics_server.start()
            print(f"metrics: {metrics_server.url}", file=sys.stderr)
        ingester = StreamIngester(
            batch_size=args.batch_size,
            join_timeout=args.ingest_join_timeout,
            metrics=miner.metrics if rtg.config.enable_metrics else None,
        )
        with _DrainRequest() as drain, _open_input(args.input) as stream:
            lines = _interruptible(stream, drain.stop)
            if args.no_pipeline:
                batches = ingester.batches(lines)
            else:
                batches = ingester.batches_pipelined(
                    lines, prefetch=rtg.config.ingest_prefetch
                )
            results = miner.process_stream(batches)
            try:
                for result in results:
                    print(
                        f"batch: {result.n_records} records, {result.n_services} services, "
                        f"{result.n_matched} matched, {result.n_new_patterns} new patterns",
                        file=sys.stderr,
                    )
            finally:
                # closing the drive_stream generator closes the ingest
                # generator in turn, joining its reader thread even when
                # this loop's body raised
                close = getattr(results, "close", None)
                if close is not None:
                    close()
                if miner is not rtg:
                    miner.close()
                if metrics_server is not None:
                    metrics_server.close()
        print(
            f"ingested {ingester.stats.n_records} records "
            f"({ingester.stats.n_malformed} malformed) in {ingester.stats.n_batches} batches",
            file=sys.stderr,
        )
        return 0

    if args.command == "mine":
        rtg = _make_rtg(args, args.batch_size)
        with _open_input(args.input) as stream:
            records = [
                LogRecord(service=args.service, message=line.rstrip("\n"))
                for line in stream
                if line.strip()
            ]
        result = rtg.analyze_by_service(records)
        for pattern in result.new_patterns:
            print(f"{pattern.id}  {pattern.text}")
        print(
            f"{result.n_records} messages -> {result.n_new_patterns} new patterns",
            file=sys.stderr,
        )
        return 0

    if args.command == "parse":
        rtg = _make_rtg(args)
        parser_ = rtg.parser_for(args.service)
        n = n_matched = 0
        with _open_input(args.input) as stream:
            for line in stream:
                message = line.rstrip("\n")
                if not message:
                    continue
                n += 1
                scanned = rtg.scanner.scan(message, service=args.service)
                hit = parser_.match(scanned)
                if hit is None:
                    print(json.dumps({"message": message, "matched": False}))
                else:
                    n_matched += 1
                    print(
                        json.dumps(
                            {
                                "message": message,
                                "matched": True,
                                "pattern_id": hit.pattern.id,
                                "fields": hit.fields,
                            }
                        )
                    )
        print(f"matched {n_matched}/{n}", file=sys.stderr)
        return 0

    if args.command == "export":
        db = PatternDB(args.db, durable=args.durable_db)
        sys.stdout.write(
            export_patterns(
                db,
                fmt=args.format,
                service=args.service,
                min_count=args.min_count,
                max_complexity=args.max_complexity,
            )
        )
        return 0

    if args.command == "stats":
        db = PatternDB(args.db, durable=args.durable_db)
        counts = db.counts()
        for table, n in counts.items():
            print(f"{table}: {n}")
        return 0

    if args.command == "metrics":
        from repro.obs.exposition import render_prometheus
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.observer import observe_patterndb

        registry = MetricsRegistry()
        observe_patterndb(registry, PatternDB(args.db, durable=args.durable_db))
        if args.format == "json":
            json.dump(registry.to_dict(), sys.stdout, indent=2)
            print()
        else:
            sys.stdout.write(render_prometheus(registry))
        return 0

    if args.command == "prune":
        db = PatternDB(args.db, durable=args.durable_db)
        removed = db.prune(save_threshold=args.threshold)
        print(f"pruned {removed} patterns below threshold {args.threshold}",
              file=sys.stderr)
        return 0

    if args.command == "merge":
        db = PatternDB(args.db, durable=args.durable_db)
        source = PatternDB(args.source)
        n = db.merge_from(source)
        print(f"merged {n} patterns from {args.source}", file=sys.stderr)
        return 0

    if args.command == "evaluate":
        from repro.loghub import evaluate_sequence_rtg, load_dataset

        dataset = load_dataset(args.dataset)
        config = _make_rtg(args).config
        modes = ("raw", "preprocessed") if args.mode == "both" else (args.mode,)
        for mode in modes:
            score = evaluate_sequence_rtg(dataset, mode=mode, config=config)
            print(f"{args.dataset} {mode}: {score:.3f}")
        return 0

    if args.command == "artifact":
        from repro.loghub.artifact import export_artifact
        from repro.loghub.corpus import DATASET_NAMES

        datasets = tuple(args.datasets) if args.datasets else DATASET_NAMES
        manifest = export_artifact(args.out_dir, datasets=datasets)
        print(
            f"artifact for {len(manifest.datasets)} datasets written to "
            f"{manifest.directory}",
            file=sys.stderr,
        )
        return 0

    if args.command == "report":
        from repro.core.report import review_report

        db = PatternDB(args.db, durable=args.durable_db)
        sys.stdout.write(
            review_report(
                db,
                service=args.service,
                min_count=args.min_count,
                max_complexity=args.max_complexity,
                limit=args.limit,
            )
        )
        return 0

    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    raise SystemExit(main())

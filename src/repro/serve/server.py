"""The serving tier: asyncio front door over the warm mining engines.

``sequence-rtg serve --listen tcp://…,http://…`` runs one
:class:`ServeServer`.  Three layers, three threads of control:

* the **event loop** (the calling thread) accepts connections and runs
  the listener handlers (:mod:`repro.serve.listeners`): read a chunk,
  decode frames incrementally, JSON-parse each record and offer it to
  the shard router.  Nothing here ever blocks on mining;
* the **shard router** (:mod:`repro.serve.router`) holds one bounded
  FIFO per mining shard, keyed by the same ``crc32(service)`` hash the
  persistent pool routes with, and applies the configured overload
  policy at each queue's high-water mark;
* the **dispatcher thread** drains the globally-oldest ``batch_size``
  records per cycle (k-way merge on arrival order) and feeds them to
  the miner: per-shard lists straight into
  :meth:`~repro.core.parallel.PersistentParallelSequenceRTG.analyze_sharded`
  (the PR 2 journal/delta-sync seam — worker processes overlap each
  other and the event loop), the single ordered list into a serial
  :class:`~repro.core.pipeline.SequenceRTG`, or record-by-record into a
  :class:`~repro.core.streaming.StreamDriver` in stream mode.

Because batch membership follows global arrival order and shard routing
is the pool's own hash, a single-connection network feed mines
**bit-identically** to the file-fed path over the same record stream —
the differential test in ``tests/serve/test_server.py`` asserts it.

Graceful drain (SIGTERM/SIGINT, or :meth:`ServeServer.request_drain`):
stop accepting, let live connections finish within a grace window,
flush every shard queue through the engine (stream mode closes its
driver, running the final maintenance flush), then return — the
pattern database was committed per batch throughout, so the returning
server *is* the checkpoint.  Exit is clean: all accepted-and-queued
records are mined, shed counts are exact.
"""

from __future__ import annotations

import asyncio
import os
import signal
import stat
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from functools import partial

from repro.core.ingest import parse_record
from repro.core.streaming import StreamDriver
from repro.serve.framing import MAX_FRAME_BYTES
from repro.serve.listeners import (
    ListenSpec,
    handle_http_connection,
    handle_stream_connection,
)
from repro.serve.router import OVERLOAD_POLICIES, ShardRouter

__all__ = ["ServeConfig", "ServeServer", "ServeStats"]


@dataclass(slots=True)
class ServeConfig:
    """Knobs of the network serving tier."""

    #: endpoints to bind (see :func:`repro.serve.listeners.parse_listen_specs`)
    listen: tuple[ListenSpec, ...]
    #: records per dispatch cycle — the mining batch size, same meaning
    #: as the file-fed path's ``--batch-size``
    batch_size: int = 100_000
    #: per-shard queue bound (records); 0 derives ``max(1024,
    #: 2 * batch_size / n_shards)`` so full cycles always fit
    high_water: int = 0
    #: what happens at the high-water mark: "block" (TCP pushback),
    #: "shed" (refuse newest, HTTP 429) or "drop_oldest"
    overload: str = "block"
    #: seconds a partial dispatch cycle waits for more records before
    #: mining what is queued (liveness under trickle traffic)
    dispatch_timeout_s: float = 1.0
    #: seconds live connections get to finish after drain starts before
    #: they are cancelled
    drain_grace_s: float = 1.0
    #: per-frame payload bound for the listeners
    max_frame: int = MAX_FRAME_BYTES

    def __post_init__(self) -> None:
        if not self.listen:
            raise ValueError("at least one listen endpoint is required")
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.high_water < 0:
            raise ValueError(f"high_water must be >= 0, got {self.high_water}")
        if self.overload not in OVERLOAD_POLICIES:
            raise ValueError(
                f"overload must be one of {OVERLOAD_POLICIES}, got "
                f"{self.overload!r}"
            )
        if self.dispatch_timeout_s <= 0:
            raise ValueError(
                f"dispatch_timeout_s must be positive, got {self.dispatch_timeout_s}"
            )
        if self.drain_grace_s < 0:
            raise ValueError(
                f"drain_grace_s must be >= 0, got {self.drain_grace_s}"
            )


@dataclass(slots=True)
class ServeStats:
    """Counters of one server's lifetime (updated in place)."""

    connections: int = 0
    frames: int = 0
    accepted: int = 0
    shed: int = 0
    malformed: int = 0
    protocol_errors: int = 0
    batches: int = 0
    records_mined: int = 0
    new_patterns: int = 0
    drained: bool = False
    #: recent ingest latencies (seconds, arrival → queue admission)
    latencies: deque = field(default_factory=lambda: deque(maxlen=65536))

    def latency_quantile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    def p99(self) -> float:
        return self.latency_quantile(0.99)


class ServeServer:
    """Bind listeners, shard-route records, feed the mining engine.

    *miner* is a serial :class:`~repro.core.pipeline.SequenceRTG`, a
    :class:`~repro.core.parallel.PersistentParallelSequenceRTG` pool
    (shard count = its worker count) or a
    :class:`~repro.core.streaming.StreamDriver` for stream mode.

    Run :meth:`run` on an event loop (the CLI does, with signal
    handlers installed), or :meth:`start_in_background` /
    :meth:`shutdown` from tests and embedding code.
    """

    def __init__(self, miner, config: ServeConfig, clock=time.monotonic) -> None:
        self.miner = miner
        self.config = config
        self.clock = clock
        self.stats = ServeStats()
        if isinstance(miner, StreamDriver):
            self._mode = "stream"
            self.n_shards = 1
            rtg_config = miner.rtg.config
            registry = miner.rtg.metrics if rtg_config.enable_metrics else None
        elif hasattr(miner, "analyze_sharded"):
            self._mode = "pool"
            self.n_shards = miner.n_workers
            registry = miner.metrics if miner.config.enable_metrics else None
        else:
            self._mode = "serial"
            self.n_shards = 1
            registry = miner.metrics if miner.config.enable_metrics else None
        high_water = config.high_water or max(
            1024, (2 * config.batch_size) // self.n_shards
        )
        self.high_water = high_water
        self.router = ShardRouter(
            n_shards=self.n_shards,
            high_water=high_water,
            policy=config.overload,
            metrics=registry,
        )
        self._latency_hist = None
        self._lines_counter = None
        self._malformed_counter = None
        self._connections_counter = None
        if registry is not None:
            from repro.obs.observer import METRIC_HELP

            self._latency_hist = registry.histogram(
                "rtg_serve_ingest_latency_seconds",
                METRIC_HELP["rtg_serve_ingest_latency_seconds"],
            )
            self._lines_counter = registry.counter(
                "rtg_ingest_lines_total", METRIC_HELP["rtg_ingest_lines_total"]
            )
            self._malformed_counter = registry.counter(
                "rtg_ingest_malformed_total",
                METRIC_HELP["rtg_ingest_malformed_total"],
            )
            self._connections_counter = registry.counter(
                "rtg_serve_connections_total",
                METRIC_HELP["rtg_serve_connections_total"],
            )
        #: resolved endpoints after binding (scheme, address) — ports are
        #: concrete even when a spec asked for port 0
        self.endpoints: list[tuple[str, str]] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._drain_async: asyncio.Event | None = None
        self._drain_early = False
        self._drain_dispatch = threading.Event()
        self._started = threading.Event()
        self._active: set[asyncio.Task] = set()
        self._error: BaseException | None = None
        self._thread: threading.Thread | None = None
        self._finished = False

    # -- ingress seam (called from the listener handlers) -----------------
    @property
    def closing(self) -> bool:
        """Whether drain has begun (health endpoint reports it)."""
        return self._drain_async is not None and self._drain_async.is_set()

    def connection_opened(self, source: str) -> None:
        self.stats.connections += 1
        if self._connections_counter is not None:
            self._connections_counter.inc(listener=source)

    def protocol_error(self, source: str) -> None:
        self.stats.protocol_errors += 1

    async def submit(self, frame: bytes, source: str, arrived: float) -> str:
        """Decode one frame and route it; returns the admission outcome.

        ``"accepted"`` — queued (latency recorded); ``"malformed"`` —
        not a valid two-field record, counted and dropped;
        ``"shed"`` — refused by the shed policy.  Under the block
        policy this coroutine *waits* for queue space instead of
        returning, which stalls the calling reader — the explicit
        backpressure seam.
        """
        stats = self.stats
        stats.frames += 1
        if self._lines_counter is not None:
            self._lines_counter.inc(source=source)
        record = parse_record(frame.decode("utf-8", errors="replace"))
        if record is None:
            stats.malformed += 1
            if self._malformed_counter is not None:
                self._malformed_counter.inc(source=source)
            return "malformed"
        while True:
            outcome = self.router.offer(record)
            if outcome != "blocked":
                break
            if self._error is not None:
                return "shed"
            await asyncio.sleep(0.002)
        if outcome == "accepted":
            stats.accepted += 1
            latency = self.clock() - arrived
            stats.latencies.append(latency)
            if self._latency_hist is not None:
                self._latency_hist.observe(latency)
        else:
            stats.shed += 1
        return outcome

    # -- dispatcher thread -------------------------------------------------
    def _mine(self, shards: list[list]) -> None:
        if self._mode == "pool":
            result = self.miner.analyze_sharded(shards)
        else:
            result = self.miner.analyze_by_service(shards[0])
        self.stats.batches += 1
        self.stats.records_mined += result.n_records
        self.stats.new_patterns += result.n_new_patterns

    def _dispatch_loop(self) -> None:
        try:
            if self._mode == "stream":
                self._dispatch_stream()
            else:
                self._dispatch_batches()
        except BaseException as exc:  # surfaced by run()
            self._error = exc
            if self._loop is not None:
                try:
                    self._loop.call_soon_threadsafe(self._begin_drain)
                except RuntimeError:
                    pass

    def _dispatch_batches(self) -> None:
        batch_size = self.config.batch_size
        router = self.router
        while True:
            if self._drain_dispatch.is_set():
                while True:
                    shards, taken = router.take_batch(batch_size)
                    if not taken:
                        return
                    self._mine(shards)
            total = router.wait_for(batch_size, self.config.dispatch_timeout_s)
            if self._drain_dispatch.is_set():
                continue
            if total:
                shards, taken = router.take_batch(batch_size)
                if taken:
                    self._mine(shards)

    def _dispatch_stream(self) -> None:
        """Stream mode: feed the driver promptly, let it micro-batch."""
        driver = self.miner
        router = self.router
        chunk = max(1, driver.config.micro_batch_size)
        stats = self.stats
        try:
            while True:
                draining = self._drain_dispatch.is_set()
                if not draining:
                    router.wait_for(chunk, 0.05)
                shards, taken = router.take_batch(max(chunk, 4096))
                if taken:
                    before = driver.stats.n_new_patterns
                    for record in shards[0]:
                        driver.offer(record)
                    stats.batches += 1
                    stats.records_mined += taken
                    stats.new_patterns += driver.stats.n_new_patterns - before
                elif draining:
                    break
                driver.poll()
        finally:
            before = self.miner.stats.n_new_patterns
            self.miner.close()
            stats.new_patterns += self.miner.stats.n_new_patterns - before

    # -- lifecycle ---------------------------------------------------------
    def request_drain(self) -> None:
        """Begin graceful drain (signal-handler and cross-thread safe)."""
        loop = self._loop
        if loop is None:
            self._drain_early = True
            return
        try:
            loop.call_soon_threadsafe(self._begin_drain)
        except RuntimeError:  # loop already closed
            pass

    def _begin_drain(self) -> None:
        if self._drain_async is not None:
            self._drain_async.set()

    async def _track(self, handler, reader, writer) -> None:
        task = asyncio.current_task()
        self._active.add(task)
        try:
            await handler(reader, writer)
        finally:
            self._active.discard(task)

    async def run(
        self, install_signals: bool = False, ready=None
    ) -> ServeStats:
        """Bind, serve until drain is requested, flush, return stats.

        *ready*, when given, is called once with the resolved endpoint
        list right after every listener is bound (the CLI prints them —
        with port 0 the kernel's choice is only known here).
        """
        if self._finished:
            raise RuntimeError("ServeServer instances are single-use")
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._drain_async = asyncio.Event()
        if self._drain_early:
            self._drain_async.set()

        servers: list[asyncio.AbstractServer] = []
        unix_paths: list[str] = []
        handled_signals: list[signal.Signals] = []
        dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatch", daemon=True
        )
        try:
            for spec in self.config.listen:
                if spec.scheme == "unix":
                    self._unlink_stale_socket(spec.path)
                    server = await asyncio.start_unix_server(
                        partial(
                            self._track,
                            partial(handle_stream_connection, self, source="unix"),
                        ),
                        path=spec.path,
                    )
                    unix_paths.append(spec.path)
                    self.endpoints.append(("unix", spec.path))
                else:
                    if spec.scheme == "http":
                        handler = partial(handle_http_connection, self)
                    else:
                        handler = partial(
                            handle_stream_connection, self, source="tcp"
                        )
                    server = await asyncio.start_server(
                        partial(self._track, handler), spec.host, spec.port
                    )
                    host, port = server.sockets[0].getsockname()[:2]
                    self.endpoints.append((spec.scheme, f"{host}:{port}"))
                servers.append(server)

            if install_signals:
                for signum in (signal.SIGTERM, signal.SIGINT):
                    try:
                        loop.add_signal_handler(signum, self.request_drain)
                        handled_signals.append(signum)
                    except (NotImplementedError, RuntimeError):
                        break

            if ready is not None:
                ready(list(self.endpoints))
            dispatcher.start()
            self._started.set()
            await self._drain_async.wait()

            # 1. stop accepting
            for server in servers:
                server.close()
            for server in servers:
                await server.wait_closed()
            # 2. let live connections finish (EOF) within the grace window
            deadline = self.clock() + self.config.drain_grace_s
            while self._active and self.clock() < deadline:
                await asyncio.sleep(0.02)
            for task in list(self._active):
                task.cancel()
            if self._active:
                await asyncio.gather(*self._active, return_exceptions=True)
            # 3. flush every shard queue through the engine
            self._drain_dispatch.set()
            self.router.notify()
            await loop.run_in_executor(None, dispatcher.join)
        finally:
            self._finished = True
            self._started.set()
            for signum in handled_signals:
                loop.remove_signal_handler(signum)
            for server in servers:
                server.close()
            if dispatcher.is_alive():  # bind failure before start(); drain it
                self._drain_dispatch.set()
                self.router.notify()
            for path in unix_paths:
                try:
                    os.unlink(path)
                except OSError:
                    pass
        if self._error is not None:
            raise self._error
        self.stats.drained = True
        return self.stats

    @staticmethod
    def _unlink_stale_socket(path: str) -> None:
        try:
            mode = os.stat(path).st_mode
        except OSError:
            return
        if stat.S_ISSOCK(mode):
            os.unlink(path)

    # -- embedding helpers -------------------------------------------------
    def start_in_background(self, timeout: float = 10.0) -> list[tuple[str, str]]:
        """Run the server on a private thread; return resolved endpoints."""
        if self._thread is not None:
            raise RuntimeError("server already started")

        def runner() -> None:
            try:
                asyncio.run(self.run(install_signals=False))
            except BaseException as exc:
                if self._error is None:
                    self._error = exc
                self._started.set()

        self._thread = threading.Thread(
            target=runner, name="serve-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("server failed to start in time")
        if self._error is not None:
            raise self._error
        return list(self.endpoints)

    def shutdown(self, timeout: float = 60.0) -> ServeStats:
        """Drain a background server and return its final stats."""
        if self._thread is None:
            raise RuntimeError("server was not started in the background")
        self.request_drain()
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("server failed to drain in time")
        if self._error is not None:
            raise self._error
        return self.stats

    def summary(self) -> dict:
        """One JSON-ready dict of the server's lifetime counters."""
        stats = self.stats
        return {
            "endpoints": [f"{scheme}://{addr}" for scheme, addr in self.endpoints],
            "mode": self._mode,
            "shards": self.n_shards,
            "high_water": self.high_water,
            "overload": self.config.overload,
            "connections": stats.connections,
            "frames": stats.frames,
            "accepted": stats.accepted,
            "shed": self.router.shed_total,
            "malformed": stats.malformed,
            "protocol_errors": stats.protocol_errors,
            "batches": stats.batches,
            "records_mined": stats.records_mined,
            "new_patterns": stats.new_patterns,
            "p99_ingest_latency_s": stats.p99(),
            "drained": stats.drained,
        }

"""Incremental frame decoding for the network ingest tier.

The listeners speak the two framings syslog-ng's ``network()`` /
``syslog()`` destinations emit (RFC 6587 transport of the JSON-template
payloads this repository has always ingested):

* **newline framing** (``\\n``-delimited, "non-transparent framing") —
  the same wire format :meth:`repro.workflow.stream.ProductionStream.jsonl`
  produces and the file-fed ``serve`` path reads;
* **octet-counted framing** (``<len> <payload>``, "octet stuffing
  safe") — a decimal byte count, one space, then exactly that many
  payload bytes.  Mandatory when payloads may contain newlines.

:class:`FrameDecoder` is deliberately *incremental*: it consumes raw
socket chunks of any size and returns the complete frames they finish,
keeping partial frames buffered — so a listener can read in large
chunks (64 KiB) and never blocks on line boundaries, and a frame split
across TCP segments costs no re-scan of the whole buffer (the newline
search resumes where the previous chunk ended).

The framing mode is auto-detected per connection from the first byte:
a leading ASCII digit means octet-counted (JSON payloads start with
``{``, never a digit), anything else means newline framing.  A
connection never changes mode.
"""

from __future__ import annotations

__all__ = ["FrameDecoder", "FramingError", "MAX_FRAME_BYTES"]

#: Default bound on one frame's payload size.  A log message is a few
#: hundred bytes; a megabyte frame is a protocol error or an attack,
#: not data.
MAX_FRAME_BYTES = 1 << 20

#: Longest believable ASCII length prefix of an octet-counted frame
#: (``MAX_FRAME_BYTES`` is 7 digits; 20 leaves slack for future bounds).
_MAX_PREFIX_DIGITS = 20

_NEWLINE = ord("\n")
_SPACE = ord(" ")
_DIGITS = frozenset(b"0123456789")


class FramingError(ValueError):
    """The byte stream violates the framing protocol.

    Raised for an oversized frame, a malformed octet-count prefix, or a
    length prefix that never terminates.  The connection that produced
    it cannot be resynchronised and must be closed (the listeners do,
    counting the event as a protocol error).
    """


class FrameDecoder:
    """Split a byte stream into frames, one socket chunk at a time."""

    __slots__ = ("max_frame", "_buffer", "_mode", "_scan_from", "_want")

    def __init__(self, max_frame: int = MAX_FRAME_BYTES) -> None:
        if max_frame <= 0:
            raise ValueError(f"max_frame must be positive, got {max_frame}")
        self.max_frame = max_frame
        self._buffer = bytearray()
        #: ``None`` until the first byte arrives, then "newline"/"octet"
        self._mode: str | None = None
        #: newline mode: offset the next delimiter scan resumes from
        self._scan_from = 0
        #: octet mode: payload bytes the current frame still needs
        #: (``None`` while parsing the length prefix)
        self._want: int | None = None

    @property
    def mode(self) -> str | None:
        """Detected framing ("newline" or "octet"), ``None`` before data."""
        return self._mode

    @property
    def buffered(self) -> int:
        """Bytes held for a frame still incomplete."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[bytes]:
        """Consume one chunk; return the complete frames it finished."""
        if not data:
            return []
        if self._mode is None:
            self._mode = "octet" if data[0] in _DIGITS else "newline"
        self._buffer.extend(data)
        if self._mode == "newline":
            return self._feed_newline()
        return self._feed_octet()

    def flush(self) -> bytes | None:
        """Return the trailing unterminated newline frame at EOF, if any.

        Octet-counted mode never flushes: a truncated frame is a
        protocol error, and returning half a payload would hand the
        parser garbage.  Call once, when the peer closed the stream.
        """
        if self._mode == "newline" and self._buffer:
            frame = bytes(self._buffer)
            self._buffer.clear()
            self._scan_from = 0
            return frame
        return None

    # -- newline framing -------------------------------------------------
    def _feed_newline(self) -> list[bytes]:
        buffer = self._buffer
        frames: list[bytes] = []
        start = 0
        scan = self._scan_from
        while True:
            cut = buffer.find(_NEWLINE, scan)
            if cut < 0:
                break
            frames.append(bytes(buffer[start:cut]))
            start = scan = cut + 1
        if start:
            del buffer[:start]
        if len(buffer) > self.max_frame:
            raise FramingError(
                f"unterminated line exceeds max frame size ({self.max_frame} bytes)"
            )
        self._scan_from = len(buffer)
        return frames

    # -- octet-counted framing -------------------------------------------
    def _feed_octet(self) -> list[bytes]:
        buffer = self._buffer
        frames: list[bytes] = []
        while True:
            if self._want is None:
                cut = buffer.find(_SPACE)
                if cut < 0:
                    if len(buffer) > _MAX_PREFIX_DIGITS:
                        raise FramingError(
                            "octet-counted length prefix never terminated"
                        )
                    break
                prefix = bytes(buffer[:cut])
                if not prefix or any(b not in _DIGITS for b in prefix):
                    raise FramingError(
                        f"malformed octet-counted length prefix {prefix!r}"
                    )
                want = int(prefix)
                if want > self.max_frame:
                    raise FramingError(
                        f"octet-counted frame of {want} bytes exceeds the "
                        f"max frame size ({self.max_frame} bytes)"
                    )
                del buffer[: cut + 1]
                self._want = want
            if len(buffer) < self._want:
                break
            want = self._want
            frames.append(bytes(buffer[:want]))
            del buffer[:want]
            self._want = None
        return frames

"""Consistent-hash shard router with bounded queues and backpressure.

The seam between the asyncio listener tier (producer: the event-loop
thread) and the mining dispatcher (consumer: one background thread that
feeds the engine).  Records are routed onto one of *n_shards* FIFO
queues by the **same** ``crc32(service) % n`` hash the persistent
worker pool uses for sticky routing
(:func:`repro.core.parallel.route_service`), so shard *i*'s queue holds
exactly the records the file-fed path would have dispatched to worker
*i* — network serving changes where records wait, never where they
mine.

Every queue is bounded by a per-shard **high-water mark**; what happens
at the mark is the configurable overload policy:

* ``"block"`` — the producer is told to wait (:meth:`ShardRouter.offer`
  returns ``"blocked"`` without enqueuing).  The asyncio handler stops
  reading its socket until space frees, which propagates to the client
  as TCP flow control — nothing is lost, clients slow down.
* ``"shed"`` — the incoming record is refused and counted; the HTTP
  listener surfaces this as a 429.  Newest data is sacrificed, queue
  contents (oldest first) survive.
* ``"drop_oldest"`` — the shard's oldest *queued* record is evicted to
  make room.  Freshest data survives; the eviction is counted as shed.

Each enqueued record carries a global arrival sequence number, assigned
under the router lock.  :meth:`ShardRouter.take_batch` drains the *B*
globally-oldest records as per-shard lists via a k-way merge on those
sequence numbers — so consecutive ``take_batch(B)`` calls reproduce
exactly the shard splits ``shard_records(stream[k*B:(k+1)*B])`` would
produce on the same arrival order, which is what keeps the network-fed
pool bit-identical to the file-fed one.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import deque

from repro.core.parallel import route_service
from repro.core.records import LogRecord

__all__ = ["ShardRouter", "OVERLOAD_POLICIES"]

#: Recognised overload policies.
OVERLOAD_POLICIES = ("block", "shed", "drop_oldest")


class ShardRouter:
    """Route records onto bounded per-shard queues; drain in batches."""

    def __init__(
        self,
        n_shards: int,
        high_water: int,
        policy: str = "block",
        metrics=None,
    ) -> None:
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        if high_water <= 0:
            raise ValueError(f"high_water must be positive, got {high_water}")
        if policy not in OVERLOAD_POLICIES:
            raise ValueError(
                f"policy must be one of {OVERLOAD_POLICIES}, got {policy!r}"
            )
        self.n_shards = n_shards
        self.high_water = high_water
        self.policy = policy
        #: (seq, record) FIFOs, seq strictly increasing within each
        self._shards: list[deque] = [deque() for _ in range(n_shards)]
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._seq = 0
        self._total = 0
        self._interrupted = False
        self.accepted_total = 0
        self.shed_total = 0
        self._depth_gauge = None
        self._accepted_counter = None
        self._shed_counter = None
        if metrics is not None:
            from repro.obs.observer import METRIC_HELP

            self._accepted_counter = metrics.counter(
                "rtg_serve_accepted_total",
                METRIC_HELP["rtg_serve_accepted_total"],
            )
            self._shed_counter = metrics.counter(
                "rtg_serve_shed_total", METRIC_HELP["rtg_serve_shed_total"]
            )
            self._depth_gauge = metrics.gauge(
                "rtg_serve_queue_depth", METRIC_HELP["rtg_serve_queue_depth"]
            )

    # -- producer side (event-loop thread) --------------------------------
    def shard_for(self, service: str) -> int:
        """Sticky shard of *service* — identical to the pool's routing."""
        return route_service(service, self.n_shards)

    def offer(self, record: LogRecord) -> str:
        """Route one record; returns ``"accepted"``, ``"shed"`` or
        ``"blocked"``.

        ``"blocked"`` (block policy, queue at the high-water mark) means
        nothing was enqueued — the caller must wait and retry, which is
        how socket readers exert TCP pushback.
        """
        shard = route_service(record.service, self.n_shards)
        with self._ready:
            queue = self._shards[shard]
            if len(queue) >= self.high_water:
                if self.policy == "block":
                    return "blocked"
                if self.policy == "shed":
                    self.shed_total += 1
                    if self._shed_counter is not None:
                        self._shed_counter.inc(
                            shard=str(shard), policy="shed"
                        )
                    return "shed"
                # drop_oldest: evict the shard's stalest queued record
                queue.popleft()
                self._total -= 1
                self.shed_total += 1
                if self._shed_counter is not None:
                    self._shed_counter.inc(
                        shard=str(shard), policy="drop_oldest"
                    )
            queue.append((self._seq, record))
            self._seq += 1
            self._total += 1
            self.accepted_total += 1
            if self._accepted_counter is not None:
                self._accepted_counter.inc(shard=str(shard))
            if self._depth_gauge is not None:
                self._depth_gauge.set(len(queue), shard=str(shard))
            self._ready.notify()
        return "accepted"

    def depth(self, shard: int) -> int:
        """Current queue depth of one shard."""
        with self._lock:
            return len(self._shards[shard])

    @property
    def total_queued(self) -> int:
        with self._lock:
            return self._total

    def has_space(self, service: str) -> bool:
        """Whether an :meth:`offer` for *service* would enqueue now."""
        shard = route_service(service, self.n_shards)
        with self._lock:
            return len(self._shards[shard]) < self.high_water

    # -- consumer side (dispatcher thread) ---------------------------------
    def wait_for(self, count: int, timeout: float) -> int:
        """Block until *count* records are queued, *timeout* elapses, or
        :meth:`notify` interrupts the wait.

        Returns the total queued at wake-up (possibly 0).  The producer
        notifies on every enqueue, so a full batch never waits out the
        timeout; a drain signal returns immediately instead of letting
        the dispatcher sleep out its deadline.
        """
        deadline = time.monotonic() + timeout
        with self._ready:
            while self._total < count and not self._interrupted:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._ready.wait(remaining)
            self._interrupted = False
            return self._total

    def notify(self) -> None:
        """Interrupt a consumer blocked in :meth:`wait_for` (drain)."""
        with self._ready:
            self._interrupted = True
            self._ready.notify_all()

    def take_batch(self, max_records: int) -> tuple[list[list[LogRecord]], int]:
        """Drain the *max_records* globally-oldest records, per shard.

        Returns ``(shards, n)`` where ``shards[i]`` is shard *i*'s slice
        of the batch in arrival order (possibly empty) and *n* the total
        records taken.  Selection is a k-way merge on arrival sequence
        numbers, so batch membership matches the file-fed path's
        ``records[k*B:(k+1)*B]`` windows exactly.
        """
        out: list[list[LogRecord]] = [[] for _ in range(self.n_shards)]
        taken = 0
        with self._ready:
            heads = [
                (queue[0][0], index)
                for index, queue in enumerate(self._shards)
                if queue
            ]
            heapq.heapify(heads)
            while heads and taken < max_records:
                _, index = heapq.heappop(heads)
                queue = self._shards[index]
                _, record = queue.popleft()
                out[index].append(record)
                taken += 1
                if queue:
                    heapq.heappush(heads, (queue[0][0], index))
            self._total -= taken
            if self._depth_gauge is not None and taken:
                for index, shard_out in enumerate(out):
                    if shard_out:
                        self._depth_gauge.set(
                            len(self._shards[index]), shard=str(index)
                        )
        return out, taken

"""Async network ingest tier (the serving front door).

``serve --listen`` turns the miner from a file reader into a network
service: framed-JSONL listeners over TCP and Unix domain sockets plus a
minimal HTTP/1.1 ``POST /ingest`` endpoint, a consistent-hash shard
router with bounded queues and explicit backpressure, and a dispatcher
feeding the warm worker pool — see :mod:`repro.serve.server` for the
full picture and ``docs/architecture.md`` ("Serving tier").
"""

from repro.serve.framing import FrameDecoder, FramingError, MAX_FRAME_BYTES
from repro.serve.listeners import (
    LISTEN_SCHEMES,
    ListenSpec,
    parse_listen_specs,
)
from repro.serve.router import OVERLOAD_POLICIES, ShardRouter
from repro.serve.server import ServeConfig, ServeServer, ServeStats

__all__ = [
    "FrameDecoder",
    "FramingError",
    "MAX_FRAME_BYTES",
    "LISTEN_SCHEMES",
    "ListenSpec",
    "parse_listen_specs",
    "OVERLOAD_POLICIES",
    "ShardRouter",
    "ServeConfig",
    "ServeServer",
    "ServeStats",
]

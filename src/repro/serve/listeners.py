"""Listener endpoints of the network ingest tier.

Three ways in, one data model out: every listener turns its wire format
into JSON-lines frames and pushes them through the server's ``submit``
seam (decode → route → shard queue), so the mining side never knows
which door a record came through.

* ``tcp://host:port`` — syslog-ng-compatible framed JSONL over TCP
  (newline or octet-counted framing, auto-detected per connection by
  :class:`~repro.serve.framing.FrameDecoder`);
* ``unix:///path`` — the same protocol over a Unix domain socket, for
  same-host log daemons that want to skip the TCP stack;
* ``http://host:port`` — a minimal HTTP/1.1 front door: ``POST
  /ingest`` with a JSONL body (one record per line), keep-alive
  supported, per-request accept/shed/malformed accounting in the JSON
  response, and 429 when the shed policy refused records.

Handlers read in 64 KiB chunks and decode frames incrementally, so the
event loop never blocks on line boundaries; every few hundred frames
they yield to the loop to keep accept latency flat across many
connections.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass

from repro.serve.framing import FrameDecoder, FramingError

__all__ = [
    "ListenSpec",
    "parse_listen_specs",
    "handle_stream_connection",
    "handle_http_connection",
    "LISTEN_SCHEMES",
]

#: Recognised listener schemes.
LISTEN_SCHEMES = ("tcp", "unix", "http")

#: Socket read chunk: big enough to amortise syscalls, small enough to
#: keep per-chunk decode bursts short on the event loop.
_CHUNK = 65536

#: Frames decoded between cooperative yields back to the event loop.
_YIELD_EVERY = 512

#: Bound on one HTTP request body (a batch of JSONL records).
MAX_HTTP_BODY = 8 << 20


@dataclass(frozen=True, slots=True)
class ListenSpec:
    """One parsed ``--listen`` endpoint."""

    scheme: str  # "tcp" | "unix" | "http"
    host: str = ""
    port: int = 0
    path: str = ""  # unix only

    def __str__(self) -> str:
        if self.scheme == "unix":
            return f"unix://{self.path}"
        return f"{self.scheme}://{self.host}:{self.port}"


def parse_listen_specs(text: str) -> list[ListenSpec]:
    """Parse a comma-separated ``--listen`` value.

    ``tcp://127.0.0.1:7514,unix:///run/rtg.sock,http://0.0.0.0:8080``
    — port 0 asks the kernel for a free port (the server reports the
    bound endpoints back).
    """
    specs: list[ListenSpec] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        scheme, sep, rest = part.partition("://")
        if not sep or scheme not in LISTEN_SCHEMES:
            raise ValueError(
                f"unsupported listen endpoint {part!r}: expected "
                "tcp://host:port, unix:///path or http://host:port"
            )
        if scheme == "unix":
            if not rest:
                raise ValueError(f"unix endpoint needs a socket path: {part!r}")
            specs.append(ListenSpec(scheme="unix", path=rest))
            continue
        host, sep, port_text = rest.rpartition(":")
        if not sep or not port_text.isdigit():
            raise ValueError(
                f"endpoint {part!r} needs an explicit port (0 = ephemeral)"
            )
        specs.append(
            ListenSpec(scheme=scheme, host=host or "127.0.0.1", port=int(port_text))
        )
    if not specs:
        raise ValueError(f"no listen endpoints in {text!r}")
    return specs


# ----------------------------------------------------------------------
# TCP / UDS: framed JSONL
# ----------------------------------------------------------------------

async def handle_stream_connection(
    ingress, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
    source: str,
) -> None:
    """One framed-JSONL connection: decode incrementally, submit frames.

    *ingress* is the owning :class:`~repro.serve.server.ServeServer`;
    its ``submit`` applies the overload policy (a blocked submit awaits
    queue space, which stalls this reader and pushes back on the
    client's TCP window).
    """
    ingress.connection_opened(source)
    decoder = FrameDecoder(max_frame=ingress.config.max_frame)
    clock = ingress.clock
    try:
        while True:
            chunk = await reader.read(_CHUNK)
            if not chunk:
                tail = decoder.flush()
                if tail is not None:
                    await ingress.submit(tail, source, clock())
                break
            arrived = clock()
            frames = decoder.feed(chunk)
            for index, frame in enumerate(frames):
                await ingress.submit(frame, source, arrived)
                if index % _YIELD_EVERY == _YIELD_EVERY - 1:
                    await asyncio.sleep(0)
    except FramingError:
        ingress.protocol_error(source)
    except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


# ----------------------------------------------------------------------
# HTTP/1.1 front door
# ----------------------------------------------------------------------

def _http_response(
    status: int, reason: str, body: dict, keep_alive: bool
) -> bytes:
    payload = (json.dumps(body) + "\n").encode("utf-8")
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: {connection}\r\n"
        "\r\n"
    ).encode("ascii")
    return head + payload


async def _read_http_head(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str]] | None:
    """Read one request line + headers; ``None`` on EOF before a request."""
    line = await reader.readline()
    if not line:
        return None
    try:
        method, target, _version = line.decode("ascii").split(None, 2)
    except ValueError:
        raise FramingError(f"malformed HTTP request line {line!r}") from None
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n"):
            break
        if not raw:
            raise FramingError("HTTP headers truncated")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise FramingError(f"malformed HTTP header {raw!r}")
        headers[name.strip().lower()] = value.strip()
    return method.upper(), target, headers


async def handle_http_connection(
    ingress, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    """One HTTP/1.1 connection: ``POST /ingest`` JSONL bodies, keep-alive."""
    ingress.connection_opened("http")
    clock = ingress.clock
    try:
        while True:
            head = await _read_http_head(reader)
            if head is None:
                break
            method, target, headers = head
            keep_alive = headers.get("connection", "keep-alive").lower() != "close"
            path = target.split("?", 1)[0]

            if method == "GET" and path in ("/healthz", "/health"):
                writer.write(
                    _http_response(
                        200, "OK",
                        {"status": "draining" if ingress.closing else "ok"},
                        keep_alive,
                    )
                )
                await writer.drain()
                if not keep_alive:
                    break
                continue

            if method != "POST" or path != "/ingest":
                writer.write(
                    _http_response(
                        404, "Not Found",
                        {"error": "POST /ingest or GET /healthz"}, False,
                    )
                )
                await writer.drain()
                break

            length_text = headers.get("content-length")
            if length_text is None or not length_text.isdigit():
                writer.write(
                    _http_response(
                        411, "Length Required",
                        {"error": "Content-Length required"}, False,
                    )
                )
                await writer.drain()
                break
            length = int(length_text)
            if length > MAX_HTTP_BODY:
                writer.write(
                    _http_response(
                        413, "Payload Too Large",
                        {"error": f"body over {MAX_HTTP_BODY} bytes"}, False,
                    )
                )
                await writer.drain()
                break

            body = await reader.readexactly(length)
            arrived = clock()
            decoder = FrameDecoder(max_frame=ingress.config.max_frame)
            frames = decoder.feed(body)
            tail = decoder.flush()
            if tail is not None:
                frames.append(tail)
            accepted = shed = malformed = 0
            for index, frame in enumerate(frames):
                outcome = await ingress.submit(frame, "http", arrived)
                if outcome == "accepted":
                    accepted += 1
                elif outcome == "shed":
                    shed += 1
                else:
                    malformed += 1
                if index % _YIELD_EVERY == _YIELD_EVERY - 1:
                    await asyncio.sleep(0)
            status, reason = (429, "Too Many Requests") if shed else (200, "OK")
            writer.write(
                _http_response(
                    status, reason,
                    {"accepted": accepted, "shed": shed, "malformed": malformed},
                    keep_alive,
                )
            )
            await writer.drain()
            if not keep_alive:
                break
    except (FramingError, asyncio.IncompleteReadError):
        ingress.protocol_error("http")
    except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

"""Prometheus text exposition (format version 0.0.4).

Renders a :class:`~repro.obs.metrics.MetricsRegistry` in the plain-text
format every Prometheus-compatible scraper understands:

```
# HELP rtg_stage_latency_seconds Wall-clock seconds per engine stage run
# TYPE rtg_stage_latency_seconds histogram
rtg_stage_latency_seconds_bucket{le="0.001",stage="scan"} 12
...
rtg_stage_latency_seconds_sum{stage="scan"} 0.0421
rtg_stage_latency_seconds_count{stage="scan"} 14
```

Output is fully sorted (families by name, samples by label key) so two
renders of the same state are byte-identical — the property the golden
tests and the CLI snapshot command rely on.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry

__all__ = ["render_prometheus", "CONTENT_TYPE"]

#: value for the HTTP ``Content-Type`` header of a scrape response
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """Integral floats print as integers, like the reference clients."""
    f = float(value)
    return str(int(f)) if f.is_integer() else repr(f)


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _format_bound(bound: float) -> str:
    return str(int(bound)) if float(bound).is_integer() else repr(float(bound))


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry's current state as exposition text."""
    lines: list[str] = []
    for name, entry in sorted(registry.snapshot().items()):
        if entry["help"]:
            lines.append(f"# HELP {name} {_escape_help(entry['help'])}")
        lines.append(f"# TYPE {name} {entry['kind']}")
        for key in sorted(entry["samples"]):
            labels = dict(key)
            value = entry["samples"][key]
            if entry["kind"] == "histogram":
                counts, h_sum, h_count = value
                running = 0
                for bound, count in zip(entry["buckets"], counts):
                    running += count
                    bucket_labels = labels | {"le": _format_bound(bound)}
                    lines.append(
                        f"{name}_bucket{_format_labels(bucket_labels)} {running}"
                    )
                lines.append(
                    f'{name}_bucket{_format_labels(labels | {"le": "+Inf"})}'
                    f" {h_count}"
                )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} {_format_value(h_sum)}"
                )
                lines.append(f"{name}_count{_format_labels(labels)} {h_count}")
            else:
                lines.append(
                    f"{name}{_format_labels(labels)} {_format_value(value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")

"""Dependency-free metrics primitives.

The paper positions Sequence-RTG as a continuously running production
service behind syslog-ng; operating one means watching match rates,
per-stage latency and pattern-database growth over time.  This module
is the storage layer for that telemetry: a :class:`MetricsRegistry`
holding :class:`Counter`, :class:`Gauge` and :class:`Histogram`
families, free of third-party dependencies (the library's standing
constraint) and safe to touch from multiple threads (the pipelined
ingester's reader thread and the metrics HTTP server both run
concurrently with analysis).

Label handling is per-sample rather than per-family: a sample's key is
the sorted tuple of its ``(label, value)`` pairs, so the same metric
name can carry ``{stage=...}`` samples from the serial engine and
``{stage=..., worker=...}`` samples merged from pool workers without a
schema conflict.

Cross-process aggregation follows the same snapshot/delta discipline as
:meth:`repro.core.fastpath.FastPath.snapshot`: counters and histograms
are cumulative and additive, so a worker snapshots its registry before
and after a batch, ships :meth:`MetricsRegistry.snapshot_delta` of the
two, and the parent folds it in with :meth:`MetricsRegistry.merge`.
Gauges are last-value-wins — safe here because pool sharding is
service-disjoint, so no two workers ever publish the same gauge sample.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "snapshot_to_dict",
]

#: Fixed log-scale latency buckets (seconds): 1–2.5–5 steps per decade
#: from 100µs to 10s, wide enough for a single scan stage and for a
#: whole 100k-message batch.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)


def _label_key(const: tuple, labels: dict) -> tuple:
    """Canonical hashable key of one sample's label set."""
    if not labels:
        return const
    merged = dict(const)
    merged.update(labels)
    return tuple(sorted(merged.items()))


class _Metric:
    """One metric family: a name, a help string and labelled samples."""

    kind = "untyped"
    __slots__ = ("name", "help", "_lock", "_const", "_samples")

    def __init__(self, name: str, help: str, lock: threading.RLock,
                 const: tuple) -> None:
        self.name = name
        self.help = help
        self._lock = lock
        self._const = const
        #: label key -> sample value (float, or histogram state)
        self._samples: dict[tuple, object] = {}

    def samples(self) -> dict[tuple, object]:
        """Point-in-time copy of the family's samples."""
        with self._lock:
            return dict(self._samples)


class Counter(_Metric):
    """Monotonically increasing value (events, rows, patterns)."""

    kind = "counter"
    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        key = _label_key(self._const, labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return float(self._samples.get(_label_key(self._const, labels), 0.0))


class Gauge(_Metric):
    """Point-in-time value (sizes, fractions, lags)."""

    kind = "gauge"
    __slots__ = ()

    def set(self, value: float, **labels: str) -> None:
        key = _label_key(self._const, labels)
        with self._lock:
            self._samples[key] = float(value)

    def value(self, **labels: str) -> float:
        with self._lock:
            return float(self._samples.get(_label_key(self._const, labels), 0.0))


class Histogram(_Metric):
    """Cumulative-bucket distribution (latencies).

    A sample is ``[bucket_counts, sum, count]`` where ``bucket_counts``
    holds the non-cumulative count per bucket bound (cumulated only at
    exposition time), which keeps delta/merge plain element-wise
    addition.
    """

    kind = "histogram"
    __slots__ = ("buckets",)

    def __init__(self, name: str, help: str, lock: threading.RLock,
                 const: tuple, buckets: tuple[float, ...]) -> None:
        super().__init__(name, help, lock, const)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"buckets must be a sorted non-empty sequence, got {buckets}")
        self.buckets = tuple(float(b) for b in buckets)

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(self._const, labels)
        # index of the first bucket >= value; len(buckets) = +Inf overflow
        i = bisect_left(self.buckets, value)
        with self._lock:
            state = self._samples.get(key)
            if state is None:
                state = [[0] * (len(self.buckets) + 1), 0.0, 0]
                self._samples[key] = state
            state[0][i] += 1
            state[1] += value
            state[2] += 1

    def count(self, **labels: str) -> int:
        with self._lock:
            state = self._samples.get(_label_key(self._const, labels))
            return int(state[2]) if state is not None else 0

    def sum(self, **labels: str) -> float:
        with self._lock:
            state = self._samples.get(_label_key(self._const, labels))
            return float(state[1]) if state is not None else 0.0


class MetricsRegistry:
    """Thread-safe collection of metric families.

    ``get-or-create`` accessors (:meth:`counter`, :meth:`gauge`,
    :meth:`histogram`) make wiring order-independent: the first caller
    registers the family, later callers get the same object, and a kind
    mismatch raises instead of silently mixing semantics.

    *const_labels* are stamped onto every sample recorded through this
    registry — pool workers use ``{"worker": "3"}`` so their samples
    stay distinguishable after the parent merges them.
    """

    def __init__(self, const_labels: dict[str, str] | None = None) -> None:
        self._lock = threading.RLock()
        self._metrics: dict[str, _Metric] = {}
        self._const: tuple = tuple(sorted((const_labels or {}).items()))

    # -- family accessors ------------------------------------------------
    def _get(self, name: str, kind: type, factory) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif type(metric) is not kind:
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(
            name, Counter, lambda: Counter(name, help, self._lock, self._const)
        )

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(
            name, Gauge, lambda: Gauge(name, help, self._lock, self._const)
        )

    def histogram(
        self, name: str, help: str = "",
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get(
            name,
            Histogram,
            lambda: Histogram(name, help, self._lock, self._const, buckets),
        )

    def collect(self) -> list[_Metric]:
        """The registered families, sorted by name (for exposition)."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    # -- snapshot / delta / merge ---------------------------------------
    def snapshot(self) -> dict:
        """Picklable cumulative state of every family.

        Shape: ``{name: {"kind", "help", "buckets"?, "samples": {label_key:
        value}}}`` with histogram sample values as ``(tuple(bucket_counts),
        sum, count)``.  Diff two snapshots with :meth:`snapshot_delta`,
        fold a snapshot (or delta) into another registry with
        :meth:`merge`.
        """
        out: dict = {}
        with self._lock:
            for name, metric in self._metrics.items():
                entry: dict = {"kind": metric.kind, "help": metric.help}
                if metric.kind == "histogram":
                    entry["buckets"] = metric.buckets
                    entry["samples"] = {
                        key: (tuple(state[0]), state[1], state[2])
                        for key, state in metric._samples.items()
                    }
                else:
                    entry["samples"] = dict(metric._samples)
                out[name] = entry
        return out

    @staticmethod
    def snapshot_delta(before: dict, after: dict) -> dict:
        """Per-interval change between two :meth:`snapshot` calls.

        Counters and histograms subtract (a sample absent from *before*
        deltas against zero); gauges report their *after* value.
        """
        out: dict = {}
        for name, entry in after.items():
            prior = before.get(name, {}).get("samples", {})
            delta_entry = {k: v for k, v in entry.items() if k != "samples"}
            samples: dict = {}
            for key, value in entry["samples"].items():
                if entry["kind"] == "gauge":
                    samples[key] = value
                elif entry["kind"] == "histogram":
                    b_counts, b_sum, b_count = prior.get(
                        key, ((0,) * len(value[0]), 0.0, 0)
                    )
                    samples[key] = (
                        tuple(a - b for a, b in zip(value[0], b_counts)),
                        value[1] - b_sum,
                        value[2] - b_count,
                    )
                else:
                    samples[key] = value - prior.get(key, 0.0)
            delta_entry["samples"] = samples
            out[name] = delta_entry
        return out

    def merge(self, delta: dict) -> None:
        """Fold a :meth:`snapshot` (or delta) into this registry.

        Counter and histogram samples add; gauge samples overwrite.
        This is how the pool front ends aggregate worker-side registries
        into the shared one.
        """
        for name, entry in delta.items():
            kind = entry["kind"]
            if kind == "counter":
                metric = self.counter(name, entry.get("help", ""))
            elif kind == "gauge":
                metric = self.gauge(name, entry.get("help", ""))
            elif kind == "histogram":
                metric = self.histogram(
                    name, entry.get("help", ""),
                    buckets=tuple(entry["buckets"]),
                )
            else:  # pragma: no cover - snapshots only carry known kinds
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
            with self._lock:
                for key, value in entry["samples"].items():
                    key = tuple(key)
                    if kind == "gauge":
                        metric._samples[key] = float(value)
                    elif kind == "histogram":
                        state = metric._samples.get(key)
                        if state is None:
                            state = [[0] * (len(metric.buckets) + 1), 0.0, 0]
                            metric._samples[key] = state
                        counts, h_sum, h_count = value
                        for i, c in enumerate(counts):
                            state[0][i] += c
                        state[1] += h_sum
                        state[2] += h_count
                    else:
                        metric._samples[key] = metric._samples.get(key, 0.0) + value

    def to_dict(self) -> dict:
        """JSON-compatible dump of the current state."""
        return snapshot_to_dict(self.snapshot())


def snapshot_to_dict(snapshot: dict) -> dict:
    """Render a :meth:`MetricsRegistry.snapshot` (or delta) JSON-safe.

    Label keys become plain dicts; histogram samples expose cumulative
    bucket counts keyed by upper bound, matching the exposition shape.
    """
    out: dict = {}
    for name, entry in sorted(snapshot.items()):
        samples = []
        for key in sorted(entry["samples"]):
            value = entry["samples"][key]
            labels = dict(key)
            if entry["kind"] == "histogram":
                cumulative: dict[str, int] = {}
                running = 0
                for bound, count in zip(entry["buckets"], value[0]):
                    running += count
                    cumulative[repr(float(bound))] = running
                cumulative["+Inf"] = running + value[0][-1]
                samples.append(
                    {
                        "labels": labels,
                        "buckets": cumulative,
                        "sum": value[1],
                        "count": value[2],
                    }
                )
            else:
                samples.append({"labels": labels, "value": value})
        out[name] = {
            "kind": entry["kind"],
            "help": entry["help"],
            "samples": samples,
        }
    return out

"""Engine instrumentation: the metrics seam of the staged workflow.

:class:`MetricsObserver` rides the same four :class:`StageObserver`
hooks as the timing and fast-lane observers and turns them into
first-class metrics:

* per-stage latency histograms, timed around every stage run;
* per-service rows-in / matched / unmatched / patterns-out counters,
  tallied when a service group's ``persist`` stage completes;
* batch-level aggregates — batches total, parse matched-fraction gauge,
  fast-lane hit/miss/eviction/dedup counters, pattern-DB size gauges —
  folded from the finished :class:`BatchResult` (which the timing and
  fast-lane observers have already filled, so this observer must run
  after them, where :func:`repro.core.engine.default_observers` puts it).

Inside pool workers ``batch_level`` is switched off: a worker only
accumulates the stage-level signal and ships the registry delta with
its :class:`~repro.core.parallel._ShardOutcome`; the parent folds the
batch-level aggregates exactly once from the merged result via
:func:`fold_batch_result`, so nothing is double-counted.
"""

from __future__ import annotations

import time

from repro.core.engine import BatchResult, ServiceBatchContext, StageObserver
from repro.obs.metrics import MetricsRegistry, snapshot_to_dict

__all__ = [
    "MetricsObserver",
    "fold_batch_result",
    "observe_patterndb",
    "METRIC_HELP",
]

#: metric name -> help string, the single naming authority (docs table
#: in docs/architecture.md mirrors this)
METRIC_HELP = {
    "rtg_stage_latency_seconds": "Wall-clock seconds per engine stage run (one observation per service group; scan, parse and analyze runs carry their backend label)",
    "rtg_scan_tokens_total": "Tokens emitted by the scan stage, by service and tokenizer backend",
    "rtg_parse_candidates": "Candidate-frontier size per parse-stage match (trie states visited by the reference parser backend, candidate programs considered by the compiled one), by backend",
    "rtg_analyze_trie_nodes": "Analysis-trie node count per mined length partition (peak footprint before sibling merging), by analyser backend",
    "rtg_records_total": "Log records entering the engine, by service",
    "rtg_matched_total": "Record occurrences matched by already-known patterns, by service",
    "rtg_unmatched_total": "Record occurrences passed on to the analyser, by service",
    "rtg_patterns_total": "Newly discovered patterns persisted, by service",
    "rtg_batches_total": "Batches analysed",
    "rtg_matched_fraction": "Fraction of the last batch's records matched by known patterns",
    "rtg_fastlane_events_total": "Duplicate-aware fast lane events (scan/match cache hits, misses, evictions; dedup outcomes)",
    "rtg_patterndb_rows": "Pattern database row counts, by table",
    "rtg_patterndb_patterns": "Stored patterns, by service",
    "rtg_journal_lag": "Pattern-journal entries a pool worker had not yet synced at dispatch time",
    "rtg_pool_workers": "Worker processes used by the last pool batch",
    "rtg_pool_events_total": "Worker pool lifecycle events (spawn, respawn)",
    "rtg_pool_sync_patterns_total": "Patterns delta-synced to pool workers",
    "rtg_pool_sync_bytes_total": "Bytes of delta-sync payload shipped to pool workers",
    "rtg_ingest_lines_total": "Stream items consumed by the ingest tier (network frames carry a source label: tcp, unix, http; the file-fed ingester reports unlabelled)",
    "rtg_ingest_malformed_total": "Stream items dropped as malformed (bad JSON or missing service/message fields), by source on the network path",
    "rtg_ingest_reader_leaks_total": "Pipelined-ingest reader threads that failed to exit within join_timeout when their generator closed",
    "rtg_serve_accepted_total": "Records admitted into a serving-tier shard queue, by shard",
    "rtg_serve_shed_total": "Records shed at a serving-tier high-water mark (shed: newest refused, HTTP 429; drop_oldest: stalest queued record evicted), by shard and policy",
    "rtg_serve_queue_depth": "Current serving-tier shard queue depth in records, by shard",
    "rtg_serve_ingest_latency_seconds": "Seconds from socket arrival to shard-queue admission per accepted record (includes block-policy backpressure waits)",
    "rtg_serve_connections_total": "Serving-tier connections accepted, by listener (tcp, unix, http)",
    "rtg_stream_message_latency_seconds": "Per-message processing latency in stream mode (micro-batch wall clock divided by its record count, one observation per record)",
    "rtg_stream_flushes_total": "Evolving-state flushes in stream mode, by trigger (pending, partition_bound, interval, close, manual)",
    "rtg_stream_evictions_total": "Patterns TTL-evicted in stream mode, by service",
    "rtg_stream_drift_total": "Drift-maintenance pattern mutations in stream mode, by event (merge: retired into a subsuming general pattern; split: variable folded to a constant)",
}

#: ``BatchResult.cache`` counter key -> (cache, event) labels
_FASTLANE_EVENTS = {
    "scan_hits": ("scan", "hit"),
    "scan_misses": ("scan", "miss"),
    "scan_evictions": ("scan", "eviction"),
    "match_hits": ("match", "hit"),
    "match_misses": ("match", "miss"),
    "match_evictions": ("match", "eviction"),
    "dedup_unique": ("dedup", "unique"),
    "dedup_duplicates": ("dedup", "duplicate"),
}

#: Candidate-count buckets for ``rtg_parse_candidates``: frontiers are
#: small integers (one pattern-length bucket of the service's set), not
#: latencies, so the histogram uses a 1–2.5–5 ladder over counts.
_CANDIDATE_BUCKETS: tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000,
)

#: Node-count buckets for ``rtg_analyze_trie_nodes``: a partition's trie
#: holds one node per distinct edge plus END markers, from a handful for
#: a converged stream up to tens of thousands on a cold batch.
_TRIE_NODE_BUCKETS: tuple[float, ...] = (
    10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000,
)


class MetricsObserver(StageObserver):
    """Publish the staged engine's execution into a metrics registry."""

    def __init__(self, registry: MetricsRegistry, db=None,
                 batch_level: bool = True, scan_backend: str = "fsm",
                 parse_backend: str = "reference",
                 analyze_backend: str = "reference") -> None:
        self.registry = registry
        #: pattern database whose sizes are published at batch end (the
        #: shared DB serially, ``None`` inside pool workers)
        self.db = db
        #: fold batch-level aggregates and fill ``BatchResult.metrics``;
        #: off inside pool workers, whose deltas the parent folds once
        self.batch_level = batch_level
        #: tokenizer backend label on scan-stage samples
        #: (``Scanner.backend_name``: "fsm" or "compiled")
        self.scan_backend = scan_backend
        #: matcher backend label on parse-stage samples
        #: (``Parser.backend_name``: "reference" or "compiled")
        self.parse_backend = parse_backend
        #: analyser backend label on analyze-stage samples
        #: (``AnalyzerConfig.backend``: "reference" or "compiled")
        self.analyze_backend = analyze_backend
        self._stage_latency = registry.histogram(
            "rtg_stage_latency_seconds",
            METRIC_HELP["rtg_stage_latency_seconds"],
        )
        self._parse_candidates = registry.histogram(
            "rtg_parse_candidates",
            METRIC_HELP["rtg_parse_candidates"],
            buckets=_CANDIDATE_BUCKETS,
        )
        self._trie_nodes = registry.histogram(
            "rtg_analyze_trie_nodes",
            METRIC_HELP["rtg_analyze_trie_nodes"],
            buckets=_TRIE_NODE_BUCKETS,
        )
        self._scan_tokens = registry.counter(
            "rtg_scan_tokens_total", METRIC_HELP["rtg_scan_tokens_total"]
        )
        self._records = registry.counter(
            "rtg_records_total", METRIC_HELP["rtg_records_total"]
        )
        self._matched = registry.counter(
            "rtg_matched_total", METRIC_HELP["rtg_matched_total"]
        )
        self._unmatched = registry.counter(
            "rtg_unmatched_total", METRIC_HELP["rtg_unmatched_total"]
        )
        self._patterns = registry.counter(
            "rtg_patterns_total", METRIC_HELP["rtg_patterns_total"]
        )
        self._before: dict = {}
        self._stage_t0 = 0.0

    # -- stage-level -----------------------------------------------------
    def on_batch_start(self, result: BatchResult) -> None:
        if self.batch_level:
            self._before = self.registry.snapshot()

    def on_stage_start(self, stage: str, ctx: ServiceBatchContext) -> None:
        self._stage_t0 = time.perf_counter()

    def on_stage_end(self, stage: str, ctx: ServiceBatchContext) -> None:
        elapsed = time.perf_counter() - self._stage_t0
        if stage == "scan":
            self._stage_latency.observe(
                elapsed, stage=stage, backend=self.scan_backend
            )
            tokens = sum(len(m.tokens) for m in ctx.scanned)
            if tokens:
                self._scan_tokens.inc(
                    tokens, service=ctx.service, backend=self.scan_backend
                )
            return
        if stage == "parse":
            self._stage_latency.observe(
                elapsed, stage=stage, backend=self.parse_backend
            )
            observe = self._parse_candidates.observe
            for frontier in ctx.parse_frontiers:
                observe(frontier, backend=self.parse_backend)
            return
        if stage == "analyze":
            self._stage_latency.observe(
                elapsed, stage=stage, backend=self.analyze_backend
            )
            observe = self._trie_nodes.observe
            for nodes in ctx.trie_node_sizes:
                observe(nodes, backend=self.analyze_backend)
            return
        self._stage_latency.observe(elapsed, stage=stage)
        if stage != "persist":
            return
        # the group's flow is complete; tally its per-service outcome
        service = ctx.service
        self._records.inc(len(ctx.records), service=service)
        matched = sum(ctx.match_counts.values())
        if matched:
            self._matched.inc(matched, service=service)
        unmatched = sum(ctx.unmatched_counts)
        if unmatched:
            self._unmatched.inc(unmatched, service=service)
        if ctx.new_patterns:
            self._patterns.inc(len(ctx.new_patterns), service=service)

    # -- batch-level -----------------------------------------------------
    def on_batch_end(self, result: BatchResult) -> None:
        if not self.batch_level:
            return
        fold_batch_result(self.registry, result, db=self.db)
        result.metrics = snapshot_to_dict(
            MetricsRegistry.snapshot_delta(self._before, self.registry.snapshot())
        )


def fold_batch_result(registry: MetricsRegistry, result: BatchResult,
                      db=None) -> None:
    """Fold one finished batch's aggregates into *registry*.

    The batch-level half of the metrics seam, shared by the serial
    observer and the pool front ends (which have no stage events of
    their own — their stage-level signal arrives as merged worker
    deltas).  Must run exactly once per batch per registry.
    """
    registry.counter(
        "rtg_batches_total", METRIC_HELP["rtg_batches_total"]
    ).inc()
    registry.gauge(
        "rtg_matched_fraction", METRIC_HELP["rtg_matched_fraction"]
    ).set(result.matched_fraction)

    if result.cache:
        fastlane = registry.counter(
            "rtg_fastlane_events_total", METRIC_HELP["rtg_fastlane_events_total"]
        )
        for key, value in result.cache.items():
            target = _FASTLANE_EVENTS.get(key)
            if target is not None and value > 0:
                fastlane.inc(value, cache=target[0], event=target[1])

    if result.pool:
        pool = result.pool
        registry.gauge(
            "rtg_pool_workers", METRIC_HELP["rtg_pool_workers"]
        ).set(pool.get("workers", 0))
        events = registry.counter(
            "rtg_pool_events_total", METRIC_HELP["rtg_pool_events_total"]
        )
        for event in ("spawns", "respawns"):
            if pool.get(event, 0):
                events.inc(pool[event], event=event.rstrip("s"))
        if pool.get("sync_patterns", 0):
            registry.counter(
                "rtg_pool_sync_patterns_total",
                METRIC_HELP["rtg_pool_sync_patterns_total"],
            ).inc(pool["sync_patterns"])
        if pool.get("sync_bytes", 0):
            registry.counter(
                "rtg_pool_sync_bytes_total",
                METRIC_HELP["rtg_pool_sync_bytes_total"],
            ).inc(pool["sync_bytes"])

    if db is not None:
        observe_patterndb(registry, db)


def observe_patterndb(registry: MetricsRegistry, db) -> None:
    """Publish *db*'s current sizes as gauges (shared with the CLI
    ``metrics`` snapshot command)."""
    rows = registry.gauge(
        "rtg_patterndb_rows", METRIC_HELP["rtg_patterndb_rows"]
    )
    for table, n in db.counts().items():
        rows.set(n, table=table)
    per_service = registry.gauge(
        "rtg_patterndb_patterns", METRIC_HELP["rtg_patterndb_patterns"]
    )
    for service, n in db.counts_by_service().items():
        per_service.set(n, service=service)

"""Production observability (`repro.obs`).

The paper sells Sequence-RTG as *production-ready*; this package is the
runtime visibility that claim needs in practice: a dependency-free
metrics registry (:mod:`repro.obs.metrics`), Prometheus text exposition
(:mod:`repro.obs.exposition`), a stdlib scrape endpoint
(:mod:`repro.obs.server`) and the :class:`StageObserver` that feeds the
registry from the staged mining engine (:mod:`repro.obs.observer`).

All three execution paths — serial :class:`~repro.core.pipeline.SequenceRTG`,
the cold pool and the warm persistent pool — publish into a registry
reachable as ``miner.metrics``; pool workers aggregate into the parent's
registry by shipping snapshot deltas with their batch replies.
"""

from repro.obs.exposition import CONTENT_TYPE, render_prometheus
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    snapshot_to_dict,
)
from repro.obs.observer import (
    METRIC_HELP,
    MetricsObserver,
    fold_batch_result,
    observe_patterndb,
)
from repro.obs.server import MetricsServer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "snapshot_to_dict",
    "render_prometheus",
    "CONTENT_TYPE",
    "MetricsObserver",
    "fold_batch_result",
    "observe_patterndb",
    "METRIC_HELP",
    "MetricsServer",
]

"""``/metrics`` scrape endpoint on the standard library's HTTP server.

Deliberately tiny: one threaded ``http.server`` serving the registry's
Prometheus rendering, started on a daemon thread so a crashed or closed
miner never leaves the process hanging on a socket.  ``sequence-rtg
serve --metrics-port`` owns one; tests bind port 0 and read the chosen
port back.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.exposition import CONTENT_TYPE, render_prometheus
from repro.obs.metrics import MetricsRegistry

__all__ = ["MetricsServer"]


class MetricsServer:
    """Serve one registry's ``/metrics`` endpoint in the background.

    The registry is read under its own lock at request time, so scrapes
    are consistent while batches are being analysed concurrently.  Use
    as a context manager or pair :meth:`start` with :meth:`close`.
    """

    def __init__(
        self, registry: MetricsRegistry, port: int = 0, host: str = "127.0.0.1"
    ) -> None:
        self.registry = registry
        self._host = host
        self._requested_port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def start(self) -> int:
        """Bind and serve; returns the bound port (useful with port 0)."""
        if self._httpd is not None:
            return self.port
        registry = self.registry

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.split("?", 1)[0] != "/metrics":
                    self.send_error(404, "only /metrics is served here")
                    return
                body = render_prometheus(registry).encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:
                """Scrapes are periodic; don't spam stderr."""

        self._httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), Handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="sequence-rtg-metrics",
            daemon=True,
        )
        self._thread.start()
        return self.port

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("server is not running")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}/metrics"

    def close(self) -> None:
        """Stop serving (idempotent)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "MetricsServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

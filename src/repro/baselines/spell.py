"""Spell: streaming parser based on longest common subsequence.

Reimplementation of Du & Li, "Spell: Streaming Parsing of System Event
Logs" (ICDM 2016).  Each log-structure object (LCS object) holds the
current template; a new message joins the object with the largest LCS
with its token sequence, provided the LCS covers at least ``tau`` of the
message length, and the object's template is refined to that LCS (gaps
become wildcards).  A simple length pre-filter replaces the original
prefix-tree fast path, preserving the algorithmic behaviour at the
2,000-line benchmark scale.
"""

from __future__ import annotations

from repro.baselines.base import WILDCARD, LogParserBase

__all__ = ["Spell"]


def _lcs(a: list[str], b: list[str]) -> list[str]:
    """Classic O(len(a)·len(b)) longest common subsequence."""
    m, n = len(a), len(b)
    # single-array DP keeping parent pointers via full table (sequences
    # are short log lines, so the quadratic table is fine)
    dp = [[0] * (n + 1) for _ in range(m + 1)]
    for i in range(m - 1, -1, -1):
        row, nxt = dp[i], dp[i + 1]
        for j in range(n - 1, -1, -1):
            if a[i] == b[j]:
                row[j] = nxt[j + 1] + 1
            else:
                row[j] = nxt[j] if nxt[j] >= row[j + 1] else row[j + 1]
    out: list[str] = []
    i = j = 0
    while i < m and j < n:
        if a[i] == b[j]:
            out.append(a[i])
            i += 1
            j += 1
        elif dp[i + 1][j] >= dp[i][j + 1]:
            i += 1
        else:
            j += 1
    return out


class _LCSObject:
    __slots__ = ("template", "cluster_id", "token_set")

    def __init__(self, template: list[str], cluster_id: int) -> None:
        self.template = template
        self.cluster_id = cluster_id
        self.token_set = set(template)


class Spell(LogParserBase):
    """Streaming LCS parser."""

    name = "Spell"

    def __init__(self, tau: float = 0.6) -> None:
        super().__init__()
        if not 0.0 < tau <= 1.0:
            raise ValueError(f"tau must be in (0, 1], got {tau}")
        self.tau = tau
        self._objects: list[_LCSObject] = []

    def fit(self, messages: list[str]) -> list[int]:
        assignments: list[int] = []
        for message in messages:
            tokens = message.split()
            assignments.append(self._insert(tokens))
        return assignments

    def _insert(self, tokens: list[str]) -> int:
        token_set = set(tokens)
        threshold = len(tokens) * self.tau
        best_obj: _LCSObject | None = None
        best_len = 0
        for obj in self._objects:
            constants = [t for t in obj.template if t != WILDCARD]
            # upper bound check before paying for the DP
            if len(constants) < threshold or len(constants) < best_len:
                continue
            if len(token_set & obj.token_set) < threshold:
                continue
            common = _lcs(constants, tokens)
            if len(common) > best_len and len(common) >= threshold:
                best_len = len(common)
                best_obj = obj
        if best_obj is None:
            cluster_id = len(self._templates)
            self._templates.append(list(tokens))
            self._objects.append(_LCSObject(list(tokens), cluster_id))
            return cluster_id
        self._refine(best_obj, tokens)
        return best_obj.cluster_id

    def _refine(self, obj: _LCSObject, tokens: list[str]) -> None:
        """Template becomes the LCS with wildcards in the gaps."""
        constants = [t for t in obj.template if t != WILDCARD]
        common = _lcs(constants, tokens)
        new_template: list[str] = []
        ci = 0
        for tok in tokens:
            if ci < len(common) and tok == common[ci]:
                new_template.append(tok)
                ci += 1
            else:
                if not new_template or new_template[-1] != WILDCARD:
                    new_template.append(WILDCARD)
        if new_template != obj.template:
            obj.template = new_template
            obj.token_set = set(new_template)
            self._templates[obj.cluster_id] = new_template

"""AEL: Abstracting Execution Logs.

Reimplementation of Jiang, Hassan, Flora & Hamann, "Abstracting
Execution Logs to Execution Events for Enterprise Applications"
(QSIC 2008), in the three steps the Sequence-RTG paper summarises (§V):

1. **Anonymize** — "simple heuristics to identify variables in the
   messages defined by text that followed an equal sign or certain
   keywords", replaced by a variable marker (plus numeric/IP tokens,
   matching the logparser implementation);
2. **Tokenize** — "divides the messages into groups based on the count
   of words and number of variables marked in the text";
3. **Categorize** — "compares the contents inside each group to
   determine the patterns": messages identical token-for-token after
   anonymisation share an event; a reconciliation pass then folds
   near-identical templates that differ only at variable positions.
"""

from __future__ import annotations

from collections import defaultdict

from repro.baselines.base import WILDCARD, LogParserBase

__all__ = ["AEL"]

# Keywords whose following token is anonymised.  The original heuristics
# centre on ``=``-assignments; the keyword list is deliberately narrow —
# AEL does *not* anonymise plain words after "for"/"user", which is why
# it splits events on username-style variables in the benchmark.
_KEYWORDS = {"pid:", "id:"}


def _is_variable_token(token: str) -> bool:
    """Numeric, hex-ish or address-like tokens are variables."""
    if not token:
        return False
    stripped = token.strip(",.;:()[]")
    if not stripped:
        return False
    if stripped.replace(".", "").replace("-", "").replace(":", "").isdigit():
        return True
    if any(c.isdigit() for c in stripped) and any(c.isalpha() for c in stripped):
        # mixed alphanumeric ids (blk_123, 0x1f)
        return True
    return False


class AEL(LogParserBase):
    """Anonymize / Tokenize / Categorize parser."""

    name = "AEL"

    def __init__(self, merge_percent: float = 0.5) -> None:
        super().__init__()
        self.merge_percent = merge_percent

    # ------------------------------------------------------------------
    def fit(self, messages: list[str]) -> list[int]:
        anonymized = [self._anonymize(m.split()) for m in messages]

        # Tokenize step: bins keyed by (token count, variable count)
        bins: dict[tuple[int, int], list[int]] = defaultdict(list)
        for idx, tokens in enumerate(anonymized):
            n_vars = sum(1 for t in tokens if t == WILDCARD)
            bins[(len(tokens), n_vars)].append(idx)

        # Categorize step: exact template identity within each bin
        assignments = [0] * len(messages)
        for indices in bins.values():
            clusters: dict[tuple[str, ...], int] = {}
            for idx in indices:
                key = tuple(anonymized[idx])
                cluster_id = clusters.get(key)
                if cluster_id is None:
                    cluster_id = len(self._templates)
                    self._templates.append(list(key))
                    clusters[key] = cluster_id
                assignments[idx] = cluster_id
        # Reconcile: merge templates in the same bin differing only where
        # one side already has wildcards
        remap = self._reconcile()
        return [remap[a] for a in assignments]

    # ------------------------------------------------------------------
    def _anonymize(self, tokens: list[str]) -> list[str]:
        out: list[str] = []
        prev = ""
        for token in tokens:
            if "=" in token and not token.startswith("="):
                # k=v inside one token: value is a variable
                key, _, _ = token.partition("=")
                out.append(f"{key}={WILDCARD}")
            elif _is_variable_token(token) or prev in _KEYWORDS:
                out.append(WILDCARD)
            else:
                out.append(token)
            prev = token.lower().strip(",.;:")
        return out

    def _reconcile(self) -> list[int]:
        """Fold templates equal everywhere except wildcard positions."""
        remap = list(range(len(self._templates)))
        by_len: dict[int, list[int]] = defaultdict(list)
        for tid, template in enumerate(self._templates):
            by_len[len(template)].append(tid)
        for tids in by_len.values():
            for i in range(len(tids)):
                for j in range(i + 1, len(tids)):
                    a, b = self._templates[tids[i]], self._templates[tids[j]]
                    if remap[tids[j]] != tids[j]:
                        continue
                    if self._mergeable(a, b):
                        remap[tids[j]] = remap[tids[i]]
        return remap

    def _mergeable(self, a: list[str], b: list[str]) -> bool:
        diffs = sum(1 for x, y in zip(a, b) if x != y)
        if diffs == 0:
            return True
        allowed = sum(
            1
            for x, y in zip(a, b)
            if x != y and (x == WILDCARD or y == WILDCARD)
        )
        return diffs == allowed and diffs <= self.merge_percent * len(a)

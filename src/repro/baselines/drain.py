"""Drain: online log parsing with a fixed-depth tree.

Reimplementation of He et al., "Drain: An Online Log Parsing Approach
with Fixed Depth Tree" (ICWS 2017) — the best average performer in the
Zhu et al. benchmark (Table III of the Sequence-RTG paper).

Structure: the first tree level routes on token count, the next
``depth - 2`` levels route on the leading tokens (tokens containing
digits route to a ``<*>`` child, and a ``maxChildren`` cap funnels
unseen tokens to ``<*>`` as well), and leaves hold log groups.  A new
message joins the most similar group at its leaf when the token-wise
similarity reaches ``st``, updating the group template position-wise;
otherwise it starts a new group.
"""

from __future__ import annotations

from repro.baselines.base import WILDCARD, LogParserBase, merge_template

__all__ = ["Drain"]


class _Group:
    __slots__ = ("template", "cluster_id")

    def __init__(self, template: list[str], cluster_id: int) -> None:
        self.template = template
        self.cluster_id = cluster_id


class _Node:
    __slots__ = ("children", "groups")

    def __init__(self) -> None:
        self.children: dict[str, _Node] = {}
        self.groups: list[_Group] = []


def _has_digit(token: str) -> bool:
    return any(c.isdigit() for c in token)


class Drain(LogParserBase):
    """Fixed-depth-tree online parser."""

    name = "Drain"

    def __init__(
        self, depth: int = 4, st: float = 0.4, max_children: int = 100
    ) -> None:
        super().__init__()
        if depth < 3:
            raise ValueError(f"depth must be >= 3, got {depth}")
        if not 0.0 <= st <= 1.0:
            raise ValueError(f"st must be in [0, 1], got {st}")
        self.depth = depth  # total tree depth including length and leaf
        self.st = st
        self.max_children = max_children
        self._root = _Node()

    # ------------------------------------------------------------------
    def fit(self, messages: list[str]) -> list[int]:
        assignments: list[int] = []
        for message in messages:
            tokens = message.split()
            group = self._insert(tokens)
            assignments.append(group.cluster_id)
        return assignments

    # ------------------------------------------------------------------
    def _insert(self, tokens: list[str]) -> _Group:
        leaf = self._route(tokens)
        best, best_sim = None, -1.0
        for group in leaf.groups:
            sim = self._similarity(group.template, tokens)
            if sim > best_sim:
                best, best_sim = group, sim
        if best is not None and best_sim >= self.st:
            merged = merge_template(best.template, tokens)
            if merged != best.template:
                best.template = merged
                self._templates[best.cluster_id] = merged
            return best
        cluster_id = len(self._templates)
        self._templates.append(list(tokens))
        group = _Group(list(tokens), cluster_id)
        leaf.groups.append(group)
        return group

    def _route(self, tokens: list[str]) -> _Node:
        """Walk length level + (depth - 2) token levels to a leaf node."""
        node = self._root.children.setdefault(str(len(tokens)), _Node())
        internal_levels = self.depth - 2
        for i in range(min(internal_levels, len(tokens))):
            token = tokens[i]
            if _has_digit(token):
                token = WILDCARD
            child = node.children.get(token)
            if child is None:
                if token != WILDCARD and len(node.children) >= self.max_children:
                    token = WILDCARD
                child = node.children.setdefault(token, _Node())
            node = child
        return node

    @staticmethod
    def _similarity(template: list[str], tokens: list[str]) -> float:
        """simSeq of the paper: equal-token fraction; wildcards score 0."""
        if len(template) != len(tokens) or not template:
            return 0.0
        same = sum(
            1 for t, tok in zip(template, tokens) if t == tok and t != WILDCARD
        )
        return same / len(template)

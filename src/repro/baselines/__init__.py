"""Baseline log parsers (paper §V / Table III).

From-scratch reimplementations of the four top performers of the Zhu et
al. ICSE-SEIP 2019 benchmark, which the paper compares Sequence-RTG
against:

* :class:`Drain` — online fixed-depth parse tree (He et al., ICWS 2017);
* :class:`IPLoM` — iterative partitioning (Makanju et al., KDD 2009);
* :class:`Spell` — streaming longest-common-subsequence (Du & Li, ICDM 2016);
* :class:`AEL` — anonymize/tokenize/categorize heuristics (Jiang et al.,
  QSIC 2008).

All share :class:`LogParserBase`: ``fit(messages)`` assigns a cluster id
to every message and exposes the mined templates, which is exactly what
the grouping-accuracy evaluation needs.
"""

from repro.baselines.ael import AEL
from repro.baselines.base import LogParserBase
from repro.baselines.drain import Drain
from repro.baselines.iplom import IPLoM
from repro.baselines.spell import Spell

__all__ = ["LogParserBase", "Drain", "IPLoM", "Spell", "AEL", "ALL_BASELINES"]

ALL_BASELINES = {"AEL": AEL, "IPLoM": IPLoM, "Spell": Spell, "Drain": Drain}

"""IPLoM: iterative partitioning log mining.

Reimplementation of Makanju, Zincir-Heywood & Milios, "Clustering Event
Logs Using Iterative Partitioning" (KDD 2009), following the paper's
four steps as the Sequence-RTG paper summarises them (§V):

1. **Partition by event size** — cluster token sets of the same length;
2. **Partition by token position** — split on the column with the
   fewest distinct values ("it looks for a word that is common at the
   same position of many messages");
3. **Partition by search for bijection** — pick the two most-variable
   remaining columns and split along 1-1 value mappings between them
   (1-M / M-1 / M-M relations are left together);
4. **Template extraction** — a position with a single value is constant,
   otherwise it is a wildcard.

Partition-support and cluster-goodness thresholds from the original are
kept in simplified form: partitions smaller than ``partition_support``
lines skip further splitting, and step 2 skips columns whose distinct
count exceeds ``upper_bound`` × lines (they are variable positions, not
discriminators).
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.baselines.base import WILDCARD, LogParserBase

__all__ = ["IPLoM"]


class IPLoM(LogParserBase):
    """Four-step iterative partitioning parser."""

    name = "IPLoM"

    def __init__(
        self,
        partition_support: int = 4,
        upper_bound: float = 0.9,
    ) -> None:
        super().__init__()
        if partition_support < 1:
            raise ValueError(
                f"partition_support must be >= 1, got {partition_support}"
            )
        self.partition_support = partition_support
        self.upper_bound = upper_bound

    # ------------------------------------------------------------------
    def fit(self, messages: list[str]) -> list[int]:
        token_lists = [m.split() for m in messages]
        assignments = [0] * len(messages)

        # Step 1: partition by event size (token count)
        by_size: dict[int, list[int]] = defaultdict(list)
        for idx, tokens in enumerate(token_lists):
            by_size[len(tokens)].append(idx)

        partitions: list[list[int]] = []
        for size_partition in by_size.values():
            # Step 2: partition by token position
            for p2 in self._split_by_position(size_partition, token_lists):
                # Step 3: partition by search for bijection
                partitions.extend(self._split_by_bijection(p2, token_lists))

        # Step 4: template extraction
        for cluster_id, partition in enumerate(partitions):
            template = self._extract_template(partition, token_lists)
            self._templates.append(template)
            for idx in partition:
                assignments[idx] = cluster_id
        return assignments

    # ------------------------------------------------------------------
    def _split_by_position(
        self, partition: list[int], token_lists: list[list[str]]
    ) -> list[list[int]]:
        if len(partition) <= self.partition_support:
            return [partition]
        width = len(token_lists[partition[0]])
        if width == 0:
            return [partition]
        # column with the fewest distinct values, skipping constant and
        # nearly-unique (variable) columns
        best_col, best_card = -1, None
        for col in range(width):
            distinct = {token_lists[idx][col] for idx in partition}
            card = len(distinct)
            if card <= 1 or card > self.upper_bound * len(partition):
                continue
            if best_card is None or card < best_card:
                best_col, best_card = col, card
        if best_col < 0 or best_card > max(2, len(partition) * 0.5):
            # even the most stable column is nearly unique: splitting on
            # it would shatter the partition into per-line clusters
            return [partition]
        groups: dict[str, list[int]] = defaultdict(list)
        for idx in partition:
            groups[token_lists[idx][best_col]].append(idx)
        return list(groups.values())

    # ------------------------------------------------------------------
    def _split_by_bijection(
        self, partition: list[int], token_lists: list[list[str]]
    ) -> list[list[int]]:
        if len(partition) <= self.partition_support:
            return [partition]
        width = len(token_lists[partition[0]])
        # candidate columns: more than one distinct value, but not
        # free-variable columns — the original only relates columns whose
        # cardinality matches the partition's most frequent (low)
        # cardinality; splitting on a ~unique column would shatter the
        # partition into singletons
        cap = max(2, int(len(partition) * 0.3))
        cards: list[tuple[int, int]] = []
        for col in range(width):
            distinct = {token_lists[idx][col] for idx in partition}
            if 1 < len(distinct) <= cap:
                cards.append((len(distinct), col))
        if len(cards) < 2:
            return [partition]
        # the original picks the columns with the most frequently
        # occurring cardinality; the two lowest-cardinality variable
        # columns are those in practice
        cards.sort()
        c1, c2 = cards[0][1], cards[1][1]

        # determine the mapping relation between the two columns
        fwd: dict[str, set[str]] = defaultdict(set)
        rev: dict[str, set[str]] = defaultdict(set)
        for idx in partition:
            a, b = token_lists[idx][c1], token_lists[idx][c2]
            fwd[a].add(b)
            rev[b].add(a)

        groups: dict[tuple, list[int]] = defaultdict(list)
        leftovers: list[int] = []
        for idx in partition:
            a, b = token_lists[idx][c1], token_lists[idx][c2]
            if len(fwd[a]) == 1 and len(rev[b]) == 1:
                groups[(a, b)].append(idx)  # 1-1: its own partition
            elif len(fwd[a]) == 1:
                groups[("M-1", b)].append(idx)  # many a → one b
            elif len(rev[b]) == 1:
                groups[("1-M", a)].append(idx)  # one a → many b
            else:
                leftovers.append(idx)  # M-M stays together
        out = [g for g in groups.values() if g]
        if leftovers:
            out.append(leftovers)
        return out or [partition]

    # ------------------------------------------------------------------
    @staticmethod
    def _extract_template(
        partition: list[int], token_lists: list[list[str]]
    ) -> list[str]:
        width = len(token_lists[partition[0]])
        template: list[str] = []
        for col in range(width):
            counter = Counter(token_lists[idx][col] for idx in partition)
            if len(counter) == 1:
                template.append(next(iter(counter)))
            else:
                template.append(WILDCARD)
        return template

"""Common interface for the baseline log parsers.

The Zhu et al. benchmark feeds each parser the *content* of 2,000 log
lines (header stripped, common fields optionally pre-processed to
``<*>``) and scores the resulting grouping.  The base class fixes that
contract: :meth:`fit` consumes the message list and returns one cluster
id per message; :meth:`templates` exposes the mined template strings for
inspection.
"""

from __future__ import annotations

import abc

__all__ = ["LogParserBase", "WILDCARD", "merge_template"]

#: wildcard token marking a variable position, as used by logparser
WILDCARD = "<*>"


def merge_template(template: list[str], tokens: list[str]) -> list[str]:
    """Position-wise template update: differing tokens become wildcards."""
    return [
        t if t == tok else WILDCARD
        for t, tok in zip(template, tokens)
    ]


class LogParserBase(abc.ABC):
    """A log parser that clusters messages into event templates."""

    name: str = "base"

    def __init__(self) -> None:
        self._templates: list[list[str]] = []

    @abc.abstractmethod
    def fit(self, messages: list[str]) -> list[int]:
        """Cluster *messages*; return a cluster id for each message."""

    def templates(self) -> list[str]:
        """Mined template strings, indexed by cluster id."""
        return [" ".join(t) for t in self._templates]

"""Synthetic LogHub substrate.

The paper evaluates accuracy on 16 labelled datasets from the LogHub
collection (2,000 lines each, expert-labelled with event ids).  Those
datasets are not redistributable here, so this package synthesises
structurally equivalent stand-ins: each dataset module defines event
templates modelled on the real system's log formats (including the
pathological cases the paper discusses by name), and the generator
produces deterministic 2,000-line labelled samples with raw and
pre-processed variants.

See DESIGN.md §4 for the substitution rationale.
"""

from repro.loghub.corpus import DATASET_NAMES, load_dataset
from repro.loghub.evaluation import (
    evaluate_baseline,
    evaluate_sequence_rtg,
    grouping_accuracy,
)
from repro.loghub.generator import DatasetSpec, LabeledDataset, LogLine, generate

__all__ = [
    "DATASET_NAMES",
    "load_dataset",
    "DatasetSpec",
    "LabeledDataset",
    "LogLine",
    "generate",
    "grouping_accuracy",
    "evaluate_sequence_rtg",
    "evaluate_baseline",
]

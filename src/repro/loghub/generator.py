"""Labelled log dataset generator.

Templates are written in a small slot language: ``{type}`` marks a
variable slot filled by a typed generator, ``{type:k}`` bounds the slot
to a pool of *k* distinct values (which controls whether the analyser's
merge heuristics see the position as variable).  Everything else is
static text.  The generator produces, per line:

* ``content`` — the message body with slots filled;
* ``raw`` — dataset header (timestamp, level, component, ...) + content;
* ``preprocessed`` — content after the dataset's Zhu-style courtesy
  regexes (IPs, block ids, ... → ``<*>``), mirroring the pre-processing
  the benchmark of Zhu et al. applies before parsing;
* ``event_id`` — ground-truth event label (E1, E2, ...).

Rare templates receive one to three lines each (the long tail that
triggers the paper's "only one or two examples" limitation); remaining
lines are distributed over the common templates by a Zipf law.
"""

from __future__ import annotations

import random
import re
from collections.abc import Callable
from dataclasses import dataclass, field

from repro._util.sampling import ZipfSampler

__all__ = [
    "DatasetSpec",
    "Template",
    "LabeledDataset",
    "LogLine",
    "generate",
    "FILLERS",
]

# ---------------------------------------------------------------------------
# slot fillers
# ---------------------------------------------------------------------------

_WORDS = (
    "alpha bravo charlie delta echo foxtrot golf hotel india juliet kilo lima "
    "mike november oscar papa quebec romeo sierra tango uniform victor whiskey "
    "xray yankee zulu"
).split()

_USERS = (
    "root admin alice bob carol dave erin frank grace heidi ivan judy mallory "
    "nobody oliver peggy sybil trent victor walter"
).split()

_HOST_PARTS = ("node", "worker", "db", "web", "cache", "mon", "io", "gpu")
_DOMAINS = ("example.com", "cluster.local", "dc.corp", "cse.cuhk.edu.hk")

_PATH_DIRS = ("var", "usr", "etc", "opt", "home", "srv", "tmp", "data")
_PATH_FILES = ("messages", "app.log", "core", "config.xml", "data.db", "run.pid")


def _f_int(rng: random.Random) -> str:
    return str(rng.randint(0, 99999))


def _f_float(rng: random.Random) -> str:
    return f"{rng.uniform(0, 1000):.2f}"


def _f_ip(rng: random.Random) -> str:
    return ".".join(str(rng.randint(1, 254)) for _ in range(4))


def _f_port(rng: random.Random) -> str:
    return str(rng.randint(1024, 65535))


def _f_hex8(rng: random.Random) -> str:
    # force one letter so the token never degenerates into a pure
    # integer (that int/alnum flip is the *Proxifier* limitation and
    # must not leak into every dataset using hex ids)
    return f"{rng.getrandbits(28):07x}{rng.choice('abcdef')}"


def _f_hex16(rng: random.Random) -> str:
    return f"{rng.getrandbits(60):015x}{rng.choice('abcdef')}"


def _f_blk(rng: random.Random) -> str:
    sign = "-" if rng.random() < 0.4 else ""
    return f"blk_{sign}{rng.randint(10**15, 10**19)}"


def _f_id(rng: random.Random) -> str:
    return f"task_{rng.randint(1, 9999)}_{rng.randint(0, 99)}"


def _f_user(rng: random.Random) -> str:
    return rng.choice(_USERS)


def _f_word(rng: random.Random) -> str:
    return rng.choice(_WORDS)


def _f_path(rng: random.Random) -> str:
    depth = rng.randint(2, 4)
    dirs = "/".join(rng.choice(_PATH_DIRS) for _ in range(depth))
    return f"/{dirs}/{rng.choice(_PATH_FILES)}"


def _f_url(rng: random.Random) -> str:
    return f"http://{_f_host(rng)}/{rng.choice(_PATH_DIRS)}?id={rng.randint(1, 999)}"


def _f_host(rng: random.Random) -> str:
    return f"{rng.choice(_HOST_PARTS)}{rng.randint(1, 64):02d}.{rng.choice(_DOMAINS)}"


def _f_duration(rng: random.Random) -> str:
    return f"{rng.randint(0, 23):02d}:{rng.randint(0, 59):02d}"


def _f_mem(rng: random.Random) -> str:
    return f"0x{rng.getrandbits(32):08x}"


def _f_pid(rng: random.Random) -> str:
    return str(rng.randint(100, 32768))


def _f_ver(rng: random.Random) -> str:
    return f"{rng.randint(1, 5)}.{rng.randint(0, 20)}.{rng.randint(0, 99)}"


def _f_mac(rng: random.Random) -> str:
    return ":".join(f"{rng.getrandbits(8):02x}" for _ in range(6))


def _f_uuid(rng: random.Random) -> str:
    return (
        f"{rng.getrandbits(32):08x}-{rng.getrandbits(16):04x}-"
        f"{rng.getrandbits(16):04x}-{rng.getrandbits(16):04x}-"
        f"{rng.getrandbits(48):012x}"
    )


def _f_core(rng: random.Random) -> str:
    """BGL-style midplane location code (R02-M1-N0-C:J12-U11)."""
    return (
        f"R{rng.randint(0, 63):02d}-M{rng.randint(0, 1)}-N{rng.randint(0, 15)}"
        f"-C:J{rng.randint(0, 17):02d}-U{rng.randint(0, 63):02d}"
    )


def _f_sizeb(rng: random.Random) -> str:
    """Proxifier-style size: '426 B' or '1.13 KB' (different token shapes)."""
    if rng.random() < 0.5:
        return f"{rng.randint(1, 999)} B"
    return f"{rng.uniform(1, 900):.2f} KB"


def _f_alnumint(rng: random.Random) -> str:
    """The Proxifier limitation: sometimes pure integer, sometimes alnum.

    "Proxifier had a variable that was sometimes alphanumeric and
    sometimes pure integer.  This resulted in two patterns created for
    one event, rendering nearly 50% of the results invalid." (§IV)
    """
    n = rng.randint(1, 512)
    if rng.random() < 0.5:
        return str(n)
    return f"{n}K"


def _f_lifetime(rng: random.Random) -> str:
    """Proxifier lifetime: padded '00:01' half the time, '1:23:45' else.

    The unpadded form has a single-digit hour, which the default
    datetime FSM rejects, so raw Proxifier events split on top of the
    integer/alphanumeric flip (paper: raw 0.402 vs pre-processed 0.643).
    """
    if rng.random() < 0.5:
        return f"{rng.randint(0, 9):02d}:{rng.randint(0, 59):02d}"
    return f"{rng.randint(1, 9)}:{rng.randint(0, 59):02d}:{rng.randint(0, 59):02d}"


def _f_badtime(rng: random.Random) -> str:
    """The HealthApp limitation: time parts without leading zeros.

    Roughly half the draws contain a single-digit hour/minute/second
    (e.g. ``20171224-0:7:20:444``), which the default datetime FSM
    cannot parse (§IV "Limitations"); the other half are fully padded.
    """
    if rng.random() < 0.5:
        h, m, s = rng.randint(0, 9), rng.randint(0, 9), rng.randint(0, 9)
        return f"20171224-{h}:{m}:{s}:{rng.randint(100, 999)}"
    h, m, s = rng.randint(10, 23), rng.randint(10, 59), rng.randint(10, 59)
    return f"20171224-{h}:{m}:{s}:{rng.randint(100, 999)}"


FILLERS: dict[str, Callable[[random.Random], str]] = {
    "int": _f_int,
    "float": _f_float,
    "ip": _f_ip,
    "port": _f_port,
    "hex8": _f_hex8,
    "hex16": _f_hex16,
    "blk": _f_blk,
    "id": _f_id,
    "user": _f_user,
    "word": _f_word,
    "path": _f_path,
    "url": _f_url,
    "host": _f_host,
    "duration": _f_duration,
    "mem": _f_mem,
    "pid": _f_pid,
    "ver": _f_ver,
    "mac": _f_mac,
    "uuid": _f_uuid,
    "core": _f_core,
    "sizeb": _f_sizeb,
    "alnumint": _f_alnumint,
    "lifetime": _f_lifetime,
    "badtime": _f_badtime,
}

_SLOT_RE = re.compile(r"\{([a-z0-9]+)(?::(\d+))?\}")


# ---------------------------------------------------------------------------
# dataset specification
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Template:
    """One event template with an optional logging component."""

    text: str
    component: str = ""


@dataclass(slots=True)
class LogLine:
    """One generated, labelled log line."""

    raw: str
    content: str
    preprocessed: str
    event_id: str


@dataclass(slots=True)
class DatasetSpec:
    """Declarative description of one synthetic LogHub dataset."""

    name: str
    templates: list[Template]
    rare_templates: list[Template] = field(default_factory=list)
    #: callable(rng, component) -> header string prefix (with trailing space)
    header: Callable[[random.Random, str], str] = lambda rng, c: ""
    #: Zhu-style courtesy regexes applied to content → preprocessed
    preprocess: list[str] = field(default_factory=list)
    zipf_s: float = 1.5
    seed: int = 0


@dataclass(slots=True)
class LabeledDataset:
    """A generated dataset plus its ground truth."""

    name: str
    lines: list[LogLine]
    n_events: int

    def truth(self) -> list[str]:
        return [line.event_id for line in self.lines]

    def contents(self) -> list[str]:
        return [line.content for line in self.lines]

    def raws(self) -> list[str]:
        return [line.raw for line in self.lines]

    def preprocessed(self) -> list[str]:
        return [line.preprocessed for line in self.lines]


# ---------------------------------------------------------------------------
# generation
# ---------------------------------------------------------------------------


def _fill(template: str, rng: random.Random, pools: dict[tuple[str, int], list[str]]):
    """Fill slots in *template*; bounded slots draw from cached pools."""

    def replace(match: re.Match) -> str:
        kind = match.group(1)
        filler = FILLERS.get(kind)
        if filler is None:
            raise KeyError(f"unknown slot type {{{kind}}} in template {template!r}")
        bound = match.group(2)
        if bound is None:
            return filler(rng)
        k = int(bound)
        pool_key = (kind, k)
        pool = pools.get(pool_key)
        if pool is None:
            pool_rng = random.Random(hash(pool_key) & 0xFFFFFFFF)
            pool = list(dict.fromkeys(filler(pool_rng) for _ in range(k * 4)))[:k]
            pools[pool_key] = pool
        return rng.choice(pool)

    return _SLOT_RE.sub(replace, template)


def generate(spec: DatasetSpec, n: int = 2000, seed: int | None = None) -> LabeledDataset:
    """Generate a deterministic *n*-line labelled sample of *spec*."""
    rng = random.Random(spec.seed if seed is None else seed)
    all_templates = list(spec.templates) + list(spec.rare_templates)
    event_ids = [f"E{i + 1}" for i in range(len(all_templates))]
    compiled_preprocess = [re.compile(p) for p in spec.preprocess]
    pools: dict[tuple[str, int], list[str]] = {}

    # rare templates: 1-3 lines each
    schedule: list[int] = []
    for rare_idx in range(len(spec.templates), len(all_templates)):
        schedule.extend([rare_idx] * rng.randint(1, 3))
    if len(schedule) > n:
        schedule = schedule[:n]

    # the remainder follows a Zipf law over the common templates
    zipf = ZipfSampler(len(spec.templates), s=spec.zipf_s, seed=rng.randrange(2**31))
    schedule.extend(zipf.sample_many(n - len(schedule)))
    rng.shuffle(schedule)

    lines: list[LogLine] = []
    for template_idx in schedule:
        template = all_templates[template_idx]
        content = _fill(template.text, rng, pools)
        raw = spec.header(rng, template.component) + content
        preprocessed = content
        for regex in compiled_preprocess:
            preprocessed = regex.sub("<*>", preprocessed)
        lines.append(
            LogLine(
                raw=raw,
                content=content,
                preprocessed=preprocessed,
                event_id=event_ids[template_idx],
            )
        )
    return LabeledDataset(name=spec.name, lines=lines, n_events=len(all_templates))

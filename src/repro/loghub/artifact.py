"""Experimental-artifact export (paper AVAILABILITY section).

"we also prepared an experimental artifact that comprises a copy of the
data and notebooks used in the accuracy testing ...  It also contains,
for each service, two JSON files, i.e. pre-processed data and full log
text, and ... a CSV file for each service to map Sequence-RTG
pattern-ids to the corresponding labels in the original data-set."

:func:`export_artifact` reproduces that bundle for the synthetic
datasets: per dataset a ``<name>_full.json`` (raw lines),
``<name>_preprocessed.json``, and ``<name>_mapping.csv`` mapping each
line to the Sequence-RTG pattern id it parses to and its ground-truth
event label, plus a top-level ``manifest.json`` with the measured
grouping accuracies.
"""

from __future__ import annotations

import csv
import json
import os
from dataclasses import dataclass, field

from repro.core.config import RTGConfig
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.core.records import LogRecord
from repro.loghub.corpus import DATASET_NAMES, load_dataset
from repro.loghub.evaluation import grouping_accuracy

__all__ = ["export_artifact", "ArtifactManifest"]


@dataclass(slots=True)
class ArtifactManifest:
    """What was written where, with measured accuracies."""

    directory: str
    datasets: list[str] = field(default_factory=list)
    accuracy_raw: dict[str, float] = field(default_factory=dict)
    accuracy_preprocessed: dict[str, float] = field(default_factory=dict)


def _evaluate_with_mapping(
    messages: list[str], truth: list[str], service: str, config: RTGConfig | None
) -> tuple[float, list[tuple[int, str, str]]]:
    """Run the pipeline; return (accuracy, per-line mapping rows)."""
    rtg = SequenceRTG(db=PatternDB(), config=config)
    rtg.analyze_by_service([LogRecord(service, m) for m in messages])
    parser = rtg.parser_for(service)
    predicted: list[str] = []
    rows: list[tuple[int, str, str]] = []
    for i, message in enumerate(messages):
        hit = parser.match(rtg.scanner.scan(message, service=service))
        pid = hit.pattern.id if hit else f"<unmatched-{i}>"
        predicted.append(pid)
        rows.append((i + 1, pid, truth[i]))
    return grouping_accuracy(truth, predicted), rows


def export_artifact(
    out_dir: str,
    datasets: tuple[str, ...] = DATASET_NAMES,
    config: RTGConfig | None = None,
    n_lines: int = 2000,
) -> ArtifactManifest:
    """Write the reproduction artifact bundle into *out_dir*."""
    os.makedirs(out_dir, exist_ok=True)
    manifest = ArtifactManifest(directory=out_dir)

    for name in datasets:
        dataset = load_dataset(name, n=n_lines)
        truth = dataset.truth()

        with open(os.path.join(out_dir, f"{name}_full.json"), "w") as fh:
            json.dump(dataset.raws(), fh, indent=1)
        with open(os.path.join(out_dir, f"{name}_preprocessed.json"), "w") as fh:
            json.dump(dataset.preprocessed(), fh, indent=1)

        raw_accuracy, mapping = _evaluate_with_mapping(
            dataset.raws(), truth, name, config
        )
        pre_accuracy, _ = _evaluate_with_mapping(
            dataset.preprocessed(), truth, name, config
        )

        with open(
            os.path.join(out_dir, f"{name}_mapping.csv"), "w", newline=""
        ) as fh:
            writer = csv.writer(fh)
            writer.writerow(["line", "pattern_id", "event_label"])
            writer.writerows(mapping)

        manifest.datasets.append(name)
        manifest.accuracy_raw[name] = raw_accuracy
        manifest.accuracy_preprocessed[name] = pre_accuracy

    with open(os.path.join(out_dir, "manifest.json"), "w") as fh:
        json.dump(
            {
                "datasets": manifest.datasets,
                "lines_per_dataset": n_lines,
                "accuracy_raw": manifest.accuracy_raw,
                "accuracy_preprocessed": manifest.accuracy_preprocessed,
            },
            fh,
            indent=2,
        )
    return manifest

"""Proxifier — connection proxy client log.

Reproduces the paper's worst case: "Proxifier had a variable that was
sometimes alphanumeric and sometimes pure integer.  This resulted in two
patterns created for one event, rendering nearly 50% of the results
invalid" (§IV) — Table II scores 0.643 pre-processed, 0.402 raw against
a best of 0.967.  The ``{alnumint}`` slot draws ``426`` or ``426K``
style values and the ``{sizeb}`` slot flips between ``426 B`` and
``1.13 KB`` shapes, so the dominant close/lifetime events split.
"""

from repro.loghub.datasets._headers import proxifier_header
from repro.loghub.generator import DatasetSpec, Template

T = Template

SPEC = DatasetSpec(
    name="Proxifier",
    header=proxifier_header,
    templates=[
        T("{host}:{port} close, {int} bytes ({alnumint}) sent, {int} bytes ({sizeb}) received, lifetime {duration}",
          ""),
        T("close, {int} bytes sent, {int} bytes received, lifetime {lifetime}", ""),
        T("{host}:{port} open through proxy proxy.cse.cuhk.edu.hk:5070 HTTPS",
          ""),
        T("{host}:{port} HTTPS proxy.cse.cuhk.edu.hk:5070",
          ""),
        T("{host}:{port} error : Could not connect through proxy proxy.cse.cuhk.edu.hk:5070 - Proxy server cannot establish a connection with the target, status code {int:3}",
          ""),
        T("open directly", ""),
        T("proxy.cse.cuhk.edu.hk:5070 HTTPS", ""),
    ],
    rare_templates=[
        T("DNS request {host} resolved to {ip}", ""),
    ],
    preprocess=[
        # the benchmark masks hosts/ports, byte counts and lifetimes but
        # NOT the parenthesised human-readable size, so the int/alnum
        # limitation persists even on pre-processed data (paper: 0.643)
        r"[a-z0-9.-]+\.[a-z]{2,}:\d+",
        r"\b\d+ bytes",
        r"\d{1,2}:\d{2}(:\d{2})?",
    ],
    zipf_s=1.0,
    seed=116,
)

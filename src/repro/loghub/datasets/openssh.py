"""OpenSSH — sshd authentication log.

Authentication events whose user slots draw from a pool wide enough to
merge into variables; Sequence-RTG beats the benchmark's best here
(0.975 vs 0.925 in Table II) because it needs no pre-processing to spot
the address and port fields.
"""

from repro.loghub.datasets._headers import syslog_header
from repro.loghub.generator import DatasetSpec, Template

T = Template

SPEC = DatasetSpec(
    name="OpenSSH",
    header=syslog_header("LabSZ"),
    templates=[
        T("Failed password for invalid user {user:8} from {ip} port {port} ssh2",
          "sshd"),
        T("Failed password for root from {ip} port {port} ssh2", "sshd"),
        T("Accepted password for {user:8} from {ip} port {port} ssh2", "sshd"),
        T("pam_unix(sshd:auth): authentication failure; logname= uid=0 euid=0 tty=ssh ruser= rhost={ip} user={user:8}",
          "sshd"),
        T("pam_unix(sshd:auth): check pass; user unknown", "sshd"),
        T("Received disconnect from {ip}: 11: Bye Bye [preauth]", "sshd"),
        T("Invalid user {user:8} from {ip}", "sshd"),
        T("input_userauth_request: invalid user {user:8} [preauth]", "sshd"),
        T("Connection closed by {ip} [preauth]", "sshd"),
        T("reverse mapping checking getaddrinfo for {host} [{ip}] failed - POSSIBLE BREAK-IN ATTEMPT!",
          "sshd"),
        T("message repeated {int:2} times: [ Failed password for root from {ip} port {port} ssh2]",
          "sshd"),
        T("Did not receive identification string from {ip}", "sshd"),
        T("error: Received disconnect from {ip}: 3: com.jcraft.jsch.JSchException: Auth fail [preauth]",
          "sshd"),
        T("pam_unix(sshd:session): session opened for user {user:8} by (uid={int:2})",
          "sshd"),
        T("pam_unix(sshd:session): session closed for user {user:8}", "sshd"),
    ],
    rare_templates=[
        T("fatal: Write failed: Connection reset by peer [preauth]", "sshd"),
        T("error: connect_to {host} port {port}: failed.", "sshd"),
    ],
    preprocess=[
        r"(\d{1,3}\.){3}\d{1,3}",
    ],
    zipf_s=1.2,
    seed=115,
)

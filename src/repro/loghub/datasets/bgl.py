"""BGL — Blue Gene/L RAS (reliability, availability, serviceability) log."""

from repro.loghub.datasets._headers import bgl_header
from repro.loghub.generator import DatasetSpec, Template

T = Template

SPEC = DatasetSpec(
    name="BGL",
    header=bgl_header,
    templates=[
        T("instruction cache parity error corrected", "KERNEL"),
        T("generating core.{int}", "KERNEL"),
        T("{int} double-hummer alignment exceptions", "KERNEL"),
        T("ciod: Error reading message prefix after LOGIN_MESSAGE on CioStream socket to {ip}:{port}", "KERNEL"),
        T("ciod: failed to read message prefix on control stream CioStream socket to {ip}:{port}", "KERNEL"),
        T("data TLB error interrupt", "KERNEL"),
        T("rts: kernel terminated for reason {int}", "KERNEL"),
        T("total of {int} ddr error(s) detected and corrected", "KERNEL"),
        T("ddr: excessive soft failures, consider replacing the ddr memory on this card", "KERNEL"),
        T("CE sym {int}, at {mem}, mask 0x{hex8}", "KERNEL"),
        T("core configuration register: {mem}", "KERNEL"),
        T("program interrupt: fp cr field {int}", "KERNEL"),
        T("L3 ecc control register: {mem}", "KERNEL"),
        T("machine check interrupt", "KERNEL"),
        T("idoproxydb hit ASSERT condition: ASSERT expression={int} Source file={path} Source line={int} Function={word:6}", "APP"),
        T("ciodb has been restarted.", "DISCOVERY"),
        T("Node card VPD check: missing {int} node cards", "DISCOVERY"),
        T("problem communicating with service card, ido chip: U{int:8}", "HARDWARE"),
        T("MidplaneSwitchController performing bit sparing on {core} bit {int}", "HARDWARE"),
        T("Error receiving packet on tree network, expecting type {int} instead of type {int} (softheader={int} {int} {int} {int})", "KERNEL"),
    ],
    rare_templates=[
        T("critical input interrupt (unit={mem} bit={int}): warning for torus y+ wire", "KERNEL"),
        T("power module U{int:8} status fault detected on node card", "MMCS"),
        T("lustre mount FAILED: {int}: point {path}", "APP"),
        T("shutdown complete", "KERNEL"),
        T("NFS Mount failed on {path}, slept {int} seconds, retrying ({int})", "LINUX"),
    ],
    preprocess=[
        r"0x[0-9a-f]+",
        r"(\d{1,3}\.){3}\d{1,3}(:\d+)?",
        r"core\.\d+",
        r"R\d{2}-M\d-N\d{1,2}-C:J\d{2}-U\d{2}",
    ],
    zipf_s=1.3,
    seed=106,
)

"""Spark — executor and block manager logs.

Very regular task/block events; both the benchmark and this stand-in sit
near the top of the accuracy table.
"""

from repro.loghub.datasets._headers import spark_header
from repro.loghub.generator import DatasetSpec, Template

T = Template

SPEC = DatasetSpec(
    name="Spark",
    header=spark_header,
    templates=[
        T("Finished task {float} in stage {float} (TID {int}). {int} bytes result sent to driver",
          "executor.Executor"),
        T("Running task {float} in stage {float} (TID {int})",
          "executor.Executor"),
        T("Got assigned task {int}",
          "executor.CoarseGrainedExecutorBackend"),
        T("Found block rdd_{int}_{int} locally",
          "storage.BlockManager"),
        T("Block broadcast_{int} stored as values in memory (estimated size {float} KB, free {float} MB)",
          "storage.MemoryStore"),
        T("Block broadcast_{int}_piece{int} stored as bytes in memory (estimated size {float} KB, free {float} MB)",
          "storage.MemoryStore"),
        T("Started reading broadcast variable {int}",
          "broadcast.TorrentBroadcast"),
        T("Reading broadcast variable {int} took {int} ms",
          "broadcast.TorrentBroadcast"),
        T("Updated info of block broadcast_{int}_piece{int}",
          "storage.BlockManagerInfo"),
        T("Removed broadcast_{int}_piece{int} on {host}:{port} in memory (size: {float} KB, free: {float} MB)",
          "storage.BlockManagerInfo"),
        T("ensureFreeSpace({int}) called with curMem={int}, maxMem={int}",
          "storage.MemoryStore"),
        T("Input split: hdfs://{host}/user/data/part-{int}:{int}+{int}",
          "rdd.HadoopRDD"),
        T("Getting {int} non-empty blocks out of {int} blocks",
          "storage.ShuffleBlockFetcherIterator"),
        T("Started {int} remote fetches in {int} ms",
          "storage.ShuffleBlockFetcherIterator"),
    ],
    rare_templates=[
        T("Exception in task {float} in stage {float} (TID {int}): java.io.IOException",
          "executor.Executor"),
        T("Lost connection to {host}:{port}, reconnecting",
          "network.client.TransportClient"),
    ],
    preprocess=[
        r"rdd_\d+_\d+",
        r"broadcast_\d+(_piece\d+)?",
        r"(\d{1,3}\.){3}\d{1,3}(:\d+)?",
    ],
    zipf_s=1.2,
    seed=103,
)

"""HealthApp — mobile health application log.

Reproduces the paper's HealthApp failure mode: on raw logs "Sequence-RTG
was unable to correctly process their datetime stamp which involved
time-parts without a leading zero for single digit hour, minute, or
second values (e.g. 20171224-0:7:20:444)" (§IV).  Here the unpadded
timestamps appear *in the content* of the heaviest templates via the
``{badtime}`` slot: roughly half its draws contain a single-digit part,
so the default scanner splits each affected event into a parsed-time and
an unparsed-time pattern, while the pre-processed variant (timestamps
already replaced by ``<*>``) is unaffected.  The future-work flag
``allow_single_digit_time=True`` repairs the raw score (ablation bench).
"""

from repro.loghub.datasets._headers import healthapp_header
from repro.loghub.generator import DatasetSpec, Template

T = Template

SPEC = DatasetSpec(
    name="HealthApp",
    header=healthapp_header,
    templates=[
        T("onStandStepChanged {int}", "Step_LSC"),
        T("calculateCaloriesWithCache totalCalories={int} since {badtime}",
          "Step_SPUtils"),
        T("getTodayTotalDetailSteps = {badtime} steps {int}##{int}##{int}##{int}",
          "Step_SPUtils"),
        T("onExtend:{int} {int} {int} {int}", "Step_ExtSDM"),
        T("processHandleBroadcastAction action:android.intent.action.SCREEN_ON",
          "Step_StandReportReceiver"),
        T("flush sensor data", "Step_LSC"),
        T("upLoadHealthData errorCode = {int:3}", "HiH_HealthDataInsertStore"),
        T("setTodayTotalDetailSteps={int}##{int}##{int}##{int}##{int}",
          "Step_SPUtils"),
        T("REPORT : {int} {int} {int} {float}", "Step_StandStepCounter"),
        T("onReceive action: android.intent.action.SCREEN_OFF",
          "Step_StandReportReceiver"),
        T("screen status unknown", "Step_LSC"),
        T("getUserPreference birthday={int} gender={int:2} height={int:3} weight={int:3}",
          "HiH_UserInfoCache"),
        T("aggregateDataCallback size={int:3}", "HiH_HealthKit"),
        T("checkAppAliveReport cycle={int}", "Step_AliveReport"),
    ],
    rare_templates=[
        T("db error code {int:4} during vacuum", "HiH_HealthDataStore"),
        T("token refresh failed status={int:3}", "HiH_Account"),
    ],
    preprocess=[
        # Zhu-style: timestamps are pre-identified and masked, which is
        # why the pre-processed score does not show the FSM limitation
        r"\d{8}-\d{1,2}:\d{1,2}:\d{1,2}(:\d{1,3})?",
    ],
    zipf_s=1.2,
    seed=113,
)

"""HDFS — Hadoop Distributed File System DataNode/NameNode logs.

Few, highly regular events dominated by block operations; both the real
benchmark and this synthetic stand-in are near the easy end (the best
parser of Zhu et al. reaches 1.0; Sequence-RTG reports 0.94).
"""

from repro.loghub.datasets._headers import hdfs_header
from repro.loghub.generator import DatasetSpec, Template

T = Template

SPEC = DatasetSpec(
    name="HDFS",
    header=hdfs_header,
    templates=[
        T("Receiving block {blk} src: /{ip}:{port} dest: /{ip}:{port}",
          "dfs.DataNode$DataXceiver"),
        T("PacketResponder {int} for block {blk} terminating",
          "dfs.DataNode$PacketResponder"),
        T("Received block {blk} of size {int} from /{ip}",
          "dfs.DataNode$PacketResponder"),
        T("BLOCK* NameSystem.addStoredBlock: blockMap updated: {ip}:{port} is added to {blk} size {int}",
          "dfs.FSNamesystem"),
        T("BLOCK* NameSystem.allocateBlock: /usr/data/part-{int}. {blk}",
          "dfs.FSNamesystem"),
        T("Verification succeeded for {blk}",
          "dfs.DataBlockScanner"),
        T("Deleting block {blk} file {path}",
          "dfs.FSDataset"),
        T("BLOCK* ask {ip}:{port} to replicate {blk} to datanode(s) {ip}:{port}",
          "dfs.FSNamesystem"),
        T("BLOCK* NameSystem.delete: {blk} is added to invalidSet of {ip}:{port}",
          "dfs.FSNamesystem"),
        T("Starting thread to transfer block {blk} to {ip}:{port}",
          "dfs.DataNode"),
        T("Received block {blk} src: /{ip}:{port} dest: /{ip}:{port} of size {int}",
          "dfs.DataNode$DataXceiver"),
        T("writeBlock {blk} received exception java.io.IOException: Connection reset by peer",
          "dfs.DataNode$DataXceiver"),
        T("PendingReplicationMonitor timed out block {blk}",
          "dfs.PendingReplicationBlocks$PendingReplicationMonitor"),
    ],
    rare_templates=[
        T("Exception in receiveBlock for block {blk} java.io.IOException: Broken pipe",
          "dfs.DataNode$DataXceiver"),
    ],
    preprocess=[
        r"blk_-?\d+",
        r"(\d{1,3}\.){3}\d{1,3}(:\d+)?",
    ],
    zipf_s=1.2,
    seed=101,
)

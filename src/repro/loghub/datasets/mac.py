"""Mac — macOS system.log.

The most template-diverse dataset in LogHub (hundreds of events in the
2k sample).  The stand-in combines kernel/WiFi chatter with a large
programmatic tail of per-daemon one-shot events.
"""

from repro.loghub.datasets._headers import syslog_header
from repro.loghub.generator import DatasetSpec, Template

T = Template

# Rare events: every daemon logs its *own* one-off phrases (real macOS
# daemons emit daemon-specific messages, not a shared vocabulary, and a
# shared phrase column would let the analyser merge unrelated daemons).
_RARE_EVENTS = (
    ("corecaptured", "CCIOReporterFormatter::addCaptureDataToReport stream count {int}"),
    ("corecaptured", "rebuilding capture index after wake"),
    ("QQ", "sqlite vfs registered handle {int}"),
    ("QQ", "message queue drained in {int} ms"),
    ("Safari", "tab heap compaction reclaimed {int} pages"),
    ("Safari", "favicon cache pruned"),
    ("WeChat", "voip session keepalive interval {int}"),
    ("WeChat", "sync backlog cleared"),
    ("sandboxd", "profile compilation cache warmed"),
    ("sandboxd", "extension revoked for token {int}"),
    ("networkd", "flow divert rule table rebuilt entries {int}"),
    ("networkd", "interface ranking recomputed"),
    ("symptomsd", "ratelimiter bucket refill {int}"),
    ("symptomsd", "connectivity verdict cached"),
    ("mDNSResponder", "goodbye packets scheduled {int}"),
    ("mDNSResponder", "cache rescued records {int}"),
    ("UserEventAgent", "com.apple.cts activity deferred"),
    ("UserEventAgent", "disk arbitration event coalesced"),
    ("locationd", "geofence region recalibrated radius {int}"),
    ("locationd", "wifi scan throttled"),
    ("configd", "dns configuration generation {int} pushed"),
    ("configd", "proxy pac fetch deferred"),
    ("WindowServer", "display reconfig pass {int} complete"),
    ("WindowServer", "gl compositor context rebuilt"),
    ("secd", "keychain item migration batch {int}"),
    ("secd", "trust cache refresh complete"),
    ("CalendarAgent", "alarm queue rescheduled {int} entries"),
    ("CalendarAgent", "caldav inbox scan finished"),
    ("nsurlsessiond", "background transfer quota renewed {int}"),
    ("nsurlsessiond", "connection pool trimmed"),
    ("cloudd", "zone fetch watermark advanced {int}"),
    ("cloudd", "push subscription renewed"),
    ("bird", "document token escrow {int} committed"),
    ("bird", "icloud drive snapshot sealed"),
    ("sharingd", "airdrop browse window extended {int} s"),
    ("sharingd", "handoff payload compacted"),
    ("tccd", "prompt suppression window {int} s armed"),
    ("tccd", "attribution chain resolved"),
    ("hidd", "digitizer calibration delta {int}"),
    ("hidd", "event service latency probe armed"),
)

SPEC = DatasetSpec(
    name="Mac",
    header=syslog_header("calvisitor-10-105-160-95"),
    templates=[
        T("ARPT: {float}: wl0: wl_update_tcpkeep_seq: Original Seq: {int}, Ack: {int}, Win size: {int}",
          "kernel"),
        T("ARPT: {float}: AirPort_Brcm43xx::powerChange: System {word:6}", "kernel"),
        T("AppleCamIn::systemWakeCall - messageType = 0x{hex8}", "kernel"),
        T("en0: channel changed to {int:3}", "kernel"),
        T("IO80211AWDLPeerManager::setAwdlOperatingMode Setting the AWDL operation mode from {word:3} to {word:6}",
          "kernel"),
        T("RTC: PowerByCalendarDate setting ignored", "kernel"),
        T("AirPort: Link Down on awdl0. Reason {int:2} (too many missed beacons).", "kernel"),
        T("Bluetooth -- LE is supported - Disable LE meta event", "kernel"),
        T("Previous sleep cause: {int:2}", "kernel"),
        T("Wake reason: ARPT (Network)", "kernel"),
        T("[HID] [ATC] AppleDeviceManagementHIDEventService::processWakeReason Wake reason: {word:6} (0x{hex8})",
          "kernel"),
        T("Sandbox: {word:8}({int}) deny(1) mach-lookup com.apple.{word:8}", "sandboxd"),
        T("CCFile::captureLogRun Skipping current file Dir file [{int}-{int}-{int}_{int},{int},{int}.{int}]",
          "corecaptured"),
        T("Received Capture Event", "corecaptured"),
        T("QQ: DB Path: {path}", "QQ"),
        T("QQ: FA||Url||taskID[{int}] dealloc", "QQ"),
        T("Basement: Layout changed, rebuilding window list", "WindowServer"),
        T("hostname changed to {host}", "configd"),
        T("network changed: v4(en0!:{ip}) DNS! Proxy! SMB", "configd"),
        T("Unknown attribute: kCBMsgArgDeviceAddress", "bluetoothd"),
    ],
    rare_templates=[
        T(f"{daemon}: {phrase}", daemon) for daemon, phrase in _RARE_EVENTS
    ],
    preprocess=[
        r"0x[0-9a-f]+",
        r"(\d{1,3}\.){3}\d{1,3}(:\d+)?",
        r"/(?:[a-zA-Z0-9_.-]+/)+[a-zA-Z0-9_.-]+",
    ],
    zipf_s=1.0,
    seed=111,
)

"""Windows — CBS (component based servicing) log.

Highly repetitive servicing-session lines; near the top of the accuracy
table for every parser.
"""

from repro.loghub.datasets._headers import windows_header
from repro.loghub.generator import DatasetSpec, Template

T = Template

SPEC = DatasetSpec(
    name="Windows",
    header=windows_header,
    templates=[
        T("Loaded Servicing Stack v{ver} with Core: {winpath}", "CBS"),
        T("Ending TrustedInstaller initialization.", "CBS"),
        T("Starting TrustedInstaller finalization.", "CBS"),
        T("Ending TrustedInstaller finalization.", "CBS"),
        T("Startup processing thread terminated normally", "CBS"),
        T("TrustedInstaller service starts successfully.", "CBS"),
        T("SQM: Initializing online with Windows opt-in: False", "CBS"),
        T("SQM: Cleaning up report files older than {int:3} days.", "CBS"),
        T("SQM: Requesting upload of all unsent reports.", "CBS"),
        T("SQM: Failed to start upload with file pattern: {winpath} flags: 0x{hex8} [HRESULT = 0x{hex8} - E_FAIL]", "CBS"),
        T("SQM: Queued {int:3} file(s) for upload with pattern: {winpath} flags: 0x{hex8}", "CBS"),
        T("SQM: Warning: Failed to upload all unsent reports. [HRESULT = 0x{hex8} - E_FAIL]", "CBS"),
        T("Scavenge: Starting scavenge of package store.", "CBS"),
        T("Session: {int}_{int} initialized by client WindowsUpdateAgent.", "CBS"),
        T("Session: {int}_{int} finalized. Reboot required: no [HRESULT = 0x{hex8} - S_OK]", "CBS"),
        T("Read out cached package applicability for package: Package_for_KB{int}~31bf3856ad364e35~amd64~~{ver}, ApplicableState: {int:3}, CurrentState: {int:3}", "CBS"),
        T("Appl: Evaluating package applicability for package Package_for_KB{int}~31bf3856ad364e35~amd64~~{ver}", "CSI"),
        T("Warning: Unrecognized packageExtended attribute.", "CBS"),
    ],
    rare_templates=[
        T("Failed to internally open package. [HRESULT = 0x{hex8} - CBS_E_INVALID_PACKAGE]", "CBS"),
        T("Failed to resolve package 'Package_for_KB{int}' [HRESULT = 0x{hex8}]", "CBS"),
    ],
    preprocess=[
        r"0x[0-9a-f]+",
        r"KB\d+",
        r"\d+_\d+",
    ],
    zipf_s=1.4,
    seed=109,
)

# Windows paths need a custom slot: register it lazily so importing this
# module is enough for templates using {winpath}.
from repro.loghub import generator as _generator  # noqa: E402


def _f_winpath(rng):
    parts = rng.randint(1, 3)
    body = "\\".join(
        rng.choice(("Windows", "Servicing", "winsxs", "System32", "Temp"))
        for _ in range(parts)
    )
    return f"C:\\{body}\\{rng.choice(('Stack', 'pending.xml', 'sqm.dat', 'cbs.log'))}"


_generator.FILLERS.setdefault("winpath", _f_winpath)

"""Linux — /var/log/messages from a small server.

The hardest mainstream dataset in the benchmark (best parser: 0.701;
Sequence-RTG also 0.702): a diverse syslog mixture where several events
differ only in small-pool alpha word slots (below any merge threshold)
and a long tail of one-shot events.  The stand-in engineers both
properties with ``{word:2..3}`` slots and a large rare-template list.
"""

from repro.loghub.datasets._headers import syslog_header
from repro.loghub.generator import DatasetSpec, Template

T = Template

_RARE_SUBSYSTEMS = (
    "hald", "gconfd", "portmap", "rpc.statd", "smartd", "atd", "acpid",
    "gpm", "mcstrans", "irqbalance", "pcscd", "hcid", "sdpd", "apmd",
)

SPEC = DatasetSpec(
    name="Linux",
    header=syslog_header("combo"),
    templates=[
        T("authentication failure; logname= uid=0 euid=0 tty=NODEVssh ruser= rhost={host} user={user:3}",
          "sshd(pam_unix)"),
        T("session opened for user {user:3} by (uid={int:2})", "sshd(pam_unix)"),
        T("session closed for user {user:3}", "sshd(pam_unix)"),
        T("check pass; user unknown", "sshd(pam_unix)"),
        T("connection from {ip} () at {word:2} Jul {int:2} 03:{int:2}:{int:2} 2005",
          "ftpd"),
        T("ANONYMOUS FTP LOGIN FROM {ip}, (anonymous)", "ftpd"),
        T("authentication failure; logname= uid=0 euid=0 tty= ruser= rhost={host}",
          "ftpd(pam_unix)"),
        T("{int:2} Time(s): couldn't resolve hostname", "named"),
        T("klogd {ver}, log source = /proc/kmsg started.", "klogd"),
        T("Kernel command line: ro root=LABEL=/", "kernel"),
        T("Memory: {int}k/{int}k available ({int}k kernel code, {int}k reserved, {int}k data, {int}k init, {int}k highmem)",
          "kernel"),
        T("CPU {int:2}: Intel(R) Pentium(R) 4 CPU {float}GHz stepping {int:2}",
          "kernel"),
        T("alias mapping IDE iomem region to {mem}", "kernel"),
        T("audit({float}:{int}): initialized", "kernel"),
        T("cups: cupsd {word:2} succeeded", "rc"),
        T("crond startup succeeded", "rc"),
        T("Did not receive identification string from {ip}", "sshd"),
        T("warning: can't get client address: Connection reset by peer", "xinetd"),
        T("logrotate: ALERT exited abnormally with [{int:2}]", "logrotate"),
    ],
    rare_templates=[
        T(f"{daemon} startup {phase} code {{int:4}}", daemon)
        for daemon in _RARE_SUBSYSTEMS
        for phase in ("succeeded", "failed")
    ] + [
        T("kernel: Inspecting {path}", "kernel"),
        T("kernel: Loaded {int} symbols from {path}", "kernel"),
        T("kernel: usb.c: registered new driver {word:8}", "kernel"),
        T("kernel: PCI: Found IRQ {int:2} for device {int:2}:{int:2}.{int:2}", "kernel"),
        T("init: Switching to runlevel: {int:2}", "init"),
        T("modprobe: FATAL: Module {word:8} not found.", "modprobe"),
    ],
    preprocess=[
        r"(\d{1,3}\.){3}\d{1,3}(:\d+)?",
        r"0x[0-9a-f]+",
    ],
    zipf_s=1.0,
    seed=110,
)

"""Zookeeper — quorum peer / NIO server connection logs."""

from repro.loghub.datasets._headers import zookeeper_header
from repro.loghub.generator import DatasetSpec, Template

T = Template

SPEC = DatasetSpec(
    name="Zookeeper",
    header=zookeeper_header,
    templates=[
        T("Accepted socket connection from /{ip}:{port}",
          "NIOServerCnxnFactory"),
        T("Client attempting to establish new session at /{ip}:{port}",
          "ZooKeeperServer"),
        T("Established session 0x{hex16} with negotiated timeout {int} for client /{ip}:{port}",
          "ZooKeeperServer"),
        T("Closed socket connection for client /{ip}:{port} which had sessionid 0x{hex16}",
          "NIOServerCnxn"),
        T("Expiring session 0x{hex16}, timeout of {int}ms exceeded",
          "ZooKeeperServer"),
        T("Processed session termination for sessionid: 0x{hex16}",
          "PrepRequestProcessor"),
        T("Received connection request /{ip}:{port}",
          "QuorumCnxManager$Listener"),
        T("Notification: {int} (n.leader), 0x{hex16} (n.zxid), 0x{hex8} (n.round), LOOKING (n.state), {int} (n.sid), 0x{hex8} (n.peerEPoch), FOLLOWING (my state)",
          "FastLeaderElection"),
        T("Connection broken for id {int}, my id = {int}, error = java.io.EOFException",
          "QuorumCnxManager$RecvWorker"),
        T("Interrupting SendWorker thread from recv queue for id {int}",
          "QuorumCnxManager$RecvWorker"),
        T("Send worker leaving thread id {int}",
          "QuorumCnxManager$SendWorker"),
        T("caught end of stream exception: Unable to read additional data from client sessionid 0x{hex16}, likely client has closed socket",
          "NIOServerCnxn"),
        T("Snapshotting: 0x{hex16} to {path}",
          "FileTxnSnapLog"),
        T("Reading snapshot {path}",
          "FileSnap"),
    ],
    rare_templates=[
        T("Exception causing close of session 0x{hex16} due to java.io.IOException",
          "NIOServerCnxn"),
        T("Got user-level KeeperException when processing sessionid:0x{hex16} type:create cxid:0x{hex8} zxid:0x{hex16} txntype:-1 reqpath:n/a Error Path:{path} Error:KeeperErrorCode = NodeExists",
          "PrepRequestProcessor"),
    ],
    preprocess=[
        r"0x[0-9a-f]+",
        r"(\d{1,3}\.){3}\d{1,3}(:\d+)?",
        r"/(?:[a-z]+/)+[a-zA-Z.]+",
    ],
    zipf_s=1.3,
    seed=104,
)

"""Hadoop — MapReduce application master / container logs.

Many java-component events with attempt and container identifiers; a
moderate long tail of rare events.
"""

from repro.loghub.datasets._headers import java_header
from repro.loghub.generator import DatasetSpec, Template

T = Template

_RARE_COMPONENTS = (
    "org.apache.hadoop.ipc.Client",
    "org.apache.hadoop.mapred.Task",
    "org.apache.hadoop.yarn.event.AsyncDispatcher",
    "org.apache.hadoop.mapreduce.v2.app.rm.RMContainerAllocator",
)

SPEC = DatasetSpec(
    name="Hadoop",
    header=java_header,
    templates=[
        T("attempt_{int}_{int}_m_{int}_{int} TaskAttempt Transitioned from RUNNING to SUCCEEDED",
          "org.apache.hadoop.mapreduce.v2.app.job.impl.TaskAttemptImpl"),
        T("Progress of TaskAttempt attempt_{int}_{int}_m_{int}_{int} is : {float}",
          "org.apache.hadoop.mapreduce.v2.app.job.impl.TaskAttemptImpl"),
        T("container_{int}_{int}_{int}_{int} Container Transitioned from ACQUIRED to RUNNING",
          "org.apache.hadoop.yarn.server.resourcemanager.rmcontainer.RMContainerImpl"),
        T("Assigned container container_{int}_{int}_{int}_{int} to attempt_{int}_{int}_m_{int}_{int}",
          "org.apache.hadoop.mapreduce.v2.app.rm.RMContainerAllocator"),
        T("Reduce slow start threshold not met. completedMapsForReduceSlowstart {int}",
          "org.apache.hadoop.mapreduce.v2.app.rm.RMContainerAllocator"),
        T("Recalculating schedule, headroom={int}",
          "org.apache.hadoop.mapreduce.v2.app.rm.RMContainerAllocator"),
        T("Event Writer setup for JobId: job_{int}_{int}, File: {path}",
          "org.apache.hadoop.mapreduce.jobhistory.JobHistoryEventHandler"),
        T("Processing event of type TASK_ATTEMPT_FINISHED for task attempt attempt_{int}_{int}_m_{int}_{int}",
          "org.apache.hadoop.mapreduce.jobhistory.JobHistoryEventHandler"),
        T("Retrying connect to server: {host}/{ip}:{port}. Already tried {int} time(s)",
          "org.apache.hadoop.ipc.Client"),
        T("Address change detected. Old: {host}/{ip}:{port} New: {host}/{ip}:{port}",
          "org.apache.hadoop.ipc.Client"),
        T("Communication exception: java.net.SocketTimeoutException: {int} millis timeout while waiting for channel to be ready",
          "org.apache.hadoop.mapred.Task"),
        T("Task 'attempt_{int}_{int}_m_{int}_{int}' done.",
          "org.apache.hadoop.mapred.Task"),
        T("fetcher#{int} about to shuffle output of map attempt_{int}_{int}_m_{int}_{int} decomp: {int} len: {int} to MEMORY",
          "org.apache.hadoop.mapreduce.task.reduce.Fetcher"),
        T("closeInMemoryFile -> map-output of size: {int}, inMemoryMapOutputs.size() -> {int}, commitMemory -> {int}, usedMemory -> {int}",
          "org.apache.hadoop.mapreduce.task.reduce.MergeManagerImpl"),
    ],
    rare_templates=[
        T(f"Error cleaning up task {{id}} in {comp.split('.')[-1]} subsystem {i}",
          comp)
        for i, comp in enumerate(_RARE_COMPONENTS * 5)
    ],
    preprocess=[
        r"attempt_\d+_\d+_m_\d+_\d+",
        r"container_\d+_\d+_\d+_\d+",
        r"job_\d+_\d+",
        r"(\d{1,3}\.){3}\d{1,3}(:\d+)?",
    ],
    zipf_s=1.3,
    seed=102,
)

"""Shared header builders for the synthetic datasets.

Each returns a ``header(rng, component)`` callable producing the
dataset's line prefix (timestamp, level, pid, component, ...), with the
timestamp drawn deterministically from the per-dataset RNG so headers
vary line to line the way real logs do.
"""

from __future__ import annotations

import random
import zlib

__all__ = [
    "hdfs_header",
    "java_header",
    "spark_header",
    "zookeeper_header",
    "openstack_header",
    "bgl_header",
    "hpc_header",
    "thunderbird_header",
    "windows_header",
    "syslog_header",
    "android_header",
    "healthapp_header",
    "apache_header",
    "proxifier_header",
]

_MONTHS = ("Jan", "Feb", "Mar", "Apr", "May", "Jun",
           "Jul", "Aug", "Sep", "Oct", "Nov", "Dec")
_LEVELS = ("INFO", "INFO", "INFO", "WARN", "ERROR")


def _clock(rng: random.Random) -> tuple[int, int, int]:
    return rng.randint(0, 23), rng.randint(0, 59), rng.randint(0, 59)


def _level_for(component: str, choices: tuple[str, ...] = _LEVELS) -> str:
    """Deterministic log level per component.

    Real log events carry a fixed severity; drawing the level randomly
    per line would split every event into one pattern per level, which
    no real dataset does.
    """
    return choices[zlib.crc32(component.encode()) % len(choices)]


def hdfs_header(rng: random.Random, component: str) -> str:
    h, m, s = _clock(rng)
    comp = component or "dfs.DataNode$PacketResponder"
    return (
        f"0811{rng.randint(10, 28):02d} {h:02d}{m:02d}{s:02d} "
        f"{rng.randint(1, 3000)} {_level_for(comp)} {comp}: "
    )


def java_header(rng: random.Random, component: str) -> str:
    h, m, s = _clock(rng)
    comp = component or "org.apache.hadoop.mapreduce.v2.app.MRAppMaster"
    return (
        f"2015-10-{rng.randint(10, 28)} {h:02d}:{m:02d}:{s:02d},"
        f"{rng.randint(0, 999):03d} {_level_for(comp)} [main] {comp}: "
    )


def spark_header(rng: random.Random, component: str) -> str:
    h, m, s = _clock(rng)
    comp = component or "executor.Executor"
    return f"17/06/{rng.randint(1, 28):02d} {h:02d}:{m:02d}:{s:02d} INFO {comp}: "


def zookeeper_header(rng: random.Random, component: str) -> str:
    h, m, s = _clock(rng)
    comp = component or "QuorumPeer"
    return (
        f"2015-07-{rng.randint(10, 29)} {h:02d}:{m:02d}:{s:02d},"
        f"{rng.randint(0, 999):03d} - {_level_for(comp)}"
        f" [main:{comp}@{rng.randint(100, 999)}] - "
    )


def openstack_header(rng: random.Random, component: str) -> str:
    h, m, s = _clock(rng)
    comp = component or "nova.osapi_compute.wsgi.server"
    req = (
        f"req-{rng.getrandbits(32):08x}-{rng.getrandbits(16):04x}-"
        f"{rng.getrandbits(16):04x}-{rng.getrandbits(16):04x}-"
        f"{rng.getrandbits(48):012x}"
    )
    return (
        f"2017-05-16 {h:02d}:{m:02d}:{s:02d}.{rng.randint(0, 999):03d} "
        f"{rng.randint(2000, 30000)} {_level_for(comp)} {comp} [{req}] "
    )


def bgl_header(rng: random.Random, component: str) -> str:
    h, m, s = _clock(rng)
    loc = (
        f"R{rng.randint(0, 63):02d}-M{rng.randint(0, 1)}-N{rng.randint(0, 15)}"
        f"-C:J{rng.randint(0, 17):02d}-U{rng.randint(0, 63):02d}"
    )
    comp = component or "KERNEL"
    epoch = 1117838570 + rng.randint(0, 500000)
    day = rng.randint(1, 28)
    return (
        f"- {epoch} 2005.06.{day:02d} {loc} "
        f"2005-06-{day:02d}-{h:02d}.{m:02d}.{s:02d}.{rng.randint(0, 999999):06d} "
        f"{loc} RAS {comp} {_level_for(comp, ('INFO', 'FATAL', 'WARNING'))} "
    )


def hpc_header(rng: random.Random, component: str) -> str:
    comp = component or "unix.hw"
    return (
        f"{rng.randint(10000, 99999)} node-{rng.randint(0, 255)} "
        f"{comp} {1084680778 + rng.randint(0, 900000)} 1 "
    )


def thunderbird_header(rng: random.Random, component: str) -> str:
    h, m, s = _clock(rng)
    day = rng.randint(1, 28)
    node = f"dn{rng.randint(1, 999)}"
    comp = component or "crond(pam_unix)"
    epoch = 1131566461 + rng.randint(0, 400000)
    return (
        f"- {epoch} 2005.11.{day:02d} {node} Nov {day} "
        f"{h:02d}:{m:02d}:{s:02d} {node}/{node} {comp}[{rng.randint(100, 32000)}]: "
    )


def windows_header(rng: random.Random, component: str) -> str:
    h, m, s = _clock(rng)
    comp = component or "CBS"
    return f"2016-09-{rng.randint(10, 29)} {h:02d}:{m:02d}:{s:02d}, Info {comp} "


def syslog_header(host: str = "combo"):
    def header(rng: random.Random, component: str) -> str:
        h, m, s = _clock(rng)
        comp = component or "kernel"
        return (
            f"{rng.choice(_MONTHS)} {rng.randint(1, 28)} "
            f"{h:02d}:{m:02d}:{s:02d} {host} {comp}[{rng.randint(100, 32000)}]: "
        )

    return header


def android_header(rng: random.Random, component: str) -> str:
    h, m, s = _clock(rng)
    comp = component or "WindowManager"
    return (
        f"03-{rng.randint(10, 28)} {h:02d}:{m:02d}:{s:02d}."
        f"{rng.randint(0, 999):03d} {rng.randint(1000, 9999)} "
        f"{rng.randint(1000, 9999)} {_level_for(comp, tuple('DIWEV'))} {comp}: "
    )


def healthapp_header(rng: random.Random, component: str) -> str:
    h, m, s = rng.randint(10, 23), rng.randint(10, 59), rng.randint(10, 59)
    comp = component or "Step_LSC"
    return (
        f"201712{rng.randint(10, 28)}-{h}:{m}:{s}:{rng.randint(100, 999)}"
        f"|{comp}|{rng.randint(30000000, 30009999)}|"
    )


def apache_header(rng: random.Random, component: str) -> str:
    h, m, s = _clock(rng)
    day_name = rng.choice(("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"))
    level = component or "notice"
    return (
        f"[{day_name} Jun {rng.randint(1, 28):02d} {h:02d}:{m:02d}:{s:02d} 2005]"
        f" [{level}] "
    )


def proxifier_header(rng: random.Random, component: str) -> str:
    h, m, s = _clock(rng)
    return f"[{rng.randint(10, 12)}.{rng.randint(10, 28)} {h:02d}:{m:02d}:{s:02d}] "

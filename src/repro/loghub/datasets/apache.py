"""Apache — httpd error log.

Six highly regular events; every parser in the benchmark reaches 1.0 and
Sequence-RTG does too (Table II).
"""

from repro.loghub.datasets._headers import apache_header
from repro.loghub.generator import DatasetSpec, Template

T = Template

SPEC = DatasetSpec(
    name="Apache",
    header=apache_header,
    templates=[
        T("jk2_init() Found child {int} in scoreboard slot {int}", "notice"),
        T("workerEnv.init() ok {path}", "notice"),
        T("mod_jk child workerEnv in error state {int:2}", "error"),
        T("[client {ip}] Directory index forbidden by rule: {path}", "error"),
        T("jk2_init() Can't find child {int} in scoreboard", "error"),
        T("mod_jk child init {int:2} {int:2}", "notice"),
    ],
    preprocess=[
        r"(\d{1,3}\.){3}\d{1,3}",
        r"/(?:[a-zA-Z0-9_.-]+/)+[a-zA-Z0-9_.-]*",
    ],
    zipf_s=1.0,
    seed=114,
)

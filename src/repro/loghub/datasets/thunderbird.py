"""Thunderbird — Sandia supercomputer syslog stream.

A syslog mixture: cron sessions, kernel messages, daemon chatter, plus a
tail of rare administrative events.
"""

from repro.loghub.datasets._headers import thunderbird_header
from repro.loghub.generator import DatasetSpec, Template

T = Template

SPEC = DatasetSpec(
    name="Thunderbird",
    header=thunderbird_header,
    templates=[
        T("session opened for user root by (uid={int:2})", "crond(pam_unix)"),
        T("session closed for user root", "crond(pam_unix)"),
        T("({user:6}) CMD (run-parts /etc/cron.hourly)", "crond"),
        T("connect from {ip} ({ip})", "in.rshd"),
        T("check pass; user unknown", "sshd(pam_unix)"),
        T("authentication failure; logname= uid={int:2} euid={int:2} tty=NODEVssh ruser= rhost={host}",
          "sshd(pam_unix)"),
        T("Shutting down succeeded", "xinetd"),
        T("Starting xinetd succeeded", "xinetd"),
        T("synchronized to {ip}, stratum {int:2}", "ntpd"),
        T("kernel: imklog {ver}, log source = /proc/kmsg started.", "kernel"),
        T("kernel: martian source {ip} from {ip}, on dev eth{int:2}", "kernel"),
        T("kernel: ll header: {mac}", "kernel"),
        T("DHCPREQUEST on eth{int:2} to {ip} port {port}", "dhclient"),
        T("DHCPACK from {ip}", "dhclient"),
        T("bound to {ip} -- renewal in {int} seconds.", "dhclient"),
        T("data_thread() got not answer from any [{word:3}] datasource", "envmond"),
        T("Monitor_Thread::monitor - pc={int} ib_pc={int}", "ibmon"),
    ],
    rare_templates=[
        T("pbs_mom: task_check, cannot tm_reply to {int} task {int}", "pbs_mom"),
        T("mount request from unknown host {ip} for {path}", "mountd"),
        T("rpc.statd: gethostbyname error for {host}", "rpc.statd"),
        T("avahi-daemon: invalid query packet from {ip}", "avahi"),
        T("irqbalance: irq {int} affinity set failed", "irqbalance"),
        T("smartd: device {path} opened", "smartd"),
        T("gmond: error {int} sending metric to {ip}", "gmond"),
        T("console kernel panic: fatal exception at {mem}", "kernel"),
    ],
    preprocess=[
        r"(\d{1,3}\.){3}\d{1,3}(:\d+)?",
        r"([0-9a-f]{2}:){5}[0-9a-f]{2}",
        r"0x[0-9a-f]+",
    ],
    zipf_s=1.2,
    seed=108,
)

"""Android — logcat stream.

Dense framework chatter (window manager, power manager, activity
manager) with many medium-frequency events.
"""

from repro.loghub.datasets._headers import android_header
from repro.loghub.generator import DatasetSpec, Template

T = Template

_SERVICES = (
    "AlarmManager", "AudioTrack", "BatteryService", "ConnectivityService",
    "InputDispatcher", "JobScheduler", "NotificationService", "PackageManager",
    "SensorService", "TelephonyManager", "Vibrator", "WifiStateMachine",
)

SPEC = DatasetSpec(
    name="Android",
    header=android_header,
    templates=[
        T("printFreezingDisplayLogsopening app wtoken = AppWindowToken{{{hex8} token=Token{{{hex8} ActivityRecord{{{hex8} u0 com.tencent.qt.qtl/.activity.info.NewsDetailXmlActivity t{int}}}}}}}, allDrawn= false, startingDisplayed =  false, startingMoved = false, isRelaunching = false",
          "WindowManager"),
        T("Skipping AppWindowToken{{{hex8} token=Token{{{hex8} ActivityRecord{{{hex8} u0 com.tencent.qt.qtl/.activity.info.NewsDetailXmlActivity t{int}}}}}}} -- going to hide",
          "WindowManager"),
        T("acquire lock=23456789, flags=0x{hex8}, tag=\"RILJ_ACK_WL\", name=com.android.phone, ws=null, uid={int}, pid={int}",
          "PowerManagerService"),
        T("ready=true,policy={int:3},wakefulness=1,wksummary=0x{hex8},uasummary=0x{hex8},bootcompleted=true,boostinprogress=false,waitmodeenable=false,mode=false,manual={int:3},auto=-1,adj=0.0userId=0",
          "PowerManagerService"),
        T("Set screen state: true", "DisplayPowerController"),
        T("Unblocked screen, oldState=OFF, newState=ON, elapsed={int} ms",
          "DisplayPowerController"),
        T("setSystemUiVisibility vis=0x{hex8} mask=0xffffffff oldVal=0x{hex8} newVal=0x{hex8} diff=0x{hex8}",
          "StatusBarManagerService"),
        T("loadLabel exceed, packageName=com.{word:6}.{word:6}, label={word:6}",
          "PackageManager"),
        T("Loading service info list size = {int:3}", "HwSystemManager"),
        T("SendBroadcast permission granted uid = {int}", "HwSystemManager"),
        T("screen is on...", "SendBroadcastPermission"),
        T("interceptKeyTq keycode={int:3} down=true keyguardActive=false",
          "PhoneWindowManager"),
        T("startAnimation, this = RemoteDisplayState{{{hex8}}}", "SurfaceFlinger"),
        T("computeScreenConfigurationLocked() Density: {int:3}", "WindowManager"),
    ],
    rare_templates=[
        T(f"{svc}: operation {op} took {{int}} ms", svc)
        for svc in _SERVICES
        for op in ("bind", "unbind", "sync", "flush")
    ] + [
        T(f"{svc}: unexpected state {{int:4}} in transaction {{hex8}}", svc)
        for svc in _SERVICES[:8]
    ],
    preprocess=[
        r"0x[0-9a-f]+",
        r"\{[0-9a-f]{6,8}",
    ],
    zipf_s=1.1,
    seed=112,
)

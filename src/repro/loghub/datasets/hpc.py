"""HPC — high performance cluster hardware/state-change log.

The real dataset mixes state-change events whose variable columns are
pure-alpha words with small value pools, which sit under Sequence's
merge threshold and split events (the paper scores 0.739 pre-processed —
its second-worst dataset); the stand-in models that with bounded
``{word:k}`` slots.
"""

from repro.loghub.datasets._headers import hpc_header
from repro.loghub.generator import DatasetSpec, Template

T = Template

SPEC = DatasetSpec(
    name="HPC",
    header=hpc_header,
    templates=[
        T("Component State Change: Component \"{word:3}\" is in the unavailable state (HWID={int})",
          "unix.hw"),
        T("Link error on broadcast tree Interconnect-0T{port}:{port}",
          "boot_cmd"),
        T("ClusterFileSystem: There is no server for PanFS storage {word:8}",
          "unix.fs"),
        T("PSU status ( {word:6} {word:6} )", "unix.hw"),
        T("Temperature ( ambient={int:3} ) exceeds warning threshold", "unix.hw"),
        T("Fan speeds ( {int} {int} {int} {int} {int} {int} )", "unix.hw"),
        T("node node-{int} has detected an available network connection on network {ip} via interface alt0",
          "tbird_admin"),
        T("node status {word:6} for node node-{int}", "node"),
        T("boot (command {int:4}) initiated for node-{int}", "boot_cmd"),
        T("halt (command {int:4}) initiated for node-{int}", "boot_cmd"),
        T("running running (command {int:4}) node-{int}", "boot_cmd"),
        T("Targeting domains:node-D{int} and nodes:node-[{int}-{int}] child of command {int:4}",
          "domain"),
        T("Message FIFO overflow detected on node-{int}", "unix.hw"),
        T("risBoot command inconsistent with clusterAddMember for node-{int}", "risboot"),
    ],
    rare_templates=[
        T("scsi disk error on node-{int} device {word:8}", "unix.hw"),
        T("network adapter reset on node-{int} port {int:2}", "unix.hw"),
        T("configuration conflict detected for domain node-D{int}", "domain"),
    ],
    preprocess=[
        r"node-\d+",
        r"(\d{1,3}\.){3}\d{1,3}",
    ],
    zipf_s=0.9,
    seed=107,
)

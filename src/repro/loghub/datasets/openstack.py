"""OpenStack — nova compute/api logs.

Long lines with request ids, instance UUIDs and HTTP status rows; both
the benchmark and this stand-in land mid-table.
"""

from repro.loghub.datasets._headers import openstack_header
from repro.loghub.generator import DatasetSpec, Template

T = Template

SPEC = DatasetSpec(
    name="OpenStack",
    header=openstack_header,
    templates=[
        T('{ip} "GET /v2/{hex16}/servers/detail HTTP/1.1" status: {int:4} len: {int} time: {float}',
          "nova.osapi_compute.wsgi.server"),
        T('{ip} "POST /v2/{hex16}/os-server-external-events HTTP/1.1" status: {int:4} len: {int} time: {float}',
          "nova.osapi_compute.wsgi.server"),
        T("Running cmd (subprocess): /usr/bin/nova-manage", "nova.utils"),
        T("Running cmd (subprocess): /usr/sbin/iptables-save", "nova.utils"),
        T("[instance: {uuid}] VM Started (Lifecycle Event)",
          "nova.compute.manager"),
        T("[instance: {uuid}] VM Paused (Lifecycle Event)",
          "nova.compute.manager"),
        T("[instance: {uuid}] VM Resumed (Lifecycle Event)",
          "nova.compute.manager"),
        T("[instance: {uuid}] During sync_power_state the instance has a pending task (spawning). Skip.",
          "nova.compute.manager"),
        T("[instance: {uuid}] Took {float} seconds to build instance.",
          "nova.compute.manager"),
        T("[instance: {uuid}] Took {float} seconds to spawn the instance on the hypervisor.",
          "nova.compute.manager"),
        T("[instance: {uuid}] Creating image",
          "nova.virt.libvirt.driver"),
        T("[instance: {uuid}] Deleting instance files {path}",
          "nova.virt.libvirt.driver"),
        T("[instance: {uuid}] Deletion of {path} complete",
          "nova.virt.libvirt.driver"),
        T("[instance: {uuid}] Instance destroyed successfully.",
          "nova.virt.libvirt.driver"),
        T("Total usable vcpus: {int:3}, total allocated vcpus: {int:3}",
          "nova.compute.resource_tracker"),
        T("Final resource view: name={word:2} phys_ram={int}MB used_ram={int}MB phys_disk={int}GB used_disk={int}GB total_vcpus={int:3} used_vcpus={int:3} pci_stats=[]",
          "nova.compute.resource_tracker"),
        T("Auditing locally available compute resources for node {word:2}",
          "nova.compute.resource_tracker"),
        T("Active base files: {path}",
          "nova.virt.libvirt.imagecache"),
        T('{ip} "GET /v2/{hex16}/servers/{uuid} HTTP/1.1" status: {int:4} len: {int} time: {float}',
          "nova.osapi_compute.wsgi.server"),
    ],
    rare_templates=[
        T("[instance: {uuid}] Ignoring supplied device name: /dev/{word:8}",
          "nova.compute.api"),
        T("Unexpected error while checking compute node {int}",
          "nova.compute.manager"),
        T("[req-{hex8}] Error updating resources for node {word:2}: DiskNotFound",
          "nova.compute.manager"),
    ],
    preprocess=[
        r"[0-9a-f]{8}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{12}",
        r"(\d{1,3}\.){3}\d{1,3}(:\d+)?",
        r"/(?:[a-zA-Z0-9_.-]+/)+[a-zA-Z0-9_.-]+",
    ],
    zipf_s=0.7,
    seed=105,
)

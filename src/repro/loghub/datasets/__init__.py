"""Per-dataset synthetic LogHub specifications.

One module per dataset of the 16 used in the paper's Table II/III.  Each
exposes a module-level ``SPEC`` (:class:`repro.loghub.generator.DatasetSpec`)
whose templates are modelled on the real system's log formats, including
the failure cases the paper names (HealthApp unpadded times, Proxifier
integer/alphanumeric columns, Linux's long tail of rare events).
"""

from importlib import import_module

__all__ = ["spec_for", "MODULES"]

MODULES = {
    "HDFS": "hdfs",
    "Hadoop": "hadoop",
    "Spark": "spark",
    "Zookeeper": "zookeeper",
    "OpenStack": "openstack",
    "BGL": "bgl",
    "HPC": "hpc",
    "Thunderbird": "thunderbird",
    "Windows": "windows",
    "Linux": "linux",
    "Mac": "mac",
    "Android": "android",
    "HealthApp": "healthapp",
    "Apache": "apache",
    "OpenSSH": "openssh",
    "Proxifier": "proxifier",
}


def spec_for(name: str):
    """Load the DatasetSpec for dataset *name* (e.g. ``"HDFS"``)."""
    try:
        module_name = MODULES[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; expected one of {sorted(MODULES)}"
        ) from None
    module = import_module(f"repro.loghub.datasets.{module_name}")
    return module.SPEC

"""Corpus loader: named access to the 16 generated datasets."""

from __future__ import annotations

from functools import lru_cache

from repro.loghub.datasets import MODULES, spec_for
from repro.loghub.generator import LabeledDataset, generate

__all__ = ["DATASET_NAMES", "load_dataset"]

#: Dataset names in the order of the paper's Table II.
DATASET_NAMES = (
    "HDFS",
    "Hadoop",
    "Spark",
    "Zookeeper",
    "OpenStack",
    "BGL",
    "HPC",
    "Thunderbird",
    "Windows",
    "Linux",
    "Mac",
    "Android",
    "HealthApp",
    "Apache",
    "OpenSSH",
    "Proxifier",
)

assert set(DATASET_NAMES) == set(MODULES), "dataset registry out of sync"


@lru_cache(maxsize=None)
def load_dataset(name: str, n: int = 2000, seed: int | None = None) -> LabeledDataset:
    """Generate (and cache) the labelled sample for dataset *name*.

    2,000 lines matches the labelled samples of the LogHub benchmark;
    pass *n* to scale.  Generation is deterministic per (name, n, seed).
    """
    return generate(spec_for(name), n=n, seed=seed)

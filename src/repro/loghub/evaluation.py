"""Grouping-accuracy evaluation (methodology of Zhu et al., ICSE-SEIP'19).

"They measured the accuracy using the ratio of correctly parsed log
messages over the total number of log messages" where a message is
correctly parsed iff its predicted cluster contains *exactly* the same
set of messages as its ground-truth event (paper §IV / §V).  The paper
follows the same methodology for Table II, evaluating Sequence-RTG once
on the benchmark's pre-processed content and once on the raw log lines.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Hashable, Sequence

from repro.core.config import RTGConfig
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.core.records import LogRecord
from repro.loghub.generator import LabeledDataset

__all__ = ["grouping_accuracy", "evaluate_sequence_rtg", "evaluate_baseline"]


def grouping_accuracy(
    truth: Sequence[Hashable], predicted: Sequence[Hashable]
) -> float:
    """Fraction of messages whose predicted cluster equals its truth cluster.

    A predicted cluster is correct only when it is *identical as a set*
    to some ground-truth event: over-splitting and over-merging both zero
    out every message involved, which is what makes the metric strict.
    """
    if len(truth) != len(predicted):
        raise ValueError(
            f"length mismatch: {len(truth)} truth vs {len(predicted)} predicted"
        )
    if not truth:
        return 1.0
    truth_groups: dict[Hashable, set[int]] = defaultdict(set)
    predicted_groups: dict[Hashable, set[int]] = defaultdict(set)
    for i, (t, p) in enumerate(zip(truth, predicted)):
        truth_groups[t].add(i)
        predicted_groups[p].add(i)
    correct = 0
    for indices in predicted_groups.values():
        representative = next(iter(indices))
        if truth_groups[truth[representative]] == indices:
            correct += len(indices)
    return correct / len(truth)


def evaluate_sequence_rtg(
    dataset: LabeledDataset,
    mode: str = "raw",
    config: RTGConfig | None = None,
) -> float:
    """Grouping accuracy of the Sequence-RTG pipeline on *dataset*.

    ``mode="raw"`` feeds full unaltered log lines ("messages coming
    directly from their production source"); ``mode="preprocessed"``
    feeds the benchmark's pre-processed content.  The pipeline mines
    patterns from the whole sample with an empty pattern database, then a
    second pass parses every line; its matched pattern id is the
    predicted cluster (unparsed lines each form their own cluster).
    """
    if mode == "raw":
        messages = dataset.raws()
    elif mode == "preprocessed":
        messages = dataset.preprocessed()
    else:
        raise ValueError(f"mode must be 'raw' or 'preprocessed', got {mode!r}")

    rtg = SequenceRTG(db=PatternDB(), config=config)
    service = dataset.name
    records = [LogRecord(service=service, message=m) for m in messages]
    rtg.analyze_by_service(records)

    parser = rtg.parser_for(service)
    predicted: list[str] = []
    for i, message in enumerate(messages):
        scanned = rtg.scanner.scan(message, service=service)
        hit = parser.match(scanned)
        predicted.append(hit.pattern.id if hit else f"<unmatched-{i}>")
    return grouping_accuracy(dataset.truth(), predicted)


def evaluate_legacy_sequence(
    dataset: LabeledDataset, mode: str = "raw"
) -> float:
    """Grouping accuracy of the *seminal* Sequence ``Analyze`` method.

    One trie over the whole sample, no service/length partitioning, no
    constant folding — the tool the paper started from.  Comparing this
    against :func:`evaluate_sequence_rtg` quantifies the paper's claim
    that the two partitioning rounds have "the added side effect of
    better quality patterns compared with processing them as a single
    group" (§III).
    """
    from repro.analyzer.analyzer import LegacyAnalyzer
    from repro.parser.parser import Parser
    from repro.scanner.scanner import Scanner

    if mode == "raw":
        messages = dataset.raws()
    elif mode == "preprocessed":
        messages = dataset.preprocessed()
    else:
        raise ValueError(f"mode must be 'raw' or 'preprocessed', got {mode!r}")

    scanner = Scanner()
    scanned = [scanner.scan(m) for m in messages]
    patterns = LegacyAnalyzer().analyze(scanned)
    for pattern in patterns:
        pattern.service = dataset.name
    parser = Parser(patterns)
    predicted = []
    for i, msg in enumerate(scanned):
        hit = parser.match(msg)
        predicted.append(hit.pattern.id if hit else f"<unmatched-{i}>")
    return grouping_accuracy(dataset.truth(), predicted)


def evaluate_baseline(parser, dataset: LabeledDataset) -> float:
    """Grouping accuracy of a baseline parser on pre-processed content.

    *parser* is a fresh :class:`repro.baselines.base.LogParserBase`
    instance; Table III feeds the baselines pre-processed data, as Zhu
    et al. did.
    """
    assignments = parser.fit(dataset.preprocessed())
    return grouping_accuracy(dataset.truth(), assignments)

"""Pattern analysis substrate (the *Sequence* analyser).

The analyser builds a trie over scanned token sequences, merges tokens at
the same level that share the same parent and children into variables,
detects key/value pairs, e-mail addresses and host names at analysis time
(paper §III), and emits :class:`~repro.analyzer.pattern.Pattern` objects.

Two analysers are provided:

* :class:`Analyzer` — Sequence-RTG mode: operates on a single partition
  (one service, one token length) with linear-time sibling merging and
  constant folding of single-valued variables (quality-control fix for
  limitation 4).
* :class:`LegacyAnalyzer` — seminal Sequence ``Analyze``: one trie for
  the whole data set regardless of service or length, with the original
  pairwise same-level comparison whose cost grows super-linearly with
  trie width (the behaviour visible in the paper's Fig. 5).
"""

from repro.analyzer.analyzer import Analyzer, AnalyzerConfig, LegacyAnalyzer
from repro.analyzer.pattern import Pattern, PatternToken, UnknownTagError, VarClass

__all__ = [
    "Analyzer",
    "AnalyzerConfig",
    "LegacyAnalyzer",
    "Pattern",
    "PatternToken",
    "UnknownTagError",
    "VarClass",
]

"""Pattern analysis substrate (the *Sequence* analyser).

The analyser builds a trie over scanned token sequences, merges tokens at
the same level that share the same parent and children into variables,
detects key/value pairs, e-mail addresses and host names at analysis time
(paper §III), and emits :class:`~repro.analyzer.pattern.Pattern` objects.

Two analysers are provided:

* :class:`Analyzer` — Sequence-RTG mode: operates on a single partition
  (one service, one token length) with linear-time sibling merging and
  constant folding of single-valued variables (quality-control fix for
  limitation 4).
* :class:`LegacyAnalyzer` — seminal Sequence ``Analyze``: one trie for
  the whole data set regardless of service or length, with the original
  pairwise same-level comparison whose cost grows super-linearly with
  trie width (the behaviour visible in the paper's Fig. 5).

The Sequence-RTG analyser has two interchangeable backends —
:class:`Analyzer`, the reference per-node trie, and
:class:`~repro.analyzer.compiled.CompiledAnalyzer`, a flat
array-of-columns arena with batch insertion and bucketed sibling
merging, bit-identical pattern output — selected by
:attr:`AnalyzerConfig.backend` through :func:`build_analyzer`.
"""

from repro.analyzer.analyzer import (
    ANALYZER_BACKENDS,
    Analyzer,
    AnalyzerConfig,
    LegacyAnalyzer,
)
from repro.analyzer.pattern import Pattern, PatternToken, UnknownTagError, VarClass

__all__ = [
    "ANALYZER_BACKENDS",
    "Analyzer",
    "AnalyzerConfig",
    "LegacyAnalyzer",
    "Pattern",
    "PatternToken",
    "UnknownTagError",
    "VarClass",
    "build_analyzer",
]


def build_analyzer(config: AnalyzerConfig | None = None):
    """Construct the analyser backend *config* selects.

    ``"reference"`` (the default) is the per-node object trie — the
    executable specification; ``"compiled"`` runs the same insertion,
    merge and fold rules over a flat node arena with batch insertion.
    Both emit byte-identical :class:`Pattern` lists; the compiled one
    trades a little interning bookkeeping for much higher per-partition
    analysis throughput.
    """
    config = config or AnalyzerConfig()
    if config.backend not in ANALYZER_BACKENDS:
        # config validates at construction, but the field is mutable —
        # an unknown value must fail loudly here, not silently fall
        # back to the reference backend
        raise ValueError(
            f"unknown analyzer backend {config.backend!r}; "
            f"valid choices: {', '.join(ANALYZER_BACKENDS)}"
        )
    if config.backend == "compiled":
        # imported lazily so the default path never pays for a backend
        # it does not use
        from repro.analyzer.compiled import CompiledAnalyzer

        return CompiledAnalyzer(config)
    return Analyzer(config)

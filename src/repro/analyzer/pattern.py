"""Pattern data model.

A pattern is a sequence of static and variable parts against which new
log messages are matched (paper §I).  Sequence renders patterns as clear
strings with variables delimited by ``%``::

    %action% from %srcip% port %srcport%

This module defines the structured form (:class:`Pattern`,
:class:`PatternToken`), the variable-class vocabulary (:class:`VarClass`),
rendering in both Sequence-RTG exact-whitespace mode and the seminal
Sequence always-insert-a-space mode (limitation 3), parsing of pattern
text back to structure, and the documented ``%`` unknown-tag hazard
(:class:`UnknownTagError`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro._util.hashing import pattern_id
from repro.scanner.token_types import TokenType

__all__ = [
    "VarClass",
    "PatternToken",
    "Pattern",
    "UnknownTagError",
    "BASE_TAGS",
    "SEMANTIC_TAGS",
]


class VarClass(enum.Enum):
    """Class of a pattern variable — what kind of token it matches."""

    STRING = "string"  # any single token
    ALNUM = "alphanum"  # identifier mixing letters and digits
    INTEGER = "integer"
    FLOAT = "float"
    IPV4 = "ipv4"
    IPV6 = "ipv6"
    MAC = "mac"
    TIME = "msgtime"
    URL = "url"
    PATH = "path"
    EMAIL = "email"
    HOST = "host"
    REST = "ignorerest"  # ignore everything after this point


#: Variable class for each scan/analysis-time token type.
_TOKEN_TO_VAR = {
    TokenType.INTEGER: VarClass.INTEGER,
    TokenType.FLOAT: VarClass.FLOAT,
    TokenType.IPV4: VarClass.IPV4,
    TokenType.IPV6: VarClass.IPV6,
    TokenType.MAC: VarClass.MAC,
    TokenType.TIME: VarClass.TIME,
    TokenType.URL: VarClass.URL,
    TokenType.PATH: VarClass.PATH,
    TokenType.EMAIL: VarClass.EMAIL,
    TokenType.HOST: VarClass.HOST,
    TokenType.VALUE: VarClass.STRING,
    TokenType.REST: VarClass.REST,
}


def var_class_for(token_type: TokenType) -> VarClass:
    """Variable class corresponding to a typed token."""
    try:
        return _TOKEN_TO_VAR[token_type]
    except KeyError:
        raise ValueError(f"token type {token_type} is not a variable type") from None


#: Base tag name for each variable class (the ``%tag%`` rendering).
BASE_TAGS: dict[VarClass, str] = {v: v.value for v in VarClass}

#: Semantic tag names the analyser may assign, with their classes.  These
#: are the names appearing in the paper's example pattern.
SEMANTIC_TAGS: dict[str, VarClass] = {
    "srcip": VarClass.IPV4,
    "dstip": VarClass.IPV4,
    "srcport": VarClass.INTEGER,
    "dstport": VarClass.INTEGER,
    "port": VarClass.INTEGER,
    "pid": VarClass.INTEGER,
    "uid": VarClass.INTEGER,
    "gid": VarClass.INTEGER,
    "size": VarClass.INTEGER,
    "count": VarClass.INTEGER,
    "duration": VarClass.FLOAT,
    "action": VarClass.STRING,
    "user": VarClass.STRING,
    "status": VarClass.STRING,
    "level": VarClass.STRING,
    "sessionid": VarClass.ALNUM,
    "object": VarClass.STRING,
    "reason": VarClass.STRING,
    "srcemail": VarClass.EMAIL,
    "dstemail": VarClass.EMAIL,
    "srchost": VarClass.HOST,
    "dsthost": VarClass.HOST,
}

#: All tags the parser understands (base + semantic + numbered variants of
#: either, which are validated structurally).
_KNOWN_BASE = set(BASE_TAGS.values()) | set(SEMANTIC_TAGS)


def _resolve_tag(name: str) -> "VarClass | None":
    """Resolve a ``%name%`` tag to its variable class.

    Numeric disambiguation suffixes are stripped one digit at a time and
    every prefix is tried, so both ``integer2`` → ``integer`` and
    ``ipv41`` → ``ipv4`` (a *second* IPv4 variable) resolve correctly.
    """
    candidate = name
    while True:
        if candidate in SEMANTIC_TAGS:
            return SEMANTIC_TAGS[candidate]
        if candidate in _BASE_BY_VALUE:
            return _BASE_BY_VALUE[candidate]
        if candidate and candidate[-1].isdigit():
            candidate = candidate[:-1]
        else:
            return None


_BASE_BY_VALUE = {v.value: v for v in VarClass}


def _static_pieces(word: str) -> list[str]:
    """Split a space-free static word the way the scanner would."""
    from repro.scanner.scanner import Scanner

    global _SHARED_SCANNER
    try:
        scanner = _SHARED_SCANNER
    except NameError:
        scanner = _SHARED_SCANNER = Scanner()
    return [t.text for t in scanner.scan(word).tokens]


class UnknownTagError(ValueError):
    """Raised when pattern text contains a ``%tag%`` the parser does not know.

    The paper documents this hazard (§IV "Limitations"): log messages may
    contain fields delimited by the ``%`` sign, which Sequence uses to
    delimit its tokens; if those survive into a pattern as static text
    they cause an unknown-tag error at parsing time.
    """


@dataclass(slots=True)
class PatternToken:
    """One element of a pattern: either static text or a variable."""

    is_variable: bool
    text: str = ""  # static text when not a variable
    var_class: VarClass | None = None
    name: str = ""  # rendered tag name, e.g. "srcip"
    is_space_before: bool = True

    @classmethod
    def static(cls, text: str, is_space_before: bool = True) -> "PatternToken":
        return cls(is_variable=False, text=text, is_space_before=is_space_before)

    @classmethod
    def variable(
        cls, var_class: VarClass, name: str = "", is_space_before: bool = True
    ) -> "PatternToken":
        return cls(
            is_variable=True,
            var_class=var_class,
            name=name or BASE_TAGS[var_class],
            is_space_before=is_space_before,
        )

    def render(self) -> str:
        if self.is_variable:
            return f"%{self.name}%"
        return self.text

    def to_dict(self) -> dict:
        """JSON-serialisable form for database storage."""
        if self.is_variable:
            return {
                "v": 1,
                "class": self.var_class.value,
                "name": self.name,
                "sp": int(self.is_space_before),
            }
        return {"v": 0, "text": self.text, "sp": int(self.is_space_before)}

    @classmethod
    def from_dict(cls, d: dict) -> "PatternToken":
        if d["v"]:
            return cls(
                is_variable=True,
                var_class=VarClass(d["class"]),
                name=d["name"],
                is_space_before=bool(d["sp"]),
            )
        return cls(is_variable=False, text=d["text"], is_space_before=bool(d["sp"]))


@dataclass(slots=True)
class Pattern:
    """A discovered pattern plus its bookkeeping metadata."""

    tokens: list[PatternToken]
    service: str = ""
    support: int = 0  # number of messages matched since discovery
    examples: list[str] = field(default_factory=list)  # up to 3 unique examples

    # ------------------------------------------------------------------
    @property
    def text(self) -> str:
        """Sequence-RTG rendering with exact whitespace reconstruction."""
        return self.render(exact_spacing=True)

    def render(self, exact_spacing: bool = True) -> str:
        """Render the pattern string.

        ``exact_spacing=False`` reproduces seminal Sequence's behaviour of
        inserting a whitespace between every pair of tokens regardless of
        the original spacing (limitation 3); ``True`` is the Sequence-RTG
        fix driven by ``is_space_before``.
        """
        parts: list[str] = []
        for i, tok in enumerate(self.tokens):
            if i > 0 and (tok.is_space_before or not exact_spacing):
                parts.append(" ")
            parts.append(tok.render())
        return "".join(parts)

    @property
    def id(self) -> str:
        """Reproducible SHA1 id over pattern text + service (paper §III)."""
        return pattern_id(self.text, self.service)

    @property
    def complexity(self) -> float:
        """Fraction of variable tokens — the pattern-quality guide.

        Patterns consisting entirely of variables (complexity 1.0) are
        "often overly patternised, thus increasing their probability of
        being impractical" (paper §III); exports can filter on this.
        """
        if not self.tokens:
            return 1.0
        n_var = sum(1 for t in self.tokens if t.is_variable)
        return n_var / len(self.tokens)

    @property
    def n_variables(self) -> int:
        return sum(1 for t in self.tokens if t.is_variable)

    def add_example(self, message: str, limit: int = 3) -> bool:
        """Record *message* as an example if new and under the limit.

        The paper stores "up to three unique examples for each pattern
        which are used as test cases for the syslog-ng pattern database".
        """
        if message in self.examples or len(self.examples) >= limit:
            return False
        self.examples.append(message)
        return True

    # ------------------------------------------------------------------
    @classmethod
    def from_text(cls, text: str, service: str = "") -> "Pattern":
        """Parse a rendered pattern string back into structure.

        Tags are ``%name%`` where *name* is a base tag, a semantic tag, or
        either followed by a numeric disambiguation suffix.  Any other
        ``%...%`` token raises :class:`UnknownTagError` — the documented
        behaviour when ``%``-delimited source fields leak into patterns.
        """
        tokens: list[PatternToken] = []
        for i, word in enumerate(text.split(" ")):
            if not word:
                continue
            sp = i > 0
            if len(word) >= 3 and word.startswith("%") and word.endswith("%"):
                name = word[1:-1]
                vc = _resolve_tag(name)
                if vc is None:
                    raise UnknownTagError(
                        f"unknown tag %{name}% in pattern {text!r}"
                    )
                tokens.append(
                    PatternToken(
                        is_variable=True, var_class=vc, name=name, is_space_before=sp
                    )
                )
            elif "%" in word and word.count("%") >= 2:
                # embedded %...% inside a larger word is still a hazard
                raise UnknownTagError(f"unknown tag in pattern word {word!r}")
            else:
                # split static words exactly the way the scanner splits
                # messages, so "panic:" in pattern text matches the two
                # message tokens "panic" and ":"
                for j, piece in enumerate(_static_pieces(word)):
                    tokens.append(
                        PatternToken.static(piece, is_space_before=sp and j == 0)
                    )
        return cls(tokens=tokens, service=service)

    def to_dict(self) -> dict:
        return {
            "service": self.service,
            "support": self.support,
            "examples": list(self.examples),
            "tokens": [t.to_dict() for t in self.tokens],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Pattern":
        return cls(
            tokens=[PatternToken.from_dict(t) for t in d["tokens"]],
            service=d.get("service", ""),
            support=d.get("support", 0),
            examples=list(d.get("examples", [])),
        )

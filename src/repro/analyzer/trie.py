"""Analysis trie.

"After tokenisation, the Sequence analyser builds a trie with the tokens.
The trie data structure allows for very fast search and retrieval.  Once
the trie is built it performs a comparison of all of the tokens
positioned at the same level that share the same parent and child nodes.
During this comparison the relevant parts are merged to produce the
patterns." (paper §III)

Node edges are keyed by a one-character-discriminated string:

* ``"L" + text`` — literal token edge;
* ``"T" + type[:semantic]`` — typed token edge (inherently a variable);
* ``"V" + class`` — merged-literal variable edge created by the analyser;
* ``"$"`` — end-of-sequence marker carrying support count and examples.

Keeping the discriminator in the key makes sibling scans cheap (a single
dict walk) and guarantees typed edges can never collide with literal
text.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analyzer.pattern import VarClass, var_class_for
from repro.scanner.scanner import ScannedMessage
from repro.scanner.token_types import Token, TokenType

__all__ = ["TrieNode", "AnalysisTrie", "END_KEY", "token_key"]

END_KEY = "$"

#: Cap on exact value tracking per edge; above this the edge is known to
#: be "many-valued" and constant folding is off the table anyway.
VALUE_CAP = 8


def token_key(tok: Token) -> str:
    """Edge key for a scanned token."""
    if tok.type is TokenType.LITERAL or tok.type is TokenType.KEY:
        return "L" + tok.text
    if tok.semantic:
        return f"T{tok.type.value}:{tok.semantic}"
    return "T" + tok.type.value


@dataclass(slots=True)
class TrieNode:
    """One trie node; edge metadata lives on the edge's target node."""

    children: dict[str, "TrieNode"] = field(default_factory=dict)
    count: int = 0
    #: exact observed source texts with occurrence counts, tracked up to
    #: VALUE_CAP distinct values then abandoned
    values: dict[str, int] | None = None
    overflow: bool = False
    #: variable class for typed/merged edges; None on literal edges
    var: VarClass | None = None
    semantic: str | None = None
    is_space_before: bool = True
    #: END nodes only: up to three unique example messages
    examples: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    def observe(self, text: str, n: int = 1) -> None:
        """Track an observed source text (for constant folding and the
        semi-constant expansion)."""
        if self.overflow:
            return
        if self.values is None:
            self.values = {}
        self.values[text] = self.values.get(text, 0) + n
        if len(self.values) > VALUE_CAP:
            self.overflow = True
            self.values = None

    def node_count(self) -> int:
        """Total nodes in the subtree rooted here (self included)."""
        return 1 + sum(c.node_count() for c in self.children.values())

    def absorb(self, other: "TrieNode") -> None:
        """Merge *other*'s subtree into this node (trie union).

        Used when sibling edges are merged into a variable: their
        subtrees must be unified so patterns downstream of the merge
        point are shared.
        """
        self.count += other.count
        if other.overflow:
            self.overflow = True
            self.values = None
        elif other.values:
            for v, n in other.values.items():
                self.observe(v, n)
        for example in other.examples:
            if example not in self.examples and len(self.examples) < 3:
                self.examples.append(example)
        if self.semantic != other.semantic:
            self.semantic = None
        for key, child in other.children.items():
            mine = self.children.get(key)
            if mine is None:
                self.children[key] = child
            else:
                mine.absorb(child)


class AnalysisTrie:
    """Insertion front-end over :class:`TrieNode`."""

    def __init__(self) -> None:
        self.root = TrieNode()
        self.n_messages = 0

    def reset(self) -> None:
        """Discard all inserted state so the trie can be rebuilt.

        The analyser keeps one trie per instance and resets it between
        length partitions instead of allocating a fresh
        :class:`AnalysisTrie` per call; dropping the root releases the
        whole node graph in one step.
        """
        self.root = TrieNode()
        self.n_messages = 0

    def insert(self, message: ScannedMessage, tokens: list[Token], n: int = 1) -> None:
        """Insert one scanned (and enriched) message, counted *n* times.

        Weighted insertion is the dedup fast lane's contract: inserting a
        message once with ``n=k`` produces the same trie — node counts,
        observed values, child order, examples — as inserting it ``k``
        times, because duplicates add no new edges and all bookkeeping is
        additive.
        """
        node = self.root
        node.count += n
        for tok in tokens:
            key = token_key(tok)
            child = node.children.get(key)
            if child is None:
                child = TrieNode(is_space_before=tok.is_space_before)
                if key[0] == "T":
                    child.var = var_class_for(tok.type)
                    child.semantic = tok.semantic
                node.children[key] = child
            child.count += n
            child.observe(tok.text, n)
            node = child
        end = node.children.get(END_KEY)
        if end is None:
            end = TrieNode()
            node.children[END_KEY] = end
        end.count += n
        if message.original not in end.examples and len(end.examples) < 3:
            end.examples.append(message.original)
        self.n_messages += n

    def node_count(self) -> int:
        return self.root.node_count()

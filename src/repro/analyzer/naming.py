"""Semantic variable naming.

Sequence names pattern variables after their role when the surrounding
static text gives it away, producing patterns like the paper's example::

    %action% from %srcip% port %srcport%

The heuristics here reproduce that behaviour: direction context is
tracked through ``from``/``to`` literals, well-known count/identifier
keywords name the integer that follows them, a merged-string variable in
leading position is the message's ``action``, and key/value variables are
named after their key.  Names are de-duplicated with numeric suffixes so
exports (Grok field names, syslog-ng parser names) stay unambiguous.
"""

from __future__ import annotations

from repro.analyzer.pattern import PatternToken, VarClass

__all__ = ["assign_names"]

# literal (lowercased) → direction context it establishes
_DIRECTION_WORDS = {
    "from": "src",
    "src": "src",
    "source": "src",
    "client": "src",
    "to": "dst",
    "dst": "dst",
    "destination": "dst",
    "server": "dst",
}

# literal immediately before an integer variable → semantic name stem
_INTEGER_KEYWORDS = {
    "port": "port",
    "pid": "pid",
    "uid": "uid",
    "gid": "gid",
    "size": "size",
    "bytes": "size",
    "count": "count",
    "ttl": "count",
}

# literal immediately before a string variable → semantic name
_STRING_KEYWORDS = {
    "user": "user",
    "username": "user",
    "status": "status",
    "state": "status",
    "reason": "reason",
}


def _sanitize(name: str) -> str:
    """Restrict a key-derived name to tag-safe characters."""
    cleaned = "".join(c if (c.isalnum() or c == "_") else "_" for c in name)
    cleaned = cleaned.strip("_").lower()
    return cleaned or "value"


def assign_names(
    tokens: list[PatternToken], semantics: list[str | None] | None = None
) -> None:
    """Assign semantic names to the variables of *tokens* in place.

    *semantics* optionally carries per-position semantic tags collected by
    the analyser (key names from key/value detection), aligned with
    *tokens*.
    """
    direction = "src"
    prev_literal = ""
    first_content = True
    used: dict[str, int] = {}

    for i, tok in enumerate(tokens):
        if not tok.is_variable:
            word = tok.text.lower()
            if word in _DIRECTION_WORDS:
                direction = _DIRECTION_WORDS[word]
            if any(c.isalnum() for c in tok.text):
                prev_literal = word
                first_content = False
            continue

        semantic = semantics[i] if semantics else None
        name = _name_for(tok, prev_literal, direction, first_content, semantic)
        tok.name = _dedupe(name, used)
        prev_literal = ""
        first_content = False


def _name_for(
    tok: PatternToken,
    prev_literal: str,
    direction: str,
    first_content: bool,
    semantic: str | None,
) -> str:
    vc = tok.var_class
    if semantic:
        return _sanitize(semantic)
    if vc is VarClass.IPV4 or vc is VarClass.IPV6:
        if prev_literal in _DIRECTION_WORDS:
            return f"{direction}ip"
        return vc.value
    if vc is VarClass.HOST:
        if prev_literal in _DIRECTION_WORDS:
            return f"{direction}host"
        return "host"
    if vc is VarClass.INTEGER:
        stem = _INTEGER_KEYWORDS.get(prev_literal)
        if stem == "port":
            return f"{direction}port"
        if stem:
            return stem
        return "integer"
    if vc in (VarClass.STRING, VarClass.ALNUM):
        if prev_literal in _STRING_KEYWORDS:
            return _STRING_KEYWORDS[prev_literal]
        if first_content and vc is VarClass.STRING:
            # a variable opening the message is the action word(s)
            return "action"
        return "alphanum" if vc is VarClass.ALNUM else "string"
    # time, url, mac, float, path, email, rest: base tag
    return vc.value if vc is not VarClass.TIME else "msgtime"


def _dedupe(name: str, used: dict[str, int]) -> str:
    """First occurrence keeps the bare name; repeats get 1, 2, ... suffixes."""
    count = used.get(name, 0)
    used[name] = count + 1
    if count == 0:
        return name
    return f"{name}{count}"

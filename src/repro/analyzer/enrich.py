"""Analysis-time token enrichment.

"Some other special types are also detected during the analysis phase,
i.e. key/value pairs, email addresses, and host names" (paper §III).
The scanner deliberately leaves these as literals — detecting them needs
more context than a single-pass character FSM has — and the analyser
re-types them here before trie insertion.
"""

from __future__ import annotations

from repro.scanner.token_types import Token, TokenType

__all__ = ["enrich_tokens", "is_email", "is_hostname"]

# Common top-level domains accepted for two-label host names; longer
# dotted names qualify regardless of their last label.
_TLDS = {
    "com", "net", "org", "edu", "gov", "mil", "int", "io", "co",
    "fr", "de", "uk", "us", "cn", "jp", "ru", "nl", "it", "es",
    "local", "internal", "lan", "corp", "cloud", "dev",
}

_LABEL_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_")


def is_email(text: str) -> bool:
    """True for ``local@domain.tld``-shaped tokens."""
    if text.count("@") != 1:
        return False
    local, domain = text.split("@")
    if not local or any(c.isspace() for c in local):
        return False
    return is_hostname(domain, require_known_tld=False) and "." in domain


def is_hostname(text: str, require_known_tld: bool = True) -> bool:
    """True for dotted host names like ``node17.cluster.example.com``.

    To avoid claiming decimal numbers, file names or Java class paths the
    check requires: at least two labels, every label non-empty and made of
    hostname characters, at least one letter overall, an alphabetic last
    label, and — for two-label names — a recognised TLD (``require_known_tld``)
    so ``archive.tar`` stays a literal.
    """
    if "." not in text or ".." in text or text.startswith(".") or text.endswith("."):
        return False
    labels = text.split(".")
    if len(labels) < 2:
        return False
    if not all(label and set(label) <= _LABEL_CHARS for label in labels):
        return False
    if not any(c.isalpha() for c in text):
        return False
    last = labels[-1]
    if not last.isalpha():
        return False
    if len(labels) == 2 or require_known_tld:
        if len(labels) == 2 and last.lower() not in _TLDS:
            return False
    return True


def enrich_tokens(tokens: list[Token]) -> list[Token]:
    """Return a re-typed copy of *tokens* with analysis-time detections.

    * ``k = v`` triples (the scanner splits ``=`` into its own token):
      the key literal becomes :data:`TokenType.KEY` and the value token
      gains the key name as its semantic tag; literal values become
      :data:`TokenType.VALUE` (a variable), typed values keep their type.
    * Literal tokens shaped like e-mail addresses become ``EMAIL``.
    * Literal tokens shaped like host names become ``HOST``.
    """
    out = list(tokens)
    n = len(out)
    for i, tok in enumerate(out):
        if tok.type is not TokenType.LITERAL:
            continue
        text = tok.text
        # key of a k=v pair: LITERAL '=' X
        if (
            i + 2 < n
            and out[i + 1].text == "="
            and text
            and text[0].isalpha()
            and out[i + 2].text != "="
        ):
            key = text
            out[i] = tok.with_type(TokenType.KEY)
            value = out[i + 2]
            if value.type is TokenType.LITERAL:
                out[i + 2] = value.with_type(TokenType.VALUE, semantic=key)
            else:
                out[i + 2] = value.with_type(value.type, semantic=key)
            continue
        if is_email(text):
            out[i] = tok.with_type(TokenType.EMAIL)
        elif is_hostname(text):
            out[i] = tok.with_type(TokenType.HOST)
    return out

"""Pattern discovery: Sequence-RTG and seminal-Sequence analysers.

Both analysers insert scanned messages into an :class:`AnalysisTrie`,
merge same-level sibling edges into variables, and emit
:class:`~repro.analyzer.pattern.Pattern` objects from root-to-END walks.
They differ exactly where the paper says the tools differ:

* :class:`Analyzer` (Sequence-RTG) is handed one partition at a time —
  one service, one token count — by ``AnalyzeByService``.  Sibling
  merging is a linear scan, and single-valued variables are folded back
  to static text (quality control for limitation 4: "Sequence tends to
  add too many variables into patterns").
* :class:`LegacyAnalyzer` (seminal ``Analyze``) receives the whole data
  set in a single trie regardless of service or message length and uses
  the original *pairwise* comparison of same-level siblings; its cost per
  node is quadratic in the number of distinct siblings, which is why its
  running time degrades super-linearly on large mixed-service data sets
  (paper Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analyzer.enrich import enrich_tokens
from repro.analyzer.naming import assign_names
from repro.analyzer.pattern import Pattern, PatternToken, VarClass
from repro.analyzer.trie import END_KEY, AnalysisTrie, TrieNode
from repro.scanner.scanner import ScannedMessage

__all__ = ["ANALYZER_BACKENDS", "Analyzer", "AnalyzerConfig", "LegacyAnalyzer"]

#: Selectable analyser implementations: the reference per-node trie
#: walk, and the flat array-of-columns backend of
#: :mod:`repro.analyzer.compiled`.
ANALYZER_BACKENDS = ("reference", "compiled")

# Variable classes that are never folded back to constants: a timestamp
# that happened to repeat within one batch will still differ in the next.
_NEVER_FOLD = {VarClass.TIME, VarClass.REST, VarClass.STRING, VarClass.ALNUM}


@dataclass(slots=True)
class AnalyzerConfig:
    """Tunable analysis behaviour (defaults follow the paper)."""

    #: Rule A — more than this many distinct word-like literal siblings at
    #: one position merge into a single variable.
    merge_threshold: int = 4
    #: Rule B — two or more literal siblings that all look like
    #: identifiers (contain digits) merge regardless of the threshold.
    id_merge: bool = True
    #: Fold variables observed with a single value back to static text
    #: (Sequence-RTG quality control; disable to reproduce limitation 4).
    fold_constants: bool = True
    #: Minimum support before a single-valued variable is folded.
    fold_min_support: int = 3
    #: Run key/value, e-mail and hostname detection before insertion.
    enrich: bool = True
    #: minimum child-key Jaccard similarity for two word siblings to be
    #: considered the same pattern position (Rule A grouping)
    word_similarity: float = 0.5
    #: Future-work feature (§VI "semi-constant" values): when a variable
    #: takes at most this many distinct values, emit one pattern per
    #: value (each with the value as a constant) instead of a single
    #: variable pattern.  0 disables the expansion (published behaviour).
    semi_constant_max_values: int = 0
    #: LegacyAnalyzer only: similarity used by the original pairwise
    #: same-level comparison (merges at group size >= 2, no threshold)
    legacy_similarity: float = 0.5
    #: Which implementation :func:`repro.analyzer.build_analyzer`
    #: constructs: ``"reference"`` (this module's :class:`Analyzer`) or
    #: ``"compiled"`` (:class:`repro.analyzer.compiled.CompiledAnalyzer`,
    #: bit-identical patterns from a flat arena trie).
    backend: str = "reference"

    def __post_init__(self) -> None:
        if self.backend not in ANALYZER_BACKENDS:
            raise ValueError(
                f"unknown analyzer backend {self.backend!r}; "
                f"expected one of {ANALYZER_BACKENDS}"
            )


def _wordlike(text: str) -> bool:
    return any(c.isalnum() for c in text)


_HEX_CHARS = set("0123456789abcdefABCDEF")


def _looks_id(text: str) -> bool:
    """Identifier-ish literal: digits mixed into a word (``blk_123``) or a
    hex string of six or more characters (``fcbcdfce`` — no digit needed:
    a hash that happens to draw only a-f letters is still an id)."""
    if not _wordlike(text):
        return False
    if any(c.isdigit() for c in text):
        return True
    return len(text) >= 6 and set(text) <= _HEX_CHARS


def _similarity_groups(
    node: TrieNode, keys: list[str], threshold: float
) -> list[list[str]]:
    """Union-find grouping of sibling keys by child-key Jaccard overlap.

    Two siblings with no children at all (both terminal positions) are
    considered similar; otherwise the overlap of their child-key sets
    must reach *threshold*.
    """
    parent = list(range(len(keys)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    child_keys = [frozenset(node.children[k].children) for k in keys]
    n = len(keys)
    for i in range(n):
        for j in range(i + 1, n):
            a, b = child_keys[i], child_keys[j]
            if not a and not b:
                similar = True
            else:
                union = len(a | b)
                similar = union > 0 and len(a & b) / union >= threshold
            if similar:
                ri, rj = find(i), find(j)
                if ri != rj:
                    parent[rj] = ri
    groups: dict[int, list[str]] = {}
    for i, key in enumerate(keys):
        groups.setdefault(find(i), []).append(key)
    return list(groups.values())


class _BaseAnalyzer:
    """Shared trie construction and pattern emission."""

    #: implementation label carried into metrics (the compiled backend
    #: overrides it)
    backend_name = "reference"

    def __init__(self, config: AnalyzerConfig | None = None) -> None:
        self.config = config or AnalyzerConfig()
        self.last_trie_nodes = 0  # memory telemetry for the benchmarks
        # one trie per analyser, reset between partitions: the engine's
        # analyze stage walks every (service, token-count) partition of a
        # batch through a single analyser instance, so reusing the
        # front-end object (and dropping the node graph in one step)
        # beats reallocating scratch state per partition
        self._trie = AnalysisTrie()

    # -- construction ---------------------------------------------------
    def _build(
        self,
        messages: list[ScannedMessage],
        counts: list[int] | None = None,
    ) -> AnalysisTrie:
        trie = self._trie
        trie.reset()
        for i, msg in enumerate(messages):
            tokens = enrich_tokens(msg.tokens) if self.config.enrich else msg.tokens
            trie.insert(msg, tokens, n=1 if counts is None else counts[i])
        return trie

    # -- merging helpers -------------------------------------------------
    def _merge_literal_group(self, node: TrieNode, keys: list[str]) -> None:
        """Merge the literal children *keys* of *node* into one variable."""
        children = [node.children.pop(k) for k in keys]
        texts = [k[1:] for k in keys]
        merged = children[0]
        for other in children[1:]:
            merged.absorb(other)
        for text in texts:
            merged.observe(text, 0)  # register the value; counts came in
            # through absorb() via the children's own observations
        merged.var = (
            VarClass.ALNUM
            if all(_looks_id(t) for t in texts)
            else VarClass.STRING
        )
        var_key = "V" + merged.var.value
        existing = node.children.get(var_key)
        if existing is not None:
            existing.absorb(merged)
        else:
            node.children[var_key] = merged

    # -- emission ---------------------------------------------------------
    def _emit(self, trie: AnalysisTrie) -> list[Pattern]:
        patterns: list[Pattern] = []
        self._walk(trie.root, [], [], patterns)
        return patterns

    def _walk(
        self,
        node: TrieNode,
        tokens: list[PatternToken],
        semantics: list[str | None],
        out: list[Pattern],
        fraction: float = 1.0,
        chosen: tuple[str, ...] = (),
    ) -> None:
        for key, child in node.children.items():
            if key == END_KEY:
                pattern_tokens = [
                    PatternToken(
                        is_variable=t.is_variable,
                        text=t.text,
                        var_class=t.var_class,
                        name=t.name,
                        is_space_before=t.is_space_before,
                    )
                    for t in tokens
                ]
                assign_names(pattern_tokens, semantics)
                examples = [
                    e for e in child.examples if all(v in e for v in chosen)
                ]
                pattern = Pattern(
                    tokens=pattern_tokens,
                    support=max(1, round(child.count * fraction)),
                    examples=examples,
                )
                out.append(pattern)
                continue
            tok, semantic = self._pattern_token(key, child)
            expansion = self._semi_constant_values(tok, child)
            if expansion is None:
                tokens.append(tok)
                semantics.append(semantic)
                self._walk(child, tokens, semantics, out, fraction, chosen)
                tokens.pop()
                semantics.pop()
                continue
            # §VI future work: one pattern per value of a semi-constant
            # variable, each with the value as a constant at its position
            for value, value_count in expansion:
                tokens.append(
                    PatternToken.static(value, is_space_before=tok.is_space_before)
                )
                semantics.append(None)
                self._walk(
                    child,
                    tokens,
                    semantics,
                    out,
                    fraction * value_count / max(1, child.count),
                    chosen + (value,),
                )
                tokens.pop()
                semantics.pop()

    def _semi_constant_values(
        self, tok: PatternToken, child: TrieNode
    ) -> list[tuple[str, int]] | None:
        """Values of a semi-constant variable edge, or None to not expand."""
        limit = self.config.semi_constant_max_values
        if (
            limit <= 0
            or not tok.is_variable
            or tok.var_class in (VarClass.TIME, VarClass.REST)
            or child.overflow
            or not child.values
            or not 2 <= len(child.values) <= limit
        ):
            return None
        return sorted(child.values.items())

    def _pattern_token(
        self, key: str, child: TrieNode
    ) -> tuple[PatternToken, str | None]:
        if key[0] == "L":
            return (
                PatternToken.static(key[1:], is_space_before=child.is_space_before),
                None,
            )
        # typed or merged-variable edge
        var = child.var or VarClass.STRING
        if (
            self.config.fold_constants
            and var not in _NEVER_FOLD
            and not child.overflow
            and child.values is not None
            and len(child.values) == 1
            and child.count >= self.config.fold_min_support
        ):
            text = next(iter(child.values))
            return (
                PatternToken.static(text, is_space_before=child.is_space_before),
                None,
            )
        return (
            PatternToken.variable(var, is_space_before=child.is_space_before),
            child.semantic,
        )


class Analyzer(_BaseAnalyzer):
    """Sequence-RTG analyser for one (service, token-count) partition.

    ``AnalyzeByService`` guarantees all messages handed to one call share
    a service and a token count ("Only token sets of the same length are
    compared in the same analysis trie for pattern discovery", §III), so
    sibling merging can be a single linear scan per node.
    """

    def analyze(
        self,
        messages: list[ScannedMessage],
        counts: list[int] | None = None,
    ) -> list[Pattern]:
        """Mine patterns from one partition of scanned messages.

        *counts* (parallel to *messages*) carries dedup multiplicities —
        the fast lane hands each distinct message once plus how often it
        occurred; omitted means every message counts once.
        """
        if not messages:
            return []
        trie = self._build(messages, counts)
        # memory telemetry: the peak footprint is the trie *before*
        # merging collapses siblings (what the paper's batch-size
        # discussion is about)
        self.last_trie_nodes = trie.node_count()
        self._merge(trie.root)
        return self._emit(trie)

    def _merge(self, node: TrieNode) -> None:
        """Merge same-level literal siblings that share child structure.

        Following the paper ("a comparison of all of the tokens
        positioned at the same level that share the same parent and
        child nodes"), only siblings whose subtrees look alike are
        candidates: identifier-like siblings (Rule B) need matching
        immediate children, word siblings (Rule A) need matching
        children *and* grandchildren before the distinct-value threshold
        applies.  This keeps a variable `user` column mergeable while
        two unrelated events that merely share a message length stay
        apart.
        """
        literal_keys = [
            k for k in node.children if k[0] == "L" and _wordlike(k[1:])
        ]
        if len(literal_keys) >= 2:
            remaining = literal_keys
            if self.config.id_merge:
                remaining = self._merge_ids(node, literal_keys)
            if len(remaining) > self.config.merge_threshold:
                self._merge_words(node, remaining)
        for child in node.children.values():
            self._merge(child)

    def _merge_ids(self, node: TrieNode, keys: list[str]) -> list[str]:
        """Rule B: merge identifier-like siblings.

        Identifier values (digits mixed into the word: ``blk_123``,
        ``dn259/dn259``) are near-unique, so a rare value's subtree is a
        sampled subset of a frequent value's — demanding equal child
        fingerprints would strand the rare values in their own patterns.
        Two or more id-like siblings therefore always merge.
        """
        id_keys = [k for k in keys if _looks_id(k[1:])]
        if len(id_keys) < 2:
            return keys
        self._merge_literal_group(node, id_keys)
        return [k for k in keys if k not in set(id_keys)]

    def _merge_words(self, node: TrieNode, keys: list[str]) -> None:
        """Rule A: merge word siblings with *similar* child structure when
        more than ``merge_threshold`` distinct values share it.

        This is the paper's "comparison of all of the tokens positioned
        at the same level that share the same parent and child nodes":
        similarity is the Jaccard overlap of immediate child keys —
        exact equality would strand values whenever the next position is
        itself variable (each value only ever sampled a subset of the
        neighbour's values).  The pairwise comparison is quadratic in the
        sibling count, which stays small because ``AnalyzeByService``
        hands the analyser one (service, token-count) partition at a
        time; the legacy analyser pays this cost on the full mixed trie.
        """
        groups = _similarity_groups(
            node, keys, threshold=self.config.word_similarity
        )
        for group in groups:
            if len(group) > self.config.merge_threshold:
                self._merge_literal_group(node, group)


class LegacyAnalyzer(_BaseAnalyzer):
    """Seminal Sequence ``Analyze``: one trie, pairwise sibling comparison.

    Reproduces the original tool's behaviour and cost model for the
    Fig. 5 comparison: every message of every service goes into a single
    trie, and the merge pass compares each pair of same-level literal
    siblings by the similarity of their child keys.  No constant folding
    is performed (limitation 4) and callers render its patterns with
    ``exact_spacing=False`` (limitation 3).
    """

    def __init__(self, config: AnalyzerConfig | None = None) -> None:
        config = config or AnalyzerConfig()
        config.fold_constants = False
        super().__init__(config)

    def analyze(self, messages: list[ScannedMessage]) -> list[Pattern]:
        if not messages:
            return []
        trie = self._build(messages)
        self.last_trie_nodes = trie.node_count()
        self._merge_pairwise(trie.root)
        return self._emit(trie)

    def _merge_pairwise(self, node: TrieNode) -> None:
        literal_keys = [
            k for k in node.children if k[0] == "L" and _wordlike(k[1:])
        ]
        if len(literal_keys) >= 2:
            groups = _similarity_groups(
                node, literal_keys, threshold=self.config.legacy_similarity
            )
            for group in groups:
                if len(group) >= 2:
                    self._merge_literal_group(node, group)
        for child in node.children.values():
            self._merge_pairwise(child)

"""Compiled analyser backend: a flat array-of-columns analysis trie.

The reference :class:`~repro.analyzer.analyzer.Analyzer` spends most of
its time allocating and walking per-node :class:`TrieNode` objects — one
slotted dataclass, one child dict and one values dict per edge, rebuilt
from scratch for every (service, token-count) partition.  This backend
keeps the exact same trie *shape* but stores it structure-of-arrays
style in a node arena reused across partitions:

* nodes are integer indices into parallel columns (``_keys``,
  ``_counts``, ``_kids``, ``_values``, ``_overflow``, ``_var``,
  ``_sem``, ``_space``, ``_examples``); allocation is an append (or a
  row reuse after :meth:`_reset`), never an object construction;
* edge keys are interned through bounded memo tables
  (text → ``"L"+text``, (type, semantic) → ``"T…"`` key + var class),
  so the hot insert loop performs no string formatting;
* insertion batches the whole partition: identical raw messages are
  grouped first and inserted once with their summed weight — exact by
  the weighted-insert contract documented on
  :meth:`~repro.analyzer.trie.AnalysisTrie.insert` — which also runs
  enrichment once per distinct message;
* literal edges skip value tracking entirely: an unmerged ``L`` node's
  observed values are always exactly ``{text: count}``, so the dict is
  materialised lazily, only if the node ever takes part in a merge;
* sibling merging runs iteratively over the arena with memoised
  ``_wordlike``/``_looks_id`` classification, and Rule A similarity
  grouping unions *distinct child-key fingerprints* instead of all
  sibling pairs (similarity is a pure function of the two frozensets,
  so bucketing identical fingerprints is exact).

Every dict mutation — child creation order, merge pop/insert order, the
``V`` key appended after a literal group collapses — replays the
reference implementation's sequence, so the DFS emission walk visits
nodes in the same order and every emitted
:class:`~repro.analyzer.pattern.Pattern` is byte-identical.  The
differential property suite in ``tests/analyzer/test_compiled.py``
asserts this; ``benchmarks/smoke_analyzer.py`` gates the speedup.
"""

from __future__ import annotations

from repro.analyzer.analyzer import (
    AnalyzerConfig,
    _NEVER_FOLD,
    _looks_id,
    _wordlike,
)
from repro.analyzer.enrich import enrich_tokens
from repro.analyzer.naming import assign_names
from repro.analyzer.pattern import Pattern, PatternToken, VarClass, var_class_for
from repro.analyzer.trie import END_KEY, VALUE_CAP
from repro.scanner.scanner import ScannedMessage
from repro.scanner.token_types import TokenType

__all__ = ["CompiledAnalyzer"]

#: Bound on the interning/classification memo tables; cleared wholesale
#: when reached (the same policy as the scanner's WordCache — production
#: vocabularies fit many times over, the cap only guards adversarial
#: streams).
_MEMO_CAP = 65536


class CompiledAnalyzer:
    """Drop-in :class:`~repro.analyzer.analyzer.Analyzer` replacement.

    Same constructor, same ``analyze(messages, counts=None)`` contract,
    same ``last_trie_nodes`` telemetry, bit-identical patterns — selected
    via ``AnalyzerConfig(backend="compiled")`` through
    :func:`repro.analyzer.build_analyzer`.
    """

    backend_name = "compiled"

    def __init__(self, config: AnalyzerConfig | None = None) -> None:
        self.config = config or AnalyzerConfig()
        self.last_trie_nodes = 0  # memory telemetry for the benchmarks
        # the node arena: parallel columns indexed by node id (root = 0);
        # rows are reused across analyze() calls instead of reallocated
        self._keys: list[str] = []
        self._counts: list[int] = []
        self._kids: list[dict[str, int]] = []
        self._values: list[dict[str, int] | None] = []
        self._overflow: list[bool] = []
        self._var: list[VarClass | None] = []
        self._sem: list[str | None] = []
        self._space: list[bool] = []
        self._examples: list[list[str] | None] = []
        self._n = 0
        # bounded memo tables, shared across partitions and batches
        self._lit_keys: dict[str, str] = {}
        self._typed_keys: dict[tuple, tuple[str, VarClass]] = {}
        self._wordlike_memo: dict[str, bool] = {}
        self._id_memo: dict[str, bool] = {}

    # -- arena ----------------------------------------------------------
    def _alloc(self) -> int:
        """Claim one blank node row; reuse a retired row when available."""
        i = self._n
        self._n = i + 1
        if i == len(self._keys):
            self._keys.append("")
            self._counts.append(0)
            self._kids.append({})
            self._values.append(None)
            self._overflow.append(False)
            self._var.append(None)
            self._sem.append(None)
            self._space.append(True)
            self._examples.append(None)
        else:
            self._keys[i] = ""
            self._counts[i] = 0
            self._kids[i].clear()
            self._values[i] = None
            self._overflow[i] = False
            self._var[i] = None
            self._sem[i] = None
            self._space[i] = True
            self._examples[i] = None
        return i

    def _reset(self) -> None:
        self._n = 0
        root = self._alloc()
        self._keys[root] = "^"

    # -- analysis front-end ----------------------------------------------
    def analyze(
        self,
        messages: list[ScannedMessage],
        counts: list[int] | None = None,
    ) -> list[Pattern]:
        """Mine patterns from one partition of scanned messages.

        Identical contract to the reference analyser: *counts* carries
        dedup multiplicities parallel to *messages*.
        """
        if not messages:
            return []
        self._reset()
        self._insert_many(messages, counts)
        # telemetry point matches the reference: peak node count is the
        # trie *before* merging collapses siblings
        self.last_trie_nodes = self._n
        self._merge()
        patterns: list[Pattern] = []
        self._walk(0, [], [], patterns, 1.0, ())
        return patterns

    # -- batch insertion --------------------------------------------------
    def _insert_many(
        self, messages: list[ScannedMessage], counts: list[int] | None
    ) -> None:
        # group identical raw messages first: scanning and enrichment are
        # pure functions of the message text, so duplicates replay the
        # same edge walk and fold into one weighted insert (and one
        # enrichment pass) by the weighted-insert contract
        index: dict[str, int] = {}
        reps: list[ScannedMessage] = []
        weights: list[int] = []
        for i, msg in enumerate(messages):
            n = 1 if counts is None else counts[i]
            at = index.get(msg.original)
            if at is None:
                index[msg.original] = len(reps)
                reps.append(msg)
                weights.append(n)
            else:
                weights[at] += n

        enrich = self.config.enrich
        lit_keys = self._lit_keys
        typed_keys = self._typed_keys
        kcol, ccol, kidcol = self._keys, self._counts, self._kids
        vcol, ocol = self._values, self._overflow
        varcol, semcol, spcol = self._var, self._sem, self._space
        excol = self._examples
        _LIT, _KEY = TokenType.LITERAL, TokenType.KEY
        for msg, n in zip(reps, weights):
            tokens = enrich_tokens(msg.tokens) if enrich else msg.tokens
            ccol[0] += n
            node = 0
            for tok in tokens:
                ttype = tok.type
                text = tok.text
                if ttype is _LIT or ttype is _KEY:
                    key = lit_keys.get(text)
                    if key is None:
                        if len(lit_keys) >= _MEMO_CAP:
                            lit_keys.clear()
                        key = lit_keys[text] = "L" + text
                    var = None
                else:
                    sem = tok.semantic
                    entry = typed_keys.get((ttype, sem))
                    if entry is None:
                        if len(typed_keys) >= _MEMO_CAP:
                            typed_keys.clear()
                        tkey = (
                            f"T{ttype.value}:{sem}" if sem else "T" + ttype.value
                        )
                        entry = typed_keys[(ttype, sem)] = (
                            tkey,
                            var_class_for(ttype),
                        )
                    key, var = entry
                kids = kidcol[node]
                child = kids.get(key)
                if child is None:
                    child = self._alloc()
                    kcol[child] = key
                    ccol[child] = n
                    spcol[child] = tok.is_space_before
                    if var is not None:
                        varcol[child] = var
                        semcol[child] = tok.semantic
                        vcol[child] = {text: n}
                    kids[key] = child
                else:
                    ccol[child] += n
                    if var is not None and not ocol[child]:
                        vals = vcol[child]
                        c = vals.get(text)
                        if c is not None:
                            vals[text] = c + n
                        elif len(vals) >= VALUE_CAP:
                            # the reference adds the value then notices
                            # len > cap and abandons the dict; skipping
                            # the doomed insert lands in the same state
                            ocol[child] = True
                            vcol[child] = None
                        else:
                            vals[text] = n
                node = child
            kids = kidcol[node]
            end = kids.get(END_KEY)
            if end is None:
                end = self._alloc()
                kcol[end] = END_KEY
                ccol[end] = n
                excol[end] = [msg.original]
                kids[END_KEY] = end
            else:
                ccol[end] += n
                examples = excol[end]
                if msg.original not in examples and len(examples) < 3:
                    examples.append(msg.original)

    # -- classification memos ---------------------------------------------
    def _is_wordlike(self, key: str) -> bool:
        memo = self._wordlike_memo
        w = memo.get(key)
        if w is None:
            if len(memo) >= _MEMO_CAP:
                memo.clear()
            w = memo[key] = _wordlike(key[1:])
        return w

    def _is_id(self, key: str) -> bool:
        memo = self._id_memo
        s = memo.get(key)
        if s is None:
            if len(memo) >= _MEMO_CAP:
                memo.clear()
            s = memo[key] = _looks_id(key[1:])
        return s

    # -- sibling merging --------------------------------------------------
    def _merge(self) -> None:
        """Iterative top-down replay of the reference merge pass.

        Merges only inspect a node's children and grandchildren and only
        mutate its own child dict, and the reference recursion visits
        every node *before* its (post-merge) children — so any top-down
        traversal order over disjoint subtrees produces the same tries.
        """
        cfg = self.config
        threshold = cfg.merge_threshold
        id_merge = cfg.id_merge
        word_similarity = cfg.word_similarity
        kidcol = self._kids
        stack = [0]
        while stack:
            node = stack.pop()
            kids = kidcol[node]
            literal_keys = [
                k for k in kids if k[0] == "L" and self._is_wordlike(k)
            ]
            if len(literal_keys) >= 2:
                remaining = literal_keys
                if id_merge:
                    id_keys = [k for k in literal_keys if self._is_id(k)]
                    if len(id_keys) >= 2:
                        self._merge_group(node, id_keys)
                        dropped = set(id_keys)
                        remaining = [
                            k for k in literal_keys if k not in dropped
                        ]
                if len(remaining) > threshold:
                    for group in self._similarity_groups(
                        node, remaining, word_similarity
                    ):
                        if len(group) > threshold:
                            self._merge_group(node, group)
            stack.extend(kids.values())

    def _similarity_groups(
        self, node: int, keys: list[str], threshold: float
    ) -> list[list[str]]:
        """Rule A grouping by child-key Jaccard overlap, over fingerprints.

        Similarity depends only on the two siblings' child-key frozensets,
        so siblings with identical fingerprints are interchangeable:
        union-find runs over the distinct fingerprints (usually far fewer
        than the siblings) and the result expands back to keys in the
        reference's first-member/encounter order.
        """
        kids = self._kids[node]
        kidcol = self._kids
        fingerprints = [frozenset(kidcol[kids[k]]) for k in keys]

        if threshold > 1.0:
            # Jaccard can never reach the threshold; only the
            # unconditional both-empty rule groups anything
            grouped: dict[object, list[str]] = {}
            for i, (k, fp) in enumerate(zip(keys, fingerprints)):
                grouped.setdefault("" if not fp else i, []).append(k)
            return list(grouped.values())

        bucket_of: list[int] = []
        bucket_fp: list[frozenset] = []
        first: dict[frozenset, int] = {}
        for fp in fingerprints:
            b = first.get(fp)
            if b is None:
                b = first[fp] = len(bucket_fp)
                bucket_fp.append(fp)
            bucket_of.append(b)

        parent = list(range(len(bucket_fp)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        n_buckets = len(bucket_fp)
        for i in range(n_buckets):
            a = bucket_fp[i]
            for j in range(i + 1, n_buckets):
                b = bucket_fp[j]
                # distinct fingerprints cannot both be empty, so only
                # the Jaccard test applies across buckets
                union = len(a | b)
                if union and len(a & b) / union >= threshold:
                    ri, rj = find(i), find(j)
                    if ri != rj:
                        parent[rj] = ri
        groups: dict[int, list[str]] = {}
        for key, b in zip(keys, bucket_of):
            groups.setdefault(find(b), []).append(key)
        return list(groups.values())

    def _merge_group(self, node: int, keys: list[str]) -> None:
        """Collapse the literal children *keys* of *node* into one variable.

        Replays ``_merge_literal_group``: pop in key order, absorb into
        the first child, register every text, classify, then append the
        ``V`` key (or absorb into an existing one).
        """
        kids = self._kids[node]
        children = [kids.pop(k) for k in keys]
        merged = children[0]
        self._materialize(merged)
        for other in children[1:]:
            self._absorb(merged, other)
        if not self._overflow[merged]:
            vals = self._values[merged]
            if vals is None:
                vals = self._values[merged] = {}
            for k in keys:
                text = k[1:]
                if text not in vals:
                    vals[text] = 0
                    if len(vals) > VALUE_CAP:
                        self._overflow[merged] = True
                        self._values[merged] = None
                        break
        var = (
            VarClass.ALNUM
            if all(self._is_id(k) for k in keys)
            else VarClass.STRING
        )
        self._var[merged] = var
        var_key = "V" + var.value
        self._keys[merged] = var_key
        existing = kids.get(var_key)
        if existing is not None:
            self._absorb(existing, merged)
        else:
            kids[var_key] = merged

    def _materialize(self, i: int) -> None:
        """Give a lazy literal node its explicit values dict.

        An unmerged ``L`` node's observed values are provably always
        ``{text: count}`` — the insert loop skips tracking them — so the
        dict only exists once the node participates in a merge.
        """
        if self._values[i] is None and not self._overflow[i]:
            key = self._keys[i]
            if key[0] == "L":
                self._values[i] = {key[1:]: self._counts[i]}

    def _absorb(self, a: int, b: int) -> None:
        """Flat-arena replay of :meth:`TrieNode.absorb` (trie union)."""
        self._materialize(a)
        self._materialize(b)
        self._counts[a] += self._counts[b]
        if self._overflow[b]:
            self._overflow[a] = True
            self._values[a] = None
        else:
            vb = self._values[b]
            if vb and not self._overflow[a]:
                va = self._values[a]
                if va is None:
                    va = self._values[a] = {}
                for text, n in vb.items():
                    va[text] = va.get(text, 0) + n
                    if len(va) > VALUE_CAP:
                        self._overflow[a] = True
                        self._values[a] = None
                        break
        eb = self._examples[b]
        if eb:
            ea = self._examples[a]
            if ea is None:
                ea = self._examples[a] = []
            for example in eb:
                if example not in ea and len(ea) < 3:
                    ea.append(example)
        if self._sem[a] != self._sem[b]:
            self._sem[a] = None
        ka = self._kids[a]
        for key, child in self._kids[b].items():
            mine = ka.get(key)
            if mine is None:
                ka[key] = child
            else:
                self._absorb(mine, child)

    # -- emission ---------------------------------------------------------
    def _walk(
        self,
        node: int,
        tokens: list[PatternToken],
        semantics: list[str | None],
        out: list[Pattern],
        fraction: float,
        chosen: tuple[str, ...],
    ) -> None:
        counts = self._counts
        for key, child in self._kids[node].items():
            if key == END_KEY:
                pattern_tokens = [
                    PatternToken(
                        is_variable=t.is_variable,
                        text=t.text,
                        var_class=t.var_class,
                        name=t.name,
                        is_space_before=t.is_space_before,
                    )
                    for t in tokens
                ]
                assign_names(pattern_tokens, semantics)
                examples = [
                    e
                    for e in self._examples[child]
                    if all(v in e for v in chosen)
                ]
                out.append(
                    Pattern(
                        tokens=pattern_tokens,
                        support=max(1, round(counts[child] * fraction)),
                        examples=examples,
                    )
                )
                continue
            tok, semantic = self._pattern_token(key, child)
            expansion = self._semi_constant_values(tok, child)
            if expansion is None:
                tokens.append(tok)
                semantics.append(semantic)
                self._walk(child, tokens, semantics, out, fraction, chosen)
                tokens.pop()
                semantics.pop()
                continue
            # §VI future work: one pattern per value of a semi-constant
            # variable, each with the value as a constant at its position
            for value, value_count in expansion:
                tokens.append(
                    PatternToken.static(value, is_space_before=self._space[child])
                )
                semantics.append(None)
                self._walk(
                    child,
                    tokens,
                    semantics,
                    out,
                    fraction * value_count / max(1, counts[child]),
                    chosen + (value,),
                )
                tokens.pop()
                semantics.pop()

    def _semi_constant_values(
        self, tok: PatternToken, child: int
    ) -> list[tuple[str, int]] | None:
        limit = self.config.semi_constant_max_values
        if (
            limit <= 0
            or not tok.is_variable
            or tok.var_class in (VarClass.TIME, VarClass.REST)
            or self._overflow[child]
        ):
            return None
        values = self._values[child]
        if not values or not 2 <= len(values) <= limit:
            return None
        return sorted(values.items())

    def _pattern_token(
        self, key: str, child: int
    ) -> tuple[PatternToken, str | None]:
        if key[0] == "L":
            return (
                PatternToken.static(
                    key[1:], is_space_before=self._space[child]
                ),
                None,
            )
        # typed or merged-variable edge
        var = self._var[child] or VarClass.STRING
        cfg = self.config
        if (
            cfg.fold_constants
            and var not in _NEVER_FOLD
            and not self._overflow[child]
            and self._values[child] is not None
            and len(self._values[child]) == 1
            and self._counts[child] >= cfg.fold_min_support
        ):
            text = next(iter(self._values[child]))
            return (
                PatternToken.static(text, is_space_before=self._space[child]),
                None,
            )
        return (
            PatternToken.variable(var, is_space_before=self._space[child]),
            self._sem[child],
        )

"""Incremental mining core: the evolving analysis state of stream mode.

Batch mode builds one analysis trie per (service, token-count)
partition, mines it and throws it away — the "partition → build trie →
merge → emit" lifecycle of ``AnalyzeStage``.  Stream mode cannot afford
that barrier: messages arrive one micro-batch at a time, and the miner
has to accumulate evidence *across* micro-batches before it is worth
emitting a pattern (USTEP's evolving search tree, arXiv:2304.12331).

:class:`EvolvingAnalyzer` is that accumulation state, split out of the
stage.  It holds one *pending partition* per (service, token count):
the distinct unmatched messages in first-occurrence order with their
accumulated multiplicities — exactly the weighted form the analysis
trie's insertion contract is defined over ("inserting a message once
with ``n=k`` produces the same trie as inserting it ``k`` times",
:meth:`repro.analyzer.trie.AnalysisTrie.insert`).  ``absorb`` is the
per-message incremental step: an O(1) dedup-and-count update.  ``flush``
replays a partition through the configured analyser backend — the
reference per-node trie or the compiled flat arena of
:mod:`repro.analyzer.compiled` — so the evolving state mines
byte-identically to a batch that had seen the same messages, whichever
backend serves it.

Because absorption is associative (the pending partition after any
sequence of ``absorb`` calls equals the partition one big batch would
have produced), batch mode is literally the special case "absorb then
flush immediately": ``AnalyzeStage`` runs exactly that, which is what
keeps the pre-existing serial/cold/warm dump-equivalence suites
bit-identical across the refactor.

The state is bounded: ``max_partition_pending`` caps one partition's
distinct messages, and :attr:`pending_messages` lets the stream driver
apply a global bound — the evolving trie never grows past what the
flush policy allows.
"""

from __future__ import annotations

from repro.analyzer import build_analyzer
from repro.analyzer.analyzer import AnalyzerConfig
from repro.analyzer.pattern import Pattern
from repro.scanner.scanner import ScannedMessage

__all__ = ["EvolvingAnalyzer"]


class _PendingPartition:
    """Distinct messages of one (service, token count), with counts."""

    __slots__ = ("index", "messages", "counts")

    def __init__(self) -> None:
        #: message original -> position in ``messages``
        self.index: dict[str, int] = {}
        #: distinct scanned messages in first-occurrence order
        self.messages: list[ScannedMessage] = []
        #: accumulated multiplicities, parallel to ``messages``
        self.counts: list[int] = []


class EvolvingAnalyzer:
    """Per-message weighted absorption with deferred, bounded mining."""

    def __init__(
        self,
        config: AnalyzerConfig | None = None,
        max_partition_pending: int = 0,
    ) -> None:
        self.config = config or AnalyzerConfig()
        #: one analyser instance serves every flush, exactly like the
        #: batch stage: its trie scratch (node graph or compiled arena)
        #: is reset and reused across partitions
        self._analyzer = build_analyzer(self.config)
        self._pending: dict[str, dict[int, _PendingPartition]] = {}
        self._n_pending = 0
        self._max_partition = 0
        #: distinct-message cap per partition (0 = unbounded); the
        #: driver flushes when :attr:`over_partition_bound` reports it
        self.max_partition_pending = max_partition_pending

    # -- telemetry -------------------------------------------------------
    @property
    def backend_name(self) -> str:
        return self._analyzer.backend_name

    @property
    def pending_messages(self) -> int:
        """Distinct messages pending across all partitions."""
        return self._n_pending

    @property
    def max_partition(self) -> int:
        """Largest single partition's distinct-message count."""
        return self._max_partition

    @property
    def over_partition_bound(self) -> bool:
        """True when some partition reached ``max_partition_pending``."""
        return (
            self.max_partition_pending > 0
            and self._max_partition >= self.max_partition_pending
        )

    def services(self) -> list[str]:
        """Services with pending partitions, in first-absorption order."""
        return list(self._pending)

    def pending_for(self, service: str) -> int:
        """Distinct messages pending for one service."""
        partitions = self._pending.get(service)
        if not partitions:
            return 0
        return sum(len(p.messages) for p in partitions.values())

    # -- absorption ------------------------------------------------------
    def absorb(
        self,
        service: str,
        length: int,
        messages: list[ScannedMessage],
        counts: list[int] | None = None,
    ) -> None:
        """Fold *messages* into the (service, *length*) pending partition.

        *counts* carries dedup multiplicities parallel to *messages*
        (``None`` means each occurrence counts once).  Duplicates of an
        already-pending message only bump its count — the per-message
        incremental insert the weighted trie contract makes exact.
        """
        partition = self._pending.setdefault(service, {}).setdefault(
            length, _PendingPartition()
        )
        index = partition.index
        for i, msg in enumerate(messages):
            n = 1 if counts is None else counts[i]
            at = index.get(msg.original)
            if at is not None:
                partition.counts[at] += n
                continue
            index[msg.original] = len(partition.messages)
            partition.messages.append(msg)
            partition.counts.append(n)
            self._n_pending += 1
        if len(partition.messages) > self._max_partition:
            self._max_partition = len(partition.messages)

    # -- mining ----------------------------------------------------------
    def flush_partition(
        self, service: str, length: int
    ) -> tuple[list[Pattern], int]:
        """Mine and clear one pending partition.

        Returns the mined patterns and the partition's analysis-trie
        node count (the peak-footprint telemetry batch mode reports per
        partition).  The patterns do not carry a service — the caller
        stamps them, exactly as the batch stage does.
        """
        partitions = self._pending.get(service)
        if not partitions or length not in partitions:
            return [], 0
        partition = partitions.pop(length)
        if not partitions:
            del self._pending[service]
        self._n_pending -= len(partition.messages)
        self._recompute_max()
        patterns = self._analyzer.analyze(
            partition.messages, counts=partition.counts
        )
        return patterns, self._analyzer.last_trie_nodes

    def flush_service(self, service: str):
        """Mine every pending partition of *service* in token-count order.

        Yields ``(patterns, trie_nodes)`` per partition — the same
        sorted-by-length order the batch stage walks, so flush output
        (and its telemetry) is ordered identically to a batch that had
        accumulated the same messages.
        """
        partitions = self._pending.get(service)
        if not partitions:
            return
        for length in sorted(partitions):
            yield self.flush_partition(service, length)

    def _recompute_max(self) -> None:
        self._max_partition = max(
            (
                len(p.messages)
                for partitions in self._pending.values()
                for p in partitions.values()
            ),
            default=0,
        )

"""Sequence-RTG: efficient and production-ready pattern mining in system logs.

Reproduction of Harding, Wernli & Suter, HPCMASPA @ IEEE CLUSTER 2021
(DOI 10.1109/Cluster48925.2021.00090).

Quickstart
----------
>>> from repro import SequenceRTG, LogRecord
>>> rtg = SequenceRTG()
>>> records = [
...     LogRecord("sshd", f"Accepted password for user{i} from 10.0.0.{i} port {2200+i} ssh2")
...     for i in range(6)
... ]
>>> result = rtg.analyze_by_service(records)
>>> result.new_patterns[0].text
'Accepted password for %alphanum% from %srcip% port %srcport% ssh2'

Package map
-----------
``repro.scanner``     single-pass tokeniser (3+1 finite state machines)
``repro.analyzer``    trie-based pattern discovery
``repro.parser``      pattern matching
``repro.core``        Sequence-RTG pipeline, pattern DB, ingester, exporters
``repro.baselines``   Drain / IPLoM / Spell / AEL reimplementations
``repro.loghub``      synthetic LogHub datasets + grouping-accuracy evaluation
``repro.workflow``    production workflow simulation (syslog-ng / Elasticsearch)
"""

from repro.analyzer import (
    Analyzer,
    AnalyzerConfig,
    LegacyAnalyzer,
    Pattern,
    PatternToken,
    VarClass,
)
from repro.core import (
    BatchResult,
    LogRecord,
    PatternDB,
    RTGConfig,
    SequenceRTG,
    StreamIngester,
)
from repro.core.export import export_patterns
from repro.parser import MatchResult, Parser
from repro.scanner import ScannedMessage, Scanner, ScannerConfig, Token, TokenType

__version__ = "1.0.0"

__all__ = [
    "SequenceRTG",
    "RTGConfig",
    "BatchResult",
    "LogRecord",
    "PatternDB",
    "StreamIngester",
    "export_patterns",
    "Scanner",
    "ScannerConfig",
    "ScannedMessage",
    "Token",
    "TokenType",
    "Analyzer",
    "AnalyzerConfig",
    "LegacyAnalyzer",
    "Pattern",
    "PatternToken",
    "VarClass",
    "Parser",
    "MatchResult",
    "__version__",
]

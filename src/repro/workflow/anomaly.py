"""Log-volume anomaly detection (paper §VI, future work).

"Finally, we plan to go further in the exploitation of system logs and
apply statistical and/or machine learning algorithms to the logs to
distinguish what could be an anomaly from what is likely to be routine
extra load when there are important variations in the number of issued
system log entries."

Two detectors cover that plan at the statistics level:

* :class:`VolumeAnomalyDetector` — per-service message-rate monitoring
  over a rolling window with a robust z-score: flags *spikes* and
  *drops* relative to recent history, while an EWMA baseline absorbs
  slow routine growth (the "routine extra load" the paper wants to keep
  separate from anomalies);
* :class:`NoveltyAnomalyDetector` — rate of previously-unseen patterns
  per bucket: a burst of new patterns is the signature of a misbehaving
  or newly-deployed component even when volume looks normal.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "AnomalyConfig",
    "VolumeAnomaly",
    "VolumeAnomalyDetector",
    "NoveltyAnomalyDetector",
]


@dataclass(slots=True)
class AnomalyConfig:
    """Detector tuning."""

    #: history buckets kept per service
    window: int = 24
    #: |z| above which an observation is anomalous
    z_threshold: float = 3.0
    #: buckets of history required before alerts fire
    min_history: int = 8
    #: EWMA smoothing for the routine-load baseline (0 < alpha <= 1)
    ewma_alpha: float = 0.3

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError(f"window must be >= 2, got {self.window}")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        if self.min_history < 2:
            raise ValueError(f"min_history must be >= 2, got {self.min_history}")


@dataclass(slots=True)
class VolumeAnomaly:
    """One flagged observation."""

    service: str
    bucket: int
    observed: float
    expected: float
    zscore: float
    kind: str  # "spike" | "drop" | "novelty"


class _ServiceHistory:
    __slots__ = ("counts", "ewma")

    def __init__(self, window: int) -> None:
        self.counts: deque[float] = deque(maxlen=window)
        self.ewma: float | None = None


class VolumeAnomalyDetector:
    """Rolling per-service volume monitor."""

    def __init__(self, config: AnomalyConfig | None = None) -> None:
        self.config = config or AnomalyConfig()
        self._history: dict[str, _ServiceHistory] = {}

    def observe(self, service: str, bucket: int, count: float) -> VolumeAnomaly | None:
        """Feed one (service, time-bucket, message-count) observation.

        Returns an anomaly when the count deviates from recent history by
        more than the z threshold; otherwise folds the observation into
        the history.  Anomalous observations are *not* folded in, so a
        sustained incident keeps alerting instead of poisoning the
        baseline.
        """
        history = self._history.setdefault(
            service, _ServiceHistory(self.config.window)
        )
        anomaly = None
        if len(history.counts) >= self.config.min_history:
            mean = sum(history.counts) / len(history.counts)
            var = sum((c - mean) ** 2 for c in history.counts) / len(history.counts)
            # floor the deviation: sqrt(mean) covers Poisson counting
            # noise on low-volume services, the proportional term covers
            # routine jitter on flat histories
            std = max(
                math.sqrt(var),
                math.sqrt(max(mean, 1.0)),
                0.05 * max(mean, 1.0),
            )
            baseline = history.ewma if history.ewma is not None else mean
            z = (count - baseline) / std
            if abs(z) >= self.config.z_threshold:
                anomaly = VolumeAnomaly(
                    service=service,
                    bucket=bucket,
                    observed=count,
                    expected=baseline,
                    zscore=z,
                    kind="spike" if z > 0 else "drop",
                )
        if anomaly is None:
            history.counts.append(count)
            alpha = self.config.ewma_alpha
            history.ewma = (
                count
                if history.ewma is None
                else alpha * count + (1 - alpha) * history.ewma
            )
        return anomaly

    def observe_bucket(
        self, bucket: int, counts: dict[str, float]
    ) -> list[VolumeAnomaly]:
        """Feed one bucket of per-service counts; return all anomalies."""
        out = []
        for service, count in counts.items():
            anomaly = self.observe(service, bucket, count)
            if anomaly is not None:
                out.append(anomaly)
        return out


@dataclass(slots=True)
class NoveltyAnomalyDetector:
    """Alert on bursts of never-seen-before patterns per bucket."""

    config: AnomalyConfig = field(default_factory=AnomalyConfig)
    _seen: set[str] = field(default_factory=set)
    _volume: VolumeAnomalyDetector | None = None

    def observe_bucket(
        self, bucket: int, pattern_ids: list[str], service: str = "_patterns"
    ) -> VolumeAnomaly | None:
        """Feed the pattern ids matched/discovered during one bucket."""
        if self._volume is None:
            self._volume = VolumeAnomalyDetector(self.config)
        fresh = [pid for pid in pattern_ids if pid not in self._seen]
        self._seen.update(fresh)
        anomaly = self._volume.observe(service, bucket, len(fresh))
        if anomaly is not None:
            anomaly.kind = "novelty"
        return anomaly

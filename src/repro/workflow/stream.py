"""Multi-service production stream generator.

Synthesises the composite CC-IN2P3 stream: ~241 services (operating
systems, databases, containers, network tools, ... — paper Fig. 1), each
with its own template vocabulary, Zipf-distributed popularity both
across services and across templates within a service, and optional
daily *churn* — newly appearing templates that model software updates
("with each new software update or installation of new software and
hardware, new events can appear", paper §I).
"""

from __future__ import annotations

import json
import random
from collections import deque
from dataclasses import dataclass
from collections.abc import Iterator

from repro._util.sampling import ZipfSampler
from repro.core.records import LogRecord
from repro.loghub.generator import FILLERS

__all__ = ["StreamConfig", "ProductionStream"]

_SERVICE_KINDS = (
    "sshd", "httpd", "nginx", "postgres", "mysql", "slurmd", "dcache",
    "xrootd", "kubelet", "containerd", "named", "ntpd", "smartd", "cups",
    "rsyslogd", "cron", "postfix", "dovecot", "openldap", "squid",
    "haproxy", "keepalived", "zabbix", "grafana", "rabbitmq", "redis",
)

_VERBS = (
    "accepted", "rejected", "started", "stopped", "completed", "failed",
    "opened", "closed", "received", "sent", "queued", "dropped",
    "registered", "expired", "refreshed", "allocated", "released",
    "mounted", "unmounted", "scheduled", "throttled", "resumed",
)

_NOUNS = (
    "connection", "session", "request", "transfer", "job", "task",
    "packet", "buffer", "lease", "certificate", "token", "volume",
    "snapshot", "replica", "shard", "queue", "worker", "channel",
    "descriptor", "transaction", "heartbeat", "checkpoint",
)

_SLOTS = ("{int}", "{ip}", "{port}", "{float}", "{id}", "{path}", "{user}", "{hex8}")


@dataclass(slots=True)
class StreamConfig:
    """Shape of the synthetic production stream."""

    n_services: int = 241  # the paper's data sets averaged 241 services
    min_templates: int = 3
    max_templates: int = 24
    service_zipf: float = 1.1
    template_zipf: float = 1.3
    #: fraction of daily volume drawn from templates first seen that day
    churn_fraction: float = 0.0
    #: probability that a drawn record is an exact repeat of a recently
    #: emitted one — models the heavy short-range redundancy of real log
    #: streams (retry storms, heartbeats, chatty components) that the
    #: duplicate-aware fast lane exploits.  0 keeps every record freshly
    #: filled (the historical behaviour, bit-for-bit).
    duplicate_fraction: float = 0.0
    #: how far back exact repeats may be drawn from
    duplicate_window: int = 256
    seed: int = 42

    def __post_init__(self) -> None:
        if not (0.0 <= self.duplicate_fraction < 1.0):
            raise ValueError(
                "duplicate_fraction must be within [0, 1), got "
                f"{self.duplicate_fraction}"
            )
        if self.duplicate_window <= 0:
            raise ValueError(
                f"duplicate_window must be positive, got {self.duplicate_window}"
            )


class _ServiceSpec:
    __slots__ = ("name", "templates", "sampler")

    def __init__(self, name: str, templates: list[str], zipf_s: float, seed: int):
        self.name = name
        self.templates = templates
        self.sampler = ZipfSampler(len(templates), s=zipf_s, seed=seed)


class ProductionStream:
    """Deterministic generator of a mixed-service log stream."""

    def __init__(self, config: StreamConfig | None = None) -> None:
        self.config = config or StreamConfig()
        self._rng = random.Random(self.config.seed)
        self._recent: deque[LogRecord] = deque(maxlen=self.config.duplicate_window)
        self._services: list[_ServiceSpec] = []
        for i in range(self.config.n_services):
            kind = _SERVICE_KINDS[i % len(_SERVICE_KINDS)]
            name = f"{kind}-{i // len(_SERVICE_KINDS):02d}"
            n_templates = self._rng.randint(
                self.config.min_templates, self.config.max_templates
            )
            templates = [self._make_template() for _ in range(n_templates)]
            self._services.append(
                _ServiceSpec(
                    name,
                    templates,
                    self.config.template_zipf,
                    seed=self._rng.randrange(2**31),
                )
            )
        self._service_sampler = ZipfSampler(
            len(self._services),
            s=self.config.service_zipf,
            seed=self._rng.randrange(2**31),
        )

    # ------------------------------------------------------------------
    def _make_template(self) -> str:
        """One synthetic event template: static words mixed with slots."""
        rng = self._rng
        n_parts = rng.randint(4, 12)
        parts: list[str] = []
        for _ in range(n_parts):
            roll = rng.random()
            if roll < 0.30:
                parts.append(rng.choice(_SLOTS))
            elif roll < 0.65:
                parts.append(rng.choice(_NOUNS))
            else:
                parts.append(rng.choice(_VERBS))
        return " ".join(parts)

    def add_churn_templates(self, n: int) -> None:
        """Introduce *n* new templates into random services.

        Models software updates shipping new log events ("existing
        events potentially change and existing patterns must be
        frequently reviewed", paper §I).  A new template is inserted at
        a random popularity rank — an updated service may well emit its
        new event frequently — which is what keeps the unmatched
        fraction from decaying to zero in the Fig. 7 reproduction.
        """
        for _ in range(n):
            spec = self._rng.choice(self._services)
            rank = self._rng.randrange(len(spec.templates) + 1)
            spec.templates.insert(rank, self._make_template())
            spec.sampler = ZipfSampler(
                len(spec.templates),
                s=self.config.template_zipf,
                seed=self._rng.randrange(2**31),
            )

    # ------------------------------------------------------------------
    def _fill(self, template: str) -> str:
        out: list[str] = []
        for part in template.split(" "):
            filler = FILLERS.get(part[1:-1]) if part.startswith("{") else None
            out.append(filler(self._rng) if filler else part)
        return " ".join(out)

    def record(self) -> LogRecord:
        """Draw one record.

        With ``duplicate_fraction`` set, the draw first rolls for an
        exact repeat of a recent record; default behaviour (fraction 0)
        touches neither the RNG stream nor the replay buffer, so
        existing seeded streams reproduce unchanged.
        """
        duplicate_fraction = self.config.duplicate_fraction
        if (
            duplicate_fraction > 0.0
            and self._recent
            and self._rng.random() < duplicate_fraction
        ):
            replayed = self._recent[self._rng.randrange(len(self._recent))]
            return LogRecord(service=replayed.service, message=replayed.message)
        spec = self._services[self._service_sampler.sample()]
        template = spec.templates[spec.sampler.sample()]
        record = LogRecord(service=spec.name, message=self._fill(template))
        if duplicate_fraction > 0.0:
            self._recent.append(record)
        return record

    def records(self, n: int) -> Iterator[LogRecord]:
        """Draw *n* records."""
        for _ in range(n):
            yield self.record()

    def days(
        self, n_days: int, per_day: int, churn_per_day: int = 0
    ) -> list[list[LogRecord]]:
        """Materialise a day-by-day production replay.

        Draws *per_day* records for each of *n_days* days, introducing
        *churn_per_day* new templates before each day after the first —
        the 60-day production simulation shape (paper Fig. 7).  Returned
        as a list of per-day record lists so the same replay can feed a
        batch miner and a stream driver identically (the convergence
        comparison needs both sides to see the exact same records).
        """
        out: list[list[LogRecord]] = []
        for day in range(n_days):
            if day and churn_per_day:
                self.add_churn_templates(churn_per_day)
            out.append(list(self.records(per_day)))
        return out

    def jsonl(self, n: int) -> Iterator[str]:
        """Draw *n* records as the stream's JSON-lines wire format.

        The exact shape syslog-ng pipes into ``sequence-rtg serve`` —
        feed it to :meth:`repro.core.ingest.StreamIngester.batches_pipelined`
        to exercise the full ingest path (JSON decode included) instead
        of pre-parsed records.
        """
        for record in self.records(n):
            yield json.dumps(record.to_json_dict())

    @property
    def n_templates(self) -> int:
        return sum(len(s.templates) for s in self._services)

    @property
    def service_names(self) -> list[str]:
        return [s.name for s in self._services]

"""Minimal Elasticsearch simulacrum.

The workflow's sink (paper Fig. 1/6): both matched and unmatched
messages are indexed for later search and visualisation.  The simulation
needs exactly three capabilities — index documents into daily indices,
count by field value, and run simple term queries — so that is what this
implements; it intentionally stores plain dictionaries the way the real
pipeline stores JSON documents.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["SimulatedElasticsearch"]


class SimulatedElasticsearch:
    """In-memory document store with daily indices."""

    def __init__(self) -> None:
        self._indices: dict[str, list[dict]] = defaultdict(list)

    def index(self, index: str, doc: dict) -> None:
        """Index one document."""
        self._indices[index].append(dict(doc))

    def count(self, index: str) -> int:
        """Documents in *index* (0 when absent)."""
        return len(self._indices.get(index, ()))

    def indices(self) -> list[str]:
        return sorted(self._indices)

    def search(self, index: str, term: dict | None = None, size: int = 10) -> list[dict]:
        """Term-filter search over one index."""
        docs = self._indices.get(index, ())
        if term:
            ((key, value),) = term.items()
            docs = [d for d in docs if d.get(key) == value]
        return list(docs[:size])

    def aggregate_terms(self, index: str, field: str) -> dict[str, int]:
        """Value → document-count aggregation for *field*."""
        counts: dict[str, int] = defaultdict(int)
        for doc in self._indices.get(index, ()):
            counts[str(doc.get(field))] += 1
        return dict(counts)

    def total_documents(self) -> int:
        return sum(len(v) for v in self._indices.values())

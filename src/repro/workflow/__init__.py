"""Production log-management workflow substrate.

The paper's deployment experiments (Fig. 1/6/7 and the §IV production
narrative) run inside the CC-IN2P3 infrastructure: syslog-ng collects a
70-100M message/day stream from ~241 services, matches it against a
patterndb, routes everything to Elasticsearch, and pipes the unmatched
messages into Sequence-RTG whose discovered patterns administrators
review and promote.

That infrastructure is simulated here at laptop scale (volumes divided
by ~1000; DESIGN.md §4 documents the substitution):

* :class:`~repro.workflow.stream.ProductionStream` — multi-service
  synthetic stream with long-tail service/template popularity and daily
  template churn;
* :class:`~repro.workflow.syslog_ng.SyslogNG` — patterndb matcher with
  test-case validation, routing matched/unmatched;
* :class:`~repro.workflow.elasticsearch.SimulatedElasticsearch` — the
  indexing sink;
* :class:`~repro.workflow.simulation.ProductionSimulation` — the 60-day
  deployment loop reproducing Fig. 7.
"""

from repro.workflow.actions import ActionEngine, ActionRule, Notification
from repro.workflow.anomaly import (
    AnomalyConfig,
    NoveltyAnomalyDetector,
    VolumeAnomaly,
    VolumeAnomalyDetector,
)
from repro.workflow.elasticsearch import SimulatedElasticsearch
from repro.workflow.simulation import DayStats, ProductionSimulation, SimulationConfig
from repro.workflow.stream import ProductionStream, StreamConfig
from repro.workflow.syslog_ng import SyslogNG

__all__ = [
    "ProductionStream",
    "StreamConfig",
    "SyslogNG",
    "SimulatedElasticsearch",
    "ProductionSimulation",
    "SimulationConfig",
    "DayStats",
    "AnomalyConfig",
    "VolumeAnomaly",
    "VolumeAnomalyDetector",
    "NoveltyAnomalyDetector",
    "ActionEngine",
    "ActionRule",
    "Notification",
]

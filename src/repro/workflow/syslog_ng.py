"""Simulated syslog-ng collector with pattern database.

Implements exactly the behaviour the CC-IN2P3 workflow relies on (paper
Fig. 1/6): incoming logs are parsed against the promoted pattern
database; matched messages trigger their pattern's bookkeeping and are
routed onward, unmatched messages are routed to the miner.  Promotion
runs the patterndb *test cases*: "These test cases are used by syslog-ng
to ensure that all the example messages match their pattern, and no
other in the whole pattern database" (§III) — a pattern whose examples
match a different stored pattern is flagged as a conflict, mirroring the
multi-match review the paper describes ("the most correct pattern would
be promoted and the other discarded", §IV).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analyzer.pattern import Pattern
from repro.core.records import LogRecord
from repro.parser.parser import Parser
from repro.scanner.scanner import Scanner, ScannerConfig

__all__ = ["SyslogNG", "RouteResult", "PromotionReport"]


@dataclass(slots=True)
class RouteResult:
    """Outcome of routing one record."""

    matched: bool
    pattern_id: str | None = None
    fields: dict[str, str] = field(default_factory=dict)


@dataclass(slots=True)
class PromotionReport:
    """Result of promoting a batch of candidate patterns."""

    promoted: int = 0
    conflicts: int = 0  # example matched another pattern better
    rejected: int = 0  # example failed to match its own pattern


class SyslogNG:
    """Pattern-database front end of the log management workflow."""

    def __init__(self, scanner: Scanner | None = None) -> None:
        self.scanner = scanner or Scanner(ScannerConfig())
        self._parsers: dict[str, Parser] = {}
        self._patterns: dict[str, Pattern] = {}
        self.n_matched = 0
        self.n_unmatched = 0

    # ------------------------------------------------------------------
    @property
    def n_patterns(self) -> int:
        return len(self._patterns)

    def patterns(self) -> list[Pattern]:
        return list(self._patterns.values())

    def route(self, record: LogRecord) -> RouteResult:
        """Match *record* against the pattern database."""
        parser = self._parsers.get(record.service)
        if parser is None or len(parser) == 0:
            self.n_unmatched += 1
            return RouteResult(matched=False)
        scanned = self.scanner.scan(record.message, service=record.service)
        hit = parser.match(scanned)
        if hit is None:
            self.n_unmatched += 1
            return RouteResult(matched=False)
        self.n_matched += 1
        return RouteResult(matched=True, pattern_id=hit.pattern.id, fields=hit.fields)

    # ------------------------------------------------------------------
    def promote(self, patterns: list[Pattern]) -> PromotionReport:
        """Add reviewed patterns to the database, running test cases first."""
        report = PromotionReport()
        for pattern in patterns:
            if pattern.id in self._patterns:
                continue
            verdict = self._validate(pattern)
            if verdict == "ok":
                parser = self._parsers.setdefault(pattern.service, Parser())
                parser.add_pattern(pattern)
                self._patterns[pattern.id] = pattern
                report.promoted += 1
            elif verdict == "conflict":
                report.conflicts += 1
            else:
                report.rejected += 1
        return report

    def _validate(self, pattern: Pattern) -> str:
        """Run the pattern's stored examples as patterndb test cases."""
        candidate = Parser([pattern])
        existing = self._parsers.get(pattern.service)
        for example in pattern.examples:
            scanned = self.scanner.scan(example, service=pattern.service)
            if candidate.match(scanned) is None:
                return "rejected"
            if existing is not None:
                other = existing.match(scanned)
                if other is not None and other.pattern.id != pattern.id:
                    # the example already matches a promoted pattern: the
                    # reviewer keeps the most correct one and discards
                    # the duplicate (paper §IV)
                    return "conflict"
        return "ok"

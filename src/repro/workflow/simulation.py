"""60-day production deployment simulation (paper Fig. 7).

Reproduces the paper's deployment narrative end to end:

* before Sequence-RTG, the hand-maintained pattern database matches only
  20-25% of messages (§I) — the simulation bootstraps syslog-ng's
  patterndb to that coverage;
* every day the stream is routed through syslog-ng; only unmatched
  messages are piped to Sequence-RTG, which analyses them in batches of
  the configured size (§IV: batch size 100,000 in production, scaled
  here);
* every few days administrators review the mined patterns — selecting on
  match count and complexity score — and promote them through the
  patterndb test-case validation (§III/§IV);
* services keep evolving: new templates appear daily (churn), which is
  why the unmatched fraction stabilises around 15% instead of reaching
  zero (§IV, Fig. 7).

The per-day statistics include analysis timing and the average time to
fill a batch, mirroring the §IV production report (7.5 s average
analysis time, batch fill time growing from ~15 to ~25-30 minutes as
promotions shrink the unmatched stream).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.core.config import RTGConfig
from repro.core.patterndb import PatternDB
from repro.core.pipeline import SequenceRTG
from repro.core.records import LogRecord
from repro.workflow.elasticsearch import SimulatedElasticsearch
from repro.workflow.stream import ProductionStream, StreamConfig
from repro.workflow.syslog_ng import SyslogNG

__all__ = ["SimulationConfig", "DayStats", "ProductionSimulation"]

_MINUTES_PER_DAY = 24 * 60


@dataclass(slots=True)
class SimulationConfig:
    """Scaled-down deployment parameters (paper values in comments)."""

    days: int = 60  # the Fig. 7 observation window
    msgs_per_day: tuple[int, int] = (7_000, 10_000)  # paper: 70-100M
    batch_size: int = 1_000  # paper: 100,000
    review_every_days: int = 3  # admins review when they have capacity
    promote_min_count: int = 10  # review selects the strongest patterns
    promote_max_complexity: float = 0.9
    initial_coverage: float = 0.22  # paper: 20-25% matched before RTG
    churn_templates_per_day: int = 6  # software updates add new events
    #: mine on a persistent worker pool of this size (1 = in-process
    #: serial miner, the historical behaviour); the mined database is
    #: identical either way — only wall-clock changes
    n_workers: int = 1
    stream: StreamConfig = field(default_factory=StreamConfig)
    seed: int = 7


@dataclass(slots=True)
class DayStats:
    """One day of deployment telemetry."""

    day: int
    n_messages: int
    n_matched: int
    n_unmatched: int
    n_batches: int
    analysis_seconds: float
    batch_fill_minutes: float
    n_promoted: int
    patterndb_size: int
    #: fast-lane effectiveness summed over the day's mining batches
    #: (scan/match cache hits, misses, evictions, dedup savings)
    cache: dict[str, int] = field(default_factory=dict)

    @property
    def unmatched_fraction(self) -> float:
        return self.n_unmatched / self.n_messages if self.n_messages else 0.0

    @property
    def cache_hit_fraction(self) -> float:
        """Fraction of scan lookups served from dedup or the scan cache."""
        hits = self.cache.get("scan_hits", 0) + self.cache.get("dedup_duplicates", 0)
        total = hits + self.cache.get("scan_misses", 0)
        return hits / total if total else 0.0


class ProductionSimulation:
    """Drive the Fig. 6 workflow for a configurable number of days."""

    def __init__(self, config: SimulationConfig | None = None) -> None:
        self.config = config or SimulationConfig()
        self._rng = random.Random(self.config.seed)
        self.stream = ProductionStream(self.config.stream)
        self.syslog = SyslogNG()
        self.es = SimulatedElasticsearch()
        self.rtg = self._make_miner()
        self._promoted_ids: set[str] = set()

    def _make_miner(self):
        """Fresh miner over an empty DB (serial or persistent pool)."""
        rtg_config = RTGConfig(batch_size=self.config.batch_size, save_threshold=1)
        if self.config.n_workers > 1:
            from repro.core.parallel import PersistentParallelSequenceRTG

            return PersistentParallelSequenceRTG(
                db=PatternDB(),
                config=rtg_config,
                n_workers=self.config.n_workers,
            )
        return SequenceRTG(db=PatternDB(), config=rtg_config)

    def close(self) -> None:
        """Stop the miner's worker pool, if it has one (idempotent)."""
        close = getattr(self.rtg, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "ProductionSimulation":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def bootstrap(self) -> int:
        """Seed the patterndb to the paper's pre-RTG coverage (~20-25%).

        Models the hand-maintained pattern database: mine a reference
        sample offline, then keep only the most frequently matched
        patterns until the expected coverage reaches the target.
        """
        sample_size = max(self.config.msgs_per_day) * 2
        sample = list(self.stream.records(sample_size))
        result = self.rtg.analyze_by_service(sample)
        ranked = sorted(result.new_patterns, key=lambda p: p.support, reverse=True)
        covered = 0
        chosen = []
        for pattern in ranked:
            if covered / sample_size >= self.config.initial_coverage:
                break
            chosen.append(pattern)
            covered += pattern.support
        report = self.syslog.promote(chosen)
        self._promoted_ids.update(p.id for p in chosen)
        # the bootstrap mining session belongs to the "before" era: reset
        # the miner so day-1 statistics start from a clean database
        self.close()
        self.rtg = self._make_miner()
        return report.promoted

    # ------------------------------------------------------------------
    def run_day(self, day: int) -> DayStats:
        """Route one day of traffic and run the miner on the unmatched."""
        n_messages = self._rng.randint(*self.config.msgs_per_day)
        batch: list[LogRecord] = []
        n_matched = 0
        n_batches = 0
        analysis_seconds = 0.0
        cache_totals: dict[str, int] = {}
        index = f"logs-{day:03d}"
        def analyze_batch(records: list[LogRecord]) -> None:
            nonlocal n_batches, analysis_seconds
            start = time.perf_counter()
            batch_result = self.rtg.analyze_by_service(records)
            analysis_seconds += time.perf_counter() - start
            for key, value in batch_result.cache.items():
                cache_totals[key] = cache_totals.get(key, 0) + value
            n_batches += 1

        for record in self.stream.records(n_messages):
            routed = self.syslog.route(record)
            self.es.index(
                index,
                {
                    "service": record.service,
                    "message": record.message,
                    "matched": routed.matched,
                    "pattern_id": routed.pattern_id,
                    # "it allows a small amount of information to be
                    # extracted from the message which is passed with the
                    # message to be stored" (paper §II)
                    "fields": routed.fields,
                },
            )
            if routed.matched:
                n_matched += 1
                continue
            batch.append(record)
            if len(batch) >= self.config.batch_size:
                analyze_batch(batch)
                batch = []
        if batch:
            analyze_batch(batch)

        n_promoted = 0
        if day % self.config.review_every_days == 0:
            n_promoted = self._review()

        self.stream.add_churn_templates(self.config.churn_templates_per_day)

        n_unmatched = n_messages - n_matched
        return DayStats(
            day=day,
            n_messages=n_messages,
            n_matched=n_matched,
            n_unmatched=n_unmatched,
            n_batches=n_batches,
            analysis_seconds=analysis_seconds,
            batch_fill_minutes=_MINUTES_PER_DAY / max(1, n_batches),
            n_promoted=n_promoted,
            patterndb_size=self.syslog.n_patterns,
            cache=cache_totals,
        )

    def _review(self) -> int:
        """Administrator review: promote strong mined patterns."""
        candidates = []
        for row in self.rtg.db.rows(
            min_count=self.config.promote_min_count,
            max_complexity=self.config.promote_max_complexity,
        ):
            if row.id not in self._promoted_ids:
                candidates.append(row.to_pattern())
        report = self.syslog.promote(candidates)
        self._promoted_ids.update(p.id for p in candidates)
        return report.promoted

    # ------------------------------------------------------------------
    def run(self, days: int | None = None) -> list[DayStats]:
        """Bootstrap then run the full observation window."""
        self.bootstrap()
        history: list[DayStats] = []
        for day in range(1, (days or self.config.days) + 1):
            history.append(self.run_day(day))
        return history

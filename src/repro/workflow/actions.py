"""Pattern-triggered actions.

The paper's motivating workflow (§I, Fig. 1): recognised patterns "can
trigger a predefined action or, in many cases, [allow] a small amount of
information to be extracted from the message which is passed with the
message to be stored" — e.g. "send notifications to system or service
administrators ... or trigger some predefined actions, e.g. restart a
service or run an automated diagnostic task".

:class:`ActionEngine` binds rules to pattern ids (or to any matched
pattern of a service) and dispatches when syslog-ng routing reports a
match.  Built-in action types cover the paper's examples — notify,
counter, and callback (the hook a real deployment would attach restart /
diagnostic commands to) — with optional rate limiting so a message storm
does not trigger a thousand restarts.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from collections.abc import Callable

from repro.workflow.syslog_ng import RouteResult

__all__ = ["ActionRule", "ActionEngine", "Notification"]


@dataclass(slots=True)
class Notification:
    """A queued administrator notification."""

    rule: str
    pattern_id: str
    service: str
    message: str
    fields: dict[str, str]


@dataclass(slots=True)
class ActionRule:
    """One trigger binding.

    Attributes
    ----------
    name:
        Rule identifier (used in notifications and counters).
    pattern_id:
        SHA1 pattern id to trigger on, or ``"*"`` for any matched
        pattern (combine with *service* to scope).
    service:
        Restrict to one service (``""`` = any).
    notify:
        Queue a :class:`Notification` for the administrators.
    callback:
        Optional hook called with (rule, route_result, record); this is
        where a deployment attaches its restart/diagnostic command.
    max_per_window / window:
        Rate limit: at most *max_per_window* firings per *window*
        consecutive routed messages (0 disables limiting).
    """

    name: str
    pattern_id: str = "*"
    service: str = ""
    notify: bool = True
    callback: Callable | None = None
    max_per_window: int = 0
    window: int = 1000


class ActionEngine:
    """Dispatch rules on routed matches."""

    def __init__(self) -> None:
        self._rules: list[ActionRule] = []
        self.notifications: list[Notification] = []
        self.counters: dict[str, int] = defaultdict(int)
        self._clock = 0
        self._fired_at: dict[str, list[int]] = defaultdict(list)

    def add_rule(self, rule: ActionRule) -> None:
        if any(r.name == rule.name for r in self._rules):
            raise ValueError(f"duplicate rule name {rule.name!r}")
        self._rules.append(rule)

    @property
    def rules(self) -> list[ActionRule]:
        return list(self._rules)

    # ------------------------------------------------------------------
    def process(self, service: str, message: str, result: RouteResult) -> list[str]:
        """Feed one routed record; returns the names of fired rules."""
        self._clock += 1
        if not result.matched:
            return []
        fired: list[str] = []
        for rule in self._rules:
            if rule.pattern_id != "*" and rule.pattern_id != result.pattern_id:
                continue
            if rule.service and rule.service != service:
                continue
            if not self._within_rate(rule):
                continue
            self.counters[rule.name] += 1
            self._fired_at[rule.name].append(self._clock)
            if rule.notify:
                self.notifications.append(
                    Notification(
                        rule=rule.name,
                        pattern_id=result.pattern_id or "",
                        service=service,
                        message=message,
                        fields=dict(result.fields),
                    )
                )
            if rule.callback is not None:
                rule.callback(rule, result, message)
            fired.append(rule.name)
        return fired

    def _within_rate(self, rule: ActionRule) -> bool:
        if rule.max_per_window <= 0:
            return True
        recent = [
            t for t in self._fired_at[rule.name] if t > self._clock - rule.window
        ]
        self._fired_at[rule.name] = recent
        return len(recent) < rule.max_per_window

    def drain_notifications(self) -> list[Notification]:
        """Return and clear the queued notifications."""
        out, self.notifications = self.notifications, []
        return out

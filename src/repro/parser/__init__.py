"""Pattern matching substrate (the *Sequence* parser).

"Sequence has its own parser to match new messages against existing
known patterns.  It follows a similar process as while learning the
messages, by first tokenising the messages, but instead of discovering
patterns, it attempts to match new messages to a known pattern."
(paper §III)
"""

from repro.parser.parser import MatchResult, Parser

__all__ = ["Parser", "MatchResult"]

"""Pattern matching substrate (the *Sequence* parser).

"Sequence has its own parser to match new messages against existing
known patterns.  It follows a similar process as while learning the
messages, by first tokenising the messages, but instead of discovering
patterns, it attempts to match new messages to a known pattern."
(paper §III)

Two interchangeable backends implement the matcher —
:class:`Parser`, the reference pointer-chasing trie DFS, and
:class:`~repro.parser.compiled.CompiledParser`, a table-driven
flattening of the same trie with bit-identical :class:`MatchResult`
output — selected by :attr:`ParserConfig.backend` through
:func:`build_parser`.  Both answer variable acceptance from the shared
precomputed tables of :mod:`repro.parser.acceptance`.
"""

from repro.analyzer.pattern import Pattern
from repro.parser.parser import (
    PARSER_BACKENDS,
    MatchResult,
    Parser,
    ParserConfig,
)

__all__ = [
    "Parser",
    "ParserConfig",
    "MatchResult",
    "PARSER_BACKENDS",
    "build_parser",
]


def build_parser(
    patterns: list[Pattern] | None = None,
    config: ParserConfig | None = None,
    enrich: bool = True,
) -> Parser:
    """Construct the parser backend *config* selects.

    ``"reference"`` (the default) is the trie DFS — the executable
    specification; ``"compiled"`` flattens the same trie into sorted
    match programs.  Both produce identical :class:`MatchResult`\\ s;
    the compiled one trades a lazy per-version compilation pass for
    much higher per-message match throughput.
    """
    config = config or ParserConfig()
    if config.backend not in PARSER_BACKENDS:
        # config validates at construction, but the field is mutable —
        # an unknown value must fail loudly here, not silently fall
        # back to the reference backend
        raise ValueError(
            f"unknown parser backend {config.backend!r}; "
            f"valid choices: {', '.join(PARSER_BACKENDS)}"
        )
    if config.backend == "compiled":
        # imported lazily so the default path never pays for a backend
        # it does not use
        from repro.parser.compiled import CompiledParser

        return CompiledParser(patterns, enrich=enrich)
    return Parser(patterns, enrich=enrich)

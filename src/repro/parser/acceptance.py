"""Precomputed variable-acceptance tables shared by both parser backends.

Whether a variable of class *vc* can consume a token is a pure function
of ``(vc, token.type)`` for every class except two text-dependent cells:
``%alphanum%`` accepts a LITERAL only when it contains an alphanumeric
character, and ``%path%`` accepts a LITERAL only when it starts with
``/``.  The reference parser used to re-derive this per call through an
if/elif cascade; this module folds the whole relation into lookup
tables built once at import time, so both backends answer acceptance
questions from the same authority:

* :data:`ACCEPT_TABLE` — ``(VarClass, TokenType) → _ACCEPT | _REJECT |
  _TEXT``, consumed through :func:`accepts` by the reference trie walk;
* :data:`TYPE_MASKS` / :func:`token_mask` — the compiled backend's
  form: one bit per :class:`VarClass` (:data:`VAR_BITS`), a
  text-independent mask per token type, and the two LITERAL text checks
  resolved once per token instead of once per trie edge.

``%ignorerest%`` accepts everything here, exactly like the cascade did;
both backends still special-case it structurally (it consumes the
message remainder, not one token).
"""

from __future__ import annotations

from repro.analyzer.pattern import VarClass
from repro.scanner.token_types import Token, TokenType

__all__ = [
    "ACCEPT_TABLE",
    "VAR_BITS",
    "TYPE_MASKS",
    "TYPE_MASKS_BY_VALUE",
    "accepts",
    "token_mask",
]

_REJECT, _ACCEPT, _TEXT = 0, 1, 2

#: Token types each class accepts unconditionally.  ``STRING`` and
#: ``REST`` accept any token; ``ALNUM`` and ``PATH`` additionally have
#: a text-dependent LITERAL cell (the only two in the whole relation).
_UNCONDITIONAL: dict[VarClass, frozenset[TokenType]] = {
    VarClass.STRING: frozenset(TokenType),
    VarClass.ALNUM: frozenset({TokenType.INTEGER}),
    VarClass.INTEGER: frozenset({TokenType.INTEGER}),
    VarClass.FLOAT: frozenset({TokenType.FLOAT, TokenType.INTEGER}),
    VarClass.IPV4: frozenset({TokenType.IPV4}),
    VarClass.IPV6: frozenset({TokenType.IPV6}),
    VarClass.MAC: frozenset({TokenType.MAC}),
    VarClass.TIME: frozenset({TokenType.TIME}),
    VarClass.URL: frozenset({TokenType.URL}),
    VarClass.PATH: frozenset({TokenType.PATH}),
    VarClass.EMAIL: frozenset({TokenType.EMAIL}),
    VarClass.HOST: frozenset({TokenType.HOST}),
    VarClass.REST: frozenset(TokenType),
}

#: Classes whose LITERAL cell depends on the token text.
_TEXT_CELLS = frozenset({VarClass.ALNUM, VarClass.PATH})


def _build_table() -> dict[tuple[VarClass, TokenType], int]:
    table = {}
    for vc in VarClass:
        unconditional = _UNCONDITIONAL[vc]
        for tt in TokenType:
            if tt in unconditional:
                table[vc, tt] = _ACCEPT
            elif tt is TokenType.LITERAL and vc in _TEXT_CELLS:
                table[vc, tt] = _TEXT
            else:
                table[vc, tt] = _REJECT
    return table


#: Complete ``(VarClass, TokenType)`` relation; every cell present.
ACCEPT_TABLE: dict[tuple[VarClass, TokenType], int] = _build_table()


def accepts(vc: VarClass, tok: Token) -> bool:
    """Can a variable of class *vc* consume token *tok*?

    The table answers all but the two text-dependent LITERAL cells,
    which are resolved against the token text exactly as the original
    cascade did.
    """
    cell = ACCEPT_TABLE[vc, tok.type]
    if cell == _ACCEPT:
        return True
    if cell == _REJECT:
        return False
    if vc is VarClass.ALNUM:
        return any(c.isalnum() for c in tok.text)
    return tok.text.startswith("/")  # PATH × LITERAL


# ----------------------------------------------------------------------
# Bitmask form (compiled backend)
# ----------------------------------------------------------------------

#: One bit per variable class, in enum declaration order.
VAR_BITS: dict[VarClass, int] = {vc: 1 << i for i, vc in enumerate(VarClass)}

_ALNUM_BIT = VAR_BITS[VarClass.ALNUM]
_PATH_BIT = VAR_BITS[VarClass.PATH]


def _type_mask(tt: TokenType) -> int:
    mask = 0
    for vc, bit in VAR_BITS.items():
        if ACCEPT_TABLE[vc, tt] == _ACCEPT:
            mask |= bit
    return mask


#: Text-independent acceptance mask per token type: the classes whose
#: bit is set accept every token of that type.  For LITERAL tokens the
#: two text-dependent bits are added by :func:`token_mask`.
TYPE_MASKS: dict[TokenType, int] = {tt: _type_mask(tt) for tt in TokenType}

#: Same table keyed by the type's value string, for hot loops: string
#: keys hash from their cached hash, enum keys re-run the Python-level
#: ``Enum.__hash__`` on every probe.
TYPE_MASKS_BY_VALUE: dict[str, int] = {
    tt._value_: mask for tt, mask in TYPE_MASKS.items()
}

_LITERAL_BASE = TYPE_MASKS[TokenType.LITERAL]


def token_mask(tok: Token) -> int:
    """Acceptance bitmask of *tok*: the set of classes that consume it.

    Computed once per token by the compiled backend (and memoised per
    distinct literal text), instead of one :func:`accepts` call per
    variable edge per trie visit.
    """
    if tok.type is not TokenType.LITERAL:
        return TYPE_MASKS[tok.type]
    return literal_mask(tok.text)


def literal_mask(text: str) -> int:
    """Acceptance bitmask of a LITERAL token with *text*."""
    mask = _LITERAL_BASE
    if any(c.isalnum() for c in text):
        mask |= _ALNUM_BIT
    if text.startswith("/"):
        mask |= _PATH_BIT
    return mask


__all__.append("literal_mask")

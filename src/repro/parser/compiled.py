"""Table-driven compiled parser backend.

:class:`CompiledParser` is a drop-in second implementation of
:class:`~repro.parser.parser.Parser` that flattens the pointer-chasing
trie DFS into contiguous per-pattern *match programs*, following the
table-driven search-core technique of Cookiecutter's C++ trie and the
evolving-search-tree framing of USTEP.  Construction, the incremental
``add_pattern`` contract, the version counter and the ``enrich`` switch
are all inherited from the reference parser — the trie stays the source
of truth — and a compilation pass (re-run lazily whenever ``version``
moved) lowers it into:

* **match programs** — one flat step array per matchable pattern, each
  step either a literal text (compared by interned-string equality) or
  an acceptance *bitmask* from :mod:`repro.parser.acceptance`; a
  message token's acceptance set is computed once per token (and
  memoised per distinct literal text), not once per trie edge per
  visit;
* **priority keys** — ``(-static, n_variables, trie, rank)`` per
  program, where *rank* is the program's position in the reference
  DFS's candidate fold order.  Numbering programs in sorted key order
  makes the *lowest-numbered acceptor the winner*, and full ties (same
  static count, same variable count) resolve to exactly the pattern the
  reference DFS would keep, because the reference folds candidates in
  rank order and its tie-break keeps the earlier candidate;
* **columnar dispatch tables** — per message length, one table per
  token position mapping a literal text (dict lookup) or an acceptance
  bit (mask test) to the *bitset* of programs compatible with it.  A
  match intersects one bitset per token into a surviving set — big-int
  AND/OR, word-parallel over all candidates at once — bailing out the
  moment the set goes empty; the winner is the surviving set's lowest
  set bit.  Shared prefixes therefore cost one dict probe per position
  regardless of how many programs share them, the columnar analogue of
  the trie's prefix sharing;
* **a memoised candidate-frontier cache** — the per-message-length
  merge of the exact bucket with the applicable ignore-rest programs
  (and its column tables) is built once per length and invalidated on
  ``version`` bumps.

The rank construction is what makes the backend bit-identical *by
construction*: the reference search is a fixed-order stack DFS over a
trie whose states are visited at most once, so the candidates it folds
for any message form a subsequence of the all-edges-accept fold order —
precomputing that order and minimising over it is equivalent to
replaying the DFS.  The differential property suite
(``tests/parser/test_compiled.py``) asserts the equivalence over
corpora and adversarially overlapping pattern sets rather than assuming
it.

Enrichment (k=v pairs, e-mail addresses, host names) is semantically
identical to :func:`repro.analyzer.enrich.enrich_tokens`; the compiled
backend memoises the two pure text classifiers (``is_email``,
``is_hostname``) per distinct literal, which removes the dominant
per-message enrichment cost for recurring vocabulary.
"""

from __future__ import annotations

from repro.analyzer.enrich import enrich_tokens, is_email, is_hostname
from repro.analyzer.pattern import Pattern, VarClass
from repro.parser.acceptance import TYPE_MASKS_BY_VALUE, VAR_BITS, literal_mask
from repro.parser.parser import MatchResult, Parser, _Node
from repro.scanner.scanner import ScannedMessage
from repro.scanner.token_types import Token, TokenType

__all__ = ["CompiledParser"]

#: distinct literal texts memoised (masks and enrichment classes)
#: before the memo is dropped wholesale, mirroring the scanner's
#: ``WordCache`` policy
_MEMO_SIZE = 65536

_REST = VarClass.REST
_LITERAL = TokenType.LITERAL
_KEY = TokenType.KEY
_VALUE = TokenType.VALUE
_EMAIL = TokenType.EMAIL
_HOST = TokenType.HOST


class _Program:
    """One matchable pattern lowered to a flat step array."""

    __slots__ = ("steps", "key", "extract", "rest_name", "pattern", "static")

    def __init__(
        self,
        steps: tuple,
        key: tuple,
        extract: tuple,
        rest_name: str | None,
        pattern: Pattern,
        static: int,
    ) -> None:
        #: per-position ops: a literal text (str) or an acceptance bit (int)
        self.steps = steps
        #: ``(-static, n_variables, trie, rank)`` — min() over accepting
        #: programs reproduces the reference DFS winner exactly
        self.key = key
        #: ``(position, name)`` pairs binding variable values to fields
        self.extract = extract
        #: ignore-rest variable name, or None for exact-length programs
        self.rest_name = rest_name
        self.pattern = pattern
        self.static = static


class CompiledParser(Parser):
    """Drop-in parser executing flattened match programs.

    Same constructor, ``add_pattern``, ``match``/``match_many`` and
    ``version`` contract as :class:`~repro.parser.parser.Parser`; only
    the matching machinery differs.  Match results are bit-identical —
    same winning pattern under the full tie-break order, same extracted
    fields, same static count — asserted by the differential suite in
    ``tests/parser/test_compiled.py``, not assumed.
    """

    backend_name = "compiled"

    def __init__(self, patterns: list[Pattern] | None = None, enrich: bool = True):
        #: compiled state, rebuilt lazily when ``version`` moves
        self._compiled_version = -1
        #: length -> programs ending at exactly that many tokens
        self._exact_programs: dict[int, list[_Program]] = {}
        #: ignore-rest programs (applicable to any length >= len(steps))
        self._rest_programs: list[_Program] = []
        #: candidate-frontier cache: message length -> (programs in
        #: priority order, per-position column tables, full bitset)
        self._frontier: dict[int, tuple[list, list, int]] = {}
        #: literal text -> acceptance bitmask memo
        self._masks: dict[str, int] = {}
        #: literal text -> enrichment token type (EMAIL/HOST/LITERAL) memo
        self._classes: dict[str, TokenType] = {}
        super().__init__(patterns, enrich=enrich)

    # -- compilation -----------------------------------------------------
    def _recompile(self) -> None:
        """Lower the trie into match programs (and drop the frontier)."""
        self._exact_programs = {
            length: self._collect(root, rest_trie=False)
            for length, root in self._exact.items()
        }
        self._rest_programs = self._collect(self._rest_root, rest_trie=True)
        self._frontier.clear()
        self._compiled_version = self.version

    @staticmethod
    def _collect(root: _Node, rest_trie: bool) -> list[_Program]:
        """Programs of one sub-trie, in reference DFS fold order.

        Replays the reference ``_search`` exploration — children popped
        in reverse variable-edge order, the literal child last — and
        appends a program wherever that search would fold a candidate:
        at an exact leaf, or at an ignore-rest edge.  The append index
        becomes the program's tie-break rank.  Patterns with tokens
        *after* an ignore-rest variable are unreachable in the reference
        search and are likewise not collected here.
        """
        out: list[_Program] = []
        trie = 1 if rest_trie else 0

        def program(steps, static, extract, rest_name, pattern):
            return _Program(
                steps=tuple(steps),
                key=(-static, pattern.n_variables, trie, len(out)),
                extract=tuple(extract),
                rest_name=rest_name,
                pattern=pattern,
                static=static,
            )

        #: (node, steps, static, extract) — tuples, shared by prefix
        stack = [(root, (), 0, ())]
        while stack:
            node, steps, static, extract = stack.pop()
            if node.pattern is not None and not rest_trie:
                out.append(program(steps, static, extract, None, node.pattern))
            for vc, name, child in node.variables:
                if vc is _REST and child.pattern is not None:
                    out.append(
                        program(steps, static, extract, name, child.pattern)
                    )
            # push order is the reverse of the reference's exploration
            # order (last pushed pops first): literal children first,
            # then variable edges forward — sibling literal order is
            # immaterial, at most one can accept any given token
            for text, child in node.literals.items():
                stack.append((child, steps + (text,), static + 1, extract))
            for vc, name, child in node.variables:
                if vc is not _REST:
                    stack.append(
                        (
                            child,
                            steps + (VAR_BITS[vc],),
                            static,
                            extract + ((len(steps), name),),
                        )
                    )
        return out

    def _frontier_for(self, length: int) -> tuple[list, list, int]:
        """Candidates for a *length*-token message, built once per length.

        Merges the exact bucket with every ignore-rest program short
        enough to apply, numbers the candidates in priority-key order,
        and builds one dispatch column per token position:

        ``(literal text -> program bitset, [(class bit, program bitset)],
        unconstrained bitset, literal-token memo, typed-token memo)``

        where the unconstrained set holds the ignore-rest programs whose
        constrained prefix already ended before this position.  The two
        memos cache fully-resolved bitsets per distinct token seen at
        the position — column resolution is a pure function of the token
        text (LITERAL) or its text and type — so the steady-state cost
        per token is one dict probe.  Literal edges match on *text*
        alone (exactly like the reference trie walk), which is why the
        typed-token memo stores only the type's class contribution and
        the literal dispatch is re-probed per text.
        """
        progs = list(self._exact_programs.get(length, ()))
        progs.extend(p for p in self._rest_programs if len(p.steps) <= length)
        progs.sort(key=lambda p: p.key)
        columns = []
        for i in range(length):
            lit_map: dict[str, int] = {}
            var_map: dict[int, int] = {}
            free = 0
            for j, prog in enumerate(progs):
                bit = 1 << j
                steps = prog.steps
                if i >= len(steps):
                    free |= bit  # inside an ignore-rest tail
                else:
                    step = steps[i]
                    if type(step) is str:
                        lit_map[step] = lit_map.get(step, 0) | bit
                    else:
                        var_map[step] = var_map.get(step, 0) | bit
            columns.append((lit_map, list(var_map.items()), free, {}, {}))
        frontier = (progs, columns, (1 << len(progs)) - 1)
        self._frontier[length] = frontier
        return frontier

    # -- matching --------------------------------------------------------
    def match(
        self, scanned: ScannedMessage, tokens: list[Token] | None = None
    ) -> MatchResult | None:
        """Find the best pattern for *scanned*, or None.

        Identical contract to the reference :meth:`Parser.match`,
        including the pre-enriched *tokens* shortcut.
        """
        if self._compiled_version != self.version:
            self._recompile()
        if tokens is None:
            tokens = (
                self._enrich_tokens(scanned.tokens)
                if self._enrich
                else scanned.tokens
            )
        if tokens and tokens[-1].type is TokenType.REST:
            tokens = tokens[:-1]
        length = len(tokens)
        frontier = self._frontier.get(length)
        if frontier is None:
            frontier = self._frontier_for(length)
        progs, columns, surviving = frontier
        self.last_frontier = len(progs)
        if not surviving:
            return None

        for column, tok in zip(columns, tokens):
            text = tok.text
            if tok.type is _LITERAL:
                ok = column[3].get(text)
                if ok is None:
                    ok = self._resolve_column(column, text, None)
            else:
                ok = column[4].get(tok.type._value_)
                if ok is None:
                    ok = self._resolve_column(column, text, tok.type)
                # literal edges dispatch on text alone, whatever the
                # token type — mirror the reference trie walk
                lit = column[0]
                if lit:
                    ok |= lit.get(text, 0)
            surviving &= ok
            if not surviving:
                return None

        # lowest surviving bit = lowest priority key = the DFS winner
        best = progs[(surviving & -surviving).bit_length() - 1]
        fields = {name: tokens[i].text for i, name in best.extract}
        rest_name = best.rest_name
        if rest_name is not None and length > len(best.steps):
            fields[rest_name] = " ".join(
                t.text for t in tokens[len(best.steps):]
            )
        return MatchResult(
            pattern=best.pattern, fields=fields, static_matches=best.static
        )

    def _resolve_column(self, column, text: str, ttype) -> int:
        """Resolve one column's candidate bitset for an unseen token.

        For LITERAL tokens (*ttype* None) the result — literal dispatch,
        ignore-rest tails, and every variable group whose class accepts
        the text — is memoised per text.  For typed tokens the memoised
        part is the type's contribution only (the caller adds the
        text-keyed literal dispatch on top), because two tokens of one
        type can carry different texts.
        """
        lit_map, var_masks, free, memo_lit, memo_type = column
        if ttype is None:
            masks = self._masks
            mask = masks.get(text)
            if mask is None:
                if len(masks) >= _MEMO_SIZE:
                    masks.clear()
                mask = masks[text] = literal_mask(text)
            ok = lit_map.get(text, 0) | free
            memo, key = memo_lit, text
        else:
            key = ttype._value_
            mask = TYPE_MASKS_BY_VALUE[key]
            ok = free
            memo = memo_type
        for class_bit, members in var_masks:
            if mask & class_bit:
                ok |= members
        if len(memo) >= _MEMO_SIZE:
            memo.clear()
        memo[key] = ok
        return ok

    # -- enrichment ------------------------------------------------------
    def _enrich_tokens(self, tokens: list[Token]) -> list[Token]:
        """Memoised :func:`~repro.analyzer.enrich.enrich_tokens`.

        Token-for-token identical to the reference function (the k=v
        retyping is positional and stays live); the two pure text
        classifiers are answered from a bounded per-text memo, because
        log vocabulary is tiny relative to log volume.
        """
        memo = self._classes
        out = list(tokens)
        n = len(out)
        for i, tok in enumerate(out):
            if tok.type is not _LITERAL:
                continue
            text = tok.text
            if (
                i + 2 < n
                and out[i + 1].text == "="
                and text
                and text[0].isalpha()
                and out[i + 2].text != "="
            ):
                out[i] = tok.with_type(_KEY)
                value = out[i + 2]
                if value.type is _LITERAL:
                    out[i + 2] = value.with_type(_VALUE, semantic=text)
                else:
                    out[i + 2] = value.with_type(value.type, semantic=text)
                continue
            cls = memo.get(text)
            if cls is None:
                if len(memo) >= _MEMO_SIZE:
                    memo.clear()
                if is_email(text):
                    cls = _EMAIL
                elif is_hostname(text):
                    cls = _HOST
                else:
                    cls = _LITERAL
                memo[text] = cls
            if cls is not _LITERAL:
                out[i] = tok.with_type(cls)
        return out


# keep the reference import path alive for introspection/tests
_reference_enrich = enrich_tokens

"""Parse-trie matcher.

Patterns are loaded into tries mirroring the analysis trie: literal
edges keyed by text, variable edges keyed by variable class, and an END
edge holding the pattern.  Matching a scanned message is a depth-first
walk that prefers literal edges, with memoisation on (token index, node)
so messages matching many overlapping patterns stay linear in practice.
When several patterns accept the message the one matching the most
static tokens wins (ties broken by fewer variables), which keeps weakly
patternised, high-complexity patterns from shadowing precise ones.

Hot-path pruning: every non-REST pattern token consumes exactly one
message token, so a pattern without an ignore-rest variable can only
match messages of exactly its own token count.  The root is therefore
indexed by token count — one sub-trie per pattern length, plus one
shared sub-trie for ignore-rest patterns (which accept any sufficiently
long message) — and a match starts its DFS from the small candidate
frontier of the message's length bucket instead of the full pattern
set.  Within a bucket the ``literals`` dict at each node is the
first-literal index: the first token narrows the frontier in O(1).

Each pattern-set mutation bumps :attr:`Parser.version`; the fast lane's
match caches (:mod:`repro.core.fastpath`) use the version to invalidate
cached outcomes whenever the pattern set changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analyzer.enrich import enrich_tokens
from repro.analyzer.pattern import Pattern, VarClass
from repro.scanner.scanner import ScannedMessage
from repro.scanner.token_types import Token, TokenType

__all__ = ["Parser", "MatchResult"]


@dataclass(slots=True)
class MatchResult:
    """Outcome of matching one message against the pattern set."""

    pattern: Pattern
    #: extracted variable values, keyed by the variable's semantic name
    fields: dict[str, str]
    #: number of static (literal) pattern tokens the message matched
    static_matches: int


def _accepts(vc: VarClass, tok: Token) -> bool:
    """Can a variable of class *vc* consume token *tok*?"""
    t = tok.type
    if vc is VarClass.STRING:
        return True
    if vc is VarClass.ALNUM:
        if t is TokenType.INTEGER:
            return True
        return t is TokenType.LITERAL and any(c.isalnum() for c in tok.text)
    if vc is VarClass.INTEGER:
        return t is TokenType.INTEGER
    if vc is VarClass.FLOAT:
        return t in (TokenType.FLOAT, TokenType.INTEGER)
    if vc is VarClass.IPV4:
        return t is TokenType.IPV4
    if vc is VarClass.IPV6:
        return t is TokenType.IPV6
    if vc is VarClass.MAC:
        return t is TokenType.MAC
    if vc is VarClass.TIME:
        return t is TokenType.TIME
    if vc is VarClass.URL:
        return t is TokenType.URL
    if vc is VarClass.PATH:
        return t is TokenType.PATH or (
            t is TokenType.LITERAL and tok.text.startswith("/")
        )
    if vc is VarClass.EMAIL:
        return t is TokenType.EMAIL
    if vc is VarClass.HOST:
        return t is TokenType.HOST
    if vc is VarClass.REST:
        return True  # handled specially: consumes the remainder
    return False


class _Node:
    __slots__ = ("literals", "variables", "pattern")

    def __init__(self) -> None:
        self.literals: dict[str, _Node] = {}
        self.variables: list[tuple[VarClass, str, _Node]] = []  # (class, name, node)
        self.pattern: Pattern | None = None


@dataclass(slots=True)
class _Candidate:
    pattern: Pattern
    fields: dict[str, str]
    static_matches: int
    n_variables: int = field(default=0)


class Parser:
    """Match scanned messages against a set of known patterns."""

    def __init__(self, patterns: list[Pattern] | None = None, enrich: bool = True):
        #: one sub-trie per exact pattern token count
        self._exact: dict[int, _Node] = {}
        #: shared sub-trie for patterns containing an ignore-rest variable
        self._rest_root = _Node()
        self._n_rest = 0
        self._n_patterns = 0
        self._enrich = enrich
        #: bumped on every pattern-set mutation; match caches key their
        #: validity on this
        self.version = 0
        for p in patterns or ():
            self.add_pattern(p)

    def __len__(self) -> int:
        return self._n_patterns

    # ------------------------------------------------------------------
    def add_pattern(self, pattern: Pattern) -> None:
        """Insert one pattern into its parse trie (idempotent per text)."""
        has_rest = any(
            tok.is_variable and tok.var_class is VarClass.REST
            for tok in pattern.tokens
        )
        if has_rest:
            node = self._rest_root
        else:
            node = self._exact.setdefault(len(pattern.tokens), _Node())
        for tok in pattern.tokens:
            if not tok.is_variable:
                node = node.literals.setdefault(tok.text, _Node())
            else:
                for vc, name, child in node.variables:
                    if vc is tok.var_class and name == tok.name:
                        node = child
                        break
                else:
                    child = _Node()
                    node.variables.append((tok.var_class, tok.name, child))
                    node = child
        if node.pattern is None:
            self._n_patterns += 1
            if has_rest:
                self._n_rest += 1
        node.pattern = pattern
        self.version += 1

    # ------------------------------------------------------------------
    def match(
        self, scanned: ScannedMessage, tokens: list[Token] | None = None
    ) -> MatchResult | None:
        """Find the best pattern for *scanned*, or None.

        Pass pre-enriched *tokens* to skip the enrichment pass (the fast
        lane does when it already enriched the same scan).
        """
        if tokens is None:
            # no defensive copy: matching never mutates the token list
            tokens = (
                enrich_tokens(scanned.tokens) if self._enrich else scanned.tokens
            )
        # the scanner's REST marker only says "this message was truncated";
        # matching treats it like end-of-message
        if tokens and tokens[-1].type is TokenType.REST:
            tokens = tokens[:-1]
        best: _Candidate | None = None
        exact = self._exact.get(len(tokens))
        if exact is not None:
            best = self._search(exact, tokens, best)
        if self._n_rest:
            best = self._search(self._rest_root, tokens, best)
        if best is None:
            return None
        return MatchResult(
            pattern=best.pattern,
            fields=best.fields,
            static_matches=best.static_matches,
        )

    def _search(
        self, root: _Node, tokens: list[Token], best: _Candidate | None
    ) -> _Candidate | None:
        """DFS one sub-trie, folding candidates into *best*."""
        seen: set[tuple[int, int]] = set()
        stack: list[tuple[int, _Node, int, tuple]] = [(0, root, 0, ())]
        while stack:
            idx, node, static, bindings = stack.pop()
            key = (idx, id(node))
            if key in seen:
                continue
            seen.add(key)
            if idx == len(tokens):
                if node.pattern is not None:
                    best = self._better(
                        best, node.pattern, dict(bindings), static
                    )
                # an ignore-rest variable can also close the pattern here
                for vc, name, child in node.variables:
                    if vc is VarClass.REST and child.pattern is not None:
                        best = self._better(
                            best, child.pattern, dict(bindings), static
                        )
                continue
            tok = tokens[idx]
            lit = node.literals.get(tok.text)
            if lit is not None:
                stack.append((idx + 1, lit, static + 1, bindings))
            for vc, name, child in node.variables:
                if vc is VarClass.REST:
                    # consume everything that remains
                    if child.pattern is not None:
                        rest = " ".join(t.text for t in tokens[idx:])
                        best = self._better(
                            best,
                            child.pattern,
                            dict(bindings + ((name, rest),)),
                            static,
                        )
                    continue
                if _accepts(vc, tok):
                    stack.append(
                        (idx + 1, child, static, bindings + ((name, tok.text),))
                    )
        return best

    @staticmethod
    def _better(
        current: _Candidate | None,
        pattern: Pattern,
        fields: dict[str, str],
        static: int,
    ) -> _Candidate:
        candidate = _Candidate(
            pattern=pattern,
            fields=fields,
            static_matches=static,
            n_variables=pattern.n_variables,
        )
        if current is None:
            return candidate
        if candidate.static_matches != current.static_matches:
            return max(current, candidate, key=lambda c: c.static_matches)
        if candidate.n_variables != current.n_variables:
            return min(current, candidate, key=lambda c: c.n_variables)
        return current

"""Parse-trie matcher.

Patterns are loaded into tries mirroring the analysis trie: literal
edges keyed by text, variable edges keyed by variable class, and an END
edge holding the pattern.  Matching a scanned message is a depth-first
walk that prefers literal edges, with memoisation on (token index, node)
so messages matching many overlapping patterns stay linear in practice.
When several patterns accept the message the one matching the most
static tokens wins (ties broken by fewer variables), which keeps weakly
patternised, high-complexity patterns from shadowing precise ones.

Hot-path pruning: every non-REST pattern token consumes exactly one
message token, so a pattern without an ignore-rest variable can only
match messages of exactly its own token count.  The root is therefore
indexed by token count — one sub-trie per pattern length, plus one
shared sub-trie for ignore-rest patterns (which accept any sufficiently
long message) — and a match starts its DFS from the small candidate
frontier of the message's length bucket instead of the full pattern
set.  Within a bucket the ``literals`` dict at each node is the
first-literal index: the first token narrows the frontier in O(1).

Each pattern-set mutation bumps :attr:`Parser.version`; the fast lane's
match caches (:mod:`repro.core.fastpath`) use the version to invalidate
cached outcomes whenever the pattern set changes.  The version contract
is backend-agnostic: :class:`repro.parser.compiled.CompiledParser`, the
table-driven second backend selected by :attr:`ParserConfig.backend`
through :func:`repro.parser.build_parser`, bumps it identically and
produces identical :class:`MatchResult`\\ s by construction.  Variable
acceptance is answered by the precomputed tables of
:mod:`repro.parser.acceptance`, shared by both backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analyzer.enrich import enrich_tokens
from repro.analyzer.pattern import Pattern, VarClass
from repro.parser.acceptance import accepts as _accepts
from repro.scanner.scanner import ScannedMessage
from repro.scanner.token_types import Token, TokenType

__all__ = ["Parser", "ParserConfig", "MatchResult", "PARSER_BACKENDS"]

#: Recognised values of :attr:`ParserConfig.backend`.
PARSER_BACKENDS = ("reference", "compiled")

#: Sentinel distinguishing "no cached outcome" from a cached None miss.
_MISS = object()


@dataclass(slots=True)
class ParserConfig:
    """Parser behaviour switches.

    Mirrors :class:`repro.scanner.scanner.ScannerConfig`: the backend
    string selects one of two implementations with identical match
    output, resolved by :func:`repro.parser.build_parser`.
    """

    #: Matcher implementation: ``"reference"`` is the pointer-chasing
    #: trie DFS (the executable specification), ``"compiled"`` the
    #: table-driven flattened backend
    #: (:class:`repro.parser.compiled.CompiledParser`) with identical
    #: :class:`MatchResult` output.
    backend: str = "reference"

    def __post_init__(self) -> None:
        if self.backend not in PARSER_BACKENDS:
            raise ValueError(
                f"backend must be one of {PARSER_BACKENDS}, got {self.backend!r}"
            )


@dataclass(slots=True)
class MatchResult:
    """Outcome of matching one message against the pattern set."""

    pattern: Pattern
    #: extracted variable values, keyed by the variable's semantic name
    fields: dict[str, str]
    #: number of static (literal) pattern tokens the message matched
    static_matches: int


def _signature(tokens: list[Token]) -> tuple:
    """Hashable ``(text, type)`` signature — the match-cache key.

    Matching depends only on token texts and types (never positions or
    spacing), so two messages with equal signatures produce the same
    :class:`MatchResult` or the same miss against any parser; the fast
    lane's :func:`repro.core.fastpath.token_signature` makes the same
    promise with the same key.  Types are keyed by their value string —
    strings cache their hash, the Python-level ``Enum.__hash__`` does
    not, and this tuple is hashed on every cache probe.
    """
    return tuple([(t.text, t.type._value_) for t in tokens])


class _Node:
    __slots__ = ("literals", "variables", "pattern")

    def __init__(self) -> None:
        self.literals: dict[str, _Node] = {}
        self.variables: list[tuple[VarClass, str, _Node]] = []  # (class, name, node)
        self.pattern: Pattern | None = None


@dataclass(slots=True)
class _Candidate:
    pattern: Pattern
    fields: dict[str, str]
    static_matches: int
    n_variables: int = field(default=0)


class Parser:
    """Match scanned messages against a set of known patterns."""

    #: implementation label on parse-stage metrics samples
    backend_name = "reference"

    def __init__(self, patterns: list[Pattern] | None = None, enrich: bool = True):
        #: one sub-trie per exact pattern token count
        self._exact: dict[int, _Node] = {}
        #: shared sub-trie for patterns containing an ignore-rest variable
        self._rest_root = _Node()
        self._n_rest = 0
        self._n_patterns = 0
        #: pattern id -> pattern, the authoritative membership record —
        #: what :meth:`remove_patterns` rebuilds the tries from
        self._patterns: dict[str, Pattern] = {}
        self._enrich = enrich
        #: bumped on every pattern-set mutation; match caches key their
        #: validity on this — a backend-agnostic contract: every backend
        #: bumps it identically, so the fast lane's version-pinned match
        #: caches work unchanged whichever implementation serves a service
        self.version = 0
        #: candidate-frontier size of the last :meth:`match` call (trie
        #: states visited here; candidate programs considered in the
        #: compiled backend) — the ``rtg_parse_candidates`` telemetry
        self.last_frontier = 0
        #: frontier sizes of the matches the last :meth:`match_many`
        #: call actually performed (one entry per distinct signature)
        self.last_frontiers: list[int] = []
        for p in patterns or ():
            self.add_pattern(p)

    def __len__(self) -> int:
        return self._n_patterns

    # ------------------------------------------------------------------
    def add_pattern(self, pattern: Pattern) -> None:
        """Insert one pattern into its parse trie (idempotent per text)."""
        has_rest = any(
            tok.is_variable and tok.var_class is VarClass.REST
            for tok in pattern.tokens
        )
        if has_rest:
            node = self._rest_root
        else:
            node = self._exact.setdefault(len(pattern.tokens), _Node())
        for tok in pattern.tokens:
            if not tok.is_variable:
                node = node.literals.setdefault(tok.text, _Node())
            else:
                for vc, name, child in node.variables:
                    if vc is tok.var_class and name == tok.name:
                        node = child
                        break
                else:
                    child = _Node()
                    node.variables.append((tok.var_class, tok.name, child))
                    node = child
        if node.pattern is None:
            self._n_patterns += 1
            if has_rest:
                self._n_rest += 1
        node.pattern = pattern
        self._patterns[pattern.id] = pattern
        self.version += 1

    def remove_patterns(self, ids) -> int:
        """Remove patterns by id; returns how many were present.

        The tries are rebuilt in place from the surviving patterns.
        ``version`` stays strictly monotone — it bumps once for the
        removal and once per surviving re-insert, and is never reset —
        so version-pinned match caches (:mod:`repro.core.fastpath`) and
        the compiled backend's lazy recompilation can never mistake a
        pre-removal entry for current: any cache entry pinned to an
        older version misses, exactly as for additions.
        """
        drop = {pid for pid in ids if pid in self._patterns}
        if not drop:
            return 0
        survivors = [p for pid, p in self._patterns.items() if pid not in drop]
        self._exact = {}
        self._rest_root = _Node()
        self._n_rest = 0
        self._n_patterns = 0
        self._patterns = {}
        self.version += 1
        for pattern in survivors:
            self.add_pattern(pattern)
        return len(drop)

    # ------------------------------------------------------------------
    def match(
        self, scanned: ScannedMessage, tokens: list[Token] | None = None
    ) -> MatchResult | None:
        """Find the best pattern for *scanned*, or None.

        Pass pre-enriched *tokens* to skip the enrichment pass (the fast
        lane does when it already enriched the same scan).
        """
        if tokens is None:
            # no defensive copy: matching never mutates the token list
            tokens = (
                enrich_tokens(scanned.tokens) if self._enrich else scanned.tokens
            )
        # the scanner's REST marker only says "this message was truncated";
        # matching treats it like end-of-message
        if tokens and tokens[-1].type is TokenType.REST:
            tokens = tokens[:-1]
        best: _Candidate | None = None
        self.last_frontier = 0
        exact = self._exact.get(len(tokens))
        if exact is not None:
            best = self._search(exact, tokens, best)
        if self._n_rest:
            best = self._search(self._rest_root, tokens, best)
        if best is None:
            return None
        return MatchResult(
            pattern=best.pattern,
            fields=best.fields,
            static_matches=best.static_matches,
        )

    def match_many(
        self, scanned: list[ScannedMessage]
    ) -> list["MatchResult | None"]:
        """Match a batch, computing each distinct token signature once.

        Match outcomes are fully determined by the ``(text, type)``
        signature, so messages that tokenise identically — duplicates,
        whitespace variants, truncated multi-line remainders — share one
        match (and one enrichment pass) instead of re-walking the trie
        per occurrence.  Results are positionally parallel to *scanned*;
        shared outcomes are the same :class:`MatchResult` object.
        ``last_frontiers`` records the frontier size of each match
        actually performed, in first-occurrence order.
        """
        results: list[MatchResult | None] = []
        by_signature: dict[tuple, MatchResult | None] = {}
        frontiers: list[int] = []
        lookup = by_signature.get
        match = self.match
        append = results.append
        miss = _MISS
        for msg in scanned:
            sig = _signature(msg.tokens)
            hit = lookup(sig, miss)
            if hit is miss:
                hit = by_signature[sig] = match(msg)
                frontiers.append(self.last_frontier)
            append(hit)
        self.last_frontiers = frontiers
        return results

    def _search(
        self, root: _Node, tokens: list[Token], best: _Candidate | None
    ) -> _Candidate | None:
        """DFS one sub-trie, folding candidates into *best*."""
        seen: set[tuple[int, int]] = set()
        stack: list[tuple[int, _Node, int, tuple]] = [(0, root, 0, ())]
        while stack:
            idx, node, static, bindings = stack.pop()
            key = (idx, id(node))
            if key in seen:
                continue
            seen.add(key)
            if idx == len(tokens):
                if node.pattern is not None:
                    best = self._better(
                        best, node.pattern, dict(bindings), static
                    )
                # an ignore-rest variable can also close the pattern here
                for vc, name, child in node.variables:
                    if vc is VarClass.REST and child.pattern is not None:
                        best = self._better(
                            best, child.pattern, dict(bindings), static
                        )
                continue
            tok = tokens[idx]
            lit = node.literals.get(tok.text)
            if lit is not None:
                stack.append((idx + 1, lit, static + 1, bindings))
            for vc, name, child in node.variables:
                if vc is VarClass.REST:
                    # consume everything that remains
                    if child.pattern is not None:
                        rest = " ".join(t.text for t in tokens[idx:])
                        best = self._better(
                            best,
                            child.pattern,
                            dict(bindings + ((name, rest),)),
                            static,
                        )
                    continue
                if _accepts(vc, tok):
                    stack.append(
                        (idx + 1, child, static, bindings + ((name, tok.text),))
                    )
        self.last_frontier += len(seen)
        return best

    @staticmethod
    def _better(
        current: _Candidate | None,
        pattern: Pattern,
        fields: dict[str, str],
        static: int,
    ) -> _Candidate:
        candidate = _Candidate(
            pattern=pattern,
            fields=fields,
            static_matches=static,
            n_variables=pattern.n_variables,
        )
        if current is None:
            return candidate
        if candidate.static_matches != current.static_matches:
            return max(current, candidate, key=lambda c: c.static_matches)
        if candidate.n_variables != current.n_variables:
            return min(current, candidate, key=lambda c: c.n_variables)
        return current

"""Deterministic sampling helpers for synthetic workloads.

Log template popularity in production systems is heavily skewed: a few
templates dominate the stream while a long tail appears only a handful of
times.  The workload generators model this with a Zipf distribution whose
probabilities are precomputed so sampling is O(log n) per draw via
cumulative-weight bisection.
"""

from __future__ import annotations

import bisect
import itertools
import random
from collections.abc import Sequence

__all__ = ["ZipfSampler"]


class ZipfSampler:
    """Sample indices ``0..n-1`` with probability proportional to ``1/(i+1)^s``.

    The sampler owns its own :class:`random.Random` so that independent
    generators with the same seed produce identical streams regardless of
    global RNG state.
    """

    def __init__(self, n: int, s: float = 1.2, seed: int = 0) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if s < 0:
            raise ValueError(f"zipf exponent must be non-negative, got {s}")
        self.n = n
        self.s = s
        self._rng = random.Random(seed)
        weights = [1.0 / (i + 1) ** s for i in range(n)]
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]

    def sample(self) -> int:
        """Draw one index."""
        x = self._rng.random() * self._total
        return bisect.bisect_left(self._cumulative, x)

    def sample_many(self, k: int) -> list[int]:
        """Draw *k* indices."""
        return [self.sample() for _ in range(k)]

    def probabilities(self) -> Sequence[float]:
        """Return the exact probability of each index (sums to 1)."""
        probs = []
        prev = 0.0
        for c in self._cumulative:
            probs.append((c - prev) / self._total)
            prev = c
        return probs

"""Lightweight stage timing.

The production deployment section of the paper reports per-stage timings
(average 7.5 s per 100k-message batch).  :class:`StageTimer` accumulates
wall-clock time per named stage so the pipeline can report the same
breakdown without pulling in a profiler dependency.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["StageTimer"]


class StageTimer:
    """Accumulate elapsed wall-clock seconds per named stage."""

    def __init__(self) -> None:
        self._elapsed: dict[str, float] = {}
        self._counts: dict[str, int] = {}
        self._starts: dict[str, float] = {}

    def begin(self, name: str) -> None:
        """Open one execution of *name* (paired with :meth:`end`).

        The explicit begin/end pair is what lets event-driven callers —
        :class:`repro.core.engine.TimingObserver` reacting to stage
        start/end hooks — drive the timer without a ``with`` block.
        """
        self._starts[name] = time.perf_counter()

    def end(self, name: str) -> None:
        """Close the open execution of *name* and accumulate it."""
        start = self._starts.pop(name, None)
        if start is None:
            raise ValueError(f"end({name!r}) without a matching begin()")
        dt = time.perf_counter() - start
        self._elapsed[name] = self._elapsed.get(name, 0.0) + dt
        self._counts[name] = self._counts.get(name, 0) + 1

    @contextmanager
    def stage(self, name: str):
        """Context manager timing one execution of *name*."""
        self.begin(name)
        try:
            yield
        finally:
            self.end(name)

    def elapsed(self, name: str) -> float:
        """Total seconds accumulated for *name* (0.0 if never run)."""
        return self._elapsed.get(name, 0.0)

    def count(self, name: str) -> int:
        """Number of completed executions of *name*."""
        return self._counts.get(name, 0)

    def total(self) -> float:
        """Total seconds across all stages."""
        return sum(self._elapsed.values())

    def report(self) -> dict[str, float]:
        """Snapshot of per-stage totals."""
        return dict(self._elapsed)

    def reset(self) -> None:
        self._elapsed.clear()
        self._counts.clear()
        self._starts.clear()

"""Reproducible pattern identifiers.

The paper requires pattern ids that are *unique and reproducible* per
(pattern, service) pair so that independent Sequence-RTG instances and
re-executions assign the same id to the same pattern.  Following §III
("Making Patterns and Statistics Persistent") the id is the SHA1 hash of
the concatenated pattern text and service name.
"""

from __future__ import annotations

import hashlib

__all__ = ["pattern_id"]


def pattern_id(pattern_text: str, service: str) -> str:
    """Return the reproducible SHA1 id for *pattern_text* owned by *service*.

    >>> pattern_id("%action% from %srcip% port %srcport%", "sshd")[:8]
    '6c047a5a'
    """
    digest = hashlib.sha1()
    digest.update(pattern_text.encode("utf-8"))
    digest.update(service.encode("utf-8"))
    return digest.hexdigest()

"""Small shared utilities used across the Sequence-RTG reproduction."""

from repro._util.hashing import pattern_id
from repro._util.sampling import ZipfSampler
from repro._util.timers import StageTimer

__all__ = ["pattern_id", "ZipfSampler", "StageTimer"]

"""Compiled scanner backend: a regex-program tokenizer.

The reference :class:`~repro.scanner.scanner.Scanner` walks every
message character by character in Python and consults its FSM cascade
(time → hex → URL → path → general) at every token start.  That loop is
the one cost every message pays on every execution path — the fast lane
only short-circuits duplicates — which makes it the throughput floor of
the whole pipeline.

This backend compiles the cascade into a small set of precompiled
``re`` programs executed left-to-right over each line:

* whitespace runs and general words are consumed by single C-level
  regex matches instead of per-character Python iterations;
* each specialised FSM sits behind a *sound gate* — a cheap compiled
  prefilter that can never reject a real match but rejects the vast
  majority of token starts (a plain word or integer) without entering
  the FSM at all.  Gated positions still run the reference FSMs, so the
  emitted token stream is bit-identical to the FSM backend's by
  construction: text, type, ``is_space_before`` and ``pos`` all come
  from the same code once a gate opens.

The gates are derived from the FSM entry conditions:

* **time** — every digit-led layout in the catalogue starts with 1-4
  digits followed by a separator (``-/.:``), 1-4 digits then spaces and
  a month/day name, or a compact 6/8-digit date block; alpha-led
  layouts start with a known month/day name prefix (the same check
  :meth:`TimeFSM.match` performs first).
* **hex** — a successful MAC/IPv6 match always has a hex group of at
  most four digits followed by ``:`` or ``-`` and another hex digit or
  colon, or starts with ``::``.
* **URL** — the scheme is 1-12 characters, so ``://`` must occur
  within 12 characters of the token start.
* **path** (opt-in) — a match starts with ``/`` or ``\\``, a Windows
  drive prefix, or a run of component characters reaching a ``/``.

Word classification and text allocation go through the same bounded
memo + ``sys.intern`` layer as the reference backend
(:class:`~repro.scanner.scanner.WordCache`).
"""

from __future__ import annotations

import re

from repro.scanner.scanner import Scanner
from repro.scanner.time_fsm import (
    _COMPACT,
    _DAYS,
    _DIGIT_FIELDS,
    _MONTHS,
    _MONTHS_FULL,
    _NAMES,
    TimeFSM,
)
from repro.scanner.token_types import Token, TokenType

__all__ = ["CompiledScanner", "CompiledTimeFSM"]


# --- compiled time programs -------------------------------------------------
#
# Digit-led layouts are translated element-by-element into regex programs
# that reproduce the interpreted matchers exactly:
#
# * fixed/flex digit fields become value-range alternations guarded by a
#   ``(?!\d)`` lookahead — the guard encodes the FSM's "reject if the
#   digit run continues" rule and also sterilises backtracking into the
#   shorter alternatives of flex fields;
# * ``FFF`` and spaces consume maximal runs greedily, like the FSM; the
#   following element can never match a digit or a space, so backtracking
#   into these runs always fails and greedy equals possessive (possessive
#   quantifiers themselves would need Python 3.11);
# * month names use explicit ``[Jj][Aa][Nn]`` character pairs (matching
#   the FSM's ``.lower()`` comparison, unlike ``re.IGNORECASE`` which
#   also case-folds exotica like the Kelvin sign);
# * the FSM's "name not followed by a letter" checks on MON/AP are
#   dropped because in every digit-led layout those elements are
#   followed by a separator literal (which cannot match a letter) or
#   are final (where ``_boundary_ok`` already rejects letters) — the
#   layout dies at the same inputs either way.
#
# Alpha-led layouts (DAY/MON first) keep the interpreted matchers: they
# are already gated by a month/day-name prefix check and contribute
# nothing to the hot path.

_MONTH_RX = "(?:%s)" % "|".join(
    "".join(f"[{ch.upper()}{ch}]" for ch in name)
    for name in (
        sorted(_MONTHS_FULL, key=lambda n: (-len(n), n)) + sorted(_MONTHS)
    )
)

#: element → regex mirroring ``time_fsm._compile``'s non-compact choice
#: (valued two-digit fields; compact raw fields are emitted separately)
_ELEMENT_RX = {
    "YYYY": r"[1-9]\d{3}(?!\d)",  # _fixed_digits(4, 1000, 9999)
    "YY": r"\d{2}",  # _raw_digits(2)
    "MM": r"(?:0[1-9]|1[0-2])(?!\d)",  # _fixed_digits(2, 1, 12)
    "M": r"(?:0[1-9]|1[0-2]|[1-9])(?!\d)",  # _flex_digits(2, 1, 12)
    "DD": r"(?:0[1-9]|[12]\d|3[01])(?!\d)",  # _fixed_digits(2, 1, 31)
    "D": r"(?:0[1-9]|[12]\d|3[01]|[1-9])(?!\d)",  # _flex_digits(2, 1, 31)
    "hh": r"(?:[01]\d|2[0-3])(?!\d)",  # _fixed_digits(2, 0, 23)
    "h": r"(?:[01]\d|2[0-3]|\d)(?!\d)",  # _flex_digits(2, 0, 23)
    "mm": r"[0-5]\d(?!\d)",  # _fixed_digits(2, 0, 59)
    "m": r"(?:[0-5]\d|\d)(?!\d)",  # _flex_digits(2, 0, 59)
    "ss": r"(?:[0-5]\d|60)(?!\d)",  # _fixed_digits(2, 0, 60)
    "s": r"(?:[0-5]\d|60|\d)(?!\d)",  # _flex_digits(2, 0, 60)
    "FFF": r"\d{1,9}",  # _fraction (maximal, no boundary check)
    "MON": _MONTH_RX,
    "AP": r"(?:[Aa][Mm]|[Pp][Mm])",
    "OFF": r"(?:Z|[+-](?:\d{4}(?!\d)|\d{2}:\d{2}(?!\d)))",
    " ": r"[ ]+",  # _space: one or more literal spaces
}


def _layout_to_regex(layout: str) -> str:
    """Translate one layout into a regex source string.

    Follows the same element tokenisation and compact/valued/raw choice
    as :func:`repro.scanner.time_fsm._compile`.  Raises ``KeyError`` for
    elements with no regex translation (DAY/ZZZ — alpha-layout only),
    and for layouts where a digit element or digit literal directly
    follows ``FFF``, or a space follows a space: there the FSM's
    no-backtracking greed is load-bearing and the greedy regex would
    diverge, so those (hypothetical, custom-catalogue) layouts stay on
    the interpreted matchers.
    """
    parts: list[str] = []
    i = 0
    compact = any(run in layout for run in _COMPACT)
    prev = ""
    while i < len(layout):
        for name in _NAMES:
            if layout.startswith(name, i):
                if prev == "FFF" and name not in ("MON", "AP", "OFF", " "):
                    raise KeyError(f"FFF followed by {name!r}")
                if prev == " " and name == " ":
                    raise KeyError("space followed by space")
                if compact and name in _DIGIT_FIELDS:
                    parts.append(r"\d{%d}" % _DIGIT_FIELDS[name])
                else:
                    parts.append(_ELEMENT_RX[name])
                prev = name
                i += len(name)
                break
        else:
            if prev == "FFF" and layout[i].isdigit():
                raise KeyError(f"FFF followed by {layout[i]!r}")
            parts.append(re.escape(layout[i]))
            prev = ""
            i += 1
    return "".join(parts)


class CompiledTimeFSM(TimeFSM):
    """TimeFSM with digit-led layouts compiled to regex programs.

    Longest-match and boundary semantics are preserved: every program is
    tried at the position and the longest end passing ``_boundary_ok``
    wins, exactly like the interpreted loop.  Digit-led layouts that
    cannot be translated (custom catalogues using DAY/ZZZ after digits)
    fall back to their interpreted matchers.
    """

    def __init__(
        self,
        layouts: tuple[str, ...] | None = None,
        allow_single_digit: bool = False,
    ) -> None:
        if layouts is None:
            from repro.scanner.time_fsm import DEFAULT_LAYOUTS

            layouts = DEFAULT_LAYOUTS
        super().__init__(layouts, allow_single_digit)
        if allow_single_digit:
            from repro.scanner.time_fsm import SINGLE_DIGIT_LAYOUTS

            layouts = layouts + SINGLE_DIGIT_LAYOUTS
        self._digit_programs: list[re.Pattern[str]] = []
        self._digit_fallbacks: list[list] = []
        from repro.scanner.time_fsm import _compile

        for layout in layouts:
            if layout[0].isalpha() and layout[:3] in ("MON", "DAY"):
                continue  # alpha-led: handled by the parent class
            try:
                self._digit_programs.append(re.compile(_layout_to_regex(layout)))
            except KeyError:
                self._digit_fallbacks.append(_compile(layout))

    def match(self, s: str, i: int) -> int:
        c = s[i] if i < len(s) else ""
        if not ("0" <= c <= "9"):
            return super().match(s, i)
        best = -1
        boundary_ok = self._boundary_ok
        for rx in self._digit_programs:
            m = rx.match(s, i)
            if m is not None:
                j = m.end()
                if j > best and boundary_ok(s, j):
                    best = j
        for matchers in self._digit_fallbacks:
            j = i
            for mt in matchers:
                j = mt(s, j)
                if j < 0:
                    break
            else:
                if j > best and boundary_ok(s, j):
                    best = j
        return best

# one-or-more whitespace: \s is verified (tests/scanner/test_compiled.py)
# to agree with str.isspace(), the reference tokeniser's delimiter test
_WS_RX = re.compile(r"\s+")

# maximal run of non-whitespace, non-break characters — exactly the
# reference general FSM's word loop (break set mirrors _BREAK_CHARS)
_WORD_RX = re.compile(r"""[^\s()\[\]{}"'=,;<>|:]+""")

# sound gate for digit-led timestamp layouts (see module docstring);
# re.ASCII because the FSM's digit test is ASCII-strict
_TIME_GATE = re.compile(
    r"\d{1,4}[-/.:]|\d{1,4} +[A-Za-z]|\d{6} \d|\d{8}-\d", re.ASCII
)

# sound gate for MAC/IPv6: a short hex group, a separator, and more
# address material — or a leading '::' compression
_HEX_GATE = re.compile(r"[0-9a-fA-F]{1,4}[:-][0-9a-fA-F:]|::")

# sound gate for the opt-in path FSM: absolute/UNC/drive starts, or a
# component run that actually reaches a '/'
_PATH_GATE = re.compile(r"[/\\]|[A-Za-z]:\\|[A-Za-z0-9._+~@%\-]+/")

# first characters that can open a month or day name (both cases)
_MONTH_DAY_PREFIXES = frozenset(_MONTHS) | frozenset(_DAYS)
_MONTH_DAY_INITIALS = frozenset(
    p[0] for p in _MONTH_DAY_PREFIXES
) | frozenset(p[0].upper() for p in _MONTH_DAY_PREFIXES)

_HEX_LETTERS = frozenset("abcdefABCDEF")

# trailing sentence punctuation carved off words (Scanner._TRAILING)
_TRAILING = set(".,!?")


class CompiledScanner(Scanner):
    """Drop-in scanner executing compiled regex programs per line.

    Construction, configuration, multi-line truncation and the
    ``max_tokens`` cap are all inherited from :class:`Scanner`; only the
    per-line tokenisation loop differs.  The token streams are
    bit-identical (asserted by the differential property suite in
    ``tests/scanner/test_compiled.py``, not assumed).
    """

    backend_name = "compiled"

    def __init__(self, config=None) -> None:
        super().__init__(config)
        # swap in the regex-program time matcher (same layout catalogue)
        self._time_fsm = CompiledTimeFSM(
            allow_single_digit=self.config.allow_single_digit_time
        )

    # ------------------------------------------------------------------
    def _scan_line(self, s: str) -> list[Token]:
        tokens: list[Token] = []
        n = len(s)
        i = 0
        space_before = False

        # hoist every per-iteration attribute lookup out of the loop
        append = tokens.append
        ws_match = _WS_RX.match
        word_match = _WORD_RX.match
        time_gate = _TIME_GATE.match
        hex_gate = _HEX_GATE.match
        time_match = self._time_fsm.match
        hex_match = self._hex_fsm.match
        path_fsm = self._path_fsm
        path_gate = _PATH_GATE.match if path_fsm is not None else None
        lookup = self._words.lookup
        match_url = self._match_url
        month_day_initials = _MONTH_DAY_INITIALS
        month_day_prefixes = _MONTH_DAY_PREFIXES
        hex_letters = _HEX_LETTERS
        break_chars = self._BREAK_CHARS
        trailing = _TRAILING
        TIME = TokenType.TIME
        URL = TokenType.URL
        PATH = TokenType.PATH
        LITERAL = TokenType.LITERAL

        while i < n:
            c = s[i]
            if c.isspace():
                i = ws_match(s, i).end()
                space_before = True
                continue

            if "0" <= c <= "9":
                # 1. datetime FSM (digit-led layouts)
                if time_gate(s, i) is not None:
                    end = time_match(s, i)
                    if end > 0:
                        append(Token(s[i:end], TIME, space_before, i))
                        i = end
                        space_before = False
                        continue
                # 2. hexadecimal FSM (digits are hex digits too)
                if hex_gate(s, i) is not None:
                    hit = hex_match(s, i)
                    if hit is not None:
                        end, ttype = hit
                        append(Token(s[i:end], ttype, space_before, i))
                        i = end
                        space_before = False
                        continue
                # 3. URL: schemes start with a letter — never matches here
            elif c.isalpha():
                # 1. datetime FSM (month/day-name-led layouts)
                if (
                    c in month_day_initials
                    and s[i : i + 3].lower() in month_day_prefixes
                ):
                    end = time_match(s, i)
                    if end > 0:
                        append(Token(s[i:end], TIME, space_before, i))
                        i = end
                        space_before = False
                        continue
                # 2. hexadecimal FSM (a-f letters open hex groups)
                if c in hex_letters and hex_gate(s, i) is not None:
                    hit = hex_match(s, i)
                    if hit is not None:
                        end, ttype = hit
                        append(Token(s[i:end], ttype, space_before, i))
                        i = end
                        space_before = False
                        continue
                # 3. URL: '://' must sit within the 12-char scheme budget
                if s.find("://", i + 1, i + 15) != -1:
                    end = match_url(s, i)
                    if end > 0:
                        append(Token(s[i:end], URL, space_before, i))
                        i = end
                        space_before = False
                        continue
            elif c == ":" and s.startswith("::", i):
                # 2. hexadecimal FSM: '::'-compressed IPv6
                hit = hex_match(s, i)
                if hit is not None:
                    end, ttype = hit
                    append(Token(s[i:end], ttype, space_before, i))
                    i = end
                    space_before = False
                    continue

            # 4. path FSM (future-work extension, opt-in)
            if path_gate is not None and path_gate(s, i) is not None:
                end = path_fsm.match(s, i)
                if end > 0:
                    append(Token(s[i:end], PATH, space_before, i))
                    i = end
                    space_before = False
                    continue

            # 5. general text/number FSM
            if c in break_chars:
                append(Token(c, LITERAL, space_before, i))
                i += 1
                space_before = False
                continue

            j = word_match(s, i).end()
            word = s[i:j]

            # carve trailing sentence punctuation into separate tokens,
            # but only when the remaining head still carries content
            if word[-1] in trailing and len(word) > 1:
                carved: list[tuple[str, int]] = []
                while (
                    len(word) > 1
                    and word[-1] in trailing
                    and any(ch.isalnum() for ch in word[:-1])
                ):
                    carved.append((word[-1], i + len(word) - 1))
                    word = word[:-1]
                text, ttype = lookup(word)
                append(Token(text, ttype, space_before, i))
                for text, pos in reversed(carved):
                    append(Token(text, LITERAL, False, pos))
            else:
                text, ttype = lookup(word)
                append(Token(text, ttype, space_before, i))
            i = j
            space_before = False
        return tokens

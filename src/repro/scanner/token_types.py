"""Token model shared by the scanner, analyser and parser.

Scan-time types mirror the seminal Sequence scanner ("The full list of
tokens that can be identified at scan time are: Time, IPv4, IPv6, Mac
Address, Integer, Float, URL, or Literal").  The remaining members are
assigned during analysis (key/value pairs, e-mail addresses, host names —
paper §III) or by Sequence-RTG's multi-line handling (REST marker).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["TokenType", "Token", "SCAN_TIME_TYPES", "ANALYSIS_TIME_TYPES"]


class TokenType(enum.Enum):
    """Type of a scanned or analysed token."""

    # --- scan-time types (Sequence scanner FSM outputs) -------------------
    LITERAL = "literal"
    INTEGER = "integer"
    FLOAT = "float"
    IPV4 = "ipv4"
    IPV6 = "ipv6"
    MAC = "mac"
    TIME = "time"
    URL = "url"
    # --- future-work extension (paper §VI: a fourth FSM for paths) --------
    PATH = "path"
    # --- analysis-time types (paper §III: detected by the analyser) -------
    EMAIL = "email"
    HOST = "host"
    KEY = "key"
    VALUE = "value"
    # --- structural markers ------------------------------------------------
    REST = "rest"  # "ignore everything after this point" (multi-line)

    def is_variable(self) -> bool:
        """True when a token of this type is inherently a pattern variable.

        Literals and keys carry static text; every other type denotes data
        that varies between occurrences of the same event.
        """
        return self not in (TokenType.LITERAL, TokenType.KEY)


#: Types the scanner itself can emit.
SCAN_TIME_TYPES = frozenset(
    {
        TokenType.LITERAL,
        TokenType.INTEGER,
        TokenType.FLOAT,
        TokenType.IPV4,
        TokenType.IPV6,
        TokenType.MAC,
        TokenType.TIME,
        TokenType.URL,
        TokenType.PATH,
        TokenType.REST,
    }
)

#: Types only the analyser assigns.
ANALYSIS_TIME_TYPES = frozenset(
    {TokenType.EMAIL, TokenType.HOST, TokenType.KEY, TokenType.VALUE}
)


@dataclass(slots=True)
class Token:
    """One scanned token.

    Attributes
    ----------
    text:
        The exact source text of the token.
    type:
        Scan-time (or analysis-time) :class:`TokenType`.
    is_space_before:
        Sequence-RTG's whitespace-management addition: ``True`` when the
        character immediately preceding this token in the original message
        was whitespace.  Joining token texts with a single space wherever
        this flag is set reconstructs the message's structure exactly.
    pos:
        Character offset of the token in the original message.
    semantic:
        Optional semantic tag assigned by the analyser (for example the
        key name of a key/value pair), used for variable naming.
    """

    text: str
    type: TokenType
    is_space_before: bool = False
    pos: int = 0
    semantic: str | None = field(default=None)

    def with_type(self, new_type: TokenType, semantic: str | None = None) -> "Token":
        """Return a copy re-typed by the analyser."""
        return Token(
            text=self.text,
            type=new_type,
            is_space_before=self.is_space_before,
            pos=self.pos,
            semantic=semantic if semantic is not None else self.semantic,
        )


def reconstruct(tokens: list[Token]) -> str:
    """Rebuild a message from tokens honouring ``is_space_before``.

    This is the exact-reconstruction guarantee the paper adds to the
    scanner: no spurious whitespace is inserted between tokens that were
    adjacent in the source.
    """
    parts: list[str] = []
    for i, tok in enumerate(tokens):
        if tok.type is TokenType.REST:
            continue
        if i > 0 and tok.is_space_before:
            parts.append(" ")
        parts.append(tok.text)
    return "".join(parts)


__all__.append("reconstruct")

"""Single-pass log message scanner.

This is the reproduction of Sequence's scanner with Sequence-RTG's two
additions: the ``is_space_before`` token property (whitespace-exact
pattern reconstruction) and first-line truncation of multi-line messages
with an ignore-rest marker.

The scan is a single forward pass over the characters of the message.
At each token start the scanner consults its finite state machines in
priority order — datetime, hexadecimal (MAC/IPv6), URL, then optionally
the path FSM — and falls back to the general text/number FSM, which
splits words on whitespace and structural punctuation and classifies
each word as IPv4, integer, float or literal.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from repro.scanner.hex_fsm import HexFSM
from repro.scanner.path_fsm import PathFSM
from repro.scanner.time_fsm import TimeFSM
from repro.scanner.token_types import Token, TokenType

__all__ = ["Scanner", "ScannerConfig", "ScannedMessage", "WordCache", "SCANNER_BACKENDS"]

#: Recognised values of :attr:`ScannerConfig.backend`.
SCANNER_BACKENDS = ("fsm", "compiled")

# Punctuation that always forms its own single-character token.  Colons
# are included so component headers ("sshd[123]:") and host:port splits
# tokenise cleanly; timestamps and addresses containing colons are
# claimed by their FSMs before the general FSM runs.
_BREAK_CHARS = set("()[]{}\"'=,;<>|:")

# Trailing sentence punctuation carved off the end of a word.
_TRAILING = set(".,!?")

def _is_ws(c: str) -> bool:
    """All Unicode whitespace (incl. control separators) delimits tokens,
    matching what ``str.split()`` treats as whitespace."""
    return c.isspace()


@dataclass(slots=True)
class ScannerConfig:
    """Scanner behaviour switches.

    Defaults reproduce the published Sequence-RTG behaviour including its
    documented limitations; the two flags enable the paper's future-work
    fixes (§VI) for the ablation study.
    """

    #: Accept time parts without a leading zero (fixes HealthApp raw logs).
    allow_single_digit_time: bool = False
    #: Enable the fourth (path) finite state machine.
    enable_path_fsm: bool = False
    #: Maximum tokens kept per message (0 = unlimited), *including* the
    #: REST marker appended at the cut.  The longest message observed in
    #: production had 864 tokens; capping protects the analysis trie
    #: (§III, memory management).
    max_tokens: int = 0
    #: Tokeniser implementation: ``"fsm"`` is the reference character
    #: FSM cascade, ``"compiled"`` the regex-program backend
    #: (:class:`repro.scanner.compiled.CompiledScanner`) with identical
    #: token output.  Selected by :func:`repro.scanner.build_scanner`.
    backend: str = "fsm"

    def __post_init__(self) -> None:
        if self.backend not in SCANNER_BACKENDS:
            raise ValueError(
                f"backend must be one of {SCANNER_BACKENDS}, got {self.backend!r}"
            )
        if self.max_tokens < 0:
            raise ValueError(f"max_tokens must be >= 0, got {self.max_tokens}")


@dataclass(slots=True)
class ScannedMessage:
    """Result of scanning one log message."""

    original: str
    tokens: list[Token]
    truncated: bool = False  # True when a multi-line message was cut
    service: str = ""

    def token_texts(self) -> list[str]:
        return [t.text for t in self.tokens]

    def token_count(self) -> int:
        return len(self.tokens)


class WordCache:
    """Bounded memo of general-FSM words → ``(interned text, type)``.

    Log vocabulary is tiny relative to log volume, so classifying (and
    allocating) each distinct word once pays for itself within a batch.
    Interning through :func:`sys.intern` collapses the analysis-trie and
    parse-trie key storage to one string object per distinct word and
    turns their key comparisons into pointer checks.  The memo is
    dropped wholesale when it reaches *maxsize* (an adversarial
    all-unique stream costs one failed lookup per word, nothing more);
    interned strings are freed with the memo, CPython's intern table
    holds no immortal references.
    """

    __slots__ = ("maxsize", "_data")

    #: distinct words remembered before the memo is dropped and rebuilt
    DEFAULT_SIZE = 65536

    def __init__(self, maxsize: int = DEFAULT_SIZE) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._data: dict[str, tuple[str, TokenType]] = {}

    def __len__(self) -> int:
        return len(self._data)

    def lookup(self, word: str) -> tuple[str, TokenType]:
        """The interned text and scan-time type of one word."""
        hit = self._data.get(word)
        if hit is None:
            text = sys.intern(word)
            hit = (text, Scanner._classify_word(text))
            if len(self._data) >= self.maxsize:
                self._data.clear()
            self._data[text] = hit
        return hit


class Scanner:
    """Tokenise log messages in a single pass.

    Instances are stateless between calls and therefore safe to share
    across partitions; construction compiles the FSM layout catalogue
    once, so callers should reuse one scanner per configuration.
    """

    #: break set shared with the compiled backend's regex program
    _BREAK_CHARS = _BREAK_CHARS

    #: reported as the ``backend`` metric label (overridden by subclasses)
    backend_name = "fsm"

    def __init__(self, config: ScannerConfig | None = None) -> None:
        self.config = config or ScannerConfig()
        self._time_fsm = TimeFSM(
            allow_single_digit=self.config.allow_single_digit_time
        )
        self._hex_fsm = HexFSM()
        self._path_fsm = PathFSM() if self.config.enable_path_fsm else None
        self._words = WordCache()

    # ------------------------------------------------------------------
    def scan(self, message: str, service: str = "") -> ScannedMessage:
        """Scan *message* into typed tokens.

        Multi-line messages are processed only to the first line break
        (paper §III): the remainder is dropped and a ``REST`` marker token
        is appended so the parser knows to ignore trailing text.
        """
        truncated = False
        newline = message.find("\n")
        body = message
        if newline >= 0:
            body = message[:newline]
            truncated = True

        tokens = self._scan_line(body)
        if truncated:
            tokens.append(
                Token(text="", type=TokenType.REST, is_space_before=True, pos=len(body))
            )
        max_tokens = self.config.max_tokens
        if max_tokens and len(tokens) > max_tokens:
            # the REST marker replaces the last kept token so the cap is
            # honoured *including* the marker (the pre-fix behaviour
            # returned max_tokens + 1 tokens)
            tokens = tokens[: max_tokens - 1]
            tokens.append(
                Token(
                    text="",
                    type=TokenType.REST,
                    is_space_before=True,
                    pos=len(body),
                )
            )
            truncated = True
        return ScannedMessage(
            original=message, tokens=tokens, truncated=truncated, service=service
        )

    def scan_many(
        self, messages: list[str], service: str = ""
    ) -> list[ScannedMessage]:
        """Scan a batch of messages, hoisting the per-call setup.

        Semantically ``[self.scan(m, service) for m in messages]``; the
        bound-method and config lookups are paid once per batch instead
        of once per message.
        """
        scan = self.scan
        return [scan(message, service) for message in messages]

    # ------------------------------------------------------------------
    def _scan_line(self, s: str) -> list[Token]:
        tokens: list[Token] = []
        n = len(s)
        i = 0
        space_before = False
        while i < n:
            c = s[i]
            if _is_ws(c):
                space_before = True
                i += 1
                continue

            # 1. datetime FSM (may span spaces inside the timestamp)
            end = self._time_fsm.match(s, i)
            if end > 0:
                tokens.append(Token(s[i:end], TokenType.TIME, space_before, i))
                i = end
                space_before = False
                continue

            # 2. hexadecimal FSM (MAC / IPv6)
            hit = self._hex_fsm.match(s, i)
            if hit is not None:
                end, ttype = hit
                tokens.append(Token(s[i:end], ttype, space_before, i))
                i = end
                space_before = False
                continue

            # 3. URL
            end = self._match_url(s, i)
            if end > 0:
                tokens.append(Token(s[i:end], TokenType.URL, space_before, i))
                i = end
                space_before = False
                continue

            # 4. path FSM (future-work extension, opt-in)
            if self._path_fsm is not None:
                end = self._path_fsm.match(s, i)
                if end > 0:
                    tokens.append(Token(s[i:end], TokenType.PATH, space_before, i))
                    i = end
                    space_before = False
                    continue

            # 5. general text/number FSM
            if c in _BREAK_CHARS:
                tokens.append(Token(c, TokenType.LITERAL, space_before, i))
                i += 1
                space_before = False
                continue

            j = i
            while j < n and not _is_ws(s[j]) and s[j] not in _BREAK_CHARS:
                j += 1
            word = s[i:j]

            # carve trailing sentence punctuation into separate tokens,
            # but only when the remaining head still carries content
            carved: list[tuple[str, int]] = []
            while (
                len(word) > 1
                and word[-1] in _TRAILING
                and any(ch.isalnum() for ch in word[:-1])
            ):
                carved.append((word[-1], i + len(word) - 1))
                word = word[:-1]

            text, ttype = self._words.lookup(word)
            tokens.append(Token(text, ttype, space_before, i))
            for text, pos in reversed(carved):
                tokens.append(Token(text, TokenType.LITERAL, False, pos))
            i = j
            space_before = False
        return tokens

    # ------------------------------------------------------------------
    @staticmethod
    def _match_url(s: str, i: int) -> int:
        """Match ``scheme://...`` starting at *i*; return end or -1."""
        j = i
        n = len(s)
        while j < n and (s[j].isalpha() or (j > i and s[j] in "+.-")) and j - i < 12:
            j += 1
        if j == i or not s.startswith("://", j):
            return -1
        j += 3
        if j >= n or _is_ws(s[j]):
            return -1
        while j < n and not _is_ws(s[j]) and s[j] not in "\"'<>|":
            j += 1
        # drop trailing sentence punctuation from the URL
        while j > i and s[j - 1] in ".,;)":
            j -= 1
        return j

    @staticmethod
    def _classify_word(word: str) -> TokenType:
        """Classify one general-FSM word as IPv4, integer, float or literal."""
        c0 = word[0] if word else ""
        if not (c0.isdigit() or (c0 in "+-" and len(word) > 1 and word[1].isdigit())):
            return TokenType.LITERAL

        body = word[1:] if c0 in "+-" else word
        # ASCII-strict digit test: unicode "digits" like superscripts pass
        # str.isdigit() but are not parseable numbers
        if _is_ascii_digits(body):
            return TokenType.INTEGER

        # IPv4 dotted quad
        parts = body.split(".")
        if len(parts) == 4 and all(
            _is_ascii_digits(p) and int(p) <= 255 for p in parts
        ):
            return TokenType.IPV4

        # float: digits '.' digits with optional exponent
        if _is_float(body):
            return TokenType.FLOAT

        return TokenType.LITERAL


def _is_ascii_digits(s: str) -> bool:
    return bool(s) and all("0" <= c <= "9" for c in s)


def _is_float(s: str) -> bool:
    mantissa, _, exponent = s.partition("e")
    if not mantissa:
        mantissa, _, exponent = s.partition("E")
    if exponent:
        exp = exponent[1:] if exponent[0] in "+-" else exponent
        if not _is_ascii_digits(exp):
            return False
    head, dot, frac = mantissa.partition(".")
    if not dot:
        return bool(exponent) and _is_ascii_digits(head)
    return _is_ascii_digits(head) and _is_ascii_digits(frac)

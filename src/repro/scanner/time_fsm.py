"""Datetime finite state machine.

Sequence recognises timestamps at scan time with a dedicated FSM compiled
from a catalogue of known layouts, which lets it process a message in a
single pass without any user-supplied regular expressions.  This module
reimplements that design: each layout is written in a compact element
language, compiled once into a matcher, and the FSM returns the longest
match over all layouts starting at a given character position.

Two behaviours from the paper are modelled explicitly:

* **Leading-zero limitation (§IV "Limitations")** — the published FSM
  cannot parse time parts without a leading zero, e.g. the HealthApp raw
  timestamp ``20171224-0:7:20:444``.  That is the default here too.
* **Future-work fix (§VI)** — ``allow_single_digit=True`` adds the
  single-digit layout variants, which is the modification the authors
  list as future work.

Layout element language
-----------------------
``YYYY`` 4-digit year · ``YY`` 2-digit year · ``MM``/``M`` month with/
without leading zero · ``DD``/``D`` day · ``hh``/``h`` hour · ``mm``/``m``
minute · ``ss``/``s`` second · ``FFF`` 1-9 fractional digits · ``MON``
month name · ``DAY`` weekday name · ``AP`` am/pm · ``OFF`` numeric UTC
offset · ``ZZZ`` timezone abbreviation.  A space matches one or more
spaces (syslog pads single-digit days: ``Jan  2``).  Any other character
matches itself.
"""

from __future__ import annotations

from collections.abc import Callable

__all__ = ["TimeFSM", "DEFAULT_LAYOUTS", "SINGLE_DIGIT_LAYOUTS"]

_MONTHS = {
    "jan", "feb", "mar", "apr", "may", "jun",
    "jul", "aug", "sep", "oct", "nov", "dec",
}
_MONTHS_FULL = {
    "january", "february", "march", "april", "may", "june", "july",
    "august", "september", "october", "november", "december",
}
_DAYS = {"mon", "tue", "wed", "thu", "fri", "sat", "sun"}
_DAYS_FULL = {
    "monday", "tuesday", "wednesday", "thursday",
    "friday", "saturday", "sunday",
}

# Characters that may legally follow a complete timestamp.  Letters,
# digits, ':' and '-' would indicate we matched a prefix of something
# larger (e.g. the first three octet pairs of a MAC address), so they
# invalidate the match.
_BOUNDARY_OK = set(" \t,;)]}\"'|=<>")


def _is_digit(c: str) -> bool:
    return "0" <= c <= "9"


# --- element matchers -------------------------------------------------------
# Each matcher takes (s, i) and returns the end index or -1 on failure.


def _fixed_digits(n: int, lo: int, hi: int) -> Callable[[str, int], int]:
    def match(s: str, i: int) -> int:
        j = i + n
        if j > len(s):
            return -1
        run = s[i:j]
        if not all(_is_digit(c) for c in run):
            return -1
        # reject if the digit run continues (would be a longer number)
        if j < len(s) and _is_digit(s[j]):
            return -1
        if not (lo <= int(run) <= hi):
            return -1
        return j

    return match


def _flex_digits(max_n: int, lo: int, hi: int) -> Callable[[str, int], int]:
    def match(s: str, i: int) -> int:
        j = i
        while j < len(s) and j - i < max_n and _is_digit(s[j]):
            j += 1
        if j == i:
            return -1
        if j < len(s) and _is_digit(s[j]):
            return -1
        if not (lo <= int(s[i:j]) <= hi):
            return -1
        return j

    return match


def _fraction(s: str, i: int) -> int:
    j = i
    while j < len(s) and j - i < 9 and _is_digit(s[j]):
        j += 1
    return j if j > i else -1


def _raw_digits(n: int) -> Callable[[str, int], int]:
    """Exactly *n* digits with no value constraint and no run-boundary check.

    Used inside compact all-digit layouts (``YYMMDD hhmmss``) where the
    sub-fields butt against each other.
    """

    def match(s: str, i: int) -> int:
        j = i + n
        if j > len(s) or not all(_is_digit(c) for c in s[i:j]):
            return -1
        return j

    return match


def _month_name(s: str, i: int) -> int:
    for names, length in ((_MONTHS_FULL, None), (_MONTHS, 3)):
        if length is None:
            # full names: longest-first check
            for name in sorted(names, key=len, reverse=True):
                if s[i : i + len(name)].lower() == name:
                    end = i + len(name)
                    if end >= len(s) or not s[end].isalpha():
                        return end
        else:
            if s[i : i + 3].lower() in names:
                end = i + 3
                if end >= len(s) or not s[end].isalpha():
                    return end
    return -1


def _day_name(s: str, i: int) -> int:
    for name in sorted(_DAYS_FULL, key=len, reverse=True):
        if s[i : i + len(name)].lower() == name:
            end = i + len(name)
            if end >= len(s) or not s[end].isalpha():
                return end
    if s[i : i + 3].lower() in _DAYS:
        end = i + 3
        if end >= len(s) or not s[end].isalpha():
            return end
    return -1


def _ampm(s: str, i: int) -> int:
    chunk = s[i : i + 2].lower()
    if chunk in ("am", "pm"):
        end = i + 2
        if end >= len(s) or not s[end].isalpha():
            return end
    return -1


def _offset(s: str, i: int) -> int:
    if i >= len(s) or s[i] not in "+-":
        # a literal 'Z' (Zulu) also terminates ISO-8601 stamps
        if i < len(s) and s[i] == "Z":
            return i + 1
        return -1
    j = i + 1
    digits = 0
    while j < len(s) and (_is_digit(s[j]) or (s[j] == ":" and digits == 2)):
        if _is_digit(s[j]):
            digits += 1
        j += 1
    return j if digits == 4 else -1


def _tz_abbrev(s: str, i: int) -> int:
    j = i
    while j < len(s) and s[j].isupper():
        j += 1
    if 2 <= j - i <= 5:
        return j
    return -1


def _space(s: str, i: int) -> int:
    j = i
    while j < len(s) and s[j] == " ":
        j += 1
    return j if j > i else -1


def _literal(c: str) -> Callable[[str, int], int]:
    def match(s: str, i: int) -> int:
        if i < len(s) and s[i] == c:
            return i + 1
        return -1

    return match


_ELEMENTS: dict[str, Callable[[str, int], int]] = {
    "YYYY": _fixed_digits(4, 1000, 9999),
    "YY": _raw_digits(2),
    "MM": _raw_digits(2),
    "M": _flex_digits(2, 1, 12),
    "DD": _raw_digits(2),
    "D": _flex_digits(2, 1, 31),
    "hh": _raw_digits(2),
    "h": _flex_digits(2, 0, 23),
    "mm": _raw_digits(2),
    "m": _flex_digits(2, 0, 59),
    "ss": _raw_digits(2),
    "s": _flex_digits(2, 0, 60),
    "FFF": _fraction,
    "MON": _month_name,
    "DAY": _day_name,
    "AP": _ampm,
    "OFF": _offset,
    "ZZZ": _tz_abbrev,
    " ": _space,
}

# Valued two-digit elements get value checks *when they stand alone*
# (i.e. are followed by a separator); compact layouts use the raw forms.
_VALUED = {
    "MM": _fixed_digits(2, 1, 12),
    "DD": _fixed_digits(2, 1, 31),
    "hh": _fixed_digits(2, 0, 23),
    "mm": _fixed_digits(2, 0, 59),
    "ss": _fixed_digits(2, 0, 60),
}

# Element names ordered longest-first for greedy layout parsing.
_NAMES = sorted(_ELEMENTS, key=len, reverse=True)

# Compact layouts in which consecutive digit fields are not separated and
# therefore must use raw (unbounded-value, no-boundary) digit matching.
_COMPACT = {"YYMMDD", "hhmmss", "YYYYMMDD"}


_DIGIT_FIELDS = {"YYYY": 4, "YY": 2, "MM": 2, "DD": 2, "hh": 2, "mm": 2, "ss": 2}


def _compile(layout: str) -> list[Callable[[str, int], int]]:
    """Compile a layout string into a list of element matchers.

    In *compact* layouts (those containing an unseparated digit run such
    as ``YYYYMMDD``) the fixed digit fields butt against each other, so
    they must be matched as raw digit groups without value or run-boundary
    checks; in separated layouts the two-digit fields get value-range
    validation to reduce false positives.
    """
    matchers: list[Callable[[str, int], int]] = []
    i = 0
    compact = any(run in layout for run in _COMPACT)
    while i < len(layout):
        for name in _NAMES:
            if layout.startswith(name, i):
                if compact and name in _DIGIT_FIELDS:
                    matchers.append(_raw_digits(_DIGIT_FIELDS[name]))
                elif name in _VALUED:
                    matchers.append(_VALUED[name])
                else:
                    matchers.append(_ELEMENTS[name])
                i += len(name)
                break
        else:
            matchers.append(_literal(layout[i]))
            i += 1
    return matchers


#: Layout catalogue with leading zeros required (published behaviour).
DEFAULT_LAYOUTS: tuple[str, ...] = (
    # ISO and ISO-like
    "YYYY-MM-DD hh:mm:ss.FFF",
    "YYYY-MM-DD hh:mm:ss,FFF",
    "YYYY-MM-DD hh:mm:ss",
    "YYYY-MM-DDThh:mm:ss.FFFOFF",
    "YYYY-MM-DDThh:mm:ssOFF",
    "YYYY-MM-DDThh:mm:ss.FFF",
    "YYYY-MM-DDThh:mm:ss",
    "YYYY/MM/DD hh:mm:ss.FFF",
    "YYYY/MM/DD hh:mm:ss",
    "YYYY.MM.DD hh:mm:ss",
    "YYYY-MM-DD-hh.mm.ss.FFF",  # BGL RAS timestamps
    "YYYY-MM-DD",
    "YYYY/MM/DD",
    "YYYY.MM.DD",
    # US-style
    "MM/DD/YYYY hh:mm:ss AP",
    "MM/DD/YYYY hh:mm:ss",
    "MM/DD/YY hh:mm:ss",
    "DD/MON/YYYY:hh:mm:ss OFF",
    "DD/MON/YYYY:hh:mm:ss",
    "DD/MON/YYYY hh:mm:ss",
    "MM-DD hh:mm:ss.FFF",  # Android logcat
    "MM-DD-YYYY hh:mm:ss",
    # Named-month styles
    "DAY MON DD hh:mm:ss.FFF YYYY",
    "DAY MON DD hh:mm:ss YYYY",
    "DAY MON DD hh:mm:ss ZZZ YYYY",
    "DAY, DD MON YYYY hh:mm:ss OFF",  # RFC 2822 (mail/HTTP dates)
    "DAY, DD MON YYYY hh:mm:ss ZZZ",
    "MON DD hh:mm:ss YYYY",
    "MON D hh:mm:ss",  # syslog (padded day handled by flexible space)
    "MON DD, YYYY h:mm:ss AP",
    "DD MON YYYY hh:mm:ss",
    "DD-MON-YYYY hh:mm:ss",  # Oracle-style
    "YYYY MON DD hh:mm:ss",
    # Compact
    "YYMMDD hhmmss",  # HDFS headers: "081109 203615"
    "YYYYMMDD-hh:mm:ss:FFF",  # HealthApp with leading zeros
    # Bare clock times
    "hh:mm:ss.FFF",
    "hh:mm:ss,FFF",
    "hh:mm:ss",
    "hh:mm",
)

#: Future-work layouts (paper §VI): accept single-digit time parts.
SINGLE_DIGIT_LAYOUTS: tuple[str, ...] = (
    "YYYYMMDD-h:m:s:FFF",  # HealthApp raw: 20171224-0:7:20:444
    "YYYY-MM-DD h:m:s.FFF",
    "YYYY-MM-DD h:m:s",
    "M/D/YYYY h:m:s",
    "h:m:s",
)


class TimeFSM:
    """Longest-match datetime recogniser over a compiled layout catalogue."""

    def __init__(
        self,
        layouts: tuple[str, ...] = DEFAULT_LAYOUTS,
        allow_single_digit: bool = False,
    ) -> None:
        if allow_single_digit:
            layouts = layouts + SINGLE_DIGIT_LAYOUTS
        self._digit_layouts: list[list[Callable[[str, int], int]]] = []
        self._alpha_layouts: list[list[Callable[[str, int], int]]] = []
        for layout in layouts:
            compiled = _compile(layout)
            if layout[0].isalpha() and layout[:3] in ("MON", "DAY"):
                self._alpha_layouts.append(compiled)
            else:
                self._digit_layouts.append(compiled)

    def match(self, s: str, i: int) -> int:
        """Return the end index of the longest timestamp starting at *i*.

        Returns ``-1`` when no layout matches or when the match does not
        end at a token boundary.
        """
        c = s[i] if i < len(s) else ""
        if _is_digit(c):
            layouts = self._digit_layouts
        elif c.isalpha():
            prefix = s[i : i + 3].lower()
            if prefix not in _MONTHS and prefix not in _DAYS:
                return -1
            layouts = self._alpha_layouts
        else:
            return -1

        best = -1
        for matchers in layouts:
            j = i
            for m in matchers:
                j = m(s, j)
                if j < 0:
                    break
            else:
                if j > best and self._boundary_ok(s, j):
                    best = j
        return best

    @staticmethod
    def _boundary_ok(s: str, j: int) -> bool:
        if j >= len(s):
            return True
        c = s[j]
        if c in _BOUNDARY_OK:
            return True
        if c == ".":
            # a full stop ending a sentence is fine; ".5" would mean we
            # stopped inside a larger number
            return j + 1 >= len(s) or not _is_digit(s[j + 1])
        return False

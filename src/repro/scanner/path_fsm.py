"""Path finite state machine (future-work extension, paper §VI).

The paper lists "a fourth finite state machine to deal with the many
variations of what can be considered as a 'path'" as future work, after
observing (§IV "Limitations") that path strings sometimes remain static
text and generate multiple patterns for a single event.

This FSM recognises:

* absolute POSIX paths (``/var/log/messages``, trailing slash allowed);
* relative paths with at least two separators (``foo/bar/baz.txt``);
* Windows drive paths (``C:\\Windows\\System32\\drivers``);
* UNC paths (``\\\\server\\share\\dir``).

It is off by default (``ScannerConfig.enable_path_fsm=False``) so the
published behaviour, including its limitation, is reproduced; the
ablation benchmark measures the improvement when it is enabled.
"""

from __future__ import annotations

__all__ = ["PathFSM"]

# Characters allowed inside a path component.
_COMPONENT = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._+~@%-"
)
_BOUNDARY_OK = set(" \t,;)]}\"'|=<>")


class PathFSM:
    """Recognise filesystem paths in a single forward pass."""

    def match(self, s: str, i: int) -> int:
        """Return the end index of a path starting at *i*, or ``-1``."""
        n = len(s)
        if i >= n:
            return -1
        c = s[i]
        if c == "/":
            return self._posix(s, i)
        if c == "\\":
            if s.startswith("\\\\", i):
                return self._windows(s, i + 2, need_drive=False)
            return -1
        if c.isalpha() and s.startswith(":\\", i + 1):
            return self._windows(s, i + 3, need_drive=False)
        if c in _COMPONENT:
            return self._relative(s, i)
        return -1

    def _posix(self, s: str, i: int) -> int:
        n = len(s)
        j = i
        separators = 0
        while j < n:
            if s[j] == "/":
                separators += 1
                j += 1
            elif s[j] in _COMPONENT:
                j += 1
            else:
                break
        j = self._strip_trailing_punct(s, i, j)
        # require at least one component after the leading slash so a
        # bare "/" (often a field separator) is not claimed
        if separators >= 1 and j - i >= 2 and self._boundary_ok(s, j):
            return j
        return -1

    def _windows(self, s: str, j: int, need_drive: bool) -> int:
        n = len(s)
        start = j
        while j < n and (s[j] in _COMPONENT or s[j] == "\\"):
            j += 1
        j = self._strip_trailing_punct(s, start, j)
        if j > start and self._boundary_ok(s, j):
            return j
        return -1

    def _relative(self, s: str, i: int) -> int:
        n = len(s)
        j = i
        separators = 0
        while j < n:
            if s[j] == "/":
                # "//" means something else (e.g. a URL remnant)
                if j + 1 < n and s[j + 1] == "/":
                    return -1
                separators += 1
                j += 1
            elif s[j] in _COMPONENT:
                j += 1
            else:
                break
        j = self._strip_trailing_punct(s, i, j)
        # relative paths need two separators to avoid claiming fractions
        # like "a/b" used as ratios in log text
        if separators >= 2 and self._boundary_ok(s, j):
            return j
        return -1

    @staticmethod
    def _boundary_ok(s: str, j: int) -> bool:
        if j >= len(s):
            return True
        c = s[j]
        if c in _BOUNDARY_OK:
            return True
        if c in ".:," :
            return j + 1 >= len(s) or s[j + 1] in (" ", "\t")
        return False

    @staticmethod
    def _strip_trailing_punct(s: str, i: int, j: int) -> int:
        """Drop sentence punctuation greedily consumed at the path end.

        ``open /var/log/messages.`` ends a sentence; the dot belongs to
        the prose, not the path — but ``core.1234`` keeps its dot.
        """
        while j > i and s[j - 1] in ".,;:" and (j >= len(s) or s[j] in " \t"):
            j -= 1
        return j

"""Hexadecimal finite state machine: MAC addresses and IPv6 addresses.

The second of Sequence's three scan-time FSMs.  It walks colon- or
hyphen-separated groups of hexadecimal digits in a single forward pass
and classifies the run as a MAC address (exactly six two-digit groups) or
an IPv6 address (up to eight groups of one to four digits, with at most
one ``::`` zero-compression, optionally ending in an embedded dotted-quad
IPv4).  Runs that fit neither shape are left for the general FSM, which
will treat them as literals.
"""

from __future__ import annotations

from repro.scanner.token_types import TokenType

__all__ = ["HexFSM"]

_HEX = set("0123456789abcdefABCDEF")
_BOUNDARY_OK = set(" \t,;)]}\"'|=<>/")


def _is_hex(c: str) -> bool:
    return c in _HEX


class HexFSM:
    """Single-pass recogniser for MAC and IPv6 tokens."""

    def match(self, s: str, i: int) -> tuple[int, TokenType] | None:
        """Try to match a MAC or IPv6 address starting at *i*.

        Returns ``(end, token_type)`` or ``None``.  The match must end at
        a token boundary (whitespace, end of string, or closing
        punctuation) so prefixes of larger words are never claimed.
        """
        n = len(s)
        if i >= n or not (_is_hex(s[i]) or s.startswith("::", i)):
            return None

        groups: list[int] = []  # lengths of hex-digit groups
        seps: list[str] = []
        double_colon = False
        j = i

        if s.startswith("::", i):
            double_colon = True
            groups.append(0)
            j = i + 2

        while j < n:
            # read one hex group
            g = j
            while g < n and _is_hex(s[g]) and g - j < 4:
                g += 1
            if g == j:
                break
            # group longer than 4 hex digits fits neither shape
            if g < n and _is_hex(s[g]):
                return None
            groups.append(g - j)
            j = g
            if j < n and s[j] in ":-":
                if s.startswith("::", j):
                    if double_colon:
                        return None  # at most one zero-compression
                    double_colon = True
                    seps.append("::")
                    j += 2
                    if j >= n or not _is_hex(s[j]):
                        # trailing '::' (e.g. "fe80::"): the compression
                        # stands for at least one zero group
                        groups.append(0)
                        return self._classify(s, i, j, groups, seps, double_colon)
                else:
                    seps.append(s[j])
                    j += 1
                    if j >= n or not _is_hex(s[j]):
                        return None  # dangling separator
            else:
                break

        return self._classify(s, i, j, groups, seps, double_colon)

    def _classify(
        self,
        s: str,
        start: int,
        end: int,
        groups: list[int],
        seps: list[str],
        double_colon: bool,
    ) -> tuple[int, TokenType] | None:
        if not self._boundary_ok(s, end):
            # allow an embedded IPv4 tail for IPv6 (::ffff:1.2.3.4)
            if end < len(s) and s[end] == "." and double_colon:
                tail = self._ipv4_tail(s, start, end, groups)
                if tail is not None:
                    return tail
            return None

        sep_kinds = set(seps)
        # MAC: six groups of exactly two hex digits, uniform ':' or '-'
        if (
            len(groups) == 6
            and all(g == 2 for g in groups)
            and len(sep_kinds) == 1
            and sep_kinds <= {":", "-"}
            and not double_colon
        ):
            return end, TokenType.MAC

        # IPv6: ':'-separated, 1-4 digit groups; either all eight groups
        # present or a '::' compression; require at least one letter or a
        # compression so plain "12:34:56" stays literal/time territory.
        if "-" not in sep_kinds and len(groups) >= 2:
            full = len(groups) == 8 and not double_colon
            compressed = double_colon and len(groups) <= 8
            text = s[start:end]
            has_alpha = any(c.isalpha() for c in text)
            if (full or compressed) and (has_alpha or double_colon):
                return end, TokenType.IPV6

        return None

    def _ipv4_tail(
        self, s: str, start: int, end: int, groups: list[int]
    ) -> tuple[int, TokenType] | None:
        """Match an embedded IPv4 suffix of an IPv6 address (::ffff:a.b.c.d)."""
        # back up to the start of the final group (it was read as hex but
        # is actually the first IPv4 octet)
        j = end
        dots = 0
        while j < len(s):
            if s[j] == "." and dots < 3:
                dots += 1
                j += 1
                if j >= len(s) or not s[j].isdigit():
                    return None
            elif s[j].isdigit():
                j += 1
            else:
                break
        if dots == 3 and self._boundary_ok(s, j):
            return j, TokenType.IPV6
        return None

    @staticmethod
    def _boundary_ok(s: str, j: int) -> bool:
        if j >= len(s):
            return True
        return s[j] in _BOUNDARY_OK

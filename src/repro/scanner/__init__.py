"""Tokenisation substrate (the *Sequence* scanner).

The scanner turns a raw log message into a sequence of typed tokens in a
single pass, using three finite state machines (datetime, hexadecimal,
general text/number) exactly as the seminal Sequence tool does, plus the
Sequence-RTG additions:

* ``is_space_before`` on every token so the original spacing can be
  reconstructed exactly (paper §III, "Addressing Whitespace Management
  issues in Tokenisation");
* multi-line truncation with an ignore-rest marker (paper §III,
  "Handling Multi-Line Messages Properly");
* optional future-work extensions — single-digit time parts and a fourth
  FSM for filesystem paths (paper §VI) — disabled by default to match the
  published behaviour.

Two interchangeable backends implement the tokeniser —
:class:`Scanner`, the reference character-by-character FSM cascade, and
:class:`~repro.scanner.compiled.CompiledScanner`, a regex-program
rewrite with bit-identical output — selected by
:attr:`ScannerConfig.backend` through :func:`build_scanner`.
"""

from repro.scanner.scanner import (
    SCANNER_BACKENDS,
    ScannedMessage,
    Scanner,
    ScannerConfig,
)
from repro.scanner.token_types import Token, TokenType

__all__ = [
    "Scanner",
    "ScannerConfig",
    "ScannedMessage",
    "SCANNER_BACKENDS",
    "Token",
    "TokenType",
    "build_scanner",
]


def build_scanner(config: ScannerConfig | None = None) -> Scanner:
    """Construct the scanner backend *config* selects.

    ``"fsm"`` (the default) is the reference FSM cascade; ``"compiled"``
    is the regex-program backend.  Both emit bit-identical token
    streams; the compiled one trades a little import/compile time for
    much higher per-message throughput.
    """
    config = config or ScannerConfig()
    if config.backend not in SCANNER_BACKENDS:
        # config validates at construction, but the field is mutable —
        # an unknown value must fail loudly here, not silently fall
        # back to the reference backend
        raise ValueError(
            f"unknown scanner backend {config.backend!r}; "
            f"valid choices: {', '.join(SCANNER_BACKENDS)}"
        )
    if config.backend == "compiled":
        # imported lazily so the default path never pays the regex
        # compilation of a backend it does not use
        from repro.scanner.compiled import CompiledScanner

        return CompiledScanner(config)
    return Scanner(config)

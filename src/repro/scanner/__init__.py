"""Tokenisation substrate (the *Sequence* scanner).

The scanner turns a raw log message into a sequence of typed tokens in a
single pass, using three finite state machines (datetime, hexadecimal,
general text/number) exactly as the seminal Sequence tool does, plus the
Sequence-RTG additions:

* ``is_space_before`` on every token so the original spacing can be
  reconstructed exactly (paper §III, "Addressing Whitespace Management
  issues in Tokenisation");
* multi-line truncation with an ignore-rest marker (paper §III,
  "Handling Multi-Line Messages Properly");
* optional future-work extensions — single-digit time parts and a fourth
  FSM for filesystem paths (paper §VI) — disabled by default to match the
  published behaviour.
"""

from repro.scanner.scanner import ScannedMessage, Scanner, ScannerConfig
from repro.scanner.token_types import Token, TokenType

__all__ = ["Scanner", "ScannerConfig", "ScannedMessage", "Token", "TokenType"]

"""Duplicate-aware fast lane for the scan→parse hot path.

Every message in the production workflow pays scan + parse (§IV: 70–100M
messages/day), and real log streams are massively repetitive.  This
module exploits that redundancy with three cooperating layers:

1. **Batch dedup** (:meth:`FastPath.scan_group`) — identical
   ``(service, message)`` pairs inside one batch are scanned once and
   carry a multiplicity, which the pipeline folds into match counts and
   — via weighted trie insertion — into pattern support.  The analysis
   output is *byte-identical* to the naive per-occurrence path because
   trie construction only depends on the first-occurrence order of
   distinct messages plus their counts (asserted by the equivalence
   tests, not assumed).
2. **Bounded LRU scan cache** — ``(service, message) → ScannedMessage``
   across batches.  Scanning is deterministic and the scanned object is
   treated as immutable by every consumer, so one cached object can be
   shared freely.
3. **Bounded LRU match caches, one per service** — keyed by a
   *token signature* (the tuple of ``(text, type)`` pairs), so two raw
   messages that tokenise identically — e.g. differing only in
   whitespace or in truncated multi-line remainders — share one parse
   outcome, including negative ("no pattern matches") outcomes.  A match
   cache is only valid for one generation of the service's pattern set:
   every :meth:`repro.parser.parser.Parser.add_pattern` bumps the
   parser's ``version`` and the cache self-invalidates on the next
   lookup.  :meth:`FastPath.invalidate_service` additionally drops a
   service's cache eagerly when its parser is replaced wholesale.  The
   pipeline consults this cache only for messages the scan cache served
   (recurring ones): a fresh message would pay the signature cost for a
   guaranteed miss, which is what would slow all-unique streams down.

Match outcomes are fully determined by the ``(text, type)`` sequence:
enrichment, variable acceptance and field extraction only ever read
token text and type, never positions or spacing flags.

All counters (hits / misses / evictions per cache, dedup savings) are
cumulative; the pipeline snapshots them before and after a batch and
publishes the per-batch delta as ``BatchResult.cache``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.scanner.scanner import ScannedMessage, Scanner

__all__ = [
    "LRUCache",
    "FastPath",
    "PatternJournal",
    "JournalEntry",
    "token_signature",
]

#: Sentinel distinguishing "not cached" from a cached negative outcome.
_MISS = object()


def token_signature(tokens) -> tuple:
    """Hashable signature of a token sequence for match caching.

    Two messages with equal signatures are guaranteed to produce the
    same :class:`~repro.parser.parser.MatchResult` (or the same miss)
    against *any* parser backend: matching depends only on token texts
    and types, and the version-pinned caches built on this key work
    unchanged whichever implementation serves a service because every
    backend bumps ``Parser.version`` identically.  Types are keyed by
    their value string — strings cache their hash, the Python-level
    ``Enum.__hash__`` does not, and this tuple is hashed on every cache
    probe.
    """
    return tuple([(t.text, t.type._value_) for t in tokens])


class LRUCache:
    """Bounded least-recently-used map with hit/miss/eviction counters.

    ``maxsize`` must be positive; callers model "cache disabled" by not
    constructing one.  :meth:`clear` empties the entries but keeps the
    counters — invalidation is part of a cache's life, not a reset of
    its telemetry.
    """

    __slots__ = ("maxsize", "hits", "misses", "evictions", "_data")

    def __init__(self, maxsize: int) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def get(self, key, default=None):
        """Return the cached value (marking it most recent) or *default*."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        """Insert or refresh an entry, evicting the oldest when full."""
        data = self._data
        if key in data:
            data[key] = value
            data.move_to_end(key)
            return
        if len(data) >= self.maxsize:
            data.popitem(last=False)
            self.evictions += 1
        data[key] = value

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        self._data.clear()


@dataclass(slots=True, frozen=True)
class JournalEntry:
    """One pattern-set addition, stamped with its journal sequence."""

    seq: int
    service: str
    pattern: dict  # Pattern.to_dict()
    #: worker index that discovered the pattern, or None for parent-side
    #: additions (imports, promotions, pre-seeded databases)
    origin: int | None = None


class PatternJournal:
    """Append-only log of pattern-set growth with a monotone cursor.

    The pattern-set *version* primitive behind delta sync: every pattern
    that enters the shared database is appended exactly once, and
    :attr:`head` — the number of entries so far — only ever grows.  A
    consumer (one persistent worker, say) remembers the head it last
    synced to and asks :meth:`since` for everything after it; shipping
    those entries and advancing the cursor to the current head is a
    complete, O(new patterns) synchronisation, however many batches the
    consumer slept through.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: list[JournalEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def head(self) -> int:
        """Cursor just past the newest entry (monotonically increasing)."""
        return len(self._entries)

    def append(self, service: str, pattern: dict, origin: int | None = None) -> int:
        """Record one pattern addition; returns the new head cursor."""
        self._entries.append(
            JournalEntry(
                seq=len(self._entries), service=service,
                pattern=pattern, origin=origin,
            )
        )
        return len(self._entries)

    def since(self, cursor: int) -> list[JournalEntry]:
        """Entries appended after *cursor* (a previously observed head)."""
        if cursor < 0:
            raise ValueError(f"cursor must be >= 0, got {cursor}")
        return self._entries[cursor:]

    def lag(self, cursor: int) -> int:
        """Entries a consumer at *cursor* has not yet synced.

        The pool's cursor-lag gauge (``rtg_journal_lag``): how far a
        worker's pattern view trailed the journal head when its shard
        was dispatched.
        """
        if cursor < 0:
            raise ValueError(f"cursor must be >= 0, got {cursor}")
        return max(0, len(self._entries) - cursor)


@dataclass(slots=True)
class _ServiceMatchCache:
    """Match LRU of one service, pinned to one parser generation."""

    lru: LRUCache
    parser: object
    version: int


class FastPath:
    """Scan/match caching and batch dedup state of one pipeline instance.

    Not shared across processes: each :class:`~repro.core.pipeline.SequenceRTG`
    owns one, exactly like its parser cache.
    """

    def __init__(self, scan_cache_size: int, match_cache_size: int) -> None:
        self._scan = LRUCache(scan_cache_size) if scan_cache_size > 0 else None
        self._match_size = match_cache_size
        self._match: dict[str, _ServiceMatchCache] = {}
        # counters of caches retired by invalidate_service(), so the
        # cumulative snapshot never goes backwards
        self._retired_hits = 0
        self._retired_misses = 0
        self._retired_evictions = 0
        self.dedup_unique = 0
        self.dedup_duplicates = 0

    # -- scanning --------------------------------------------------------
    def scan(self, scanner: Scanner, service: str, message: str) -> ScannedMessage:
        """Scan through the LRU cache (or directly when disabled)."""
        cache = self._scan
        if cache is None:
            return scanner.scan(message, service=service)
        key = (service, message)
        scanned = cache.get(key)
        if scanned is None:
            scanned = scanner.scan(message, service=service)
            cache.put(key, scanned)
        return scanned

    def scan_group(
        self, scanner: Scanner, service: str, group
    ) -> tuple[list[ScannedMessage], list[int], list[bool]]:
        """Dedup one service group and scan each distinct message once.

        Returns the distinct scanned messages in first-occurrence order,
        their multiplicities — the exact information the weighted
        analysis path needs to reproduce the per-occurrence result — and
        a per-message flag saying whether the scan came from the cache.
        The pipeline uses the flags to consult the match cache only for
        recurring messages, keeping the fast lane free on all-unique
        streams (a cache-hit message skips the whole scanner FSM, which
        pays for the match-signature lookup many times over; a fresh
        message would pay the signature for nothing).
        """
        index: dict[str, int] = {}
        scanned: list[ScannedMessage] = []
        counts: list[int] = []
        cached: list[bool] = []
        lru = self._scan
        for record in group:
            i = index.get(record.message)
            if i is not None:
                counts[i] += 1
                continue
            message = record.message
            index[message] = len(scanned)
            if lru is None:
                hit = None
            else:
                key = (service, message)
                hit = lru.get(key)
            if hit is None:
                hit = scanner.scan(message, service=service)
                if lru is not None:
                    lru.put(key, hit)
                cached.append(False)
            else:
                cached.append(True)
            scanned.append(hit)
            counts.append(1)
        self.dedup_unique += len(scanned)
        self.dedup_duplicates += len(group) - len(scanned)
        return scanned, counts, cached

    # -- matching --------------------------------------------------------
    def match(self, service: str, parser, scanned: ScannedMessage):
        """Match through the per-service LRU, validated against the
        parser's pattern-set version."""
        if self._match_size <= 0:
            return parser.match(scanned)
        entry = self._match.get(service)
        if entry is None:
            entry = _ServiceMatchCache(
                LRUCache(self._match_size), parser, parser.version
            )
            self._match[service] = entry
        elif entry.parser is not parser or entry.version != parser.version:
            # the pattern set changed (or the parser was replaced
            # wholesale): every cached outcome, positive or negative,
            # may now be wrong
            entry.lru.clear()
            entry.parser = parser
            entry.version = parser.version
        sig = token_signature(scanned.tokens)
        result = entry.lru.get(sig, _MISS)
        if result is not _MISS:
            return result
        result = parser.match(scanned)
        entry.lru.put(sig, result)
        return result

    # -- invalidation ----------------------------------------------------
    def invalidate_service(self, service: str) -> None:
        """Drop one service's match cache (its parser was replaced).

        The scan cache is untouched: scanning does not depend on the
        pattern set.
        """
        entry = self._match.pop(service, None)
        if entry is not None:
            self._retired_hits += entry.lru.hits
            self._retired_misses += entry.lru.misses
            self._retired_evictions += entry.lru.evictions

    def invalidate_all(self) -> None:
        """Drop every match cache (after external DB mutation)."""
        for service in list(self._match):
            self.invalidate_service(service)

    # -- telemetry -------------------------------------------------------
    @staticmethod
    def snapshot_delta(
        before: dict[str, int], after: dict[str, int]
    ) -> dict[str, int]:
        """Per-batch counter delta between two :meth:`snapshot` calls.

        A counter present only in *after* (a key gained mid-batch, e.g.
        by a newer telemetry field) deltas against zero instead of
        raising ``KeyError``.
        """
        return {k: v - before.get(k, 0) for k, v in after.items()}

    def snapshot(self) -> dict[str, int]:
        """Cumulative counters; diff two snapshots for per-batch telemetry."""
        scan = self._scan
        match_hits = self._retired_hits
        match_misses = self._retired_misses
        match_evictions = self._retired_evictions
        for entry in self._match.values():
            match_hits += entry.lru.hits
            match_misses += entry.lru.misses
            match_evictions += entry.lru.evictions
        return {
            "scan_hits": scan.hits if scan else 0,
            "scan_misses": scan.misses if scan else 0,
            "scan_evictions": scan.evictions if scan else 0,
            "match_hits": match_hits,
            "match_misses": match_misses,
            "match_evictions": match_evictions,
            "dedup_unique": self.dedup_unique,
            "dedup_duplicates": self.dedup_duplicates,
        }

"""The ``stream`` execution mode: micro-batches over the deferred engine.

Batch mode (the paper's workflow) holds records until ``batch_size`` has
accumulated and mines each batch to completion — fine for throughput,
but the batch barrier caps tail latency for interactive consumers: a
message arriving right after a batch closed waits a whole accumulation
period before its match statistics (let alone new patterns) exist.

Stream mode removes the barrier with two clocks instead of one:

* **micro-batches** (1..N records, flush-on-timeout) run the engine's
  scan → parse → persist-match-stats path immediately, so per-message
  latency is bounded by ``micro_batch_size``/``micro_batch_timeout_s``
  and reported as a p99 histogram;
* **flushes** mine the evolving analysis state the deferred
  :class:`~repro.core.engine.AnalyzeStage` accumulates across
  micro-batches, once enough unmatched evidence is pending (or a
  partition hits its memory bound, or the flush interval elapses).

Mining on less-than-a-batch evidence drifts: early flushes see few
distinct values per variable position and mine overly *specific*
patterns (USTEP, arXiv:2304.12331, hits the same effect with its
evolving search tree).  :meth:`StreamDriver.flush` therefore runs three
maintenance passes that keep the online pattern set converging toward
what batch mode would have mined:

* **drift merge** — a newly mined, more general pattern subsumes stored
  specific ones (their examples all match it); the specifics retire and
  their counts/examples fold into the general pattern;
* **drift split** — a pattern variable observed with exactly one
  distinct value across many matches (tracked by
  :class:`ValueDriftTracker`) folds back to a static constant;
* **TTL eviction** — patterns whose ``last_matched`` date fell behind
  ``pattern_ttl_days`` are deleted, bounding the pattern set under
  workload churn.

All three mutate the pattern set incrementally — DB delete + in-place
:meth:`~repro.parser.parser.Parser.remove_patterns`/
``add_pattern`` — and stay cache-safe because the parser version is
strictly monotone across removals (see
:meth:`repro.core.pipeline.SequenceRTG.retire_patterns`).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from datetime import datetime
from typing import TYPE_CHECKING

from repro.analyzer.pattern import Pattern, PatternToken, VarClass
from repro.core.engine import BatchResult
from repro.core.records import LogRecord
from repro.parser.parser import Parser

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.pipeline import SequenceRTG

__all__ = ["StreamDriver", "StreamStats", "ValueDriftTracker"]

#: Variable classes drift splitting never folds to a constant: times
#: recur by value without being structure, and ignore-rest swallows
#: arbitrary tails.
_NEVER_SPLIT = (VarClass.TIME, VarClass.REST)


class _FieldTrack:
    """Value distribution of one pattern variable."""

    __slots__ = ("values", "count", "overflow")

    def __init__(self) -> None:
        self.values: set[str] = set()
        self.count = 0
        self.overflow = False


class ValueDriftTracker:
    """Per-(pattern, variable) value distributions from live matches.

    The :class:`~repro.core.engine.ParseStage` feeds every hit's
    extracted fields through :meth:`observe`; the driver's flush asks
    :meth:`split_candidates` for variables that saw exactly one distinct
    value across at least ``min_matches`` occurrences — the over-general
    positions drift splitting folds back to constants.

    Memory is bounded per variable (``max_values`` distinct values, then
    the track overflows and only counts); the tracked-pattern population
    is bounded by the live pattern set, since retired ids are
    :meth:`discard`-ed.
    """

    def __init__(self, max_values: int = 8) -> None:
        self.max_values = max_values
        #: pattern id -> (pattern, variable name -> track)
        self._tracks: dict[str, tuple[Pattern, dict[str, _FieldTrack]]] = {}

    def __len__(self) -> int:
        return len(self._tracks)

    def observe(
        self, pattern_id: str, pattern: Pattern, fields: dict[str, str], n: int
    ) -> None:
        """Record one match's variable bindings (*n* occurrences)."""
        entry = self._tracks.get(pattern_id)
        if entry is None:
            names: dict[str, _FieldTrack] = {}
            for tok in pattern.tokens:
                if (
                    tok.is_variable
                    and tok.name
                    and tok.var_class not in _NEVER_SPLIT
                ):
                    names[tok.name] = _FieldTrack()
            entry = self._tracks[pattern_id] = (pattern, names)
        for name, track in entry[1].items():
            value = fields.get(name)
            if value is None:
                continue
            track.count += n
            if track.overflow:
                continue
            track.values.add(value)
            if len(track.values) > self.max_values:
                track.overflow = True
                track.values.clear()

    def split_candidates(
        self, min_matches: int
    ) -> list[tuple[str, Pattern, str, str]]:
        """``(pattern id, pattern, variable name, the one value)`` of
        every variable stuck on a single value for *min_matches*+
        occurrences.  At most one candidate per pattern — a split
        produces a new pattern whose remaining variables are tracked
        afresh, so further folds happen on later flushes."""
        out: list[tuple[str, Pattern, str, str]] = []
        for pid, (pattern, tracks) in self._tracks.items():
            for name, track in tracks.items():
                if (
                    not track.overflow
                    and track.count >= min_matches
                    and len(track.values) == 1
                ):
                    out.append((pid, pattern, name, next(iter(track.values))))
                    break
        return out

    def discard(self, pattern_id: str) -> None:
        """Forget a retired pattern's tracks."""
        self._tracks.pop(pattern_id, None)


@dataclass(slots=True)
class StreamStats:
    """Cumulative counters of one :class:`StreamDriver`'s lifetime."""

    n_messages: int = 0
    n_matched: int = 0
    n_micro_batches: int = 0
    n_flushes: int = 0
    n_new_patterns: int = 0
    n_evicted: int = 0
    n_drift_merges: int = 0
    n_drift_splits: int = 0


class StreamDriver:
    """Drive per-record input through the deferred engine.

    Records enter through :meth:`offer` (or :meth:`feed`); full
    micro-batches process immediately, partial ones when :meth:`poll`
    sees the micro-batch timeout expire.  Flush triggers are evaluated
    after every micro-batch; :meth:`close` drains everything.

    *clock* is injectable (monotonic seconds) so timeout/interval
    behaviour is testable without sleeping; the DB timestamp is the
    *now* passed alongside records, exactly as in batch mode.
    """

    def __init__(self, rtg: "SequenceRTG", clock=time.monotonic) -> None:
        if rtg.config.mode != "stream":
            raise ValueError(
                "StreamDriver requires RTGConfig.mode == 'stream', got "
                f"{rtg.config.mode!r}"
            )
        self.rtg = rtg
        self.config = rtg.config.streaming
        self.clock = clock
        self.stats = StreamStats()
        #: per-message latency samples (seconds), most recent
        #: ``latency_window`` messages
        self.latencies: deque[float] = deque(maxlen=self.config.latency_window)
        self._buffer: list[LogRecord] = []
        self._buffer_at: float | None = None
        self._last_flush = clock()
        self._now: datetime | None = None
        self._closed = False
        registry = rtg.metrics if rtg.config.enable_metrics else None
        if registry is not None:
            from repro.obs.observer import METRIC_HELP

            self._latency_hist = registry.histogram(
                "rtg_stream_message_latency_seconds",
                METRIC_HELP["rtg_stream_message_latency_seconds"],
            )
            self._flush_counter = registry.counter(
                "rtg_stream_flushes_total",
                METRIC_HELP["rtg_stream_flushes_total"],
            )
            self._evict_counter = registry.counter(
                "rtg_stream_evictions_total",
                METRIC_HELP["rtg_stream_evictions_total"],
            )
            self._drift_counter = registry.counter(
                "rtg_stream_drift_total",
                METRIC_HELP["rtg_stream_drift_total"],
            )
        else:
            self._latency_hist = None
            self._flush_counter = None
            self._evict_counter = None
            self._drift_counter = None

    # -- ingestion -------------------------------------------------------
    @property
    def pending(self) -> int:
        """Distinct unmatched messages awaiting a flush."""
        return self.rtg.engine.analyze_stage.evolving.pending_messages

    def offer(self, record: LogRecord, now: datetime | None = None) -> None:
        """Buffer one record; process when the micro-batch fills."""
        if self._closed:
            raise RuntimeError("StreamDriver is closed")
        if now is not None:
            self._now = now
        if self._buffer_at is None:
            self._buffer_at = self.clock()
        self._buffer.append(record)
        if len(self._buffer) >= self.config.micro_batch_size:
            self._process()

    def feed(self, records, now: datetime | None = None) -> None:
        """Offer every record of an iterable."""
        for record in records:
            self.offer(record, now=now)

    def poll(self) -> None:
        """Run the wall-clock triggers: micro-batch timeout, flush interval.

        Call this whenever input is idle (the CLI does between reads);
        a full micro-batch or flush condition never waits on it.
        """
        at = self.clock()
        if (
            self._buffer
            and self._buffer_at is not None
            and at - self._buffer_at >= self.config.micro_batch_timeout_s
        ):
            self._process()
        if (
            self.pending
            and at - self._last_flush >= self.config.flush_interval_s
        ):
            self.flush("interval")

    def close(self) -> BatchResult | None:
        """Drain the buffer, run a final flush, seal the driver."""
        if self._closed:
            return None
        result = None
        if self._buffer:
            self._process()
        if self.pending:
            result = self.flush("close")
        self._closed = True
        return result

    # -- processing ------------------------------------------------------
    def _process(self) -> None:
        batch = self._buffer
        self._buffer = []
        self._buffer_at = None
        began = self.clock()
        result = self.rtg.engine.run(batch, now=self._now)
        per_message = (self.clock() - began) / len(batch)
        stats = self.stats
        stats.n_messages += len(batch)
        stats.n_matched += result.n_matched
        stats.n_micro_batches += 1
        hist = self._latency_hist
        for _ in batch:
            self.latencies.append(per_message)
            if hist is not None:
                hist.observe(per_message)
        self._maybe_flush()

    def _maybe_flush(self) -> None:
        evolving = self.rtg.engine.analyze_stage.evolving
        if evolving.pending_messages >= self.config.flush_pending:
            self.flush("pending")
        elif evolving.over_partition_bound:
            self.flush("partition_bound")
        elif (
            evolving.pending_messages
            and self.clock() - self._last_flush >= self.config.flush_interval_s
        ):
            self.flush("interval")

    def flush(self, trigger: str = "manual") -> BatchResult:
        """Mine everything pending, then run drift/TTL maintenance."""
        result = self.rtg.engine.flush(now=self._now)
        self._last_flush = self.clock()
        self.stats.n_flushes += 1
        self.stats.n_new_patterns += result.n_new_patterns
        if self._flush_counter is not None:
            self._flush_counter.inc(trigger=trigger)
        self._maintain(result)
        return result

    # -- maintenance -----------------------------------------------------
    def _maintain(self, result: BatchResult) -> None:
        if self.config.drift_merge and result.new_patterns:
            self._drift_merge(result.new_patterns)
        if self.config.drift_split:
            tracker = self.rtg.engine.field_tracker
            if tracker is not None:
                self._drift_split(tracker)
        if self.config.pattern_ttl_days > 0:
            self._evict_stale()

    def _drift_merge(self, new_patterns: list[Pattern]) -> None:
        """Retire stored patterns a newly mined general pattern subsumes.

        Subsumption is checked against evidence, not structure: an old
        pattern of the same service and token length, strictly fewer
        variables, whose *every* stored example matches a single-pattern
        probe parser built from the new pattern.  The old pattern's
        match count and examples fold into the new one before it
        retires, so no statistics are lost.
        """
        rtg = self.rtg
        by_service: dict[str, list[Pattern]] = {}
        for pattern in new_patterns:
            if pattern.n_variables > 0:
                by_service.setdefault(pattern.service, []).append(pattern)
        for service, generals in by_service.items():
            rows = rtg.db.rows(service=service)
            retired: set[str] = set()
            for general in generals:
                probe = Parser([general])
                general_id = general.id
                for row in rows:
                    if (
                        row.id == general_id
                        or row.id in retired
                        or not row.examples
                    ):
                        continue
                    old = row.to_pattern()
                    if (
                        len(old.tokens) != len(general.tokens)
                        or old.n_variables >= general.n_variables
                    ):
                        continue
                    if not all(
                        probe.match(rtg.scanner.scan(example, service=service))
                        is not None
                        for example in row.examples
                    ):
                        continue
                    rtg.db.record_match(general_id, n=row.match_count, now=self._now)
                    for example in row.examples:
                        rtg.db.add_example(general_id, example)
                    retired.add(row.id)
            if retired:
                rtg.retire_patterns(service, retired)
                self.stats.n_drift_merges += len(retired)
                if self._drift_counter is not None:
                    self._drift_counter.inc(len(retired), event="merge")

    def _drift_split(self, tracker: ValueDriftTracker) -> None:
        """Fold single-valued variables back to constants.

        A variable that matched ``split_min_matches`` occurrences with
        exactly one distinct value is over-general — the miner saw too
        few messages at discovery time to know the position was static.
        The pattern retires and a folded copy (variable → constant)
        inherits its count and the examples containing the value.
        """
        rtg = self.rtg
        for pid, pattern, name, value in tracker.split_candidates(
            self.config.split_min_matches
        ):
            service = pattern.service
            row = next(
                (r for r in rtg.db.rows(service=service) if r.id == pid), None
            )
            if row is None:
                tracker.discard(pid)
                continue
            folded_tokens = [
                PatternToken.static(value, is_space_before=tok.is_space_before)
                if tok.is_variable and tok.name == name
                else tok
                for tok in pattern.tokens
            ]
            folded = Pattern(
                tokens=folded_tokens,
                service=service,
                support=row.match_count,
                examples=[e for e in row.examples if value in e],
            )
            rtg.retire_patterns(service, [pid])
            rtg.add_known_pattern(folded, now=self._now)
            self.stats.n_drift_splits += 1
            if self._drift_counter is not None:
                self._drift_counter.inc(event="split")

    def _evict_stale(self) -> None:
        """TTL eviction off the ``last_matched`` dates the DB tracks."""
        stale = self.rtg.db.stale_patterns(
            self.config.pattern_ttl_days, now=self._now
        )
        if not stale:
            return
        by_service: dict[str, list[str]] = {}
        for service, pid in stale:
            by_service.setdefault(service, []).append(pid)
        for service, ids in by_service.items():
            self.rtg.retire_patterns(service, ids)
            self.stats.n_evicted += len(ids)
            if self._evict_counter is not None:
                self._evict_counter.inc(len(ids), service=service)

    # -- latency report --------------------------------------------------
    def latency_quantile(self, q: float) -> float:
        """The *q*-quantile (0..1) of recent per-message latencies."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        return ordered[min(len(ordered) - 1, int(q * len(ordered)))]

    def p99(self) -> float:
        return self.latency_quantile(0.99)

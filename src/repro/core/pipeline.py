"""The ``AnalyzeByService`` pipeline (paper Fig. 2) and legacy ``Analyze``.

Workflow, stage by stage, exactly as the paper draws it:

1. **Partition by service** — "a first partitioning of the data which
   groups the log records into subsets by service";
2. **Scan** — tokenize the messages of each service group;
3. **Parse known** — "these scanned messages are then sent to the
   Sequence parser to see if they match an already known pattern.  If a
   match is found the last matched date and the number of examples ...
   are adjusted accordingly and no further processing occurs";
4. **Partition by token count** — "a second partitioning of these
   unmatched messages occurs based on count of tokens in the set.  Only
   token sets of the same length are compared in the same analysis trie";
5. **Analyse** — mine new patterns per partition;
6. **Persist** — "the newly found patterns are eventually saved in the
   database for comparison against subsequent batches and exporting."

``analyze_legacy`` reproduces the seminal single-trie ``Analyze`` method
for the Fig. 5 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime

from repro.analyzer.analyzer import Analyzer, LegacyAnalyzer
from repro.analyzer.pattern import Pattern
from repro.core.config import RTGConfig
from repro.core.fastpath import FastPath
from repro.core.patterndb import PatternDB
from repro.core.records import LogRecord
from repro.parser.parser import Parser
from repro.scanner.scanner import ScannedMessage, Scanner
from repro._util.timers import StageTimer

__all__ = ["SequenceRTG", "BatchResult"]


@dataclass(slots=True)
class BatchResult:
    """Telemetry of one ``analyze_by_service`` execution."""

    n_records: int = 0
    n_services: int = 0
    n_matched: int = 0  # parsed against already-known patterns
    n_unmatched: int = 0  # sent on to the analyser
    n_partitions: int = 0  # (service, token count) analysis partitions
    n_new_patterns: int = 0  # newly discovered and persisted
    n_below_threshold: int = 0  # discovered but under the save threshold
    max_trie_nodes: int = 0  # memory telemetry (largest analysis trie)
    timings: dict[str, float] = field(default_factory=dict)
    #: fast-lane effectiveness for this batch: scan/match cache hits,
    #: misses and evictions plus dedup savings (empty when the fast lane
    #: is disabled) — see :meth:`repro.core.fastpath.FastPath.snapshot`
    cache: dict[str, int] = field(default_factory=dict)
    #: worker-pool telemetry for this batch (empty for in-process runs):
    #: workers used, spawns/respawns, delta-sync and replay payloads —
    #: see :class:`repro.core.parallel.PersistentParallelSequenceRTG`
    pool: dict[str, int] = field(default_factory=dict)
    new_patterns: list[Pattern] = field(default_factory=list)

    @property
    def matched_fraction(self) -> float:
        return self.n_matched / self.n_records if self.n_records else 0.0


class SequenceRTG:
    """Production-ready pattern miner (the paper's contribution).

    A :class:`SequenceRTG` instance owns one scanner, one pattern
    database and a per-service parser cache.  ``analyze_by_service``
    processes one batch; :meth:`process_stream` drives batches from an
    ingester for continuous operation.
    """

    def __init__(
        self, db: PatternDB | None = None, config: RTGConfig | None = None
    ) -> None:
        self.config = config or RTGConfig()
        self.db = db or PatternDB(max_examples=self.config.max_examples)
        self.scanner = Scanner(self.config.scanner)
        self._parsers: dict[str, Parser] = {}
        self.fastpath = FastPath(
            self.config.scan_cache_size, self.config.match_cache_size
        )

    # ------------------------------------------------------------------
    def parser_for(self, service: str) -> Parser:
        """Parser over the known patterns of *service* (cached)."""
        parser = self._parsers.get(service)
        if parser is None:
            parser = Parser(self.db.load_service(service))
            self._parsers[service] = parser
        return parser

    def invalidate_parsers(self) -> None:
        """Drop every cached parser (after external DB mutation)."""
        for service in list(self._parsers):
            self.invalidate_service(service)

    def invalidate_service(self, service: str) -> None:
        """Drop one service's parser and match cache (after that
        service's patterns were mutated outside this instance)."""
        self._parsers.pop(service, None)
        self.fastpath.invalidate_service(service)

    def add_known_pattern(self, pattern: Pattern, now: datetime | None = None) -> str:
        """Persist *pattern* and extend the service's parser in place.

        The incremental alternative to mutating the DB externally and
        calling :meth:`invalidate_service`: the cached parser (if any)
        learns the pattern without a from-scratch rebuild, and its
        version bump invalidates the service's match cache lazily.
        Returns the pattern id.
        """
        pid = self.db.upsert(pattern, now=now)
        parser = self._parsers.get(pattern.service)
        if parser is not None:
            parser.add_pattern(pattern)
        return pid

    # ------------------------------------------------------------------
    def analyze_by_service(
        self, records: list[LogRecord], now: datetime | None = None
    ) -> BatchResult:
        """Run the Fig. 2 workflow over one batch of records.

        With ``RTGConfig.enable_fastpath`` (the default) the scan→parse
        stages run through the duplicate-aware fast lane: identical
        messages are scanned and parsed once per batch (and cached
        across batches), with multiplicities folded into match counts
        and — via weighted trie insertion — into pattern support.  The
        mined output is identical either way; ``result.cache`` reports
        the lane's effectiveness.
        """
        result = BatchResult(n_records=len(records))
        timer = StageTimer()
        lane = self.fastpath if self.config.enable_fastpath else None
        cache_before = lane.snapshot() if lane is not None else None
        example_cap = self.db.max_examples

        # 1. first partitioning: group by service
        with timer.stage("partition_service"):
            by_service: dict[str, list[LogRecord]] = {}
            for record in records:
                by_service.setdefault(record.service, []).append(record)
        result.n_services = len(by_service)

        analyzer = Analyzer(self.config.analyzer)
        for service, group in by_service.items():
            # 2. scan (deduplicated: one scan per distinct message)
            with timer.stage("scan"):
                if lane is not None:
                    scanned, counts, from_cache = lane.scan_group(
                        self.scanner, service, group
                    )
                else:
                    scanned = [
                        self.scanner.scan(r.message, service=service) for r in group
                    ]
                    counts = None
                    from_cache = None

            # 3. parse against already known patterns
            parser = self.parser_for(service)
            unmatched: list[ScannedMessage] = []
            unmatched_counts: list[int] = []
            with timer.stage("parse"):
                match_counts: dict[str, int] = {}
                match_examples: dict[str, list[str]] = {}
                have_patterns = len(parser) > 0
                for i, msg in enumerate(scanned):
                    n = 1 if counts is None else counts[i]
                    if have_patterns:
                        # the match cache is only worth its signature
                        # cost for messages that recur across batches —
                        # exactly the ones the scan cache already served
                        hit = (
                            lane.match(service, parser, msg)
                            if from_cache is not None and from_cache[i]
                            else parser.match(msg)
                        )
                    else:
                        hit = None
                    if hit is None:
                        unmatched.append(msg)
                        unmatched_counts.append(n)
                    else:
                        pid = hit.pattern.id
                        match_counts[pid] = match_counts.get(pid, 0) + n
                        examples = match_examples.setdefault(pid, [])
                        # accumulate only what the DB can store: the
                        # first `max_examples` distinct originals
                        if (
                            len(examples) < example_cap
                            and msg.original not in examples
                        ):
                            examples.append(msg.original)
            with timer.stage("db_update"):
                for pid, n in match_counts.items():
                    self.db.record_match(pid, n=n, now=now)
                    for example in match_examples[pid]:
                        self.db.add_example(pid, example)
            result.n_matched += sum(match_counts.values())
            result.n_unmatched += sum(unmatched_counts)

            # 4. second partitioning: group unmatched by token count
            with timer.stage("partition_length"):
                by_length: dict[int, tuple[list[ScannedMessage], list[int]]] = {}
                for msg, n in zip(unmatched, unmatched_counts):
                    msgs, ns = by_length.setdefault(msg.token_count(), ([], []))
                    msgs.append(msg)
                    ns.append(n)
            result.n_partitions += len(by_length)

            # 5. analyse each partition in its own trie
            for _, (partition, partition_counts) in sorted(by_length.items()):
                with timer.stage("analyze"):
                    patterns = analyzer.analyze(
                        partition,
                        counts=None if counts is None else partition_counts,
                    )
                result.max_trie_nodes = max(
                    result.max_trie_nodes, analyzer.last_trie_nodes
                )
                # 6. persist discovered patterns (save threshold applies)
                with timer.stage("db_save"):
                    for pattern in patterns:
                        pattern.service = service
                        if pattern.support < self.config.save_threshold:
                            result.n_below_threshold += 1
                            continue
                        self.db.upsert(pattern, now=now)
                        # in-place extension; the parser's version bump
                        # invalidates this service's match cache
                        parser.add_pattern(pattern)
                        result.n_new_patterns += 1
                        result.new_patterns.append(pattern)

        result.timings = timer.report()
        if lane is not None:
            after = lane.snapshot()
            result.cache = {k: after[k] - cache_before[k] for k in after}
        return result

    # ------------------------------------------------------------------
    def analyze_legacy(self, records: list[LogRecord]) -> list[Pattern]:
        """Seminal Sequence ``Analyze``: one trie, no partitioning.

        Reproduced for the Fig. 5 comparison.  All services and message
        lengths share a single analysis trie, nothing is parsed against
        known patterns first, and nothing is persisted.
        """
        analyzer = LegacyAnalyzer(None)
        scanned = [self.scanner.scan(r.message, service=r.service) for r in records]
        patterns = analyzer.analyze(scanned)
        self.last_legacy_trie_nodes = analyzer.last_trie_nodes
        return patterns

    # ------------------------------------------------------------------
    def process_stream(self, batches, now: datetime | None = None):
        """Run ``analyze_by_service`` for every batch; yield results.

        *batches* is any iterable of record lists — typically
        :meth:`repro.core.ingest.StreamIngester.batches`.
        """
        for batch in batches:
            yield self.analyze_by_service(batch, now=now)

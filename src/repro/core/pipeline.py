"""The ``AnalyzeByService`` front end (paper Fig. 2) and legacy ``Analyze``.

The workflow itself — service partition → scan → parse known → token
count partition → per-trie analyse → persist — lives in
:mod:`repro.core.engine` as explicit stage objects; this module owns the
long-lived miner state those stages operate on (scanner, pattern
database, per-service parser cache, fast lane) and the thin drivers
around the engine.

``analyze_legacy`` reproduces the seminal single-trie ``Analyze`` method
for the Fig. 5 comparison.
"""

from __future__ import annotations

from datetime import datetime
from typing import TYPE_CHECKING

from repro.analyzer.analyzer import LegacyAnalyzer
from repro.analyzer.pattern import Pattern
from repro.core.config import RTGConfig
from repro.core.engine import BatchResult, MiningEngine, drive_stream
from repro.core.fastpath import FastPath
from repro.core.patterndb import PatternDB
from repro.core.records import LogRecord
from repro.obs.metrics import MetricsRegistry
from repro.parser import build_parser
from repro.parser.parser import Parser
from repro.scanner import build_scanner

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.streaming import StreamDriver

__all__ = ["SequenceRTG", "BatchResult"]


class SequenceRTG:
    """Production-ready pattern miner (the paper's contribution).

    A :class:`SequenceRTG` instance owns one scanner, one pattern
    database and a per-service parser cache.  ``analyze_by_service``
    processes one batch on the staged
    :class:`~repro.core.engine.MiningEngine`; :meth:`process_stream`
    drives batches from an ingester for continuous operation.  Extra
    per-stage instrumentation plugs into ``self.engine.observers``
    (see :class:`~repro.core.engine.StageObserver`).
    """

    def __init__(
        self,
        db: PatternDB | None = None,
        config: RTGConfig | None = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.config = config or RTGConfig()
        self.db = db or PatternDB(
            max_examples=self.config.max_examples,
            durable=self.config.db_durable,
        )
        self.scanner = build_scanner(self.config.scanner)
        self._parsers: dict[str, Parser] = {}
        self.fastpath = FastPath(
            self.config.scan_cache_size, self.config.match_cache_size
        )
        #: runtime metrics registry (:mod:`repro.obs`); pool front ends
        #: pass theirs in so the in-process instance shares it
        self.metrics = metrics or MetricsRegistry()
        self.engine = self._build_engine()

    def _build_engine(self) -> MiningEngine:
        """The staged engine, shaped by ``config.mode``.

        ``stream`` defers the analyze stage (absorb now, mine on
        :meth:`flush`) and plugs a
        :class:`~repro.core.streaming.ValueDriftTracker` into the parse
        stage when drift splitting is on; ``batch`` is the paper's
        mine-every-batch workflow.
        """
        if self.config.mode != "stream":
            return MiningEngine(self)
        tracker = None
        if self.config.streaming.drift_split:
            # imported lazily: streaming imports engine types from this
            # package level
            from repro.core.streaming import ValueDriftTracker

            tracker = ValueDriftTracker(
                max_values=self.config.streaming.drift_max_values
            )
        return MiningEngine(self, deferred_analysis=True, field_tracker=tracker)

    # ------------------------------------------------------------------
    def parser_for(self, service: str) -> Parser:
        """Parser over the known patterns of *service* (cached).

        The backend is selected by ``config.parser.backend``; both
        backends produce identical matches, so switching backends never
        changes mined output.
        """
        parser = self._parsers.get(service)
        if parser is None:
            parser = build_parser(
                self.db.load_service(service), self.config.parser
            )
            self._parsers[service] = parser
        return parser

    def invalidate_parsers(self) -> None:
        """Drop every cached parser (after external DB mutation)."""
        for service in list(self._parsers):
            self.invalidate_service(service)

    def invalidate_service(self, service: str) -> None:
        """Drop one service's parser and match cache (after that
        service's patterns were mutated outside this instance)."""
        self._parsers.pop(service, None)
        self.fastpath.invalidate_service(service)

    def add_known_pattern(self, pattern: Pattern, now: datetime | None = None) -> str:
        """Persist *pattern* and extend the service's parser in place.

        The incremental alternative to mutating the DB externally and
        calling :meth:`invalidate_service`: the cached parser (if any)
        learns the pattern without a from-scratch rebuild, and its
        version bump invalidates the service's match cache lazily.
        Returns the pattern id.
        """
        pid = self.db.upsert(pattern, now=now)
        parser = self._parsers.get(pattern.service)
        if parser is not None:
            parser.add_pattern(pattern)
        return pid

    def retire_patterns(self, service: str, ids) -> int:
        """Remove patterns from the DB and the live matching state.

        The removal counterpart of :meth:`add_known_pattern`, used by
        stream-mode drift maintenance and TTL eviction.  The cached
        parser (if any) rebuilds in place with a strictly monotone
        version bump, so the fast lane's version-pinned match cache
        entries for this service go stale rather than being trusted —
        incremental churn never needs a full cache invalidation.  The
        drift tracker (if the engine carries one) forgets the ids too.
        Returns how many patterns the DB actually held.
        """
        ids = list(ids)
        removed = self.db.delete_patterns(ids)
        parser = self._parsers.get(service)
        if parser is not None:
            parser.remove_patterns(ids)
        else:
            # no live parser to rebuild — drop any cached match state so
            # the next parser_for load can't race a stale cache
            self.fastpath.invalidate_service(service)
        tracker = self.engine.field_tracker
        if tracker is not None:
            for pid in ids:
                tracker.discard(pid)
        return removed

    # ------------------------------------------------------------------
    def analyze_by_service(
        self, records: list[LogRecord], now: datetime | None = None
    ) -> BatchResult:
        """Run the Fig. 2 workflow over one batch of records.

        With ``RTGConfig.enable_fastpath`` (the default) the scan→parse
        stages run through the duplicate-aware fast lane: identical
        messages are scanned and parsed once per batch (and cached
        across batches), with multiplicities folded into match counts
        and — via weighted trie insertion — into pattern support.  The
        mined output is identical either way; ``result.cache`` reports
        the lane's effectiveness.
        """
        return self.engine.run(records, now=now)

    # ------------------------------------------------------------------
    def analyze_legacy(self, records: list[LogRecord]) -> list[Pattern]:
        """Seminal Sequence ``Analyze``: one trie, no partitioning.

        Reproduced for the Fig. 5 comparison.  All services and message
        lengths share a single analysis trie, nothing is parsed against
        known patterns first, and nothing is persisted.
        """
        analyzer = LegacyAnalyzer(None)
        scanned = [self.scanner.scan(r.message, service=r.service) for r in records]
        patterns = analyzer.analyze(scanned)
        self.last_legacy_trie_nodes = analyzer.last_trie_nodes
        return patterns

    # ------------------------------------------------------------------
    def flush(self, now: datetime | None = None) -> BatchResult:
        """Mine and persist everything pending in the evolving state.

        Stream mode's deferred analysis step (see
        :meth:`~repro.core.engine.MiningEngine.flush`); a no-op empty
        result in batch mode, where nothing ever defers.
        """
        return self.engine.flush(now=now)

    def stream_driver(self, clock=None) -> "StreamDriver":
        """A :class:`~repro.core.streaming.StreamDriver` over this miner.

        Requires ``config.mode == "stream"``; *clock* (monotonic
        seconds) is injectable for tests.
        """
        from repro.core.streaming import StreamDriver

        if clock is None:
            return StreamDriver(self)
        return StreamDriver(self, clock=clock)

    # ------------------------------------------------------------------
    def process_stream(self, batches, now: datetime | None = None):
        """Run ``analyze_by_service`` for every batch; yield results.

        *batches* is any iterable of record lists — typically
        :meth:`repro.core.ingest.StreamIngester.batches`.
        """
        return drive_stream(self, batches, now=now)

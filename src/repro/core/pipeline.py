"""The ``AnalyzeByService`` pipeline (paper Fig. 2) and legacy ``Analyze``.

Workflow, stage by stage, exactly as the paper draws it:

1. **Partition by service** — "a first partitioning of the data which
   groups the log records into subsets by service";
2. **Scan** — tokenize the messages of each service group;
3. **Parse known** — "these scanned messages are then sent to the
   Sequence parser to see if they match an already known pattern.  If a
   match is found the last matched date and the number of examples ...
   are adjusted accordingly and no further processing occurs";
4. **Partition by token count** — "a second partitioning of these
   unmatched messages occurs based on count of tokens in the set.  Only
   token sets of the same length are compared in the same analysis trie";
5. **Analyse** — mine new patterns per partition;
6. **Persist** — "the newly found patterns are eventually saved in the
   database for comparison against subsequent batches and exporting."

``analyze_legacy`` reproduces the seminal single-trie ``Analyze`` method
for the Fig. 5 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime

from repro.analyzer.analyzer import Analyzer, LegacyAnalyzer
from repro.analyzer.pattern import Pattern
from repro.core.config import RTGConfig
from repro.core.patterndb import PatternDB
from repro.core.records import LogRecord
from repro.parser.parser import Parser
from repro.scanner.scanner import ScannedMessage, Scanner
from repro._util.timers import StageTimer

__all__ = ["SequenceRTG", "BatchResult"]


@dataclass(slots=True)
class BatchResult:
    """Telemetry of one ``analyze_by_service`` execution."""

    n_records: int = 0
    n_services: int = 0
    n_matched: int = 0  # parsed against already-known patterns
    n_unmatched: int = 0  # sent on to the analyser
    n_partitions: int = 0  # (service, token count) analysis partitions
    n_new_patterns: int = 0  # newly discovered and persisted
    n_below_threshold: int = 0  # discovered but under the save threshold
    max_trie_nodes: int = 0  # memory telemetry (largest analysis trie)
    timings: dict[str, float] = field(default_factory=dict)
    new_patterns: list[Pattern] = field(default_factory=list)

    @property
    def matched_fraction(self) -> float:
        return self.n_matched / self.n_records if self.n_records else 0.0


class SequenceRTG:
    """Production-ready pattern miner (the paper's contribution).

    A :class:`SequenceRTG` instance owns one scanner, one pattern
    database and a per-service parser cache.  ``analyze_by_service``
    processes one batch; :meth:`process_stream` drives batches from an
    ingester for continuous operation.
    """

    def __init__(
        self, db: PatternDB | None = None, config: RTGConfig | None = None
    ) -> None:
        self.config = config or RTGConfig()
        self.db = db or PatternDB(max_examples=self.config.max_examples)
        self.scanner = Scanner(self.config.scanner)
        self._parsers: dict[str, Parser] = {}

    # ------------------------------------------------------------------
    def parser_for(self, service: str) -> Parser:
        """Parser over the known patterns of *service* (cached)."""
        parser = self._parsers.get(service)
        if parser is None:
            parser = Parser(self.db.load_service(service))
            self._parsers[service] = parser
        return parser

    def invalidate_parsers(self) -> None:
        """Drop the parser cache (after external DB mutation)."""
        self._parsers.clear()

    # ------------------------------------------------------------------
    def analyze_by_service(
        self, records: list[LogRecord], now: datetime | None = None
    ) -> BatchResult:
        """Run the Fig. 2 workflow over one batch of records."""
        result = BatchResult(n_records=len(records))
        timer = StageTimer()

        # 1. first partitioning: group by service
        with timer.stage("partition_service"):
            by_service: dict[str, list[LogRecord]] = {}
            for record in records:
                by_service.setdefault(record.service, []).append(record)
        result.n_services = len(by_service)

        analyzer = Analyzer(self.config.analyzer)
        for service, group in by_service.items():
            # 2. scan
            with timer.stage("scan"):
                scanned = [
                    self.scanner.scan(r.message, service=service) for r in group
                ]

            # 3. parse against already known patterns
            parser = self.parser_for(service)
            unmatched: list[ScannedMessage] = []
            with timer.stage("parse"):
                match_counts: dict[str, int] = {}
                match_examples: dict[str, list[str]] = {}
                for msg in scanned:
                    if len(parser) == 0:
                        unmatched.append(msg)
                        continue
                    hit = parser.match(msg)
                    if hit is None:
                        unmatched.append(msg)
                    else:
                        pid = hit.pattern.id
                        match_counts[pid] = match_counts.get(pid, 0) + 1
                        match_examples.setdefault(pid, []).append(msg.original)
            with timer.stage("db_update"):
                for pid, n in match_counts.items():
                    self.db.record_match(pid, n=n, now=now)
                    for example in match_examples[pid][:2]:
                        self.db.add_example(pid, example)
            result.n_matched += sum(match_counts.values())
            result.n_unmatched += len(unmatched)

            # 4. second partitioning: group unmatched by token count
            with timer.stage("partition_length"):
                by_length: dict[int, list[ScannedMessage]] = {}
                for msg in unmatched:
                    by_length.setdefault(msg.token_count(), []).append(msg)
            result.n_partitions += len(by_length)

            # 5. analyse each partition in its own trie
            for _, partition in sorted(by_length.items()):
                with timer.stage("analyze"):
                    patterns = analyzer.analyze(partition)
                result.max_trie_nodes = max(
                    result.max_trie_nodes, analyzer.last_trie_nodes
                )
                # 6. persist discovered patterns (save threshold applies)
                with timer.stage("db_save"):
                    for pattern in patterns:
                        pattern.service = service
                        if pattern.support < self.config.save_threshold:
                            result.n_below_threshold += 1
                            continue
                        self.db.upsert(pattern, now=now)
                        parser.add_pattern(pattern)
                        result.n_new_patterns += 1
                        result.new_patterns.append(pattern)

        result.timings = timer.report()
        return result

    # ------------------------------------------------------------------
    def analyze_legacy(self, records: list[LogRecord]) -> list[Pattern]:
        """Seminal Sequence ``Analyze``: one trie, no partitioning.

        Reproduced for the Fig. 5 comparison.  All services and message
        lengths share a single analysis trie, nothing is parsed against
        known patterns first, and nothing is persisted.
        """
        analyzer = LegacyAnalyzer(None)
        scanned = [self.scanner.scan(r.message, service=r.service) for r in records]
        patterns = analyzer.analyze(scanned)
        self.last_legacy_trie_nodes = analyzer.last_trie_nodes
        return patterns

    # ------------------------------------------------------------------
    def process_stream(self, batches, now: datetime | None = None):
        """Run ``analyze_by_service`` for every batch; yield results.

        *batches* is any iterable of record lists — typically
        :meth:`repro.core.ingest.StreamIngester.batches`.
        """
        for batch in batches:
            yield self.analyze_by_service(batch, now=now)
